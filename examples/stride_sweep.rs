//! A miniature of the paper's Fig. 8 stride study: how each MaxPool
//! implementation behaves as the stride changes the im2col duplication
//! factor. Kernel (3,3); strides (1,1), (2,2), (3,3); N = C1 = 1.
//!
//! ```sh
//! cargo run --release --example stride_sweep
//! ```

use davinci_pooling::core::{ForwardImpl, PoolingEngine};
use davinci_pooling::prelude::*;

fn main() {
    let engine = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
    let hw = 64;
    let input = Nchw::from_fn(1, 16, hw, hw, |_, c, h, w| {
        F16::from_f32((((c + 3) * (h + 7) * (w + 1)) % 27) as f32 - 13.0)
    })
    .to_nc1hwc0();

    for stride in [1usize, 2, 3] {
        let params = PoolParams::new((3, 3), (stride, stride));
        let (dup_n, dup_d) = params.duplication_ratio();
        println!(
            "\nstride ({stride},{stride}) — im2col duplication {:.2}x — input {hw}x{hw}:",
            dup_n as f64 / dup_d as f64
        );
        println!(
            "  {:<26} {:>12} {:>13}",
            "implementation", "cycles", "vector util"
        );
        let mut reference: Option<Vec<F16>> = None;
        for impl_ in ForwardImpl::ALL {
            let (out, run) = engine
                .maxpool_forward(&input, params, impl_)
                .expect("lowering");
            match &reference {
                None => reference = Some(out.data().to_vec()),
                Some(r) => assert_eq!(r.as_slice(), out.data(), "{impl_:?} disagrees"),
            }
            println!(
                "  {:<26} {:>12} {:>12.1}%",
                impl_.label(),
                run.cycles,
                run.total.vector_utilization() * 100.0
            );
        }
    }
    println!("\nexpected shape (paper Fig. 8): direct Maxpool beats the im2col variants");
    println!("at stride (1,1); Im2col wins at strides (2,2) and (3,3) with expansion in");
    println!("between; at stride (2,2) the X-Y split does not overcome the scattered-");
    println!("access problem (at stride (1,1), where nothing scatters, its lower op");
    println!("count pays off — the regime CMSIS-NN targets).");
}
