//! Build the same CNN twice with `dv-nn` — once with baseline pooling,
//! once with the paper's Im2col pooling — and compare end-to-end network
//! cycles. Shows how much a "slow" pooling layer costs a whole model
//! (the paper's motivation: "a naive implementation can hinder the
//! overall performance of a CNN").
//!
//! ```sh
//! cargo run --release --example sequential_model
//! ```

use davinci_pooling::nn::{reference_forward, Layer, Sequential};
use davinci_pooling::prelude::*;

fn main() {
    let conv1 = Nchw::from_fn(16, 16, 3, 3, |m, c, h, w| {
        F16::from_f32(((m * 3 + c + h * 2 + w) % 7) as f32 * 0.25 - 0.75)
    });
    let conv2 = Nchw::from_fn(32, 16, 3, 3, |m, c, h, w| {
        F16::from_f32(((m + c * 2 + h + w * 3) % 5) as f32 * 0.125 - 0.25)
    });

    let build = |impl_: ForwardImpl| {
        Sequential::new(PoolingEngine::ascend910())
            .layer(Layer::conv2d(conv1.clone(), (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::maxpool2d(PoolParams::K3S2, impl_))
            .layer(Layer::conv2d(conv2.clone(), (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::maxpool2d(PoolParams::K3S2, impl_))
            .layer(Layer::GlobalAvgPool)
    };

    let input = Nchw::from_fn(1, 16, 64, 64, |_, c, h, w| {
        F16::from_f32(((c * 7 + h * 5 + w * 3) % 13) as f32 * 0.25 - 1.5)
    });

    let baseline = build(ForwardImpl::Standard);
    let accelerated = build(ForwardImpl::Im2col);

    let (out_b, run_b) = baseline.forward(&input).expect("baseline model");
    let (out_a, run_a) = accelerated.forward(&input).expect("accelerated model");
    assert_eq!(out_b, out_a, "models must agree bit-exactly");
    let ref_out = reference_forward(&accelerated, &input).expect("reference model");
    assert_eq!(out_a, ref_out, "simulated model must match the reference");

    println!("== baseline (standard pooling) ==");
    print!("{}", run_b.report());
    println!("\n== accelerated (Im2col pooling) ==");
    print!("{}", run_a.report());

    let (tb, ta) = (run_b.total_cycles(), run_a.total_cycles());
    println!(
        "\nwhole-network speedup from accelerating ONLY the pooling layers: {:.2}x",
        tb as f64 / ta as f64
    );
    let pool_b: u64 = run_b
        .layers
        .iter()
        .filter(|l| l.name.starts_with("maxpool"))
        .map(|l| l.cycles)
        .sum();
    let pool_a: u64 = run_a
        .layers
        .iter()
        .filter(|l| l.name.starts_with("maxpool"))
        .map(|l| l.cycles)
        .sum();
    println!(
        "pooling share of network cycles: {:.1}% baseline -> {:.1}% accelerated",
        100.0 * pool_b as f64 / tb as f64,
        100.0 * pool_a as f64 / ta as f64
    );
}
