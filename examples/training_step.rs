//! A full training-direction pipeline through a pooling layer: forward
//! MaxPool *with the argmax mask*, then backward through the mask — on
//! both the baseline and the Im2col/Col2im accelerated paths — verified
//! against the golden references.
//!
//! ```sh
//! cargo run --release --example training_step
//! ```

use davinci_pooling::prelude::*;
use davinci_pooling::tensor::reference;

fn main() {
    let (ih, iw, c) = (71, 71, 192); // InceptionV3's second pooling layer
    let params = PoolParams::K3S2;
    let input = Nchw::from_fn(1, c, ih, iw, |_, ci, h, w| {
        F16::from_f32((((ci + 7) * (h + 11) * (w + 3)) % 31) as f32 * 0.5 - 7.5)
    })
    .to_nc1hwc0();

    let engine = PoolingEngine::ascend910();

    // ---- forward + argmax ----------------------------------------
    let (out_b, mask_b, fwd_base) = engine
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Standard)
        .expect("baseline forward");
    let (out_a, mask_a, fwd_acc) = engine
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .expect("accelerated forward");
    assert_eq!(out_b.data(), out_a.data());
    assert_eq!(mask_b.data(), mask_a.data());

    // sanity: the simulated mask equals the reference mask
    let ref_mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    assert_eq!(mask_a.data(), ref_mask.data());

    // ---- backward -------------------------------------------------
    // integer-valued incoming gradients (as if from the next layer)
    let grads = Nc1hwc0::from_fn(1, input.c1, out_a.h, out_a.w, |_, c1, h, w, c0| {
        F16::from_f32(((c1 + h * 3 + w * 5 + c0) % 7) as f32)
    });
    let (dx_b, bwd_base) = engine
        .maxpool_backward(&mask_a, &grads, params, ih, iw, MergeImpl::VAdd)
        .expect("baseline backward");
    let (dx_a, bwd_acc) = engine
        .maxpool_backward(&mask_a, &grads, params, ih, iw, MergeImpl::Col2Im)
        .expect("accelerated backward");
    assert_eq!(dx_b.data(), dx_a.data());

    let ref_dx = reference::maxpool_backward(&ref_mask, &grads, &params, ih, iw).unwrap();
    assert_eq!(dx_a.data(), ref_dx.data());

    // ---- report ----------------------------------------------------
    println!("training step through MaxPool {ih}x{iw}x{c}, K(3,3)/S(2,2):\n");
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "stage", "baseline", "accelerated", "speedup"
    );
    for (stage, base, acc) in [
        ("forward + argmax mask", fwd_base.cycles, fwd_acc.cycles),
        (
            "backward (mask x grad + merge)",
            bwd_base.cycles,
            bwd_acc.cycles,
        ),
    ] {
        println!(
            "{:<34} {:>12} {:>12} {:>7.2}x",
            stage,
            base,
            acc,
            base as f64 / acc as f64
        );
    }
    println!("\nall tensors verified bit-exact against the golden references");
}
