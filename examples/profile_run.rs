//! Profile a pooling run: record an instruction-level trace, export it
//! for Perfetto/chrome://tracing, and print the cycle breakdown —
//! the workflow described in README § "Profiling a run".
//!
//! ```sh
//! cargo run --release --example profile_run            # N = 1, per-plane
//! cargo run --release --example profile_run -- --batch 4
//! cargo run --release --example profile_run -- --no-rename
//! cargo run --release --example profile_run -- --cores 8
//! ```
//!
//! With `--batch N` (N > 1) the engine's batch fold kicks in: compare
//! the `im2col` issue count in the breakdown against an N = 1 run
//! scaled by N to see the Mode-0 repeat chains amortise issue overhead
//! across the batch.
//!
//! With `--cores N` (N > 1) the run moves to an N-core chip with
//! cost-model-driven sharding and the shared-HBM contention stage
//! (`MemoryModel::ascend910_hbm()`): the engine picks a partition axis
//! for the workload, the cores' MTE streams contend for the shared
//! 256 B/cycle pipe, and the breakdown grows a `gm contention stalls`
//! line (also visible as trailing `gm-contention` slices on the MTE
//! rows of the exported trace).
//!
//! With `--no-rename` the chip runs under
//! `CostModel::dual_pipe_no_rename()`: the scoreboard keeps every
//! WAR/WAW wait instead of rotating scratchpad slots, and the planner
//! falls back to the pre-renaming band layouts. Diff the makespan and
//! the `renamed`/`denied` counters against a default run to see what
//! slot renaming buys (the live-range slices in the exported trace
//! show the overlapping buffer versions renaming creates).

use davinci_pooling::prelude::*;
use davinci_pooling::sim::TraceConfig;

struct Options {
    batch: usize,
    rename: bool,
    cores: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        batch: 1,
        rename: true,
        cores: 1,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch" => {
                let v = args.next().ok_or("--batch needs a value")?;
                opts.batch = v
                    .parse()
                    .map_err(|_| format!("invalid --batch value: {v}"))?;
                if opts.batch == 0 {
                    return Err("--batch must be >= 1".into());
                }
            }
            "--no-rename" => opts.rename = false,
            "--cores" => {
                let v = args.next().ok_or("--cores needs a value")?;
                opts.cores = v
                    .parse()
                    .map_err(|_| format!("invalid --cores value: {v}"))?;
                if opts.cores == 0 || opts.cores > 32 {
                    return Err("--cores must be in 1..=32".into());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --batch N, --no-rename, --cores N)"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;
    // Fig. 7's middle InceptionV3 shape: 71x71, 192 channels, K3S2.
    let input = Nchw::from_fn(opts.batch, 192, 71, 71, |n, c, h, w| {
        F16::from_f32(((n + c + 3 * h + 7 * w) % 11) as f32)
    })
    .to_nc1hwc0();

    // Profile one AI core under a 64 KiB UB budget (the perf gate's
    // batched configuration): the plane band-splits, so the trace shows
    // the double-buffered software pipelines — and with --batch N the
    // Mode-0 batch fold engages (on the full 32-core chip it declines,
    // preferring one plane per core).
    let cost = if opts.rename {
        CostModel::ascend910_like()
    } else {
        CostModel::dual_pipe_no_rename()
    };
    // With --cores N the run scales out instead: an N-core chip behind
    // the shared HBM pipe, with the engine's cost model choosing the
    // partition axis (per plane, per c1 slice, or per row band).
    let engine = if opts.cores > 1 {
        let chip = Chip::new(opts.cores, cost).with_memory(MemoryModel::ascend910_hbm());
        PoolingEngine::new(chip)
            .with_sharding(true)
            .with_trace(TraceConfig::ON)
    } else {
        let mut chip = Chip::new(1, cost);
        chip.caps.ub = 64 * 1024;
        PoolingEngine::new(chip).with_trace(TraceConfig::ON)
    };
    let (_, run) = engine.maxpool_forward(&input, PoolParams::K3S2, ForwardImpl::Im2col)?;

    let path = "pool.trace.json";
    std::fs::write(path, run.chrome_trace_json())?;
    let events: usize = run.traces.iter().map(|t| t.events.len()).sum();
    println!(
        "wrote {path}: {events} instructions across {} traced cores",
        run.traces.len()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev\n");

    println!("{}", run.breakdown().render());

    println!("buffer high-water marks:");
    for (buffer, peak) in run.peaks.iter() {
        if peak > 0 {
            println!("  {buffer:<4} {peak:>9} bytes");
        }
    }

    // The invariant the trace rests on: counters and trace agree.
    run.breakdown()
        .verify_against(&run.total)
        .map_err(|e| format!("trace/counter mismatch: {e}"))?;
    println!(
        "\ntrace durations sum to the busy-cycle total: {} cycles \
         (dual-pipe makespan: {}, stalled: {})",
        run.total.busy_cycles(),
        run.total.cycles,
        run.total.stall_cycles
    );
    println!(
        "scratchpad slot renaming: {} WAR/WAW waits rotated away, \
         {} rotations denied for capacity{}",
        run.total.renames,
        run.total.rename_denied,
        if opts.rename {
            ""
        } else {
            " (renaming disabled via --no-rename)"
        }
    );
    if opts.cores > 1 {
        println!("\nper-core makespans ({} cores, shared HBM):", opts.cores);
        for (i, (c, cc)) in run.per_core.iter().zip(&run.core_cycles).enumerate() {
            println!(
                "  core {i:>2}: {cc:>8} cycles ({} stalled on the shared pipe)",
                c.contention_stalls
            );
        }
        println!(
            "chip makespan {} = slowest core; {} contention stalls booked in total",
            run.cycles, run.total.contention_stalls
        );
    }
    Ok(())
}
