//! Profile a pooling run: record an instruction-level trace, export it
//! for Perfetto/chrome://tracing, and print the cycle breakdown —
//! the workflow described in README § "Profiling a run".
//!
//! ```sh
//! cargo run --release --example profile_run            # N = 1, per-plane
//! cargo run --release --example profile_run -- --batch 4
//! cargo run --release --example profile_run -- --no-rename
//! cargo run --release --example profile_run -- --cores 8
//! cargo run --release --example profile_run -- --backend scalar
//! ```
//!
//! With `--batch N` (N > 1) the engine's batch fold kicks in: compare
//! the `im2col` issue count in the breakdown against an N = 1 run
//! scaled by N to see the Mode-0 repeat chains amortise issue overhead
//! across the batch.
//!
//! With `--cores N` (N > 1) the run moves to an N-core chip with
//! cost-model-driven sharding and the shared-HBM contention stage
//! (`MemoryModel::ascend910_hbm()`): the engine picks a partition axis
//! for the workload, the cores' MTE streams contend for the shared
//! 256 B/cycle pipe, and the breakdown grows a `gm contention stalls`
//! line (also visible as trailing `gm-contention` slices on the MTE
//! rows of the exported trace).
//!
//! With `--no-rename` the chip runs under
//! `CostModel::dual_pipe_no_rename()`: the scoreboard keeps every
//! WAR/WAW wait instead of rotating scratchpad slots, and the planner
//! falls back to the pre-renaming band layouts. Diff the makespan and
//! the `renamed`/`denied` counters against a default run to see what
//! slot renaming buys (the live-range slices in the exported trace
//! show the overlapping buffer versions renaming creates).
//!
//! With `--algo auto` the engine's per-workload auto-tuner picks the
//! algorithm (direct reduction vs im2col — see README § "Letting the
//! tuner pick"): the run prints the tuner's ranking, its predicted
//! cycles against the measured makespan, and the typed decline counters
//! (`tuner_fallbacks` / `tuner_mispredicted`). `--algo direct` and
//! `--algo im2col` force one algorithm instead. Scenario flags reshape
//! the workload: `--dilation D` spreads the kernel taps, `--ceil-mode`
//! rounds the output up over a trailing partial window, and `--global`
//! pools each whole plane to a single pixel.
//!
//! With `--backend scalar|sliced|threaded` the run selects the *host*
//! execution backend (see ARCHITECTURE.md § "Host execution backends").
//! Simulated cycles, counters, and traces are bit-identical across
//! backends — only the host wall time printed next to them changes.
//! Diff a `--backend scalar` run against the default to see what the
//! sliced executor loops and core threading buy on your machine.

use davinci_pooling::core::{choose_forward_algorithm, PoolProblem};
use davinci_pooling::prelude::*;
use davinci_pooling::sim::TraceConfig;

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Auto,
    Direct,
    Im2col,
}

struct Options {
    batch: usize,
    rename: bool,
    cores: usize,
    algo: Algo,
    dilation: usize,
    ceil_mode: bool,
    global: bool,
    backend: Backend,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        batch: 1,
        rename: true,
        cores: 1,
        algo: Algo::Im2col,
        dilation: 1,
        ceil_mode: false,
        global: false,
        backend: Backend::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch" => {
                let v = args.next().ok_or("--batch needs a value")?;
                opts.batch = v
                    .parse()
                    .map_err(|_| format!("invalid --batch value: {v}"))?;
                if opts.batch == 0 {
                    return Err("--batch must be >= 1".into());
                }
            }
            "--no-rename" => opts.rename = false,
            "--cores" => {
                let v = args.next().ok_or("--cores needs a value")?;
                opts.cores = v
                    .parse()
                    .map_err(|_| format!("invalid --cores value: {v}"))?;
                if opts.cores == 0 || opts.cores > 32 {
                    return Err("--cores must be in 1..=32".into());
                }
            }
            "--algo" => {
                let v = args.next().ok_or("--algo needs a value")?;
                opts.algo = match v.as_str() {
                    "auto" => Algo::Auto,
                    "direct" => Algo::Direct,
                    "im2col" => Algo::Im2col,
                    _ => return Err(format!("invalid --algo value: {v} (auto|direct|im2col)")),
                };
            }
            "--dilation" => {
                let v = args.next().ok_or("--dilation needs a value")?;
                opts.dilation = v
                    .parse()
                    .map_err(|_| format!("invalid --dilation value: {v}"))?;
                if opts.dilation == 0 {
                    return Err("--dilation must be >= 1".into());
                }
            }
            "--ceil-mode" => opts.ceil_mode = true,
            "--global" => opts.global = true,
            "--backend" => {
                let v = args.next().ok_or("--backend needs a value")?;
                opts.backend = Backend::parse(&v).ok_or_else(|| {
                    format!("invalid --backend value: {v} (scalar|sliced|threaded)")
                })?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (try --batch N, --no-rename, --cores N, \
                     --algo auto|direct|im2col, --dilation D, --ceil-mode, --global, \
                     --backend scalar|sliced|threaded)"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;
    // Fig. 7's middle InceptionV3 shape: 71x71, 192 channels, K3S2 —
    // reshaped by the scenario flags.
    let (ih, iw) = (71usize, 71usize);
    let input = Nchw::from_fn(opts.batch, 192, ih, iw, |n, c, h, w| {
        F16::from_f32(((n + c + 3 * h + 7 * w) % 11) as f32)
    })
    .to_nc1hwc0();
    let params = if opts.global {
        PoolParams::global(ih, iw)
    } else {
        PoolParams::K3S2
            .with_dilation((opts.dilation, opts.dilation))
            .with_ceil_mode(opts.ceil_mode)
    };

    // Profile one AI core under a 64 KiB UB budget (the perf gate's
    // batched configuration): the plane band-splits, so the trace shows
    // the double-buffered software pipelines — and with --batch N the
    // Mode-0 batch fold engages (on the full 32-core chip it declines,
    // preferring one plane per core).
    let cost = if opts.rename {
        CostModel::ascend910_like()
    } else {
        CostModel::dual_pipe_no_rename()
    };
    // With --cores N the run scales out instead: an N-core chip behind
    // the shared HBM pipe, with the engine's cost model choosing the
    // partition axis (per plane, per c1 slice, or per row band).
    let engine = if opts.cores > 1 {
        let chip = Chip::new(opts.cores, cost)
            .with_memory(MemoryModel::ascend910_hbm())
            .with_backend(opts.backend);
        PoolingEngine::new(chip)
            .with_sharding(true)
            .with_trace(TraceConfig::ON)
    } else {
        let mut chip = Chip::new(1, cost).with_backend(opts.backend);
        // Global pooling needs the whole plane resident (one output row
        // spans every input row, so band splitting cannot help), and
        // ceil-mode forbids multi-band splitting like padding does —
        // keep the full 256 KiB UB for those instead of the batched-gate
        // clamp.
        if !opts.global && !opts.ceil_mode {
            chip.caps.ub = 64 * 1024;
        }
        PoolingEngine::new(chip).with_trace(TraceConfig::ON)
    };
    let engine = engine.with_auto_tuning(opts.algo == Algo::Auto);

    // Under --algo auto the engine ignores this argument and dispatches
    // the tuner's winner; print the ranking it will decide from.
    let impl_ = match opts.algo {
        Algo::Direct => ForwardImpl::Standard,
        _ => ForwardImpl::Im2col,
    };
    if opts.algo == Algo::Auto {
        let prob = PoolProblem::new(opts.batch, input.c1, ih, iw, params)?;
        let shared = match engine.chip.memory {
            MemoryModel::SharedBandwidth { bytes_per_cycle } => Some(bytes_per_cycle),
            MemoryModel::Independent => None,
        };
        let choice = choose_forward_algorithm(
            &prob,
            false,
            false,
            engine.chip.cores,
            &engine.schedule(),
            engine.chip.caps,
            shared,
        );
        println!("auto-tuner ranking (predicted cycles):");
        for p in &choice.ranking {
            println!("  {:<8} {:>9}", p.algorithm.label(), p.cycles);
        }
        println!();
    }
    let started = std::time::Instant::now();
    let (_, run) = engine.maxpool_forward(&input, params, impl_)?;
    let wall = started.elapsed();
    println!(
        "simulated {} cycles in {wall:.3?} of host wall time \
         ({} backend; cycles are backend-invariant, wall time is not)\n",
        run.cycles, engine.chip.cost.backend
    );

    let path = "pool.trace.json";
    std::fs::write(path, run.chrome_trace_json())?;
    let events: usize = run.traces.iter().map(|t| t.events.len()).sum();
    println!(
        "wrote {path}: {events} instructions across {} traced cores",
        run.traces.len()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev\n");

    println!("{}", run.breakdown().render());

    println!("buffer high-water marks:");
    for (buffer, peak) in run.peaks.iter() {
        if peak > 0 {
            println!("  {buffer:<4} {peak:>9} bytes");
        }
    }

    // The invariant the trace rests on: counters and trace agree.
    run.breakdown()
        .verify_against(&run.total)
        .map_err(|e| format!("trace/counter mismatch: {e}"))?;
    println!(
        "\ntrace durations sum to the busy-cycle total: {} cycles \
         (dual-pipe makespan: {}, stalled: {})",
        run.total.busy_cycles(),
        run.total.cycles,
        run.total.stall_cycles
    );
    println!(
        "scratchpad slot renaming: {} WAR/WAW waits rotated away, \
         {} rotations denied for capacity{}",
        run.total.renames,
        run.total.rename_denied,
        if opts.rename {
            ""
        } else {
            " (renaming disabled via --no-rename)"
        }
    );
    if opts.algo == Algo::Auto {
        println!(
            "\nauto-tuner: measured makespan {} cycles; {} ranked candidate(s) \
             failed to lower (tuner_fallbacks), {} win(s) could not be \
             certified against a rejected alternative's cycle floor \
             (tuner_mispredicted{})",
            run.cycles,
            run.total.tuner_fallbacks,
            run.total.tuner_mispredicted,
            if run.total.tuner_mispredicted == 0 {
                " = 0: the tuned run is provably no slower than any alternative"
            } else {
                ""
            }
        );
    }
    if opts.cores > 1 {
        println!("\nper-core makespans ({} cores, shared HBM):", opts.cores);
        for (i, (c, cc)) in run.per_core.iter().zip(&run.core_cycles).enumerate() {
            println!(
                "  core {i:>2}: {cc:>8} cycles ({} stalled on the shared pipe)",
                c.contention_stalls
            );
        }
        println!(
            "chip makespan {} = slowest core; {} contention stalls booked in total",
            run.cycles, run.total.contention_stalls
        );
    }
    Ok(())
}
