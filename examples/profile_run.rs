//! Profile a pooling run: record an instruction-level trace, export it
//! for Perfetto/chrome://tracing, and print the cycle breakdown —
//! the workflow described in README § "Profiling a run".
//!
//! ```sh
//! cargo run --release --example profile_run
//! ```

use davinci_pooling::prelude::*;
use davinci_pooling::sim::TraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 7's middle InceptionV3 shape: 71x71, 192 channels, K3S2.
    let input = Nchw::from_fn(1, 192, 71, 71, |_, c, h, w| {
        F16::from_f32(((c + 3 * h + 7 * w) % 11) as f32)
    })
    .to_nc1hwc0();

    let engine = PoolingEngine::ascend910().with_trace(TraceConfig::ON);
    let (_, run) = engine.maxpool_forward(&input, PoolParams::K3S2, ForwardImpl::Im2col)?;

    let path = "pool.trace.json";
    std::fs::write(path, run.chrome_trace_json())?;
    let events: usize = run.traces.iter().map(|t| t.events.len()).sum();
    println!(
        "wrote {path}: {events} instructions across {} traced cores",
        run.traces.len()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev\n");

    println!("{}", run.breakdown().render());

    println!("buffer high-water marks:");
    for (buffer, peak) in run.peaks.iter() {
        if peak > 0 {
            println!("  {buffer:<4} {peak:>9} bytes");
        }
    }

    // The invariant the trace rests on: counters and trace agree.
    run.breakdown()
        .verify_against(&run.total)
        .map_err(|e| format!("trace/counter mismatch: {e}"))?;
    println!(
        "\ntrace durations sum to the busy-cycle total: {} cycles \
         (dual-pipe makespan: {}, stalled: {})",
        run.total.busy_cycles(),
        run.total.cycles,
        run.total.stall_cycles
    );
    Ok(())
}
