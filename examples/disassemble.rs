//! Inspect the lowered instruction streams — the reproduction's
//! equivalent of reading the paper's "lowered CCE C code" (Section V).
//!
//! Prints the first instructions and the static statistics of the
//! standard and im2col MaxPool lowerings side by side, making the
//! issue-count formulas of the paper visible:
//! standard emits `Oh*Ow*Kh` vmax issues; im2col emits `Kh*Kw`.
//!
//! ```sh
//! cargo run --release --example disassemble
//! ```

use davinci_pooling::core::maxpool::{build_forward, Reduction};
use davinci_pooling::core::{ForwardImpl, PoolProblem};
use davinci_pooling::prelude::*;
use davinci_pooling::sim::Capacities;

fn main() {
    let params = PoolParams::K3S2;
    let prob = PoolProblem::new(1, 1, 21, 21, params).expect("geometry");
    let (oh, ow) = prob.out_dims();

    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        let programs = build_forward(
            &prob,
            impl_,
            Reduction::Max,
            0,
            prob.in_bytes(),
            Capacities::ASCEND910,
        )
        .expect("lowering");
        let p = &programs[0];
        let stats = p.static_stats();

        println!("==== {impl_:?} lowering of MaxPool 21x21, K(3,3)/S(2,2) ====");
        let dis = p.disassemble();
        for line in dis.lines().take(10) {
            println!("{line}");
        }
        if p.len() > 10 {
            println!("  ... {} more instructions", p.len() - 10);
        }
        println!("\nstatic statistics:");
        println!("  total issues:        {}", stats.total_issues());
        for (mnemonic, count) in &stats.issues {
            println!("  {mnemonic:<12} issues: {count}");
        }
        println!(
            "  vector lane slots:   {} useful of {} ({:.1}%)",
            stats.vector_useful_lanes,
            stats.vector_total_lanes,
            stats.vector_utilization() * 100.0
        );
        println!();
    }

    println!("paper formulas for this shape:");
    println!(
        "  standard: Oh*Ow*Kh = {}*{}*{} = {} vmax issues",
        oh,
        ow,
        params.kh,
        oh * ow * params.kh
    );
    println!(
        "  im2col:   Kh*Kw    = {}*{} = {} vmax issues",
        params.kh,
        params.kw,
        params.kh * params.kw
    );
}
