//! Run every MaxPool layer of Table I (InceptionV3, Xception, Resnet50,
//! VGG16) through the standard and Im2col implementations on the
//! simulated 32-core chip — the workloads that motivate the paper.
//!
//! ```sh
//! cargo run --release --example inception_layers
//! ```

use davinci_pooling::core::{table1_workloads, ForwardImpl, PoolingEngine};
use davinci_pooling::prelude::*;

fn main() {
    let engine = PoolingEngine::ascend910();
    println!(
        "{:<12} {:>3} {:>13} {:>7} {:>12} {:>12} {:>8}",
        "CNN", "in", "shape (HWC)", "K/S", "standard", "im2col", "speedup"
    );
    for w in table1_workloads() {
        let input = Nchw::from_fn(1, w.c, w.h, w.w, |_, c, h, ww| {
            F16::from_f32((((c + 13) * (h + 5) * (ww + 2)) % 19) as f32 - 9.0)
        })
        .to_nc1hwc0();

        let (out_std, run_std) = engine
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (out_acc, run_acc) = engine
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        assert_eq!(out_std.data(), out_acc.data(), "implementations disagree");

        println!(
            "{:<12} {:>3} {:>13} {:>7} {:>12} {:>12} {:>7.2}x",
            w.cnn,
            w.input_idx,
            format!("{}x{}x{}", w.h, w.w, w.c),
            format!(
                "{}{}/{}{}",
                w.params.kh, w.params.kw, w.params.sh, w.params.sw
            ),
            run_std.cycles,
            run_acc.cycles,
            run_std.cycles as f64 / run_acc.cycles as f64
        );
    }
    println!("\n(cycle counts from the simulator's hardware counters, 32 AI cores)");
}
