//! A miniature CNN forward pass running end-to-end on the simulated
//! chip: convolutions on the Cube Unit (via `Im2Col` loads) interleaved
//! with accelerated pooling on the Vector Unit — the composition the
//! paper's introduction motivates ("many modern CNN architectures also
//! use pooling").
//!
//! Every layer output is verified against the golden references.
//!
//! ```sh
//! cargo run --release --example cnn_inference
//! ```

use davinci_pooling::prelude::*;
use davinci_pooling::tensor::reference;

fn main() {
    // input "image": 16 channels, 32x32 (channel-padded RGB stand-in)
    let mut image = Nchw::from_fn(1, 16, 32, 32, |_, c, h, w| {
        F16::from_f32((((c + 1) * (h + 2) * (w + 3)) % 29) as f32 * 0.125 - 1.75)
    });

    let engine = PoolingEngine::ascend910();
    let mut total_cycles = 0u64;
    println!("{:<34} {:>14} {:>12}", "layer", "output", "cycles");

    // --- conv1: 16 -> 16 channels, 3x3, stride 2 ---------------------
    let conv1_w = Nchw::from_fn(16, 16, 3, 3, |m, c, h, w| {
        F16::from_f32((((m + 2) * (c + 1) + h * 3 + w) % 9) as f32 * 0.0625 - 0.25)
    });
    let conv1_p = PoolParams::new((3, 3), (2, 2));
    let (c1_out, run) =
        davinci_pooling::conv::run_conv2d(&image, &conv1_w, &conv1_p).expect("conv1");
    assert_eq!(
        c1_out,
        reference::conv2d_direct(&image, &conv1_w, &conv1_p).unwrap()
    );
    total_cycles += run.cycles;
    println!(
        "{:<34} {:>14} {:>12}",
        "conv1 3x3/2 (Cube + Im2Col)",
        format!("{}x{}x{}", c1_out.h, c1_out.w, c1_out.c),
        run.cycles
    );
    image = c1_out;

    // --- relu1 on the Vector Unit ------------------------------------
    let relu_in = image.to_nc1hwc0();
    let (relu_out, run) = engine.relu(&relu_in).expect("relu1");
    for (got, x) in relu_out.data().iter().zip(relu_in.data()) {
        assert_eq!(*got, x.max(F16::ZERO));
    }
    total_cycles += run.cycles;
    println!(
        "{:<34} {:>14} {:>12}",
        "relu1 (vrelu)",
        format!("{}x{}x{}", image.h, image.w, image.c),
        run.cycles
    );
    image = relu_out.to_nchw();

    // --- pool1: maxpool 3x3/2, accelerated --------------------------
    let pool_p = PoolParams::K3S2;
    let pool_in = image.to_nc1hwc0();
    let (p1_out, run) = engine
        .maxpool_forward(&pool_in, pool_p, ForwardImpl::Im2col)
        .expect("pool1");
    assert_eq!(
        p1_out.data(),
        reference::maxpool_forward(&pool_in, &pool_p)
            .unwrap()
            .data()
    );
    total_cycles += run.cycles;
    println!(
        "{:<34} {:>14} {:>12}",
        "pool1 max 3x3/2 (Im2col)",
        format!("{}x{}x{}", p1_out.h, p1_out.w, image.c),
        run.cycles
    );
    image = p1_out.to_nchw();

    // --- conv2: 16 -> 32 channels, 3x3, stride 1 --------------------
    let conv2_w = Nchw::from_fn(32, 16, 3, 3, |m, c, h, w| {
        F16::from_f32((((m + 1) * (c + 3) + h + w * 2) % 7) as f32 * 0.0625 - 0.1875)
    });
    let conv2_p = PoolParams::new((3, 3), (1, 1));
    let (c2_out, run) =
        davinci_pooling::conv::run_conv2d(&image, &conv2_w, &conv2_p).expect("conv2");
    assert_eq!(
        c2_out,
        reference::conv2d_direct(&image, &conv2_w, &conv2_p).unwrap()
    );
    total_cycles += run.cycles;
    println!(
        "{:<34} {:>14} {:>12}",
        "conv2 3x3/1 (Cube + Im2Col)",
        format!("{}x{}x{}", c2_out.h, c2_out.w, c2_out.c),
        run.cycles
    );
    image = c2_out;

    // --- pool2: global average pooling -------------------------------
    let gap_p = PoolParams::new((image.h, image.w), (1, 1));
    let gap_in = image.to_nc1hwc0();
    let (gap_out, run) = engine
        .avgpool_forward(&gap_in, gap_p, ForwardImpl::Im2col)
        .expect("gap");
    assert_eq!(
        gap_out.data(),
        reference::avgpool_forward(&gap_in, &gap_p).unwrap().data()
    );
    total_cycles += run.cycles;
    println!(
        "{:<34} {:>14} {:>12}",
        "pool2 global avg (Im2col)",
        format!("1x1x{}", image.c),
        run.cycles
    );

    println!("\ntotal simulated cycles: {total_cycles}");
    println!("all layer outputs verified against the golden references");

    // the "logits": the 32 pooled channel activations
    let logits: Vec<f32> = (0..image.c)
        .map(|c| gap_out.get(0, c / 16, 0, 0, c % 16).to_f32())
        .collect();
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!("argmax activation: channel {} ({:.4})", best.0, best.1);
}
