//! Quickstart: run MaxPool forward with and without the Im2Col
//! instruction on the simulated Ascend-910 chip and compare cycle counts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use davinci_pooling::prelude::*;

fn main() {
    // A 64-channel 64x64 fp16 feature map (NCHW), converted to DaVinci's
    // fractal NC1HWC0 layout (C1 = 4 channel groups of C0 = 16).
    let input = Nchw::from_fn(1, 64, 64, 64, |_, c, h, w| {
        F16::from_f32((((c + 1) * (h + 3) * (w + 7)) % 23) as f32 - 11.0)
    })
    .to_nc1hwc0();

    let engine = PoolingEngine::ascend910();
    let params = PoolParams::K3S2; // kernel (3,3), stride (2,2) — the common CNN config

    println!(
        "MaxPool {}x{} x{} channels, kernel (3,3), stride (2,2)\n",
        64, 64, 64
    );

    let (out_std, run_std) = engine
        .maxpool_forward(&input, params, ForwardImpl::Standard)
        .expect("standard lowering");
    let (out_im2col, run_im2col) = engine
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .expect("im2col lowering");

    assert_eq!(
        out_std.data(),
        out_im2col.data(),
        "both implementations must agree bit-exactly"
    );
    println!(
        "output: {}x{} (bit-identical between implementations)",
        out_std.h, out_std.w
    );
    println!();
    println!(
        "{:<28} {:>12} {:>10} {:>12}",
        "implementation", "cycles", "vmax", "vector util"
    );
    for (name, run) in [
        ("Maxpool (standard)", &run_std),
        ("Maxpool with Im2col", &run_im2col),
    ] {
        println!(
            "{:<28} {:>12} {:>10} {:>11.1}%",
            name,
            run.cycles,
            run.total.issues_of("vmax"),
            run.total.vector_utilization() * 100.0
        );
    }
    println!();
    println!(
        "speedup: {:.2}x  (paper reports up to 3.2x for forward MaxPool)",
        run_std.cycles as f64 / run_im2col.cycles as f64
    );
}
