//! Vendored offline subset of the `criterion` crate.
//!
//! Supports the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `b.iter(..)`,
//! and the `criterion_group!`/`criterion_main!` macros (including the
//! `name/config/targets` form). Each benchmark is warmed up once, then
//! timed sample-by-sample over `sample_size` samples; the **median** wall
//! time per iteration is printed to stdout (robust against one slow
//! outlier sample, unlike a mean over a single aggregate interval). No
//! plotting or baseline storage. [`time_median`] exposes the same
//! warmup-then-median loop as a plain function for tools (the host
//! throughput gate) that need a `Duration` back instead of stdout.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter's rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times one
/// input per iteration regardless, so the variants only mirror the
/// upstream API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup call per sample.
    PerIteration,
}

/// Median of a set of per-sample durations. Empty input yields
/// [`Duration::ZERO`] rather than dividing by a zero sample count.
fn median_of(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// Run `f` once as warm-up, then time it `samples` more times and return
/// the median per-call wall time. `samples == 0` skips timing entirely
/// and returns [`Duration::ZERO`] (no zero division). This is the exact
/// loop [`Bencher::iter`] uses, exposed for tools that need the number
/// back — the host-throughput gate builds on it.
pub fn time_median<R, F: FnMut() -> R>(samples: usize, mut f: F) -> Duration {
    std_black_box(f()); // warm-up
    let mut timed: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std_black_box(f());
            start.elapsed()
        })
        .collect();
    median_of(&mut timed)
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median wall time per iteration over all samples.
    median: Duration,
}

impl Bencher {
    /// Time `f`, running it `samples` times after one warm-up call; each
    /// sample is timed individually and the median is reported.
    pub fn iter<R, F: FnMut() -> R>(&mut self, f: F) {
        self.median = time_median(self.samples, f);
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine is
    /// timed. One warm-up pair runs first, matching [`Bencher::iter`].
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std_black_box(routine(setup())); // warm-up
        let mut timed: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                std_black_box(routine(input));
                start.elapsed()
            })
            .collect();
        self.median = median_of(&mut timed);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Close the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        median: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {label:<56} {:>12.3?}/iter median ({samples} samples)",
        b.median
    );
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| n += 1));
        assert_eq!(n, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut hits = 0;
        g.sample_size(2)
            .bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
                b.iter(|| hits += x)
            });
        g.finish();
        assert_eq!(hits, 7 * 3);
    }

    #[test]
    fn time_median_counts_and_guards_zero_samples() {
        let mut n = 0u64;
        let d = time_median(5, || n += 1);
        assert_eq!(n, 6, "1 warm-up + 5 samples");
        assert!(d >= Duration::ZERO);

        // Zero samples: one warm-up call, no timing, no zero division.
        let mut m = 0u64;
        assert_eq!(time_median(0, || m += 1), Duration::ZERO);
        assert_eq!(m, 1, "warm-up still runs");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut v = [
            Duration::from_micros(10),
            Duration::from_micros(11),
            Duration::from_secs(100), // outlier
        ];
        assert_eq!(median_of(&mut v), Duration::from_micros(11));
        let mut even = [
            Duration::from_micros(10),
            Duration::from_micros(20),
            Duration::from_micros(30),
            Duration::from_secs(100),
        ];
        assert_eq!(median_of(&mut even), Duration::from_micros(25));
        assert_eq!(median_of(&mut []), Duration::ZERO);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
