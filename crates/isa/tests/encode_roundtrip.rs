//! Property test: arbitrary valid programs survive the binary encoding
//! round trip instruction-for-instruction.

use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, Col2Im, CubeMatmul, DataMove, Im2Col, Im2ColGeometry, Instr, Mask, Program,
    RepeatMode, VectorInstr, VectorOp,
};
use dv_tensor::{PoolParams, FRACTAL_ROWS};
use proptest::prelude::*;

fn arb_vector() -> impl Strategy<Value = Instr> {
    (
        0u8..=8,
        any::<u16>(),
        0usize..4096,
        0usize..4096,
        0usize..4096,
        0usize..=128,
        1u16..=255,
        prop_oneof![Just(0usize), Just(32), Just(256), Just(512)],
    )
        .prop_map(|(tag, imm, d, s0, s1, lanes, rep, stride)| {
            let op = match tag {
                0 => VectorOp::Max,
                1 => VectorOp::Min,
                2 => VectorOp::Add,
                3 => VectorOp::Sub,
                4 => VectorOp::Mul,
                5 => VectorOp::MulScalar(F16::from_bits(imm)),
                6 => VectorOp::Dup(F16::from_bits(imm)),
                7 => VectorOp::CmpEq,
                _ => VectorOp::Copy,
            };
            Instr::Vector(VectorInstr {
                op,
                dst: Addr::ub(d * 2),
                src0: Addr::ub(s0 * 2),
                src1: Addr::ub(s1 * 2),
                mask: Mask::first_n(lanes),
                repeat: rep,
                dst_stride: stride,
                src0_stride: stride,
                src1_stride: stride,
            })
        })
}

fn arb_scu() -> impl Strategy<Value = Instr> {
    (
        (1usize..=3, 1usize..=3, 1usize..=3, 1usize..=3),
        (6usize..=20, 6usize..=20, 1usize..=4),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
        0u8..=2, // 0 = col2im, 1 = im2col mode 1, 2 = im2col mode 0
    )
        .prop_filter_map(
            "valid geometry",
            |((kh, kw, sh, sw), (ih, iw, c1_len), (r0, r1, r2, r3), kind)| {
                let params = PoolParams::new((kh, kw), (sh, sw));
                let geom = Im2ColGeometry::new(ih, iw, c1_len, params).ok()?;
                // Random in-bounds position; repeat spans the whole legal
                // range, so multi-repeat Mode-0 chains (the batched-fold
                // instruction shape) round-trip too.
                let c1 = r0 as usize % c1_len;
                let k_off = ((r1 as usize / kw) % kh, r1 as usize % kw);
                let first_patch = r2 as usize % geom.patch_count();
                let mode1_avail = (geom.patch_count() - first_patch)
                    .div_ceil(FRACTAL_ROWS)
                    .min(255);
                match kind {
                    0 => Some(Instr::Col2Im(Col2Im {
                        geom,
                        src: Addr::ub(0),
                        dst: Addr::ub(8192),
                        first_patch,
                        k_off,
                        c1,
                        repeat: (1 + r3 as usize % mode1_avail) as u16,
                    })),
                    1 => Some(Instr::Im2Col(Im2Col {
                        geom,
                        src: Addr::l1(0),
                        dst: Addr::ub(0),
                        first_patch,
                        k_off,
                        c1,
                        repeat: (1 + r3 as usize % mode1_avail) as u16,
                        mode: RepeatMode::Mode1,
                    })),
                    _ => {
                        let start = c1 * kh * kw + k_off.0 * kw + k_off.1;
                        let avail = (c1_len * kh * kw - start).min(255);
                        Some(Instr::Im2Col(Im2Col {
                            geom,
                            src: Addr::l1(0),
                            dst: Addr::ub(0),
                            first_patch,
                            k_off,
                            c1,
                            repeat: (1 + r3 as usize % avail) as u16,
                            mode: RepeatMode::Mode0,
                        }))
                    }
                }
            },
        )
}

fn arb_other() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (1usize..=4096).prop_map(|b| Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), b))),
        (1usize..=3, 1usize..=3, 1usize..=3, any::<bool>()).prop_map(|(m, k, n, acc)| {
            Instr::Cube(CubeMatmul {
                a: Addr::new(BufferId::L0A, 0),
                b: Addr::new(BufferId::L0B, 0),
                c: Addr::new(BufferId::L0C, 0),
                m_fractals: m,
                k_fractals: k,
                n_fractals: n,
                accumulate: acc,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_programs_round_trip(
        instrs in prop::collection::vec(
            prop_oneof![arb_vector(), arb_scu(), arb_other()], 0..40)
    ) {
        let mut p = Program::new();
        for i in instrs {
            p.push(i).unwrap();
        }
        let bytes = p.to_bytes();
        let q = Program::from_bytes(&bytes).unwrap();
        prop_assert_eq!(p.instrs(), q.instrs());
    }

    /// Any random byte blob either decodes to a valid program or fails
    /// cleanly — never panics.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Program::from_bytes(&bytes);
    }
}
