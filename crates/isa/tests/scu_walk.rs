//! Property tests pinning the SCU repeat-walk semantics against an
//! independent scalar reference.
//!
//! The batched Mode-0 lowering in `dv-core` leans on two contracts:
//! the exact `[c1, (xk, yk)]` odometer order of Mode-0 repeats (the
//! batch fold repurposes `c1` as the batch index), and the ability to
//! split a long chain at the 255-repeat limit and resume mid-walk.
//! These tests pin both against hand-rolled references, independent of
//! the div/mod arithmetic inside `Im2Col::repeat_positions`.

use dv_isa::{Addr, Im2Col, Im2ColGeometry, Instr, Program, RepeatMode};
use dv_tensor::{PoolParams, FRACTAL_ROWS};
use proptest::prelude::*;

/// Scalar reference for the Mode-0 walk: a literal `[c1][xk][yk]`
/// odometer, incremented one digit at a time.
fn mode0_odometer(
    geom: &Im2ColGeometry,
    c1: usize,
    k_off: (usize, usize),
    first_patch: usize,
    repeat: usize,
) -> Vec<(usize, usize, usize, usize)> {
    let (kh, kw) = (geom.params.kh, geom.params.kw);
    let (mut c1, mut xk, mut yk) = (c1, k_off.0, k_off.1);
    let mut out = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        out.push((c1, xk, yk, first_patch));
        yk += 1;
        if yk == kw {
            yk = 0;
            xk += 1;
        }
        if xk == kh {
            xk = 0;
            c1 += 1;
        }
    }
    out
}

/// A random valid geometry plus a random in-bounds start position.
fn arb_geom_and_start() -> impl Strategy<
    Value = (
        Im2ColGeometry,
        usize,          // c1
        (usize, usize), // k_off
        usize,          // first_patch
    ),
> {
    (
        (1usize..=4, 1usize..=4, 1usize..=3, 1usize..=3),
        (8usize..=24, 8usize..=24, 1usize..=4),
        (any::<u16>(), any::<u16>(), any::<u16>()),
    )
        .prop_filter_map(
            "valid geometry",
            |((kh, kw, sh, sw), (ih, iw, c1_len), (r0, r1, r2))| {
                let params = PoolParams::new((kh, kw), (sh, sw));
                let geom = Im2ColGeometry::new(ih, iw, c1_len, params).ok()?;
                let c1 = r0 as usize % c1_len;
                let k_off = ((r1 as usize / kw) % kh, r1 as usize % kw);
                let first_patch = r2 as usize % geom.patch_count();
                Some((geom, c1, k_off, first_patch))
            },
        )
}

fn im2col(
    geom: Im2ColGeometry,
    c1: usize,
    k_off: (usize, usize),
    first_patch: usize,
    repeat: u16,
    mode: RepeatMode,
) -> Im2Col {
    Im2Col {
        geom,
        src: Addr::l1(0),
        dst: Addr::ub(0),
        first_patch,
        k_off,
        c1,
        repeat,
        mode,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mode-0 repeats walk the `[c1, (xk, yk)]` odometer from the
    /// instruction's start position, holding the patch position fixed.
    #[test]
    fn mode0_walk_matches_scalar_odometer(
        (geom, c1, k_off, first_patch) in arb_geom_and_start(),
        rep_seed in any::<u16>(),
    ) {
        let (kh, kw) = (geom.params.kh, geom.params.kw);
        let avail = geom.c1_len * kh * kw - (c1 * kh * kw + k_off.0 * kw + k_off.1);
        let repeat = 1 + rep_seed as usize % avail.min(255);
        let i = im2col(geom, c1, k_off, first_patch, repeat as u16, RepeatMode::Mode0);
        prop_assert!(i.validate().is_ok(), "{:?}", i.validate());

        let walk = i.repeat_positions();
        prop_assert_eq!(&walk, &mode0_odometer(&geom, c1, k_off, first_patch, repeat));
        // Every visited position is itself a valid single-issue position.
        for &(c1, xk, yk, patch) in &walk {
            prop_assert!(c1 < geom.c1_len && xk < kh && yk < kw);
            prop_assert!(patch < geom.patch_count());
        }
    }

    /// Mode-1 repeats advance the patch position by one fractal (16
    /// patches) per issue, holding `(c1, xk, yk)` fixed.
    #[test]
    fn mode1_walk_matches_scalar_reference(
        (geom, c1, k_off, first_patch) in arb_geom_and_start(),
        rep_seed in any::<u16>(),
    ) {
        let max_fr = (geom.patch_count() - first_patch).div_ceil(FRACTAL_ROWS);
        let repeat = 1 + rep_seed as usize % max_fr.min(255);
        let i = im2col(geom, c1, k_off, first_patch, repeat as u16, RepeatMode::Mode1);
        prop_assert!(i.validate().is_ok(), "{:?}", i.validate());

        let want: Vec<_> = (0..repeat)
            .map(|f| (c1, k_off.0, k_off.1, first_patch + f * FRACTAL_ROWS))
            .collect();
        prop_assert_eq!(i.repeat_positions(), want);
    }

    /// `validate` accepts exactly the in-bounds repeat counts: the last
    /// legal repeat passes, one more fails — in both modes.
    #[test]
    fn validate_accepts_exactly_the_in_bounds_repeats(
        (geom, c1, k_off, first_patch) in arb_geom_and_start(),
    ) {
        let (kh, kw) = (geom.params.kh, geom.params.kw);
        let avail0 = geom.c1_len * kh * kw - (c1 * kh * kw + k_off.0 * kw + k_off.1);
        if avail0 < 255 {
            let ok = im2col(geom, c1, k_off, first_patch, avail0 as u16, RepeatMode::Mode0);
            prop_assert!(ok.validate().is_ok());
            let over = im2col(geom, c1, k_off, first_patch, avail0 as u16 + 1, RepeatMode::Mode0);
            prop_assert!(over.validate().is_err());
        }
        let avail1 = (geom.patch_count() - first_patch).div_ceil(FRACTAL_ROWS);
        if avail1 < 255 {
            let ok = im2col(geom, c1, k_off, first_patch, avail1 as u16, RepeatMode::Mode1);
            prop_assert!(ok.validate().is_ok());
            let over = im2col(geom, c1, k_off, first_patch, avail1 as u16 + 1, RepeatMode::Mode1);
            prop_assert!(over.validate().is_err());
        }
    }

    /// A full Mode-0 chain from `(c1, xk, yk) = (0, 0, 0)` visits every
    /// `(c1, xk, yk)` combination exactly once, in lexicographic order.
    #[test]
    fn full_mode0_chain_is_a_lexicographic_bijection(
        (geom, _, _, first_patch) in arb_geom_and_start(),
    ) {
        let (kh, kw) = (geom.params.kh, geom.params.kw);
        let total = geom.c1_len * kh * kw;
        prop_assume!(total <= 255);
        let i = im2col(geom, 0, (0, 0), first_patch, total as u16, RepeatMode::Mode0);
        prop_assert!(i.validate().is_ok());

        let walk = i.repeat_positions();
        let mut expect = Vec::new();
        for c1 in 0..geom.c1_len {
            for xk in 0..kh {
                for yk in 0..kw {
                    expect.push((c1, xk, yk, first_patch));
                }
            }
        }
        prop_assert_eq!(walk, expect);
    }

    /// Splitting a Mode-0 chain at an arbitrary point and resuming a
    /// second instruction at the decomposed flat position reproduces the
    /// unsplit walk — the contract the batched emitter's 255-repeat
    /// chunking relies on.
    #[test]
    fn mode0_chain_split_resumes_seamlessly(
        (geom, _, _, first_patch) in arb_geom_and_start(),
        cut_seed in any::<u16>(),
    ) {
        let (kh, kw) = (geom.params.kh, geom.params.kw);
        let total = geom.c1_len * kh * kw;
        prop_assume!((2..=255).contains(&total));
        let whole = im2col(geom, 0, (0, 0), first_patch, total as u16, RepeatMode::Mode0);

        let cut = 1 + cut_seed as usize % (total - 1);
        let head = im2col(geom, 0, (0, 0), first_patch, cut as u16, RepeatMode::Mode0);
        // Resume exactly as the batched lowering does: decompose the flat
        // index of the next unvisited position.
        let (c1, rem) = (cut / (kh * kw), cut % (kh * kw));
        let tail = im2col(
            geom,
            c1,
            (rem / kw, rem % kw),
            first_patch,
            (total - cut) as u16,
            RepeatMode::Mode0,
        );
        prop_assert!(head.validate().is_ok() && tail.validate().is_ok());

        let mut stitched = head.repeat_positions();
        stitched.extend(tail.repeat_positions());
        prop_assert_eq!(stitched, whole.repeat_positions());
    }
}

/// Mode-0 forms with `repeat > 1` survive the binary encoding round trip
/// and disassemble with their mode and repeat visible.
#[test]
fn mode0_repeat_chain_encodes_and_disassembles() {
    // A batched-fold shape: c1_len = 4 "planes" (batch), K3 kernel,
    // one chain = 36 fractals from the very first position.
    let geom = Im2ColGeometry::new(35, 35, 4, PoolParams::K3S2).unwrap();
    let i = im2col(geom, 0, (0, 0), 16, 36, RepeatMode::Mode0);
    assert!(i.validate().is_ok());

    let mut p = Program::new();
    p.push(Instr::Im2Col(i)).unwrap();
    let q = Program::from_bytes(&p.to_bytes()).unwrap();
    assert_eq!(p.instrs(), q.instrs());

    let text = format!("{}", Instr::Im2Col(i));
    assert!(text.contains("mode=0"), "disasm missing mode: {text}");
    assert!(text.contains("rep=36"), "disasm missing repeat: {text}");
    assert!(text.contains("patch=16"), "disasm missing patch: {text}");
}
