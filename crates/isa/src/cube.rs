//! The Cube Unit's fractal matrix multiplication.
//!
//! "The Cube Unit receives data-fractals from its input buffers. A
//! data-fractal is a small matrix of a constant size of 4096 bits. The
//! Cube Unit can multiply two data-fractals per clock cycle" (paper,
//! Section III-A). A fractal viewed as a matrix is 16 x 16 f16.
//!
//! [`CubeMatmul`] multiplies an `(m x k)`-fractal tile in L0A by a
//! `(k x n)`-fractal tile in L0B into an `(m x n)`-fractal tile in L0C,
//! accumulating in f32 like real systolic arrays. Dimensions are counted
//! in fractals (units of 16).

use crate::addr::{Addr, BufferId};
use crate::program::IsaError;

/// Edge length (rows or columns) of one fractal viewed as a matrix.
pub const FRACTAL_EDGE: usize = 16;

/// A Cube-Unit matrix multiply over fractal tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeMatmul {
    /// Left operand base (L0A), row-major fractals of an `(m*16, k*16)`
    /// matrix.
    pub a: Addr,
    /// Right operand base (L0B), row-major fractals of a `(k*16, n*16)`
    /// matrix.
    pub b: Addr,
    /// Output base (L0C), row-major fractals of an `(m*16, n*16)` matrix.
    pub c: Addr,
    /// Row fractals of A and C.
    pub m_fractals: usize,
    /// Inner-dimension fractals.
    pub k_fractals: usize,
    /// Column fractals of B and C.
    pub n_fractals: usize,
    /// When true, add into the existing contents of C instead of
    /// overwriting — used to accumulate over K tiles larger than L0A/L0B.
    pub accumulate: bool,
}

impl CubeMatmul {
    /// Number of fractal-pair multiplications the instruction performs
    /// (one per cycle in the cost model).
    pub fn fractal_ops(&self) -> usize {
        self.m_fractals * self.k_fractals * self.n_fractals
    }

    /// Validate datapath legality (A from L0A, B from L0B, C into L0C)
    /// and non-degenerate dimensions.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.m_fractals == 0 || self.k_fractals == 0 || self.n_fractals == 0 {
            return Err(IsaError::BadPosition("cube dims must be nonzero".into()));
        }
        for (addr, want, role) in [
            (self.a, BufferId::L0A, "a"),
            (self.b, BufferId::L0B, "b"),
            (self.c, BufferId::L0C, "c"),
        ] {
            if addr.buffer != want {
                return Err(IsaError::IllegalDatapath {
                    instr: "cube",
                    buffer: addr.buffer,
                    role,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> CubeMatmul {
        CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: 2,
            k_fractals: 3,
            n_fractals: 4,
            accumulate: false,
        }
    }

    #[test]
    fn fractal_ops_product() {
        assert_eq!(mm().fractal_ops(), 24);
    }

    #[test]
    fn validates_buffer_roles() {
        assert!(mm().validate().is_ok());
        let mut bad = mm();
        bad.a = Addr::ub(0);
        assert!(bad.validate().is_err());
        let mut bad = mm();
        bad.c = Addr::new(BufferId::L0B, 0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rejects_zero_dims() {
        let mut bad = mm();
        bad.k_fractals = 0;
        assert!(bad.validate().is_err());
    }
}
