#![deny(missing_docs)]
//! The DaVinci AI-Core instruction-set model (paper, Section III).
//!
//! This crate defines the instructions the simulator executes and the
//! lowering layer emits. It captures the architectural features the
//! paper's optimization exploits:
//!
//! * **Vector instructions** with a 128-bit lane mask (one bit per f16
//!   lane; 128 lanes = 256 bytes per iteration) and a hardware *repeat*
//!   parameter that reissues the instruction over consecutive 256-byte
//!   blocks without scalar-loop overhead (Section III-A, V).
//! * **`Im2Col`** — a load instruction executed by the Storage Conversion
//!   Unit while data moves L1 → {L0A, L0B, UB}; one issue produces one
//!   data-fractal (16 patches x C0 elements); repeat modes 0 and 1 iterate
//!   the positional parameters (Section III-C, Fig. 5).
//! * **`Col2Im`** — a vector-class instruction (UB → UB) performing the
//!   fractal-at-a-time scatter-*add* of the column layout back to
//!   NC1HWC0; repeat mode 1 only (Section III-D, Fig. 6).
//! * **MTE moves** between global memory and scratchpads, and the **Cube
//!   Unit** fractal matrix multiply (two fractals per cycle).
//!
//! Datapath legality (Fig. 4) is encoded in each instruction's
//! `validate()` and enforced again by the simulator at execution time.

pub mod addr;
pub mod cube;
pub mod disasm;
pub mod encode;
pub mod mask;
pub mod mte;
pub mod program;
pub mod scu;
pub mod unit;
pub mod vector;

pub use addr::{Addr, BufferId};
pub use cube::CubeMatmul;
pub use disasm::StaticStats;
pub use encode::DecodeError;
pub use mask::Mask;
pub use mte::DataMove;
pub use program::{Instr, IsaError, Program};
pub use scu::{Col2Im, Im2Col, Im2ColGeometry, RepeatMode};
pub use unit::Unit;
pub use vector::{VectorInstr, VectorOp};

/// Number of f16 lanes one vector iteration processes (256 bytes).
pub const VECTOR_LANES: usize = 128;

/// Bytes one vector repeat iteration covers.
pub const VECTOR_BYTES: usize = VECTOR_LANES * 2;

/// Maximum value of the hardware repeat parameter.
pub const MAX_REPEAT: u16 = 255;
