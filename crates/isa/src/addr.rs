//! Buffer identifiers and intra-buffer addresses.
//!
//! The AI Core's private buffers are scratch-pad memories: "each buffer
//! has its own address space, which is separated from the address space of
//! the memory" (paper, Section III-A). An [`Addr`] is therefore a
//! `(buffer, byte offset)` pair, not a flat pointer.

use core::fmt;

/// One of the AI Core's memories (Fig. 4). DDR, HBM and the shared L2 are
/// all "global memory" from the core's perspective and collapse into
/// [`BufferId::Gm`] exactly as the paper draws them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BufferId {
    /// Global memory (DDR / HBM / L2 — shared among AI Cores).
    Gm,
    /// L1 buffer — staging for SCU transformations.
    L1,
    /// L0A — left-operand input buffer of the Cube Unit.
    L0A,
    /// L0B — right-operand input buffer of the Cube Unit.
    L0B,
    /// L0C — output buffer of the Cube Unit.
    L0C,
    /// Unified Buffer — operand memory of the Vector and Scalar units.
    Ub,
}

impl BufferId {
    /// All buffer identifiers, for iteration in tests and the simulator.
    pub const ALL: [BufferId; 6] = [
        BufferId::Gm,
        BufferId::L1,
        BufferId::L0A,
        BufferId::L0B,
        BufferId::L0C,
        BufferId::Ub,
    ];

    /// True for the scratchpads private to one AI Core.
    pub const fn is_private(self) -> bool {
        !matches!(self, BufferId::Gm)
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BufferId::Gm => "GM",
            BufferId::L1 => "L1",
            BufferId::L0A => "L0A",
            BufferId::L0B => "L0B",
            BufferId::L0C => "L0C",
            BufferId::Ub => "UB",
        };
        f.write_str(name)
    }
}

/// A byte address inside one buffer's private address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Which memory.
    pub buffer: BufferId,
    /// Byte offset within that memory.
    pub offset: usize,
}

impl Addr {
    /// Construct an address.
    pub const fn new(buffer: BufferId, offset: usize) -> Addr {
        Addr { buffer, offset }
    }

    /// Address in global memory.
    pub const fn gm(offset: usize) -> Addr {
        Addr::new(BufferId::Gm, offset)
    }

    /// Address in the L1 buffer.
    pub const fn l1(offset: usize) -> Addr {
        Addr::new(BufferId::L1, offset)
    }

    /// Address in the Unified Buffer.
    pub const fn ub(offset: usize) -> Addr {
        Addr::new(BufferId::Ub, offset)
    }

    /// This address displaced by `bytes`.
    pub const fn add(self, bytes: usize) -> Addr {
        Addr {
            buffer: self.buffer,
            offset: self.offset + bytes,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+0x{:x}", self.buffer, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_classification() {
        assert!(!BufferId::Gm.is_private());
        for b in [
            BufferId::L1,
            BufferId::L0A,
            BufferId::L0B,
            BufferId::L0C,
            BufferId::Ub,
        ] {
            assert!(b.is_private(), "{b} should be private");
        }
    }

    #[test]
    fn addr_displacement_stays_in_buffer() {
        let a = Addr::ub(0x100);
        let b = a.add(0x40);
        assert_eq!(b.buffer, BufferId::Ub);
        assert_eq!(b.offset, 0x140);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::l1(16).to_string(), "L1+0x10");
        assert_eq!(Addr::gm(0).to_string(), "GM+0x0");
    }
}
