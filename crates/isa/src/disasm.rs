//! Human-readable disassembly of programs — the equivalent of reading
//! the "lowered CCE C code" the paper uses to explain each
//! implementation (Section V).

use crate::addr::Addr;
use crate::program::{Instr, Program};
use crate::scu::RepeatMode;
use crate::vector::VectorOp;
use core::fmt;
use std::collections::BTreeMap;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Vector(v) => {
                write!(
                    f,
                    "{:<10} {} <- {}",
                    self.mnemonic(),
                    v.dst,
                    match v.op {
                        VectorOp::Dup(x) => format!("#{x}"),
                        VectorOp::MulScalar(x) => format!("{} * #{x}", v.src0),
                        op if op.has_src1() => format!("{}, {}", v.src0, v.src1),
                        _ => format!("{}", v.src0),
                    }
                )?;
                write!(f, "  mask={}/128 rep={}", v.mask.count(), v.repeat)?;
                if v.dst_stride != 256 || v.src0_stride != 256 || v.src1_stride != 256 {
                    write!(
                        f,
                        " strides=[{},{},{}]",
                        v.dst_stride, v.src0_stride, v.src1_stride
                    )?;
                }
                Ok(())
            }
            Instr::Im2Col(i) => write!(
                f,
                "im2col     {} <- {}  k=({},{}) c1={} patch={} rep={} mode={}",
                i.dst,
                i.src,
                i.k_off.0,
                i.k_off.1,
                i.c1,
                i.first_patch,
                i.repeat,
                match i.mode {
                    RepeatMode::Mode0 => 0,
                    RepeatMode::Mode1 => 1,
                }
            ),
            Instr::Col2Im(c) => write!(
                f,
                "col2im     {} <-+ {}  k=({},{}) c1={} patch={} rep={}",
                c.dst, c.src, c.k_off.0, c.k_off.1, c.c1, c.first_patch, c.repeat
            ),
            Instr::Move(m) => write!(f, "mte_move   {} <- {}  {}B", m.dst, m.src, m.bytes),
            Instr::Cube(c) => write!(
                f,
                "cube_mmad  {} <- {} x {}  [{}x{}x{}]fr{}",
                c.c,
                c.a,
                c.b,
                c.m_fractals,
                c.k_fractals,
                c.n_fractals,
                if c.accumulate { " +acc" } else { "" }
            ),
        }
    }
}

/// Static (pre-execution) statistics of a program: what the paper's
/// analysis counts without running anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// Instruction issues per mnemonic.
    pub issues: BTreeMap<&'static str, u64>,
    /// Sum of vector repeat counts (total 256-byte iterations).
    pub vector_repeats: u64,
    /// Enabled-lane slots over all vector repeats.
    pub vector_useful_lanes: u64,
    /// Total lane slots (128 x repeats).
    pub vector_total_lanes: u64,
    /// Fractals produced by Im2Col issues.
    pub im2col_fractals: u64,
    /// Fractals merged by Col2Im issues.
    pub col2im_fractals: u64,
    /// Bytes moved by MTE instructions.
    pub move_bytes: u64,
    /// Fractal-pair multiplications in Cube issues.
    pub cube_fractal_ops: u64,
}

impl StaticStats {
    /// Static vector-lane utilization in [0, 1].
    pub fn vector_utilization(&self) -> f64 {
        if self.vector_total_lanes == 0 {
            0.0
        } else {
            self.vector_useful_lanes as f64 / self.vector_total_lanes as f64
        }
    }

    /// Total instruction issues.
    pub fn total_issues(&self) -> u64 {
        self.issues.values().sum()
    }
}

impl Program {
    /// Compute static statistics without executing.
    pub fn static_stats(&self) -> StaticStats {
        let mut s = StaticStats::default();
        for i in self.instrs() {
            *s.issues.entry(i.mnemonic()).or_default() += 1;
            match i {
                Instr::Vector(v) => {
                    s.vector_repeats += v.repeat as u64;
                    s.vector_useful_lanes += v.useful_lanes();
                    s.vector_total_lanes += 128 * v.repeat as u64;
                }
                Instr::Im2Col(x) => s.im2col_fractals += x.repeat as u64,
                Instr::Col2Im(x) => s.col2im_fractals += x.repeat as u64,
                Instr::Move(m) => s.move_bytes += m.bytes as u64,
                Instr::Cube(c) => s.cube_fractal_ops += c.fractal_ops() as u64,
            }
        }
        s
    }

    /// Disassemble into one line per instruction.
    pub fn disassemble(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for (pc, i) in self.instrs().iter().enumerate() {
            let _ = writeln!(out, "{pc:>5}: {i}");
        }
        out
    }
}

/// Shorthand used by `Display` impls above.
impl Addr {
    /// The byte offset formatted as the disassembler shows it.
    pub fn disasm(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::Mask;
    use crate::vector::VectorInstr;
    use dv_fp16::F16;

    fn sample_program() -> Program {
        let mut p = Program::new();
        p.push(Instr::Move(crate::mte::DataMove::new(
            Addr::gm(0),
            Addr::ub(0),
            512,
        )))
        .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(F16::NEG_INFINITY),
            Addr::ub(1024),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            4,
        )))
        .unwrap();
        p.push(Instr::Vector(VectorInstr {
            op: VectorOp::Max,
            dst: Addr::ub(1024),
            src0: Addr::ub(1024),
            src1: Addr::ub(0),
            mask: Mask::C0_ONLY,
            repeat: 3,
            dst_stride: 0,
            src0_stride: 0,
            src1_stride: 32,
        }))
        .unwrap();
        p
    }

    #[test]
    fn disassembly_mentions_every_instruction() {
        let p = sample_program();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), 3);
        assert!(d.contains("mte_move"));
        assert!(d.contains("vector_dup"));
        assert!(d.contains("vmax"));
        assert!(d.contains("mask=16/128"));
        assert!(d.contains("strides=[0,0,32]"));
    }

    #[test]
    fn static_stats_count_structures() {
        let p = sample_program();
        let s = p.static_stats();
        assert_eq!(s.total_issues(), 3);
        assert_eq!(s.issues["vmax"], 1);
        assert_eq!(s.move_bytes, 512);
        assert_eq!(s.vector_repeats, 7);
        assert_eq!(s.vector_total_lanes, 7 * 128);
        assert_eq!(s.vector_useful_lanes, 4 * 128 + 3 * 16);
        let util = s.vector_utilization();
        assert!((util - (560.0 / 896.0)).abs() < 1e-12);
    }

    #[test]
    fn display_formats_scu_instructions() {
        use crate::scu::{Im2Col, Im2ColGeometry};
        use dv_tensor::PoolParams;
        let geom = Im2ColGeometry::new(8, 8, 1, PoolParams::new((2, 2), (2, 2))).unwrap();
        let i = Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (1, 0),
            c1: 0,
            repeat: 1,
            mode: RepeatMode::Mode1,
        });
        let s = i.to_string();
        assert!(s.contains("im2col"));
        assert!(s.contains("k=(1,0)"));
        assert!(s.contains("mode=1"));
    }
}
