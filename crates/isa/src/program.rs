//! Programs: validated sequences of AI-Core instructions.
//!
//! A [`Program`] is what the lowering layer (`dv-akg`) emits for one AI
//! Core and what the simulator executes — the moral equivalent of the
//! paper's "lowered CCE C code".

use crate::addr::BufferId;
use crate::cube::CubeMatmul;
use crate::mte::DataMove;
use crate::scu::{Col2Im, Im2Col};
use crate::vector::VectorInstr;
use core::fmt;

/// Errors raised by instruction validation.
#[derive(Clone, Debug, PartialEq)]
pub enum IsaError {
    /// Repeat parameter out of range (must be 1..=255).
    BadRepeat(u16),
    /// An operand lives in a buffer the instruction cannot reach
    /// (violates the datapaths of Fig. 4).
    IllegalDatapath {
        /// instruction kind
        instr: &'static str,
        /// the offending buffer
        buffer: BufferId,
        /// which operand
        role: &'static str,
    },
    /// A positional parameter (kernel offset, c1 index, patch index,
    /// dimension) is out of range.
    BadPosition(String),
    /// A zero-byte data move.
    EmptyMove,
    /// Underlying geometry error.
    Shape(dv_tensor::ShapeError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadRepeat(r) => write!(f, "repeat {r} out of range 1..=255"),
            IsaError::IllegalDatapath {
                instr,
                buffer,
                role,
            } => {
                write!(f, "{instr}: operand {role} cannot use buffer {buffer}")
            }
            IsaError::BadPosition(msg) => write!(f, "bad positional parameter: {msg}"),
            IsaError::EmptyMove => write!(f, "zero-byte data move"),
            IsaError::Shape(e) => write!(f, "shape error: {e}"),
        }
    }
}

impl std::error::Error for IsaError {}

impl From<dv_tensor::ShapeError> for IsaError {
    fn from(e: dv_tensor::ShapeError) -> Self {
        IsaError::Shape(e)
    }
}

/// One AI-Core instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Vector Unit operation.
    Vector(VectorInstr),
    /// SCU im2col load.
    Im2Col(Im2Col),
    /// SCU col2im scatter-add.
    Col2Im(Col2Im),
    /// MTE flat copy.
    Move(DataMove),
    /// Cube Unit fractal matmul.
    Cube(CubeMatmul),
}

impl Instr {
    /// Validate the instruction's parameters and datapaths.
    pub fn validate(&self) -> Result<(), IsaError> {
        match self {
            Instr::Vector(i) => i.validate(),
            Instr::Im2Col(i) => i.validate(),
            Instr::Col2Im(i) => i.validate(),
            Instr::Move(i) => i.validate(),
            Instr::Cube(i) => i.validate(),
        }
    }

    /// Short mnemonic for traces and statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Vector(v) => match v.op {
                crate::vector::VectorOp::Max => "vmax",
                crate::vector::VectorOp::Min => "vmin",
                crate::vector::VectorOp::Add => "vadd",
                crate::vector::VectorOp::Sub => "vsub",
                crate::vector::VectorOp::Mul => "vmul",
                crate::vector::VectorOp::MulScalar(_) => "vmuls",
                crate::vector::VectorOp::Dup(_) => "vector_dup",
                crate::vector::VectorOp::CmpEq => "vcmp_eq",
                crate::vector::VectorOp::Copy => "vcopy",
                crate::vector::VectorOp::Relu => "vrelu",
            },
            Instr::Im2Col(_) => "im2col",
            Instr::Col2Im(_) => "col2im",
            Instr::Move(_) => "mte_move",
            Instr::Cube(_) => "cube_mmad",
        }
    }
}

/// A validated instruction sequence for one AI Core.
#[derive(Clone, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program { instrs: Vec::new() }
    }

    /// Append an instruction, validating it immediately so lowering bugs
    /// surface at emission rather than execution.
    pub fn push(&mut self, instr: Instr) -> Result<(), IsaError> {
        instr.validate()?;
        self.instrs.push(instr);
        Ok(())
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions (each hardware repeat counts as one issue —
    /// that is precisely the point of the repeat parameter).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Count instructions by mnemonic — the quantity the paper reasons
    /// about ("The vmax instruction is issued Oh*Ow*Kh times").
    pub fn issue_count(&self, mnemonic: &str) -> usize {
        self.instrs
            .iter()
            .filter(|i| i.mnemonic() == mnemonic)
            .count()
    }

    /// Concatenate another program after this one.
    pub fn extend(&mut self, other: Program) {
        self.instrs.extend(other.instrs);
    }
}

impl IntoIterator for Program {
    type Item = Instr;
    type IntoIter = std::vec::IntoIter<Instr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::mask::Mask;
    use crate::vector::{VectorInstr, VectorOp};

    fn vmax() -> Instr {
        Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Max,
            Addr::ub(0),
            Addr::ub(256),
            Addr::ub(512),
            Mask::FULL,
            1,
        ))
    }

    #[test]
    fn push_validates() {
        let mut p = Program::new();
        assert!(p.push(vmax()).is_ok());
        assert_eq!(p.len(), 1);

        let bad = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Max,
            Addr::gm(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        ));
        assert!(p.push(bad).is_err());
        assert_eq!(p.len(), 1, "failed push must not append");
    }

    #[test]
    fn issue_count_by_mnemonic() {
        let mut p = Program::new();
        p.push(vmax()).unwrap();
        p.push(vmax()).unwrap();
        assert_eq!(p.issue_count("vmax"), 2);
        assert_eq!(p.issue_count("vadd"), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Program::new();
        a.push(vmax()).unwrap();
        let mut b = Program::new();
        b.push(vmax()).unwrap();
        a.extend(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(vmax().mnemonic(), "vmax");
        let dup = Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Dup(dv_fp16::F16::ZERO),
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        ));
        assert_eq!(dup.mnemonic(), "vector_dup");
    }
}
