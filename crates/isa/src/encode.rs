//! Compact binary encoding of programs.
//!
//! Lowered programs are expensive to rebuild for large networks, so — as
//! real kernel stacks cache compiled kernels — programs can be serialised
//! to a compact little-endian binary format and reloaded. Decoding
//! re-validates every instruction, so a corrupted or hand-forged blob can
//! never put an illegal instruction into a [`Program`].
//!
//! Format: magic `DVP1`, instruction count (u32), then per instruction a
//! 1-byte opcode followed by fixed-width fields. All integers
//! little-endian; buffer ids and vector ops are 1-byte enums.

use crate::addr::{Addr, BufferId};
use crate::cube::CubeMatmul;
use crate::mask::Mask;
use crate::mte::DataMove;
use crate::program::{Instr, IsaError, Program};
use crate::scu::{Col2Im, Im2Col, Im2ColGeometry, RepeatMode};
use crate::vector::{VectorInstr, VectorOp};
use dv_fp16::F16;
use dv_tensor::{Padding, PoolParams};

/// Errors from decoding a binary program.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// The blob ended mid-instruction.
    Truncated,
    /// An unknown opcode or enum tag.
    BadTag(u8),
    /// The decoded instruction failed validation.
    Invalid(IsaError),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (expected DVP1)"),
            DecodeError::Truncated => write!(f, "truncated program blob"),
            DecodeError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            DecodeError::Invalid(e) => write!(f, "invalid instruction: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"DVP1";

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn usize_(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("field exceeds u32"));
    }
    fn buffer(&mut self, b: BufferId) {
        self.u8(match b {
            BufferId::Gm => 0,
            BufferId::L1 => 1,
            BufferId::L0A => 2,
            BufferId::L0B => 3,
            BufferId::L0C => 4,
            BufferId::Ub => 5,
        });
    }
    fn addr(&mut self, a: Addr) {
        self.buffer(a.buffer);
        self.usize_(a.offset);
    }
    fn geom(&mut self, g: &Im2ColGeometry) {
        self.usize_(g.ih);
        self.usize_(g.iw);
        self.usize_(g.c1_len);
        self.u8(g.params.kh as u8);
        self.u8(g.params.kw as u8);
        self.u8(g.params.sh as u8);
        self.u8(g.params.sw as u8);
        self.u8(g.params.padding.top as u8);
        self.u8(g.params.padding.bottom as u8);
        self.u8(g.params.padding.left as u8);
        self.u8(g.params.padding.right as u8);
        self.u8(g.params.dh as u8);
        self.u8(g.params.dw as u8);
        self.u8(g.params.ceil_mode as u8);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn usize_(&mut self) -> Result<usize, DecodeError> {
        Ok(self.u32()? as usize)
    }
    fn buffer(&mut self) -> Result<BufferId, DecodeError> {
        match self.u8()? {
            0 => Ok(BufferId::Gm),
            1 => Ok(BufferId::L1),
            2 => Ok(BufferId::L0A),
            3 => Ok(BufferId::L0B),
            4 => Ok(BufferId::L0C),
            5 => Ok(BufferId::Ub),
            t => Err(DecodeError::BadTag(t)),
        }
    }
    fn addr(&mut self) -> Result<Addr, DecodeError> {
        let b = self.buffer()?;
        let o = self.usize_()?;
        Ok(Addr::new(b, o))
    }
    fn geom(&mut self) -> Result<Im2ColGeometry, DecodeError> {
        let ih = self.usize_()?;
        let iw = self.usize_()?;
        let c1_len = self.usize_()?;
        let kh = self.u8()? as usize;
        let kw = self.u8()? as usize;
        let sh = self.u8()? as usize;
        let sw = self.u8()? as usize;
        let padding = Padding {
            top: self.u8()? as usize,
            bottom: self.u8()? as usize,
            left: self.u8()? as usize,
            right: self.u8()? as usize,
        };
        let dh = self.u8()? as usize;
        let dw = self.u8()? as usize;
        let ceil_mode = match self.u8()? {
            0 => false,
            1 => true,
            t => return Err(DecodeError::BadTag(t)),
        };
        let params = PoolParams::with_padding((kh, kw), (sh, sw), padding)
            .with_dilation((dh, dw))
            .with_ceil_mode(ceil_mode);
        Im2ColGeometry::new(ih, iw, c1_len, params).map_err(DecodeError::Invalid)
    }
}

fn vec_op_tag(op: VectorOp) -> (u8, u16) {
    match op {
        VectorOp::Max => (0, 0),
        VectorOp::Min => (1, 0),
        VectorOp::Add => (2, 0),
        VectorOp::Sub => (3, 0),
        VectorOp::Mul => (4, 0),
        VectorOp::MulScalar(s) => (5, s.to_bits()),
        VectorOp::Dup(s) => (6, s.to_bits()),
        VectorOp::CmpEq => (7, 0),
        VectorOp::Copy => (8, 0),
        VectorOp::Relu => (9, 0),
    }
}

fn vec_op_from(tag: u8, imm: u16) -> Result<VectorOp, DecodeError> {
    Ok(match tag {
        0 => VectorOp::Max,
        1 => VectorOp::Min,
        2 => VectorOp::Add,
        3 => VectorOp::Sub,
        4 => VectorOp::Mul,
        5 => VectorOp::MulScalar(F16::from_bits(imm)),
        6 => VectorOp::Dup(F16::from_bits(imm)),
        7 => VectorOp::CmpEq,
        8 => VectorOp::Copy,
        9 => VectorOp::Relu,
        t => return Err(DecodeError::BadTag(t)),
    })
}

impl Program {
    /// Serialise to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { out: Vec::new() };
        w.out.extend_from_slice(MAGIC);
        w.u32(self.len() as u32);
        for i in self.instrs() {
            match i {
                Instr::Vector(v) => {
                    w.u8(0x01);
                    let (tag, imm) = vec_op_tag(v.op);
                    w.u8(tag);
                    w.u16(imm);
                    w.addr(v.dst);
                    w.addr(v.src0);
                    w.addr(v.src1);
                    let (lo, hi) = mask_words(&v.mask);
                    w.out.extend_from_slice(&lo.to_le_bytes());
                    w.out.extend_from_slice(&hi.to_le_bytes());
                    w.u16(v.repeat);
                    w.usize_(v.dst_stride);
                    w.usize_(v.src0_stride);
                    w.usize_(v.src1_stride);
                }
                Instr::Im2Col(x) => {
                    w.u8(0x02);
                    w.geom(&x.geom);
                    w.addr(x.src);
                    w.addr(x.dst);
                    w.usize_(x.first_patch);
                    w.u8(x.k_off.0 as u8);
                    w.u8(x.k_off.1 as u8);
                    w.usize_(x.c1);
                    w.u16(x.repeat);
                    w.u8(match x.mode {
                        RepeatMode::Mode0 => 0,
                        RepeatMode::Mode1 => 1,
                    });
                }
                Instr::Col2Im(x) => {
                    w.u8(0x03);
                    w.geom(&x.geom);
                    w.addr(x.src);
                    w.addr(x.dst);
                    w.usize_(x.first_patch);
                    w.u8(x.k_off.0 as u8);
                    w.u8(x.k_off.1 as u8);
                    w.usize_(x.c1);
                    w.u16(x.repeat);
                }
                Instr::Move(m) => {
                    w.u8(0x04);
                    w.addr(m.src);
                    w.addr(m.dst);
                    w.usize_(m.bytes);
                }
                Instr::Cube(c) => {
                    w.u8(0x05);
                    w.addr(c.a);
                    w.addr(c.b);
                    w.addr(c.c);
                    w.usize_(c.m_fractals);
                    w.usize_(c.k_fractals);
                    w.usize_(c.n_fractals);
                    w.u8(c.accumulate as u8);
                }
            }
        }
        w.out
    }

    /// Decode from the binary format, re-validating every instruction.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let count = r.u32()? as usize;
        let mut p = Program::new();
        for _ in 0..count {
            let instr = match r.u8()? {
                0x01 => {
                    let tag = r.u8()?;
                    let imm = r.u16()?;
                    let op = vec_op_from(tag, imm)?;
                    let dst = r.addr()?;
                    let src0 = r.addr()?;
                    let src1 = r.addr()?;
                    let lo = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
                    let hi = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
                    let repeat = r.u16()?;
                    let dst_stride = r.usize_()?;
                    let src0_stride = r.usize_()?;
                    let src1_stride = r.usize_()?;
                    Instr::Vector(VectorInstr {
                        op,
                        dst,
                        src0,
                        src1,
                        mask: Mask::from_words(lo, hi),
                        repeat,
                        dst_stride,
                        src0_stride,
                        src1_stride,
                    })
                }
                0x02 => {
                    let geom = r.geom()?;
                    let src = r.addr()?;
                    let dst = r.addr()?;
                    let first_patch = r.usize_()?;
                    let k_off = (r.u8()? as usize, r.u8()? as usize);
                    let c1 = r.usize_()?;
                    let repeat = r.u16()?;
                    let mode = match r.u8()? {
                        0 => RepeatMode::Mode0,
                        1 => RepeatMode::Mode1,
                        t => return Err(DecodeError::BadTag(t)),
                    };
                    Instr::Im2Col(Im2Col {
                        geom,
                        src,
                        dst,
                        first_patch,
                        k_off,
                        c1,
                        repeat,
                        mode,
                    })
                }
                0x03 => {
                    let geom = r.geom()?;
                    let src = r.addr()?;
                    let dst = r.addr()?;
                    let first_patch = r.usize_()?;
                    let k_off = (r.u8()? as usize, r.u8()? as usize);
                    let c1 = r.usize_()?;
                    let repeat = r.u16()?;
                    Instr::Col2Im(Col2Im {
                        geom,
                        src,
                        dst,
                        first_patch,
                        k_off,
                        c1,
                        repeat,
                    })
                }
                0x04 => {
                    let src = r.addr()?;
                    let dst = r.addr()?;
                    let bytes = r.usize_()?;
                    Instr::Move(DataMove::new(src, dst, bytes))
                }
                0x05 => {
                    let a = r.addr()?;
                    let b = r.addr()?;
                    let c = r.addr()?;
                    let m_fractals = r.usize_()?;
                    let k_fractals = r.usize_()?;
                    let n_fractals = r.usize_()?;
                    let accumulate = r.u8()? != 0;
                    Instr::Cube(CubeMatmul {
                        a,
                        b,
                        c,
                        m_fractals,
                        k_fractals,
                        n_fractals,
                        accumulate,
                    })
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            p.push(instr).map_err(DecodeError::Invalid)?;
        }
        Ok(p)
    }
}

fn mask_words(m: &Mask) -> (u64, u64) {
    let mut lo = 0u64;
    let mut hi = 0u64;
    for i in 0..64 {
        if m.lane(i) {
            lo |= 1 << i;
        }
        if m.lane(64 + i) {
            hi |= 1 << i;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(128), Addr::l1(0), 1024)))
            .unwrap();
        let geom = Im2ColGeometry::new(12, 12, 2, PoolParams::new((3, 3), (2, 2))).unwrap();
        p.push(Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(256),
            first_patch: 0,
            k_off: (1, 2),
            c1: 1,
            repeat: 2,
            mode: RepeatMode::Mode1,
        }))
        .unwrap();
        p.push(Instr::Vector(VectorInstr {
            op: VectorOp::MulScalar(F16::from_f32(0.25)),
            dst: Addr::ub(0),
            src0: Addr::ub(512),
            src1: Addr::ub(0),
            mask: Mask::first_n(37),
            repeat: 7,
            dst_stride: 0,
            src0_stride: 32,
            src1_stride: 0,
        }))
        .unwrap();
        p.push(Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(8192),
            first_patch: 16,
            k_off: (0, 1),
            c1: 0,
            repeat: 1,
        }))
        .unwrap();
        p.push(Instr::Cube(CubeMatmul {
            a: Addr::new(BufferId::L0A, 512),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 1024),
            m_fractals: 2,
            k_fractals: 3,
            n_fractals: 1,
            accumulate: true,
        }))
        .unwrap();
        p
    }

    #[test]
    fn round_trip_preserves_every_instruction() {
        let p = sample();
        let bytes = p.to_bytes();
        let q = Program::from_bytes(&bytes).unwrap();
        assert_eq!(p.instrs(), q.instrs());
    }

    #[test]
    fn magic_checked() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Program::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in [5, 9, 20, bytes.len() - 1] {
            assert_eq!(
                Program::from_bytes(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_opcode_detected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 0x7F; // first opcode byte
        assert!(matches!(
            Program::from_bytes(&bytes),
            Err(DecodeError::BadTag(0x7F))
        ));
    }

    #[test]
    fn forged_illegal_instruction_rejected() {
        // Encode a vector instruction, then corrupt its dst buffer to GM:
        // decoding must re-validate and refuse.
        let mut p = Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        let mut bytes = p.to_bytes();
        // layout: magic(4) count(4) opcode(1) tag(1) imm(2) dst.buffer(1)
        bytes[12] = 0; // BufferId::Gm
        assert!(matches!(
            Program::from_bytes(&bytes),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn dilated_ceil_geometry_round_trips() {
        let params = PoolParams::new((3, 3), (2, 2))
            .with_dilation((2, 2))
            .with_ceil_mode(true);
        let geom = Im2ColGeometry::new(12, 12, 1, params).unwrap();
        let mut p = Program::new();
        p.push(Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 1,
            mode: RepeatMode::Mode1,
        }))
        .unwrap();
        let q = Program::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(p.instrs(), q.instrs());
        match &q.instrs()[0] {
            Instr::Im2Col(x) => {
                assert_eq!((x.geom.params.dh, x.geom.params.dw), (2, 2));
                assert!(x.geom.params.ceil_mode);
            }
            other => panic!("unexpected instruction {other:?}"),
        }
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new();
        let q = Program::from_bytes(&p.to_bytes()).unwrap();
        assert!(q.is_empty());
    }
}
