//! Storage Conversion Unit instructions: `Im2Col` and `Col2Im`
//! (paper, Sections III-C and III-D).
//!
//! ## `Im2Col`
//!
//! A load instruction: while a data-fractal moves from L1 into L0A, L0B or
//! the Unified Buffer, the SCU rearranges it into column form. One issue
//! loads **one fractal** = 16 consecutive patches x C0 elements: it
//! selects the 16 patches starting at the instruction's patch position,
//! picks the element at kernel-relative offset `(xk, yk)` from each, and
//! loads that element's C0 channel group, producing a 16 x C0 block
//! (Fig. 5). Positions that fall into the zero-padding border load zeros;
//! patch slots past the end of the patch grid also load zeros (the
//! lowering pads its tiles to whole fractals).
//!
//! Two repeat modes reissue the instruction automatically:
//! * **mode 0** iterates the kernel offset `(xk, yk)` row-major, then the
//!   `c1` index — the loop `[c1, (xk, yk)]` with `(x, y)` fixed;
//! * **mode 1** iterates the patch position — "reissues Im2Col for the
//!   next (x, y) position after skipping the 16 currently selected
//!   patches".
//!
//! With loop order `[c1, (xk, yk), (x, y)]` realised as one mode-1
//! instruction per `(c1, xk, yk)`, the output is the transposed fractal
//! order whose overall shape is the tensor `(C1, Kh, Kw, Oh, Ow, C0)` —
//! the layout the accelerated forward pooling reduces over (Section V-A).
//!
//! ## `Col2Im`
//!
//! The backward operator: a vector-class instruction from UB to UB. One
//! issue takes one input fractal, loads the *current* values of the 16 x
//! C0 scattered output positions it maps to, **adds**, and stores back
//! (Fig. 6) — which is why the output must be zero-initialised first.
//! Only repeat mode 1 exists for `Col2Im` (Section III-D).

use crate::addr::{Addr, BufferId};
use crate::program::IsaError;
use crate::MAX_REPEAT;
use dv_tensor::{PoolParams, C0, FRACTAL_ROWS};

/// Which positional parameter the hardware repeat iterates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepeatMode {
    /// Iterate `(xk, yk)` row-major, then `c1` ("acts as the loops of
    /// `[c1, (xk, yk)]`"). `Im2Col` only.
    Mode0,
    /// Iterate the patch position by 16 patches per repeat ("acts as the
    /// loop of `[(x, y)]`").
    Mode1,
}

/// The geometry parameters "constant for all instructions loading the same
/// input" (Section III-C): input extents, padding, strides, kernel — i.e.
/// a [`PoolParams`] plus the input tile extents, and the tile's C1 count
/// needed to locate `c1` planes in the source buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Im2ColGeometry {
    /// Input tile height `Ih`.
    pub ih: usize,
    /// Input tile width `Iw`.
    pub iw: usize,
    /// Number of `C1` planes resident in the source tile.
    pub c1_len: usize,
    /// Kernel / stride / padding.
    pub params: PoolParams,
}

impl Im2ColGeometry {
    /// Construct and validate the geometry (Equation 1 must be
    /// satisfiable).
    pub fn new(ih: usize, iw: usize, c1_len: usize, params: PoolParams) -> Result<Self, IsaError> {
        params.out_dims(ih, iw).map_err(IsaError::Shape)?;
        if c1_len == 0 {
            return Err(IsaError::Shape(dv_tensor::ShapeError::Mismatch(
                "c1_len must be nonzero".into(),
            )));
        }
        Ok(Im2ColGeometry {
            ih,
            iw,
            c1_len,
            params,
        })
    }

    /// `(Oh, Ow)` patch counts (Equation 1).
    pub fn out_dims(&self) -> (usize, usize) {
        self.params
            .out_dims(self.ih, self.iw)
            .expect("validated at construction")
    }

    /// Total number of patches `Oh * Ow`.
    pub fn patch_count(&self) -> usize {
        let (oh, ow) = self.out_dims();
        oh * ow
    }

    /// Number of fractals needed to cover all patches for one
    /// `(c1, xk, yk)` combination: `ceil(Oh*Ow / 16)`.
    pub fn fractals_per_plane(&self) -> usize {
        self.patch_count().div_ceil(FRACTAL_ROWS)
    }

    /// Byte size of one `(H, W, C0)` source plane in the source buffer.
    pub fn src_plane_bytes(&self) -> usize {
        self.ih * self.iw * C0 * 2
    }

    /// Convert the paper's positional parameter — "the starting position
    /// in the image `(x, y)`", i.e. the coordinates of a patch's top-left
    /// corner, where padding makes negative coordinates legal — into the
    /// linear patch index the instruction encoding uses. Errors when
    /// `(x, y)` does not sit on the patch grid.
    pub fn patch_index_of_xy(&self, x: isize, y: isize) -> Result<usize, IsaError> {
        let (oh, ow) = self.out_dims();
        let gx = x + self.params.padding.top as isize;
        let gy = y + self.params.padding.left as isize;
        if gx < 0 || gy < 0 {
            return Err(IsaError::BadPosition(format!(
                "({x}, {y}) lies outside even the padded image"
            )));
        }
        let (gx, gy) = (gx as usize, gy as usize);
        if gx % self.params.sh != 0 || gy % self.params.sw != 0 {
            return Err(IsaError::BadPosition(format!(
                "({x}, {y}) is not on the stride grid ({}, {})",
                self.params.sh, self.params.sw
            )));
        }
        let (p, q) = (gx / self.params.sh, gy / self.params.sw);
        if p >= oh || q >= ow {
            return Err(IsaError::BadPosition(format!(
                "({x}, {y}) starts patch ({p}, {q}) outside the {oh}x{ow} grid"
            )));
        }
        Ok(p * ow + q)
    }

    /// The inverse of [`Self::patch_index_of_xy`]: the image coordinates
    /// of a patch's top-left corner (negative inside the padding border).
    pub fn xy_of_patch_index(&self, patch: usize) -> (isize, isize) {
        let (_, ow) = self.out_dims();
        let (p, q) = (patch / ow, patch % ow);
        (
            (p * self.params.sh) as isize - self.params.padding.top as isize,
            (q * self.params.sw) as isize - self.params.padding.left as isize,
        )
    }

    /// Resolve patch linear index -> the input-coordinate `(h, w)` of the
    /// element at kernel offset `(xk, yk)`, or `None` when it falls into
    /// the padding border. Patch indices at or beyond
    /// [`Self::patch_count`] also resolve to `None` (zero-fill slots).
    pub fn element_coord(&self, patch: usize, xk: usize, yk: usize) -> Option<(usize, usize)> {
        let (oh, ow) = self.out_dims();
        if patch >= oh * ow {
            return None;
        }
        let (p, q) = (patch / ow, patch % ow);
        let h =
            (p * self.params.sh + xk * self.params.dh) as isize - self.params.padding.top as isize;
        let w =
            (q * self.params.sw + yk * self.params.dw) as isize - self.params.padding.left as isize;
        if h < 0 || w < 0 || h as usize >= self.ih || w as usize >= self.iw {
            None
        } else {
            Some((h as usize, w as usize))
        }
    }
}

/// The `Im2Col` load instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Im2Col {
    /// Geometry shared by all issues over the same input.
    pub geom: Im2ColGeometry,
    /// Base address of the source NC1HWC0 tile (must be **L1** — Im2Col
    /// loads L1 -> {L0A, L0B, UB}, paths 2->4, 2->5, 2->8 of Fig. 4).
    pub src: Addr,
    /// Base address fractals are stored to, consecutively.
    pub dst: Addr,
    /// Linear index of the first patch to load ("the starting position in
    /// the image (x, y)", linearised over the patch grid).
    pub first_patch: usize,
    /// Kernel-relative position `(xk, yk)`.
    pub k_off: (usize, usize),
    /// `C1`-dimension index `c1`.
    pub c1: usize,
    /// Repeat count (number of fractals produced).
    pub repeat: u16,
    /// Which positional parameter the repeats iterate.
    pub mode: RepeatMode,
}

impl Im2Col {
    /// Validate datapath legality and positional parameters.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.repeat == 0 || self.repeat > MAX_REPEAT {
            return Err(IsaError::BadRepeat(self.repeat));
        }
        if self.src.buffer != BufferId::L1 {
            return Err(IsaError::IllegalDatapath {
                instr: "im2col",
                buffer: self.src.buffer,
                role: "src",
            });
        }
        if !matches!(
            self.dst.buffer,
            BufferId::L0A | BufferId::L0B | BufferId::Ub
        ) {
            return Err(IsaError::IllegalDatapath {
                instr: "im2col",
                buffer: self.dst.buffer,
                role: "dst",
            });
        }
        let (kh, kw) = (self.geom.params.kh, self.geom.params.kw);
        if self.k_off.0 >= kh || self.k_off.1 >= kw {
            return Err(IsaError::BadPosition(format!(
                "kernel offset {:?} outside kernel ({kh},{kw})",
                self.k_off
            )));
        }
        if self.c1 >= self.geom.c1_len {
            return Err(IsaError::BadPosition(format!(
                "c1 index {} outside tile c1_len {}",
                self.c1, self.geom.c1_len
            )));
        }
        if self.first_patch >= self.geom.patch_count() {
            return Err(IsaError::BadPosition(format!(
                "first patch {} outside patch grid {}",
                self.first_patch,
                self.geom.patch_count()
            )));
        }
        // Mode-1 repeats must not run off the padded patch grid.
        if self.mode == RepeatMode::Mode1 {
            let max_fractals = self
                .geom
                .patch_count()
                .saturating_sub(self.first_patch)
                .div_ceil(FRACTAL_ROWS);
            if (self.repeat as usize) > max_fractals {
                return Err(IsaError::BadPosition(format!(
                    "mode-1 repeat {} exceeds remaining fractals {max_fractals}",
                    self.repeat
                )));
            }
        } else {
            // Mode-0 repeats iterate (xk, yk) then c1 and must stay inside.
            let start = (self.c1 * kh * kw) + self.k_off.0 * kw + self.k_off.1;
            let avail = self.geom.c1_len * kh * kw - start;
            if (self.repeat as usize) > avail {
                return Err(IsaError::BadPosition(format!(
                    "mode-0 repeat {} exceeds remaining (c1, xk, yk) slots {avail}",
                    self.repeat
                )));
            }
        }
        Ok(())
    }

    /// The sequence of `(c1, xk, yk, first_patch)` positions the repeats
    /// visit, in issue order — the simulator executes these one fractal
    /// each, and tests check mode semantics against this.
    #[allow(clippy::explicit_counter_loop)]
    pub fn repeat_positions(&self) -> Vec<(usize, usize, usize, usize)> {
        let (kh, kw) = (self.geom.params.kh, self.geom.params.kw);
        let mut out = Vec::with_capacity(self.repeat as usize);
        match self.mode {
            RepeatMode::Mode1 => {
                for i in 0..self.repeat as usize {
                    out.push((
                        self.c1,
                        self.k_off.0,
                        self.k_off.1,
                        self.first_patch + i * FRACTAL_ROWS,
                    ));
                }
            }
            RepeatMode::Mode0 => {
                let mut flat = self.c1 * kh * kw + self.k_off.0 * kw + self.k_off.1;
                for _ in 0..self.repeat as usize {
                    let c1 = flat / (kh * kw);
                    let rem = flat % (kh * kw);
                    out.push((c1, rem / kw, rem % kw, self.first_patch));
                    flat += 1;
                }
            }
        }
        out
    }
}

/// The `Col2Im` scatter-add instruction (UB -> UB, repeat mode 1 only).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Col2Im {
    /// Geometry of the **output** NC1HWC0 tile ("Col2Im receives the same
    /// parameters as Im2Col referring to its output").
    pub geom: Im2ColGeometry,
    /// Base of the input fractals (Unified Buffer).
    pub src: Addr,
    /// Base of the output NC1HWC0 tile (Unified Buffer, zero-initialised
    /// by the program before the first issue).
    pub dst: Addr,
    /// Linear index of the first patch the first fractal maps to.
    pub first_patch: usize,
    /// Kernel-relative position `(xk, yk)`.
    pub k_off: (usize, usize),
    /// `C1`-dimension index within the destination tile.
    pub c1: usize,
    /// Repeat count (number of fractals merged); mode 1 semantics.
    pub repeat: u16,
}

impl Col2Im {
    /// Validate datapath legality and positional parameters.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.repeat == 0 || self.repeat > MAX_REPEAT {
            return Err(IsaError::BadRepeat(self.repeat));
        }
        for (addr, role) in [(self.src, "src"), (self.dst, "dst")] {
            if addr.buffer != BufferId::Ub {
                return Err(IsaError::IllegalDatapath {
                    instr: "col2im",
                    buffer: addr.buffer,
                    role,
                });
            }
        }
        let (kh, kw) = (self.geom.params.kh, self.geom.params.kw);
        if self.k_off.0 >= kh || self.k_off.1 >= kw {
            return Err(IsaError::BadPosition(format!(
                "kernel offset {:?} outside kernel ({kh},{kw})",
                self.k_off
            )));
        }
        if self.c1 >= self.geom.c1_len {
            return Err(IsaError::BadPosition(format!(
                "c1 index {} outside tile c1_len {}",
                self.c1, self.geom.c1_len
            )));
        }
        if self.first_patch >= self.geom.patch_count() {
            return Err(IsaError::BadPosition(format!(
                "first patch {} outside patch grid {}",
                self.first_patch,
                self.geom.patch_count()
            )));
        }
        let max_fractals = (self.geom.patch_count() - self.first_patch).div_ceil(FRACTAL_ROWS);
        if (self.repeat as usize) > max_fractals {
            return Err(IsaError::BadPosition(format!(
                "repeat {} exceeds remaining fractals {max_fractals}",
                self.repeat
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_geom() -> Im2ColGeometry {
        // Fig. 5: 8x8 input, K=(2,2), S=(2,2), no padding -> 4x4 patches.
        Im2ColGeometry::new(8, 8, 1, PoolParams::new((2, 2), (2, 2))).unwrap()
    }

    #[test]
    fn fig5_geometry_has_16_patches() {
        let g = fig5_geom();
        assert_eq!(g.out_dims(), (4, 4));
        assert_eq!(g.patch_count(), 16);
        assert_eq!(g.fractals_per_plane(), 1);
    }

    #[test]
    fn element_coord_resolves_patches() {
        let g = fig5_geom();
        // patch 0 at (0,0): kernel offset (0,1) -> input (0,1)
        assert_eq!(g.element_coord(0, 0, 1), Some((0, 1)));
        // patch 5 = (row 1, col 1) -> starts at (2,2); offset (1,0) -> (3,2)
        assert_eq!(g.element_coord(5, 1, 0), Some((3, 2)));
        // patch 16 is off the grid -> zero-fill
        assert_eq!(g.element_coord(16, 0, 0), None);
    }

    #[test]
    fn element_coord_padding_is_none() {
        use dv_tensor::Padding;
        let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
        let g = Im2ColGeometry::new(5, 5, 1, params).unwrap();
        // patch 0 starts at (-1,-1); offset (0,0) is in the border.
        assert_eq!(g.element_coord(0, 0, 0), None);
        assert_eq!(g.element_coord(0, 1, 1), Some((0, 0)));
    }

    fn fig5_im2col(mode: RepeatMode, repeat: u16) -> Im2Col {
        Im2Col {
            geom: fig5_geom(),
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat,
            mode,
        }
    }

    #[test]
    fn mode0_iterates_kernel_offsets() {
        // "the input in Figure 5 can be fully loaded by issuing a single
        // Im2Col starting at (xk, yk) = (0,0) with repeat mode 0 to repeat
        // four times, changing (xk, yk) from (0,0) to (0,1), (1,0) and
        // (1,1)".
        let i = fig5_im2col(RepeatMode::Mode0, 4);
        assert!(i.validate().is_ok());
        assert_eq!(
            i.repeat_positions(),
            vec![(0, 0, 0, 0), (0, 0, 1, 0), (0, 1, 0, 0), (0, 1, 1, 0)]
        );
    }

    #[test]
    fn mode0_continues_into_next_c1() {
        let mut g = fig5_geom();
        g.c1_len = 2;
        let i = Im2Col {
            geom: g,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (1, 1),
            c1: 0,
            repeat: 2,
            mode: RepeatMode::Mode0,
        };
        assert!(i.validate().is_ok());
        // "If the length of C1 is bigger than 1, Im2Col in repetition mode
        // 0 will continue to the next c1 index and iterate over (xk, yk)
        // again."
        assert_eq!(i.repeat_positions(), vec![(0, 1, 1, 0), (1, 0, 0, 0)]);
    }

    #[test]
    fn mode1_iterates_patch_blocks() {
        let params = PoolParams::new((2, 2), (2, 2));
        let g = Im2ColGeometry::new(16, 8, 1, params).unwrap(); // 8x4 = 32 patches
        let i = Im2Col {
            geom: g,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 1),
            c1: 0,
            repeat: 2,
            mode: RepeatMode::Mode1,
        };
        assert!(i.validate().is_ok());
        assert_eq!(i.repeat_positions(), vec![(0, 0, 1, 0), (0, 0, 1, 16)]);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut i = fig5_im2col(RepeatMode::Mode1, 1);
        i.k_off = (2, 0);
        assert!(matches!(i.validate(), Err(IsaError::BadPosition(_))));

        let mut i = fig5_im2col(RepeatMode::Mode1, 1);
        i.c1 = 1;
        assert!(matches!(i.validate(), Err(IsaError::BadPosition(_))));

        let mut i = fig5_im2col(RepeatMode::Mode1, 2); // only 1 fractal exists
        i.repeat = 2;
        assert!(matches!(i.validate(), Err(IsaError::BadPosition(_))));

        let mut i = fig5_im2col(RepeatMode::Mode0, 5); // only 4 (xk,yk) slots
        i.repeat = 5;
        assert!(matches!(i.validate(), Err(IsaError::BadPosition(_))));

        let mut i = fig5_im2col(RepeatMode::Mode1, 1);
        i.src = Addr::gm(0);
        assert!(matches!(
            i.validate(),
            Err(IsaError::IllegalDatapath {
                instr: "im2col",
                role: "src",
                ..
            })
        ));

        let mut i = fig5_im2col(RepeatMode::Mode1, 1);
        i.dst = Addr::new(BufferId::L0C, 0);
        assert!(matches!(
            i.validate(),
            Err(IsaError::IllegalDatapath {
                instr: "im2col",
                role: "dst",
                ..
            })
        ));
    }

    #[test]
    fn col2im_validation() {
        let g = fig5_geom();
        let ok = Col2Im {
            geom: g,
            src: Addr::ub(0),
            dst: Addr::ub(4096),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat: 1,
        };
        assert!(ok.validate().is_ok());

        let mut bad = ok;
        bad.src = Addr::l1(0); // Col2Im is UB -> UB only (path 8 -> 8)
        assert!(matches!(
            bad.validate(),
            Err(IsaError::IllegalDatapath {
                instr: "col2im",
                ..
            })
        ));

        let mut bad = ok;
        bad.repeat = 2; // Fig. 6's example "could not be loaded using a
                        // repetition" — the grid has only 16 patches.
        assert!(bad.validate().is_err());
    }

    #[test]
    fn xy_coordinates_round_trip() {
        // Fig. 5's geometry: patches start every 2 pixels.
        let g = fig5_geom();
        assert_eq!(g.patch_index_of_xy(0, 0), Ok(0));
        assert_eq!(g.patch_index_of_xy(0, 2), Ok(1));
        assert_eq!(g.patch_index_of_xy(2, 0), Ok(4));
        assert_eq!(g.patch_index_of_xy(6, 6), Ok(15));
        for p in 0..g.patch_count() {
            let (x, y) = g.xy_of_patch_index(p);
            assert_eq!(g.patch_index_of_xy(x, y), Ok(p), "patch {p}");
        }
        // off-grid and out-of-range positions are rejected
        assert!(g.patch_index_of_xy(1, 0).is_err());
        assert!(g.patch_index_of_xy(0, 3).is_err());
        assert!(g.patch_index_of_xy(8, 0).is_err());
        assert!(g.patch_index_of_xy(-1, 0).is_err());
    }

    #[test]
    fn xy_coordinates_with_padding_are_negative() {
        use dv_tensor::Padding;
        let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
        let g = Im2ColGeometry::new(5, 5, 1, params).unwrap();
        // the first patch starts in the padding border
        assert_eq!(g.xy_of_patch_index(0), (-1, -1));
        assert_eq!(g.patch_index_of_xy(-1, -1), Ok(0));
        assert_eq!(g.patch_index_of_xy(1, -1), Ok(g.out_dims().1));
        assert!(g.patch_index_of_xy(-2, 0).is_err());
    }

    #[test]
    fn geometry_rejects_invalid_pooling() {
        assert!(Im2ColGeometry::new(2, 2, 1, PoolParams::new((3, 3), (1, 1))).is_err());
        assert!(Im2ColGeometry::new(8, 8, 0, PoolParams::new((2, 2), (2, 2))).is_err());
    }
}
