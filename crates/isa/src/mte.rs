//! Memory Transfer Engine (MTE) data movement between buffers.
//!
//! "Data movement between these buffers must be explicitly managed by the
//! application" (paper, Section III-A). A [`DataMove`] is a flat byte copy
//! along one of the legal datapath arrows of Fig. 4. Layout
//! transformations during movement belong to the SCU instructions, not to
//! plain moves.

use crate::addr::{Addr, BufferId};
use crate::program::IsaError;

/// A flat copy of `bytes` bytes from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataMove {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Number of bytes to move.
    pub bytes: usize,
}

impl DataMove {
    /// Construct a move.
    pub const fn new(src: Addr, dst: Addr, bytes: usize) -> DataMove {
        DataMove { src, dst, bytes }
    }

    /// The datapaths of Fig. 4 a plain move may take. Numbers refer to the
    /// figure's labels: global memory exchanges with L1 (1<->2), the
    /// Unified Buffer (1<->8) and receives results from L0C via the UB;
    /// L1 feeds the UB (2->8) and the Cube input buffers (2->4, 2->5 —
    /// the untransformed `load2d` used for pre-laid-out weights); the
    /// Cube output L0C drains to the UB (6->8).
    pub const LEGAL_PATHS: [(BufferId, BufferId); 8] = [
        (BufferId::Gm, BufferId::L1),
        (BufferId::L1, BufferId::Gm),
        (BufferId::Gm, BufferId::Ub),
        (BufferId::Ub, BufferId::Gm),
        (BufferId::L1, BufferId::Ub),
        (BufferId::L1, BufferId::L0A),
        (BufferId::L1, BufferId::L0B),
        (BufferId::L0C, BufferId::Ub),
    ];

    /// Validate the copy follows a legal datapath and is non-empty.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.bytes == 0 {
            return Err(IsaError::EmptyMove);
        }
        let path = (self.src.buffer, self.dst.buffer);
        if !Self::LEGAL_PATHS.contains(&path) {
            return Err(IsaError::IllegalDatapath {
                instr: "move",
                buffer: self.dst.buffer,
                role: "path",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_paths_validate() {
        for (s, d) in DataMove::LEGAL_PATHS {
            let m = DataMove::new(Addr::new(s, 0), Addr::new(d, 0), 64);
            assert!(m.validate().is_ok(), "{s}->{d}");
        }
    }

    #[test]
    fn illegal_paths_rejected() {
        // GM cannot write the cube input buffers directly (only via L1).
        let m = DataMove::new(Addr::gm(0), Addr::new(BufferId::L0B, 0), 64);
        assert!(m.validate().is_err());
        // The cube input buffers never drain anywhere.
        let m = DataMove::new(Addr::new(BufferId::L0A, 0), Addr::ub(0), 64);
        assert!(m.validate().is_err());
        // L0C only drains to the UB.
        let m = DataMove::new(Addr::new(BufferId::L0C, 0), Addr::l1(0), 64);
        assert!(m.validate().is_err());
    }

    #[test]
    fn empty_move_rejected() {
        let m = DataMove::new(Addr::gm(0), Addr::l1(0), 0);
        assert!(matches!(m.validate(), Err(IsaError::EmptyMove)));
    }
}
