//! Vector Unit instructions: elementwise f16 operations over the Unified
//! Buffer with lane masking and hardware repeat.
//!
//! Modeled after the CCE C intrinsics named by the paper — `vmax`, `vadd`,
//! `vmul` (Section V) — plus the supporting operations a complete pooling
//! lowering needs (`vector_dup` for accumulator initialisation, `vmuls`
//! for the AvgPool scale, `vcmp`-style equality for the argmax mask, and
//! `vsub` to round out the arithmetic set).
//!
//! One repeat iteration processes [`VECTOR_LANES`](crate::VECTOR_LANES)
//! f16 lanes (256 bytes). Between iterations each operand pointer advances
//! by its *repeat stride* (in bytes), which lets a single instruction
//! reduce a `(Kh, Kw)`-outer tensor against a smaller accumulator by
//! giving the accumulator a stride of zero... in fact the paper's kernels
//! only need equal strides or a zero destination stride; both are
//! expressible.

use crate::addr::{Addr, BufferId};
use crate::mask::Mask;
use crate::program::IsaError;
use crate::{MAX_REPEAT, VECTOR_BYTES};
use dv_fp16::F16;

/// The elementwise operation a [`VectorInstr`] performs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VectorOp {
    /// `dst = max(src0, src1)` — the reduction step of MaxPool (`vmax`).
    Max,
    /// `dst = min(src0, src1)` (`vmin`).
    Min,
    /// `dst = src0 + src1` — AvgPool reduction and the baseline backward
    /// merge (`vadd`).
    Add,
    /// `dst = src0 - src1` (`vsub`).
    Sub,
    /// `dst = src0 * src1` — the mask x gradient multiply of backward
    /// pooling (`vmul`).
    Mul,
    /// `dst = src0 * scalar` — AvgPool's `1/(Kh*Kw)` scale (`vmuls`).
    MulScalar(F16),
    /// `dst = scalar` — accumulator initialisation (`vector_dup`).
    Dup(F16),
    /// `dst = (src0 == src1) ? 1.0 : 0.0` — the compare producing the
    /// argmax mask (`vcmp` + select lowering).
    CmpEq,
    /// `dst = src0` — a plain vectorised copy (`vadds 0` / `copy_ubuf`),
    /// used by the "Maxpool with expansion" baseline that rearranges data
    /// with regular vector instructions (Section VI-B).
    Copy,
    /// `dst = max(src0, 0)` — the rectified-linear activation (`vrelu`),
    /// used by the CNN pipeline example between layers.
    Relu,
}

impl VectorOp {
    /// Does the operation read a second source operand?
    pub const fn has_src1(self) -> bool {
        matches!(
            self,
            VectorOp::Max
                | VectorOp::Min
                | VectorOp::Add
                | VectorOp::Sub
                | VectorOp::Mul
                | VectorOp::CmpEq
        )
    }

    /// Does the operation read any source operand?
    pub const fn has_src0(self) -> bool {
        !matches!(self, VectorOp::Dup(_))
    }
}

/// One Vector Unit instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VectorInstr {
    /// The elementwise operation.
    pub op: VectorOp,
    /// Destination address (must be in the Unified Buffer).
    pub dst: Addr,
    /// First source (ignored for `Dup`).
    pub src0: Addr,
    /// Second source (only for two-operand ops).
    pub src1: Addr,
    /// The 128-bit lane mask.
    pub mask: Mask,
    /// Hardware repeat count (1..=255): the instruction is reissued this
    /// many times, advancing each operand by its repeat stride.
    pub repeat: u16,
    /// Destination advance per repeat, in bytes.
    pub dst_stride: usize,
    /// `src0` advance per repeat, in bytes.
    pub src0_stride: usize,
    /// `src1` advance per repeat, in bytes.
    pub src1_stride: usize,
}

impl VectorInstr {
    /// A unit-stride instruction: all operands advance by one full vector
    /// (256 bytes) per repeat — the common case for saturated kernels.
    pub fn unit_stride(
        op: VectorOp,
        dst: Addr,
        src0: Addr,
        src1: Addr,
        mask: Mask,
        repeat: u16,
    ) -> VectorInstr {
        VectorInstr {
            op,
            dst,
            src0,
            src1,
            mask,
            repeat,
            dst_stride: VECTOR_BYTES,
            src0_stride: VECTOR_BYTES,
            src1_stride: VECTOR_BYTES,
        }
    }

    /// Validate datapath legality and parameter ranges.
    ///
    /// The Vector Unit "operate\[s\] on data loaded from/stored to the
    /// Unified Buffer" (Section III-A), so every operand must live in UB.
    pub fn validate(&self) -> Result<(), IsaError> {
        if self.repeat == 0 || self.repeat > MAX_REPEAT {
            return Err(IsaError::BadRepeat(self.repeat));
        }
        if self.dst.buffer != BufferId::Ub {
            return Err(IsaError::IllegalDatapath {
                instr: "vector",
                buffer: self.dst.buffer,
                role: "dst",
            });
        }
        if self.op.has_src0() && self.src0.buffer != BufferId::Ub {
            return Err(IsaError::IllegalDatapath {
                instr: "vector",
                buffer: self.src0.buffer,
                role: "src0",
            });
        }
        if self.op.has_src1() && self.src1.buffer != BufferId::Ub {
            return Err(IsaError::IllegalDatapath {
                instr: "vector",
                buffer: self.src1.buffer,
                role: "src1",
            });
        }
        Ok(())
    }

    /// Total lanes of useful work (mask lanes x repeats) — used by the
    /// hardware counters to report utilization.
    pub fn useful_lanes(&self) -> u64 {
        self.mask.count() as u64 * self.repeat as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(op: VectorOp) -> VectorInstr {
        VectorInstr::unit_stride(op, Addr::ub(0), Addr::ub(256), Addr::ub(512), Mask::FULL, 1)
    }

    #[test]
    fn validate_accepts_ub_operands() {
        assert!(v(VectorOp::Max).validate().is_ok());
        assert!(v(VectorOp::Dup(F16::ZERO)).validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_ub() {
        let mut i = v(VectorOp::Add);
        i.src1 = Addr::l1(0);
        assert!(matches!(
            i.validate(),
            Err(IsaError::IllegalDatapath { role: "src1", .. })
        ));
        let mut j = v(VectorOp::Add);
        j.dst = Addr::gm(0);
        assert!(matches!(
            j.validate(),
            Err(IsaError::IllegalDatapath { role: "dst", .. })
        ));
    }

    #[test]
    fn dup_ignores_source_buffers() {
        let mut i = v(VectorOp::Dup(F16::ONE));
        i.src0 = Addr::gm(0); // irrelevant for Dup
        i.src1 = Addr::l1(0);
        assert!(i.validate().is_ok());
    }

    #[test]
    fn repeat_bounds() {
        let mut i = v(VectorOp::Max);
        i.repeat = 0;
        assert!(matches!(i.validate(), Err(IsaError::BadRepeat(0))));
        i.repeat = 255;
        assert!(i.validate().is_ok());
    }

    #[test]
    fn useful_lanes_counts_mask_times_repeat() {
        let mut i = v(VectorOp::Max);
        i.mask = Mask::C0_ONLY;
        i.repeat = 10;
        assert_eq!(i.useful_lanes(), 160);
    }

    #[test]
    fn operand_arity() {
        assert!(VectorOp::Max.has_src1());
        assert!(VectorOp::CmpEq.has_src1());
        assert!(!VectorOp::MulScalar(F16::ONE).has_src1());
        assert!(!VectorOp::Dup(F16::ZERO).has_src0());
        assert!(VectorOp::Copy.has_src0());
        assert!(!VectorOp::Copy.has_src1());
    }
}
