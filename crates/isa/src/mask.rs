//! The 128-bit vector lane mask.
//!
//! "The Vector Unit … uses a 128-bit mask register in which every bit
//! represents one element of a vector instruction that may be processed or
//! not" (paper, Section III-A). Saturating this mask is the first of the
//! two performance factors the paper identifies for vector code
//! (Section V): a `vmax` over strided NC1HWC0 data can only set 16 of 128
//! lanes (the contiguous C0 group), wasting 7/8 of the unit's throughput,
//! while the im2col layout lets all 128 lanes be set.

use crate::VECTOR_LANES;
use core::fmt;

/// A 128-bit lane mask; bit `i` enables f16 lane `i` of each repeat
/// iteration.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mask {
    bits: [u64; 2],
}

impl Mask {
    /// All 128 lanes enabled — the saturated mask of the accelerated
    /// kernels.
    pub const FULL: Mask = Mask {
        bits: [u64::MAX, u64::MAX],
    };

    /// No lanes enabled (useful as a guard value in tests).
    pub const EMPTY: Mask = Mask { bits: [0, 0] };

    /// The first 16 lanes — one C0 channel group, the mask of the
    /// baseline strided kernels.
    pub const C0_ONLY: Mask = Mask { bits: [0xFFFF, 0] };

    /// Enable the first `n` lanes (`n <= 128`).
    pub fn first_n(n: usize) -> Mask {
        assert!(n <= VECTOR_LANES, "mask width {n} exceeds {VECTOR_LANES}");
        let bits = match n {
            0 => [0, 0],
            1..=63 => [(1u64 << n) - 1, 0],
            64 => [u64::MAX, 0],
            65..=127 => [u64::MAX, (1u64 << (n - 64)) - 1],
            _ => [u64::MAX, u64::MAX],
        };
        Mask { bits }
    }

    /// Build from an explicit pair of words (`bits[0]` holds lanes 0–63).
    pub const fn from_words(lo: u64, hi: u64) -> Mask {
        Mask { bits: [lo, hi] }
    }

    /// Is lane `i` enabled?
    #[inline]
    pub fn lane(&self, i: usize) -> bool {
        debug_assert!(i < VECTOR_LANES);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of enabled lanes.
    pub fn count(&self) -> usize {
        (self.bits[0].count_ones() + self.bits[1].count_ones()) as usize
    }

    /// Lane utilization in [0, 1] — the quantity Fig. 7/8's speedups trace
    /// back to.
    pub fn utilization(&self) -> f64 {
        self.count() as f64 / VECTOR_LANES as f64
    }

    /// True when every lane is enabled.
    pub fn is_full(&self) -> bool {
        self.bits == [u64::MAX, u64::MAX]
    }

    /// True when no lane is enabled.
    pub fn is_empty(&self) -> bool {
        self.bits == [0, 0]
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({}/{} lanes)", self.count(), VECTOR_LANES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Mask::FULL.count(), 128);
        assert!(Mask::FULL.is_full());
        assert_eq!(Mask::EMPTY.count(), 0);
        assert!(Mask::EMPTY.is_empty());
        assert_eq!(Mask::C0_ONLY.count(), 16);
        assert!((Mask::C0_ONLY.utilization() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn first_n_boundaries() {
        assert_eq!(Mask::first_n(0), Mask::EMPTY);
        assert_eq!(Mask::first_n(16), Mask::C0_ONLY);
        assert_eq!(Mask::first_n(128), Mask::FULL);
        assert_eq!(Mask::first_n(64).count(), 64);
        assert_eq!(Mask::first_n(65).count(), 65);
        assert_eq!(Mask::first_n(127).count(), 127);
        // lanes are contiguous from 0
        let m = Mask::first_n(100);
        for i in 0..128 {
            assert_eq!(m.lane(i), i < 100, "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn first_n_overflow_panics() {
        let _ = Mask::first_n(129);
    }

    #[test]
    fn from_words_lane_mapping() {
        let m = Mask::from_words(0b1010, 0b1);
        assert!(!m.lane(0));
        assert!(m.lane(1));
        assert!(!m.lane(2));
        assert!(m.lane(3));
        assert!(m.lane(64));
        assert!(!m.lane(65));
        assert_eq!(m.count(), 3);
    }
}
