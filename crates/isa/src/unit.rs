//! Stable functional-unit metadata.
//!
//! Every instruction executes on exactly one of the AI Core's functional
//! units (paper, Section III-A). The mapping is *architectural* — it is
//! part of the ISA, not of any particular simulator — so it lives here
//! and is consumed by the simulator's counters, the trace recorder, and
//! the benchmark reports, all of which must agree on it.

use crate::program::Instr;

/// The functional unit an instruction executes on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Vector Unit (`vmax`/`vadd`/`vmul`/… and, architecturally, `Col2Im`:
    /// "acts as a vector instruction", Section III-D).
    Vector,
    /// Storage Conversion Unit (`Im2Col`'s on-the-fly layout transform).
    Scu,
    /// Memory Transfer Engine (plain data moves).
    Mte,
    /// Cube Unit (fractal matrix multiply).
    Cube,
}

impl Unit {
    /// All units, in display order.
    pub const ALL: [Unit; 4] = [Unit::Vector, Unit::Scu, Unit::Mte, Unit::Cube];

    /// Stable lowercase name used in traces and reports.
    pub const fn name(&self) -> &'static str {
        match self {
            Unit::Vector => "vector",
            Unit::Scu => "scu",
            Unit::Mte => "mte",
            Unit::Cube => "cube",
        }
    }
}

impl core::fmt::Display for Unit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl Instr {
    /// The functional unit this instruction executes on.
    pub const fn unit(&self) -> Unit {
        match self {
            Instr::Vector(_) => Unit::Vector,
            Instr::Im2Col(_) => Unit::Scu,
            // Architecturally Col2Im "acts as a vector instruction"
            // (Section III-D); its cycles belong to the Vector Unit.
            Instr::Col2Im(_) => Unit::Vector,
            Instr::Move(_) => Unit::Mte,
            Instr::Cube(_) => Unit::Cube,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::mte::DataMove;

    #[test]
    fn move_is_mte() {
        let i = Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), 32));
        assert_eq!(i.unit(), Unit::Mte);
        assert_eq!(i.unit().name(), "mte");
        assert_eq!(i.unit().to_string(), "mte");
    }

    #[test]
    fn all_units_have_distinct_names() {
        let names: std::collections::BTreeSet<_> = Unit::ALL.iter().map(|u| u.name()).collect();
        assert_eq!(names.len(), Unit::ALL.len());
    }
}
