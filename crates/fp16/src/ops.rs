//! Arithmetic operators for [`F16`], computed by widening to `f32` and
//! rounding the result back to the nearest `f16`.
//!
//! For a single operation this is exactly the correctly rounded `f16`
//! result whenever the `f32` intermediate is exact — which holds for
//! addition, subtraction and multiplication of any two `f16` values
//! (their exact products/sums fit in `f32`'s 24-bit significand).
//! Division is correctly rounded to `f32` first and may double-round in
//! rare cases; the simulator does not rely on exact division.

use crate::F16;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline(always)]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            #[inline(always)]
            fn $method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline(always)]
    fn neg(self) -> F16 {
        F16::neg(self)
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integer_arithmetic() {
        let a = F16::from_f32(3.0);
        let b = F16::from_f32(4.0);
        assert_eq!((a + b).to_f32(), 7.0);
        assert_eq!((a - b).to_f32(), -1.0);
        assert_eq!((a * b).to_f32(), 12.0);
        assert_eq!((b / F16::from_f32(2.0)).to_f32(), 2.0);
    }

    #[test]
    fn addition_rounds_to_nearest() {
        // 2048 + 1 is not representable (f16 spacing at 2048 is 2);
        // ties-to-even keeps 2048.
        let big = F16::from_f32(2048.0);
        let one = F16::ONE;
        assert_eq!((big + one).to_f32(), 2048.0);
        // 2048 + 3 = 2051 ties between 2050 (odd mantissa) and 2052
        // (even mantissa); ties-to-even picks 2052.
        assert_eq!((big + F16::from_f32(3.0)).to_f32(), 2052.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let max = F16::MAX;
        assert!((max + max).is_infinite());
        assert!((max * F16::from_f32(2.0)).is_infinite());
    }

    #[test]
    fn assign_ops_match_binops() {
        let mut x = F16::from_f32(1.5);
        x += F16::from_f32(2.5);
        assert_eq!(x.to_f32(), 4.0);
        x *= F16::from_f32(0.5);
        assert_eq!(x.to_f32(), 2.0);
        x -= F16::ONE;
        assert_eq!(x.to_f32(), 1.0);
        x /= F16::from_f32(4.0);
        assert_eq!(x.to_f32(), 0.25);
    }

    #[test]
    fn neg_operator() {
        assert_eq!((-F16::ONE), F16::NEG_ONE);
        assert_eq!((-F16::ZERO), F16::NEG_ZERO);
    }

    #[test]
    fn sum_accumulates_in_f16_order() {
        // Summation happens in f16 after every step — required so the
        // simulator (which accumulates in buffer precision) matches the
        // reference operators exactly.
        let xs: Vec<F16> = (1..=10).map(|i| F16::from_f32(i as f32)).collect();
        let s: F16 = xs.iter().copied().sum();
        assert_eq!(s.to_f32(), 55.0);
    }
}
