#![deny(missing_docs)]
//! Software IEEE 754 binary16 ("half precision", `f16`) arithmetic.
//!
//! The DaVinci architecture computes pooling and convolution in `Float16`:
//! the fractal memory layout fixes the innermost dimension `C0 = 16` because
//! a data-fractal is 4096 bits = 16 rows x 16 `f16` elements (paper,
//! Section III-B). This crate provides a bit-exact software `f16` so the
//! simulator's buffers hold *real* half-precision values and every simulated
//! kernel can be checked for bit-identical results against golden references.
//!
//! Design notes:
//! * [`F16`] is a `#[repr(transparent)]` wrapper over the raw `u16` bit
//!   pattern, so buffers of `F16` can be viewed as byte slices with no
//!   conversion cost.
//! * Arithmetic is performed by converting to `f32`, computing, and rounding
//!   back to the nearest `f16` (round-to-nearest-even). This matches how
//!   half-precision ALUs that internally widen behave, and — crucially for
//!   pooling — `max`, `add` and `mul` of values that are exactly
//!   representable in `f16` produce exactly representable results for max
//!   (always) and correctly rounded results for add/mul.
//! * Comparison (`total_cmp`, `PartialOrd`) follows IEEE semantics; `vmax`
//!   in the simulator uses [`F16::max`] which propagates the non-NaN operand
//!   like hardware max instructions do.

mod convert;
mod ops;

pub use convert::{f16_bits_from_f32, f32_from_f16_bits};

use core::fmt;

/// An IEEE 754 binary16 floating point number, stored as its raw bit pattern.
///
/// ```
/// use dv_fp16::F16;
/// let a = F16::from_f32(1.5);
/// let b = F16::from_f32(2.25);
/// assert_eq!((a + b).to_f32(), 3.75);
/// assert_eq!(F16::NEG_INFINITY.max(a), a);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity — the identity of `max`, used to initialise
    /// MaxPool accumulators (the paper initialises the output tile with
    /// "the minimum value of the data type in use").
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// The difference between 1.0 and the next larger representable number.
    pub const EPSILON: F16 = F16(0x1400);

    /// Size of one element in bytes; the fractal geometry (`C0 = 16`,
    /// 4096-bit fractals) depends on this being 2.
    pub const SIZE_BYTES: usize = 2;

    /// Construct from a raw bit pattern.
    #[inline(always)]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline(always)]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    #[inline(always)]
    pub fn from_f32(x: f32) -> Self {
        F16(f16_bits_from_f32(x))
    }

    /// Widen to `f32` (exact: every `f16` is representable in `f32`).
    #[inline(always)]
    pub fn to_f32(self) -> f32 {
        f32_from_f16_bits(self.0)
    }

    /// Convert from `f64` (via `f32`; double rounding is harmless here
    /// because the tests only use values representable in `f32`).
    #[inline(always)]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Widen to `f64`.
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// `true` if the value is +inf or -inf.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// `true` if the value is subnormal (non-zero with a zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// `true` for +0.0 and -0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// `true` if the sign bit is set (note: -0.0 is sign-negative).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// IEEE 754 `maximum`-like max as implemented by hardware vmax:
    /// if one operand is NaN, returns the other; -0.0 < +0.0.
    #[inline]
    pub fn max(self, other: F16) -> F16 {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.total_cmp(other) == core::cmp::Ordering::Less {
            other
        } else {
            self
        }
    }

    /// IEEE 754 `minimum`-like min (NaN-ignoring), dual of [`F16::max`].
    #[inline]
    pub fn min(self, other: F16) -> F16 {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.total_cmp(other) == core::cmp::Ordering::Greater {
            other
        } else {
            self
        }
    }

    /// Total order over bit patterns (IEEE 754 `totalOrder`): orders
    /// -NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN.
    #[inline]
    pub fn total_cmp(self, other: F16) -> core::cmp::Ordering {
        // Map the sign-magnitude representation to two's complement order.
        let a = Self::order_key(self.0);
        let b = Self::order_key(other.0);
        a.cmp(&b)
    }

    #[inline(always)]
    fn order_key(bits: u16) -> i32 {
        let v = bits as i32;
        if v & 0x8000 != 0 {
            // negative: larger magnitude sorts earlier; the extra -1 makes
            // -0.0 sort strictly before +0.0 (IEEE totalOrder)
            -(v & 0x7FFF) - 1
        } else {
            v
        }
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & 0x7FFF)
    }

    /// Negation (flips the sign bit, exact even for NaN/inf). Also
    /// available through the `Neg` operator.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }

    /// Units-in-last-place distance between two finite values, used by the
    /// test suite to assert "correct within N ulp".
    pub fn ulp_distance(self, other: F16) -> u32 {
        let a = Self::order_key(self.0);
        let b = Self::order_key(other.0);
        (a - b).unsigned_abs()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} /0x{:04x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        // IEEE partial order: NaN compares unordered; -0 == +0.
        let (a, b) = (self.to_f32(), other.to_f32());
        a.partial_cmp(&b)
    }
}

impl From<f32> for F16 {
    #[inline]
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<i16> for F16 {
    #[inline]
    fn from(x: i16) -> Self {
        F16::from_f32(x as f32)
    }
}

/// Reinterpret a slice of `F16` as raw little-endian bytes.
///
/// The simulator's scratchpad buffers are byte-addressed, so kernels and
/// tests use this to move tensors in and out without copying element by
/// element.
pub fn as_bytes(slice: &[F16]) -> &[u8] {
    // SAFETY: F16 is repr(transparent) over u16 with alignment 2 and no
    // padding; any bit pattern is a valid F16.
    unsafe { core::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), slice.len() * 2) }
}

/// Reinterpret raw bytes as a slice of `F16`. Panics if the byte slice is
/// misaligned or has odd length.
pub fn from_bytes(bytes: &[u8]) -> &[F16] {
    assert!(
        bytes.len().is_multiple_of(2),
        "odd byte length {}",
        bytes.len()
    );
    assert!(
        (bytes.as_ptr() as usize).is_multiple_of(core::mem::align_of::<F16>()),
        "misaligned f16 byte slice"
    );
    // SAFETY: alignment and length checked above; any bit pattern is valid.
    unsafe { core::slice::from_raw_parts(bytes.as_ptr().cast::<F16>(), bytes.len() / 2) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_correct_bit_patterns() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert!(F16::INFINITY.to_f32().is_infinite());
        assert!(F16::NEG_INFINITY.to_f32().is_infinite());
        assert!(F16::NEG_INFINITY.to_f32() < 0.0);
        assert!(F16::NAN.is_nan());
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0_f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0_f32.powi(-10));
    }

    #[test]
    fn classification() {
        assert!(F16::ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(!F16::ZERO.is_sign_negative());
        assert!(F16::NAN.is_nan());
        assert!(!F16::INFINITY.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::ONE.is_finite());
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
    }

    #[test]
    fn max_is_neg_infinity_identity() {
        for bits in [0x0000u16, 0x8000, 0x3C00, 0xBC00, 0x7BFF, 0xFBFF, 0x0001] {
            let x = F16(bits);
            assert_eq!(F16::NEG_INFINITY.max(x), x, "max(-inf, {x:?})");
            assert_eq!(x.max(F16::NEG_INFINITY), x, "max({x:?}, -inf)");
        }
    }

    #[test]
    fn max_ignores_nan_like_hardware() {
        let one = F16::ONE;
        assert_eq!(F16::NAN.max(one), one);
        assert_eq!(one.max(F16::NAN), one);
        assert!(F16::NAN.max(F16::NAN).is_nan());
    }

    #[test]
    fn min_is_dual_of_max() {
        let a = F16::from_f32(-3.0);
        let b = F16::from_f32(7.5);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(F16::INFINITY.min(b), b);
    }

    #[test]
    fn total_cmp_orders_signed_zeros_and_infinities() {
        use core::cmp::Ordering::*;
        assert_eq!(F16::NEG_ZERO.total_cmp(F16::ZERO), Less);
        assert_eq!(F16::NEG_INFINITY.total_cmp(F16::MIN), Less);
        assert_eq!(F16::MAX.total_cmp(F16::INFINITY), Less);
        assert_eq!(F16::ONE.total_cmp(F16::ONE), Equal);
        assert_eq!(F16::from_f32(-2.0).total_cmp(F16::from_f32(-1.0)), Less);
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!(F16::ONE.neg(), F16::NEG_ONE);
        assert_eq!(F16::NEG_ONE.abs(), F16::ONE);
        assert_eq!(F16::NEG_INFINITY.neg(), F16::INFINITY);
        assert_eq!(F16::NEG_ZERO.abs(), F16::ZERO);
    }

    #[test]
    fn ulp_distance_adjacent() {
        let one = F16::ONE;
        let next = F16(one.0 + 1);
        assert_eq!(one.ulp_distance(next), 1);
        assert_eq!(one.ulp_distance(one), 0);
        // totalOrder treats the zeros as distinct adjacent points
        assert_eq!(F16::NEG_ZERO.ulp_distance(F16::ZERO), 1);
    }

    #[test]
    fn byte_views_round_trip() {
        let xs = vec![F16::ONE, F16::from_f32(-2.5), F16::NAN, F16(0x1234)];
        let bytes = as_bytes(&xs);
        assert_eq!(bytes.len(), 8);
        let back = from_bytes(bytes);
        assert_eq!(back, &xs[..]);
        // little-endian check: 1.0 = 0x3C00 => bytes [0x00, 0x3C]
        assert_eq!(&bytes[0..2], &[0x00, 0x3C]);
    }

    #[test]
    #[should_panic(expected = "odd byte length")]
    fn from_bytes_rejects_odd_length() {
        let bytes = [0u8; 3];
        let _ = from_bytes(&bytes);
    }
}
