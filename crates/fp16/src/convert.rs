//! Bit-exact conversions between IEEE 754 binary32 and binary16.
//!
//! `f32 -> f16` uses round-to-nearest, ties-to-even — the default IEEE
//! rounding mode and the one hardware `vconv` instructions implement.
//! `f16 -> f32` is exact.

/// Convert an `f32` to the nearest `f16` bit pattern (round-to-nearest-even).
///
/// Handles normals, subnormals, signed zeros, infinities, NaN (preserving
/// "quietness" by setting the top mantissa bit), overflow to infinity and
/// underflow to zero.
pub fn f16_bits_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xFF) as i32;
    let man32 = bits & 0x007F_FFFF;

    if exp32 == 0xFF {
        // Infinity or NaN.
        return if man32 == 0 {
            sign | 0x7C00
        } else {
            // Quiet NaN; keep top mantissa bits where possible.
            let payload = (man32 >> 13) as u16 & 0x03FF;
            sign | 0x7C00 | payload | 0x0200
        };
    }

    // Unbiased exponent.
    let exp = exp32 - 127;

    if exp > 15 {
        // Overflows f16 range (max normal exponent is 15) -> infinity.
        return sign | 0x7C00;
    }

    if exp >= -14 {
        // Normal f16 range. 10-bit mantissa; round 23 -> 10 bits.
        let exp16 = (exp + 15) as u32; // 1..=30
        let man = man32;
        let shifted = man >> 13;
        let round_bit = (man >> 12) & 1;
        let sticky = man & 0x0FFF;
        let mut m = shifted;
        if round_bit == 1 && (sticky != 0 || (shifted & 1) == 1) {
            m += 1;
        }
        // Addition (not OR) so a mantissa carry (m == 0x400) propagates
        // into the exponent; if the exponent was 30 this correctly yields
        // infinity 0x7C00.
        let result = (exp16 << 10) + m;
        return sign | result as u16;
    }

    if exp >= -25 {
        // Subnormal f16 (or rounds up into the smallest normal).
        // Value = 1.man32 * 2^exp; align into a 10-bit subnormal mantissa
        // with exponent -14. The implicit leading 1 must be materialised.
        let man = man32 | 0x0080_0000; // 24-bit significand
        let shift = (-exp - 14 + 13) as u32; // in 14..=24 for exp in -25..=-15
        debug_assert!((14..=24).contains(&shift));
        let shifted = man >> shift;
        let round_mask = 1u32 << (shift - 1);
        let sticky_mask = round_mask - 1;
        let round_bit = (man & round_mask) != 0;
        let sticky = (man & sticky_mask) != 0;
        let mut m = shifted;
        if round_bit && (sticky || (shifted & 1) == 1) {
            m += 1;
        }
        // m can reach 0x400 = smallest normal; the bit layout is again
        // continuous so plain addition is correct.
        return sign | m as u16;
    }

    // Underflows to (signed) zero.
    sign
}

/// Convert an `f16` bit pattern to the exactly equal `f32`.
pub fn f32_from_f16_bits(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let man = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if man == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = man * 2^-24. Normalise into f32: with the
            // most significant set bit of `man` at index k, the value is
            // 1.xxx * 2^(k - 24).
            let k = 31 - man.leading_zeros(); // 0..=9
            let exp32 = k + 103; // 127 + (k - 24)
            let man_norm = (man << (10 - k)) & 0x03FF; // drop implicit bit
            sign | (exp32 << 23) | (man_norm << 13)
        }
    } else if exp == 0x1F {
        if man == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 | (man << 13) // NaN, keep payload, force quiet
        }
    } else {
        let exp32 = exp + 127 - 15;
        sign | (exp32 << 23) | (man << 13)
    };
    f32::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive: every f16 bit pattern must survive a round trip through
    /// f32 (the conversion f16->f32 is exact, so f32->f16 must return the
    /// original bits, modulo NaN payload quieting).
    #[test]
    fn exhaustive_f16_to_f32_round_trip() {
        for bits in 0u16..=u16::MAX {
            let x = f32_from_f16_bits(bits);
            let back = f16_bits_from_f32(x);
            let exp = (bits >> 10) & 0x1F;
            let man = bits & 0x03FF;
            if exp == 0x1F && man != 0 {
                // NaN: sign+quiet bit preserved, payload may be altered.
                assert!(
                    (back >> 10) & 0x1F == 0x1F && back & 0x03FF != 0,
                    "NaN {bits:04x} -> {back:04x}"
                );
            } else {
                assert_eq!(back, bits, "round trip failed for {bits:04x} ({x})");
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(f16_bits_from_f32(0.0), 0x0000);
        assert_eq!(f16_bits_from_f32(-0.0), 0x8000);
        assert_eq!(f16_bits_from_f32(1.0), 0x3C00);
        assert_eq!(f16_bits_from_f32(-2.0), 0xC000);
        assert_eq!(f16_bits_from_f32(65504.0), 0x7BFF);
        assert_eq!(f16_bits_from_f32(0.5), 0x3800);
        assert_eq!(f16_bits_from_f32(0.099975586), 0x2E66); // nearest to 0.1
        assert_eq!(f32_from_f16_bits(0x3555), 0.33325195); // ~1/3
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(f16_bits_from_f32(65520.0), 0x7C00); // ties-to-even up
        assert_eq!(f16_bits_from_f32(1e9), 0x7C00);
        assert_eq!(f16_bits_from_f32(-1e9), 0xFC00);
        assert_eq!(f16_bits_from_f32(f32::INFINITY), 0x7C00);
        assert_eq!(f16_bits_from_f32(f32::NEG_INFINITY), 0xFC00);
    }

    #[test]
    fn underflow_rounds_to_zero() {
        assert_eq!(f16_bits_from_f32(1e-9), 0x0000);
        assert_eq!(f16_bits_from_f32(-1e-9), 0x8000);
        // Half of the smallest subnormal ties to even -> zero.
        let half_min_sub = 2.0_f32.powi(-25);
        assert_eq!(f16_bits_from_f32(half_min_sub), 0x0000);
        // Just above half of the smallest subnormal rounds up.
        let just_above = f32::from_bits(half_min_sub.to_bits() + 1);
        assert_eq!(f16_bits_from_f32(just_above), 0x0001);
    }

    #[test]
    fn subnormal_boundaries() {
        // Largest subnormal: (1023/1024) * 2^-14.
        let largest_sub = 1023.0_f32 * 2.0_f32.powi(-24);
        assert_eq!(f16_bits_from_f32(largest_sub), 0x03FF);
        // Smallest normal.
        assert_eq!(f16_bits_from_f32(2.0_f32.powi(-14)), 0x0400);
        // Smallest subnormal.
        assert_eq!(f16_bits_from_f32(2.0_f32.powi(-24)), 0x0001);
    }

    #[test]
    fn ties_round_to_even() {
        // 1.0 + 2^-11 is exactly between 1.0 (0x3C00) and 1.0+2^-10
        // (0x3C01); even mantissa wins -> 0x3C00.
        let tie = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(f16_bits_from_f32(tie), 0x3C00);
        // 1.0 + 3*2^-11 is between 0x3C01 and 0x3C02; even -> 0x3C02.
        let tie2 = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(f16_bits_from_f32(tie2), 0x3C02);
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Value slightly below 2.0 that rounds up across the binade.
        let x = 1.99999; // rounds to 2.0 in f16
        assert_eq!(f16_bits_from_f32(x), 0x4000);
        // Value slightly below 65536 that would round to 2^16 -> infinity.
        assert_eq!(f16_bits_from_f32(65535.0), 0x7C00);
    }

    #[test]
    fn nan_conversion_preserves_nanness_and_sign() {
        let qnan = f32::NAN;
        let b = f16_bits_from_f32(qnan);
        assert_eq!((b >> 10) & 0x1F, 0x1F);
        assert_ne!(b & 0x03FF, 0);
        let neg_nan = f32::from_bits(f32::NAN.to_bits() | 0x8000_0000);
        let nb = f16_bits_from_f32(neg_nan);
        assert_ne!(nb & 0x8000, 0);
        assert!(f32_from_f16_bits(nb).is_nan());
    }
}
