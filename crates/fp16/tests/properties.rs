//! Property-based tests for the software binary16 implementation, checked
//! against the host's native f32 arithmetic as oracle.

use dv_fp16::{f16_bits_from_f32, f32_from_f16_bits, F16};
use proptest::prelude::*;

/// Strategy generating arbitrary *finite* f16 values via their bit patterns.
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

/// Strategy generating any non-NaN f16 (finite or infinite).
fn non_nan_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("non-nan", |x| !x.is_nan())
}

proptest! {
    /// f32 -> f16 -> f32 must be the identity for values already exactly
    /// representable in f16.
    #[test]
    fn round_trip_representable(x in finite_f16()) {
        let as_f32 = x.to_f32();
        prop_assert_eq!(F16::from_f32(as_f32), x);
    }

    /// Conversion from f32 must pick the nearest f16: no adjacent f16
    /// value may be strictly closer to the original. (At binade
    /// boundaries the spacing differs on each side, so this is checked
    /// against both actual neighbours rather than a single spacing.)
    #[test]
    fn conversion_is_nearest(x in -70000.0f32..70000.0f32) {
        let h = F16::from_f32(x);
        if h.is_finite() {
            let v = h.to_f32();
            let err = (v - x).abs();
            // neighbours in the totalOrder (skip across NaN/inf edges)
            for nb_bits in [h.to_bits().wrapping_add(1), h.to_bits().wrapping_sub(1),
                            h.to_bits() ^ 0x8000] {
                let nb = F16::from_bits(nb_bits);
                if nb.is_finite() {
                    let nb_err = (nb.to_f32() - x).abs();
                    prop_assert!(err <= nb_err,
                        "x={x}: chose {v} (err {err}) but {} is closer (err {nb_err})",
                        nb.to_f32());
                }
            }
        }
    }

    /// max is commutative, associative and idempotent over non-NaN values.
    #[test]
    fn max_lattice_laws(a in non_nan_f16(), b in non_nan_f16(), c in non_nan_f16()) {
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.max(b).max(c), a.max(b.max(c)));
        prop_assert_eq!(a.max(a), a);
    }

    /// min/max absorption: max(a, min(a, b)) == a.
    #[test]
    fn min_max_absorption(a in non_nan_f16(), b in non_nan_f16()) {
        prop_assert_eq!(a.max(a.min(b)), a);
        prop_assert_eq!(a.min(a.max(b)), a);
    }

    /// total_cmp is antisymmetric and transitive (sampled).
    #[test]
    fn total_cmp_consistency(a in any::<u16>().prop_map(F16::from_bits),
                             b in any::<u16>().prop_map(F16::from_bits)) {
        let ab = a.total_cmp(b);
        let ba = b.total_cmp(a);
        prop_assert_eq!(ab, ba.reverse());
    }

    /// Addition is commutative and matches the correctly rounded f32 sum.
    #[test]
    fn add_commutative_and_correct(a in finite_f16(), b in finite_f16()) {
        prop_assert_eq!(a + b, b + a);
        let expect = F16::from_f32(a.to_f32() + b.to_f32());
        prop_assert_eq!(a + b, expect);
    }

    /// Multiplication by one is the identity; by zero gives (signed) zero
    /// for finite values.
    #[test]
    fn mul_identities(a in finite_f16()) {
        prop_assert_eq!(a * F16::ONE, a);
        prop_assert!((a * F16::ZERO).is_zero());
    }

    /// x + (-x) == +0 or -0 for finite x.
    #[test]
    fn additive_inverse(a in finite_f16()) {
        prop_assert!((a + (-a)).is_zero());
    }

    /// Exhaustively-sampled conversion agreement with `as`-casting through
    /// the bit-level reference path.
    #[test]
    fn bits_of_conversion_stable(bits in any::<u16>()) {
        let via_f32 = f16_bits_from_f32(f32_from_f16_bits(bits));
        let exp = (bits >> 10) & 0x1F;
        let man = bits & 0x03FF;
        if exp == 0x1F && man != 0 {
            prop_assert!((via_f32 >> 10) & 0x1F == 0x1F && via_f32 & 0x03FF != 0);
        } else {
            prop_assert_eq!(via_f32, bits);
        }
    }

    /// Ordering agrees with f32 ordering for non-NaN values.
    #[test]
    fn partial_ord_matches_f32(a in non_nan_f16(), b in non_nan_f16()) {
        prop_assert_eq!(a.partial_cmp(&b), a.to_f32().partial_cmp(&b.to_f32()));
    }
}
