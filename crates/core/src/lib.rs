#![deny(missing_docs)]
//! Im2col/Col2im-based pooling for the DaVinci architecture — the paper's
//! contribution (Section V), plus every baseline it is evaluated against
//! (Section VI).
//!
//! # Implementations
//!
//! Forward MaxPool (and AvgPool):
//!
//! | builder | paper reference | instruction shape |
//! |---|---|---|
//! | `standard` | Listing 1, "Maxpool" in Figs. 7a/8 | strided `vmax`, 16/128 mask lanes, `Oh*Ow*Kh` issues (saturates automatically at stride width 1, Fig. 8a) |
//! | `im2col` | Listing 2, "Maxpool with Im2col" | `Im2Col` loads L1 -> UB into `(Kh, Kw, Oh, Ow, C0)`; `Kh*Kw` fully saturated `vmax` |
//! | `expansion` | "Maxpool with expansion", Fig. 8 | same reduction, but the layout change is done by regular vector copies inside the UB |
//! | `xysplit` | "X-Y split", Fig. 8b (Lai et al.) | width reduction then height reduction with an intermediate tensor |
//!
//! Backward MaxPool (and AvgPool):
//!
//! | builder | paper reference | merge step |
//! |---|---|---|
//! | `standard` | Listing 3 + merge | `vmul` then scattered 16-lane `vadd`, `Kh*Kw*Oh*Ow` issues, no repeat |
//! | `col2im` | Section V-B | `vmul` then `Col2Im`, `Kh*Kw` issues per tile |
//!
//! All builders lower to [`dv_isa::Program`]s executed by the `dv-sim`
//! simulator, tile against the real scratchpad capacities, and produce
//! **bit-identical f16 results** to the golden references in
//! `dv_tensor::reference` (see this crate's test suite).
//!
//! The easiest entry point is [`PoolingEngine`], which owns a simulated
//! chip and moves tensors in and out of global memory for you.

pub mod avgpool;
pub mod maxpool;
pub mod problem;
pub mod runner;
pub mod schedule;
pub mod workloads;

pub use maxpool::{build_forward_batched, tiling_threshold};
pub use problem::{ForwardImpl, LowerError, MergeImpl, PoolProblem};
pub use runner::{PoolRun, PoolingEngine, RunError};
pub use schedule::{
    chip_cycle_floor, choose_backward_algorithm, choose_forward_algorithm, choose_partition,
    program_cycle_floor, Algorithm, AlgorithmChoice, PartitionAxis, Prediction, Schedule,
};
pub use workloads::{fig7_workloads, table1_workloads, CnnWorkload};
