//! The CNN pooling workloads of Table I.
//!
//! "Table I shows multiple CNNs and the input sizes of four of their
//! Maxpool layers. The inputs are shown in the HWC layout and they were
//! gathered on the Keras framework. All configurations use a kernel size
//! of (3, 3) and a stride of (2, 2), except for VGG16, which has a kernel
//! size and stride of (2, 2)."

use dv_tensor::{PoolParams, C0};

/// One MaxPool layer configuration from Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnnWorkload {
    /// Network name as printed in Table I.
    pub cnn: &'static str,
    /// Layer index within the network's pooling layers (1-based, "Input
    /// 1" … "Input 4").
    pub input_idx: usize,
    /// Input height (HWC layout in the table).
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel/stride configuration.
    pub params: PoolParams,
    /// Whether the paper's Fig. 7 evaluation uses this configuration
    /// (the bold entries of Table I: InceptionV3 inputs 1–3).
    pub evaluated_in_fig7: bool,
}

impl CnnWorkload {
    /// `C1 = ceil(C / C0)` for the fractal layout.
    pub fn c1(&self) -> usize {
        self.c.div_ceil(C0)
    }

    /// Output extents.
    pub fn out_dims(&self) -> (usize, usize) {
        self.params
            .out_dims(self.h, self.w)
            .expect("table shapes are valid")
    }
}

/// All rows of Table I.
pub fn table1_workloads() -> Vec<CnnWorkload> {
    let k3s2 = PoolParams::K3S2;
    let k2s2 = PoolParams::K2S2;
    let mut v = Vec::new();
    // InceptionV3 — the bold (evaluated) configurations are inputs 1-3.
    for (i, (h, w, c), fig7) in [
        (1, (147, 147, 64), true),
        (2, (71, 71, 192), true),
        (3, (35, 35, 288), true),
        (4, (17, 17, 768), false),
    ] {
        v.push(CnnWorkload {
            cnn: "InceptionV3",
            input_idx: i,
            h,
            w,
            c,
            params: k3s2,
            evaluated_in_fig7: fig7,
        });
    }
    // Xception.
    for (i, (h, w, c)) in [
        (1, (147, 147, 128)),
        (2, (74, 74, 256)),
        (3, (37, 37, 728)),
        (4, (19, 19, 1024)),
    ] {
        v.push(CnnWorkload {
            cnn: "Xception",
            input_idx: i,
            h,
            w,
            c,
            params: k3s2,
            evaluated_in_fig7: false,
        });
    }
    // Resnet50 — a single maxpool.
    v.push(CnnWorkload {
        cnn: "Resnet50",
        input_idx: 1,
        h: 112,
        w: 112,
        c: 64,
        params: k3s2,
        evaluated_in_fig7: false,
    });
    // VGG16 — kernel and stride (2, 2).
    for (i, (h, w, c)) in [
        (1, (224, 224, 64)),
        (2, (112, 112, 128)),
        (3, (56, 56, 256)),
        (4, (28, 28, 512)),
    ] {
        v.push(CnnWorkload {
            cnn: "VGG16",
            input_idx: i,
            h,
            w,
            c,
            params: k2s2,
            evaluated_in_fig7: false,
        });
    }
    v
}

/// The three bold InceptionV3 configurations Fig. 7 evaluates.
pub fn fig7_workloads() -> Vec<CnnWorkload> {
    table1_workloads()
        .into_iter()
        .filter(|w| w.evaluated_in_fig7)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_13_rows() {
        let t = table1_workloads();
        assert_eq!(t.len(), 13);
        assert_eq!(t.iter().filter(|w| w.cnn == "InceptionV3").count(), 4);
        assert_eq!(t.iter().filter(|w| w.cnn == "Xception").count(), 4);
        assert_eq!(t.iter().filter(|w| w.cnn == "Resnet50").count(), 1);
        assert_eq!(t.iter().filter(|w| w.cnn == "VGG16").count(), 4);
    }

    #[test]
    fn fig7_selects_the_bold_inception_rows() {
        let f = fig7_workloads();
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|w| w.cnn == "InceptionV3"));
        assert_eq!(
            f.iter().map(|w| (w.h, w.w, w.c)).collect::<Vec<_>>(),
            vec![(147, 147, 64), (71, 71, 192), (35, 35, 288)]
        );
    }

    #[test]
    fn channel_splits() {
        let t = table1_workloads();
        let inception1 = &t[0];
        assert_eq!(inception1.c1(), 4); // 64 / 16
        let xception3 = t
            .iter()
            .find(|w| w.cnn == "Xception" && w.input_idx == 3)
            .unwrap();
        assert_eq!(xception3.c1(), 46); // ceil(728 / 16)
        assert_eq!(xception3.out_dims(), (18, 18));
    }

    #[test]
    fn vgg_uses_2x2_nonoverlapping() {
        let t = table1_workloads();
        let vgg = t.iter().find(|w| w.cnn == "VGG16").unwrap();
        assert!(!vgg.params.patches_overlap());
        assert_eq!(vgg.out_dims(), (112, 112));
    }
}
