//! AvgPool lowering (paper, Section V-C).
//!
//! "The forward and backward operators of Avgpool are similar to those
//! described before. But opposed to Maxpool, the forward implementation
//! reduces using sum instead of max … a new operation is needed to
//! compute an element-wise division before saving the final output. As
//! for the backward operator, there is no need to use the Argmax mask as
//! an input" — so the builders here are thin wrappers over the shared
//! MaxPool lowerings with a [`Reduction::Sum`] reduction and a uniform
//! backward source.

use crate::maxpool::{
    build_backward, build_backward_batched, build_forward_batched, BackwardSource, Reduction,
};
use crate::problem::{ForwardImpl, LowerError, MergeImpl, PoolProblem};
use crate::schedule::Schedule;
use dv_fp16::F16;
use dv_isa::Program;
use dv_sim::Capacities;

/// The `1/(Kh*Kw)` scale constant used by both forward and backward.
pub fn avg_scale(prob: &PoolProblem) -> F16 {
    F16::from_f32(1.0 / (prob.params.kh * prob.params.kw) as f32)
}

/// Build AvgPool forward programs. The paper evaluates the `Standard` and
/// `Im2col` variants ("the access pattern stays the same and can benefit
/// from using Im2Col"); the other lowerings also work and are accepted.
pub fn build_avgpool_forward(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    gm_in: usize,
    gm_out: usize,
    caps: Capacities,
) -> Result<Vec<Program>, LowerError> {
    build_avgpool_forward_parallel(prob, impl_, gm_in, gm_out, caps, 1, Schedule::default())
}

/// Like [`build_avgpool_forward`] with band-level parallel splitting over
/// up to `parallel` programs and overlap-schedule control (see
/// [`crate::maxpool::build_forward_parallel`]).
#[allow(clippy::too_many_arguments)]
pub fn build_avgpool_forward_parallel(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    gm_in: usize,
    gm_out: usize,
    caps: Capacities,
    parallel: usize,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    if impl_ == ForwardImpl::XYSplit {
        // The split reduction re-associates the f16 sum and would not be
        // bit-identical to the reference; the paper only uses the X-Y
        // split for MaxPool.
        return Err(LowerError::Unsupported(
            "AvgPool X-Y split re-associates the f16 sum".into(),
        ));
    }
    crate::maxpool::build_forward_parallel(
        prob,
        impl_,
        Reduction::Sum {
            scale: avg_scale(prob),
        },
        gm_in,
        gm_out,
        caps,
        parallel,
        sched,
    )
}

/// Batch-folded AvgPool forward: one program per `c1` slice covering all
/// `N` planes through Mode-0 `Im2Col` repeat chains (see
/// [`crate::maxpool::build_forward_batched`]). Im2col-only by
/// construction — the fold *is* the Mode-0 chain.
pub fn build_avgpool_forward_batched(
    prob: &PoolProblem,
    gm_in: usize,
    gm_out: usize,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_forward_batched(
        prob,
        Reduction::Sum {
            scale: avg_scale(prob),
        },
        gm_in,
        gm_out,
        None,
        caps,
        sched,
    )
}

/// Build AvgPool backward programs: the multiply step collapses to a
/// `vmuls` of the gradients (uniform mask), followed by the same merge —
/// scattered `vadd` or `Col2Im`. `sched` is forwarded to
/// [`build_backward`].
pub fn build_avgpool_backward(
    prob: &PoolProblem,
    merge: MergeImpl,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_backward(
        prob,
        merge,
        BackwardSource::AvgUniform {
            scale: avg_scale(prob),
        },
        gm_grad,
        gm_dx,
        caps,
        sched,
    )
}

/// Per-`c1`-consolidated AvgPool backward (see
/// [`crate::maxpool::build_backward_batched`]).
pub fn build_avgpool_backward_batched(
    prob: &PoolProblem,
    merge: MergeImpl,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_backward_batched(
        prob,
        merge,
        BackwardSource::AvgUniform {
            scale: avg_scale(prob),
        },
        gm_grad,
        gm_dx,
        caps,
        sched,
    )
}
