//! MaxPool lowering: forward (four implementations), forward with argmax
//! mask, and backward (two merge implementations).

pub mod backward;
pub mod forward;

pub use backward::{build_backward, BackwardSource};
pub use forward::{
    build_forward, build_forward_parallel, build_forward_with_argmax,
    build_forward_with_argmax_parallel, tiling_threshold, Reduction,
};
