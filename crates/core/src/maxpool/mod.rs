//! MaxPool lowering: forward (four implementations), forward with argmax
//! mask, and backward (two merge implementations).

pub mod backward;
pub mod batched;
pub mod forward;

pub use backward::{build_backward, build_backward_batched, BackwardSource};
pub use batched::build_forward_batched;
pub use forward::{
    build_forward, build_forward_parallel, build_forward_with_argmax,
    build_forward_with_argmax_parallel, tiling_threshold, Reduction,
};
