//! Forward pooling lowerings (paper, Section V-A and VI-B).
//!
//! Every builder produces one [`Program`] per `(n, c1)` plane — the unit
//! the chip parallelises — and row-band tiles inside the program when the
//! plane exceeds the Unified Buffer.

use crate::problem::{ForwardImpl, LowerError, PoolProblem};
use crate::schedule::{self, Schedule};
use dv_akg::{
    balanced_chunks, band_input_rows, dma, elementwise, fill_region, max_row_band, row_bands,
    strided_accumulate, Band, BandMode, BandSlots, UbArena,
};
use dv_fp16::F16;
use dv_isa::{
    Addr, Im2Col, Im2ColGeometry, Instr, Mask, Program, RepeatMode, VectorInstr, VectorOp,
    MAX_REPEAT,
};
use dv_sim::Capacities;
use dv_tensor::{PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};

/// The reduction a forward pooling applies (MaxPool / AvgPool share all
/// four lowerings; AvgPool adds a final scale — Section V-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reduction {
    /// `vmax` accumulation from `-inf`.
    Max,
    /// `vadd` accumulation from `0`, then one `vmuls` by `scale`
    /// (`1/(Kh*Kw)`).
    Sum {
        /// the post-reduction scale factor
        scale: F16,
    },
}

impl Reduction {
    pub(crate) fn op(self) -> VectorOp {
        match self {
            Reduction::Max => VectorOp::Max,
            Reduction::Sum { .. } => VectorOp::Add,
        }
    }

    pub(crate) fn init(self) -> F16 {
        match self {
            Reduction::Max => F16::NEG_INFINITY,
            Reduction::Sum { .. } => F16::ZERO,
        }
    }
}

const ROW: usize = C0 * 2; // bytes of one C0 group

/// Build forward pooling programs, one per `(n, c1)` plane.
///
/// `gm_in`/`gm_out` are the global-memory byte offsets of the NC1HWC0
/// input and output tensors.
pub fn build_forward(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    reduction: Reduction,
    gm_in: usize,
    gm_out: usize,
    caps: Capacities,
) -> Result<Vec<Program>, LowerError> {
    build_forward_inner(
        prob,
        impl_,
        reduction,
        gm_in,
        gm_out,
        None,
        caps,
        1,
        Schedule::default(),
    )
}

/// Like [`build_forward`], but split each plane's row bands over up to
/// `parallel` total programs so a chip with more cores than `(N, C1)`
/// planes still parallelises ("each core calculates a share of the
/// output", Section VII). Forward bands write disjoint output rows, so
/// they partition freely; backward keeps one program per plane because
/// adjacent bands share a halo.
///
/// `sched` controls cross-band overlap: with [`Schedule::double`] set
/// and band splitting active, the load of band `i + 1` is issued before
/// the reduction of band `i` — through ping-pong (A/B) slots, or, when
/// [`Schedule::rotate`] is set and the per-pipe cost predictor approves,
/// through a versioned single-slot layout the dual-pipe renamer rotates
/// (see [`crate::schedule`]). Results are bit-identical in every mode
/// (execution is program-order).
#[allow(clippy::too_many_arguments)]
pub fn build_forward_parallel(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    reduction: Reduction,
    gm_in: usize,
    gm_out: usize,
    caps: Capacities,
    parallel: usize,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_forward_inner(
        prob, impl_, reduction, gm_in, gm_out, None, caps, parallel, sched,
    )
}

/// Build forward pooling that additionally stores the argmax mask (in the
/// im2col patch layout) at `gm_mask` — the Fig. 7b computation. Only the
/// `Standard` and `Im2col` implementations support the mask, and only
/// with `Reduction::Max`.
pub fn build_forward_with_argmax(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    gm_in: usize,
    gm_out: usize,
    gm_mask: usize,
    caps: Capacities,
) -> Result<Vec<Program>, LowerError> {
    if !matches!(impl_, ForwardImpl::Standard | ForwardImpl::Im2col) {
        return Err(LowerError::Unsupported(format!(
            "argmax mask is lowered only for Standard and Im2col (got {impl_:?})"
        )));
    }
    build_forward_inner(
        prob,
        impl_,
        Reduction::Max,
        gm_in,
        gm_out,
        Some(gm_mask),
        caps,
        1,
        Schedule::default(),
    )
}

/// Like [`build_forward_with_argmax`] with band-level parallel splitting
/// and double-buffering control (see [`build_forward_parallel`]).
#[allow(clippy::too_many_arguments)]
pub fn build_forward_with_argmax_parallel(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    gm_in: usize,
    gm_out: usize,
    gm_mask: usize,
    caps: Capacities,
    parallel: usize,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    if !matches!(impl_, ForwardImpl::Standard | ForwardImpl::Im2col) {
        return Err(LowerError::Unsupported(format!(
            "argmax mask is lowered only for Standard and Im2col (got {impl_:?})"
        )));
    }
    build_forward_inner(
        prob,
        impl_,
        Reduction::Max,
        gm_in,
        gm_out,
        Some(gm_mask),
        caps,
        parallel,
        sched,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_forward_inner(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    reduction: Reduction,
    gm_in: usize,
    gm_out: usize,
    gm_mask: Option<usize>,
    caps: Capacities,
    parallel: usize,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    let params = prob.params;
    // Padding support: the Im2Col instruction realises padding for free;
    // the other lowerings would need explicit border handling that the
    // paper's experiments never exercise ("No padding is used in them").
    if impl_ != ForwardImpl::Im2col && !params.padding.is_none() {
        return Err(LowerError::Unsupported(format!(
            "{impl_:?} lowering requires no padding"
        )));
    }
    // Dilation support: Im2col gets it from the instruction's geometry;
    // Standard gets it from strided addressing. Expansion and XYSplit
    // would need dilated gather patterns nobody benchmarks.
    if params.has_dilation() && !matches!(impl_, ForwardImpl::Im2col | ForwardImpl::Standard) {
        return Err(LowerError::Unsupported(format!(
            "{impl_:?} lowering does not support dilation"
        )));
    }
    // Ceil-mode overhang: windows past the input read synthesised zeros,
    // which only the coordinate-checked Im2Col gather can produce. Other
    // lowerings address the staged band directly and may only run ceil
    // geometries whose rounding happens to add no overhang.
    if impl_ != ForwardImpl::Im2col && params.ceil_mode {
        let overhang = params.ceil_overhang(prob.ih, prob.iw)?;
        if overhang != (0, 0) {
            return Err(LowerError::Unsupported(format!(
                "{impl_:?} lowering cannot read past the input \
                 (ceil-mode overhang {overhang:?})"
            )));
        }
    }

    let (oh, _ow) = prob.out_dims();
    let (mut boh, mut mode) = plan_band(prob, impl_, gm_mask.is_some(), caps, &sched)?;
    // When the chip has more cores than (N, C1) planes, shrink bands so
    // each plane yields enough independent bands to occupy its share of
    // cores (the scheduler trades tile size for parallelism).
    let planes = prob.n * prob.c1;
    let desired_groups = (parallel.max(1) / planes).max(1);
    if desired_groups > 1 {
        boh = boh.min(oh.div_ceil(desired_groups)).max(1);
    }

    // `row_bands` widens a single band to the full input extent, clamps
    // multi-band extents, and rejects padded multi-band requests with a
    // typed error.
    let bands = row_bands(&params, oh, boh, prob.ih)?;
    if bands.len() == 1 {
        mode = BandMode::Single;
    }

    // Distribute this plane count's bands over `parallel` programs:
    // forward bands touch disjoint output rows, so grouping contiguous
    // bands into separate programs lets idle cores take shares of a
    // plane when C1 < cores.
    let groups_per_plane = desired_groups.min(bands.len());

    let mut programs = Vec::with_capacity(planes * groups_per_plane);
    for (n, c1) in prob.planes() {
        let in_base = gm_in + prob.in_plane_offset(n, c1);
        let out_base = gm_out + prob.out_plane_offset(n, c1);
        // Balanced split: group sizes differ by at most one, so every
        // requested group draws work (`chunks(div_ceil)` can under-fill —
        // 5 bands over 4 groups gave (2, 2, 1): three shards for four
        // cores at the same 2-band makespan floor).
        for group in balanced_chunks(&bands, groups_per_plane) {
            // Cross-band overlap only pays off when this program cycles
            // through at least two bands; a single-band group keeps the
            // single-slot layout (and its exact instruction stream).
            let group_mode = if group.len() > 1 {
                mode
            } else {
                BandMode::Single
            };
            let layout =
                ForwardLayout::plan(prob, impl_, gm_mask.is_some(), boh, caps, group_mode)?;
            let mut p = Program::new();
            match group_mode {
                BandMode::PingPong => {
                    // Software pipeline: stage band i+1 into the alternate
                    // slot before reducing band i, so the MTE/SCU pipe runs
                    // ahead of the Vector pipe instead of WAR-stalling on it.
                    emit_load(&mut p, prob, impl_, in_base, &layout, &group[0], 0)?;
                    for (i, band) in group.iter().enumerate() {
                        if let Some(next) = group.get(i + 1) {
                            emit_load(&mut p, prob, impl_, in_base, &layout, next, i + 1)?;
                        }
                        emit_compute(
                            &mut p,
                            prob,
                            impl_,
                            reduction,
                            out_base,
                            &layout,
                            band,
                            i,
                            gm_mask,
                            (n, c1),
                        )?;
                    }
                }
                BandMode::Versioned => {
                    // Deferred-flush pipeline over ONE slot set: reduce
                    // band i, stage band i+1, then flush band i's output.
                    // Band i+1's Im2Cols land while band i's reads are
                    // still in flight only because the dual-pipe renamer
                    // rotates them into the reserved headroom; emitting
                    // the flush *after* the next load keeps the in-order
                    // MTE/SCU pipe from parking on band i's RAW-bound
                    // output DMA. Program order still reads band i's
                    // planes before band i+1's loads overwrite them, so
                    // results are bit-identical (only valid for Im2col —
                    // the one lowering whose load stage is pure pipe-0
                    // work against a disjoint L1 + cols region).
                    debug_assert_eq!(impl_, ForwardImpl::Im2col);
                    emit_load(&mut p, prob, impl_, in_base, &layout, &group[0], 0)?;
                    for (i, band) in group.iter().enumerate() {
                        emit_im2col_reduce(&mut p, prob, reduction, &layout, band, 0, gm_mask)?;
                        if let Some(next) = group.get(i + 1) {
                            emit_load(&mut p, prob, impl_, in_base, &layout, next, 0)?;
                        }
                        emit_im2col_flush(
                            &mut p,
                            prob,
                            out_base,
                            &layout,
                            band,
                            0,
                            gm_mask,
                            (n, c1),
                        )?;
                    }
                }
                BandMode::Single => {
                    for band in group {
                        emit_load(&mut p, prob, impl_, in_base, &layout, band, 0)?;
                        emit_compute(
                            &mut p,
                            prob,
                            impl_,
                            reduction,
                            out_base,
                            &layout,
                            band,
                            0,
                            gm_mask,
                            (n, c1),
                        )?;
                    }
                }
            }
            programs.push(p);
        }
    }
    Ok(programs)
}

/// Per-program placement of the band-cycled UB (and, for Im2col, L1)
/// regions. Planned once per band group so ping-pong (A/B) slots persist
/// across the bands the program cycles through. With [`BandMode::Single`]
/// every region has one slot at the same offset a per-band layout would
/// produce, so the single-buffered instruction stream is unchanged; with
/// [`BandMode::Versioned`] the slots are also single (identical
/// addresses) but the plan reserves headroom at the top of the UB so the
/// dual-pipe renamer can rotate the next band's writes into it.
struct ForwardLayout {
    /// Staged raw input rows (Standard / Expansion / XYSplit).
    ub_in: Option<BandSlots>,
    /// Column planes (Im2col / Expansion).
    ub_cols: Option<BandSlots>,
    /// X-Y split intermediate.
    ub_tmp: Option<BandSlots>,
    /// Output accumulator.
    ub_out: BandSlots,
    /// Argmax mask planes.
    ub_mask: Option<BandSlots>,
    /// L1 staging of the raw input band (Im2col only; slot A at 0).
    l1_in: BandSlots,
    /// Fractal-padded plane bytes at the planned band height.
    padded: usize,
}

impl ForwardLayout {
    fn plan(
        prob: &PoolProblem,
        impl_: ForwardImpl,
        with_mask: bool,
        boh_max: usize,
        caps: Capacities,
        mode: BandMode,
    ) -> Result<ForwardLayout, LowerError> {
        let params = &prob.params;
        let (_, ow) = prob.out_dims();
        let planes = params.kh * params.kw;
        let padded = PoolProblem::padded_plane_bytes(boh_max * ow);
        let in_bytes = band_input_rows(params, boh_max) * prob.iw * ROW;
        let out_bytes = boh_max * ow * ROW;
        let mut ub = UbArena::new(caps.ub);
        let mut l1_in = BandSlots { a: 0, b: None };
        let mask = |ub: &mut UbArena| -> Result<Option<BandSlots>, LowerError> {
            Ok(if with_mask {
                Some(ub.alloc_band_mode(planes * padded, mode)?)
            } else {
                None
            })
        };
        let (ub_in, ub_cols, ub_tmp, ub_out, ub_mask) = match impl_ {
            ForwardImpl::Standard => {
                let i = ub.alloc_band_mode(in_bytes, mode)?;
                let o = ub.alloc_band_mode(out_bytes, mode)?;
                let m = mask(&mut ub)?;
                (Some(i), None, None, o, m)
            }
            ForwardImpl::Im2col => {
                let c = ub.alloc_band_mode(planes * padded, mode)?;
                let o = ub.alloc_band_mode(padded, mode)?;
                let m = mask(&mut ub)?;
                if mode == BandMode::PingPong {
                    // `in_bytes` is a whole number of 32-byte rows, so
                    // slot B starts aligned; plan_band checked 2x fits.
                    debug_assert!(2 * in_bytes <= caps.l1);
                    l1_in.b = Some(in_bytes);
                }
                // A versioned layout keeps one L1 slot: the staging DMA
                // and the Im2Cols that read it share the in-order
                // MTE/SCU pipe, so the L1 WAR never binds past pipe
                // availability and the renamer never needs to rotate it.
                (None, Some(c), None, o, m)
            }
            ForwardImpl::Expansion => {
                let i = ub.alloc_band_mode(in_bytes, mode)?;
                let c = ub.alloc_band_mode(planes * padded, mode)?;
                let o = ub.alloc_band_mode(padded, mode)?;
                (Some(i), Some(c), None, o, None)
            }
            ForwardImpl::XYSplit => {
                let i = ub.alloc_band_mode(in_bytes, mode)?;
                let t = ub.alloc_band_mode(band_input_rows(params, boh_max) * ow * ROW, mode)?;
                let o = ub.alloc_band_mode(out_bytes, mode)?;
                (Some(i), None, Some(t), o, None)
            }
        };
        if mode == BandMode::Versioned {
            // One extra version of everything band-cycled, reserved on
            // top of every base slot so the scoreboard's high-water-mark
            // capacity check admits the rotations (plan_band verified 2x
            // fits). Never addressed by any instruction.
            ub.reserve_headroom(ub.used())?;
        }
        Ok(ForwardLayout {
            ub_in,
            ub_cols,
            ub_tmp,
            ub_out,
            ub_mask,
            l1_in,
            padded,
        })
    }
}

/// Emit the pipe-0 (MTE/SCU) stage of one band: everything that fills
/// the band's input slot and nothing that reads it.
fn emit_load(
    p: &mut Program,
    prob: &PoolProblem,
    impl_: ForwardImpl,
    in_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
) -> Result<(), LowerError> {
    match impl_ {
        ForwardImpl::Im2col => emit_im2col_load(p, prob, in_base, layout, band, slot),
        _ => {
            let ub_in = Addr::ub(layout.ub_in.expect("staged-input layout").of(slot));
            dma(
                p,
                Addr::gm(in_base + band.ih0 * prob.iw * ROW),
                ub_in,
                band.ih_len * prob.iw * ROW,
            )?;
            Ok(())
        }
    }
}

/// Emit the compute stage of one band: the reduction (and any argmax
/// compares) out of the band's slot, plus the result store.
#[allow(clippy::too_many_arguments)]
fn emit_compute(
    p: &mut Program,
    prob: &PoolProblem,
    impl_: ForwardImpl,
    reduction: Reduction,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
    gm_mask: Option<usize>,
    (n, c1): (usize, usize),
) -> Result<(), LowerError> {
    match impl_ {
        ForwardImpl::Standard => emit_standard_compute(
            p,
            prob,
            reduction,
            out_base,
            layout,
            band,
            slot,
            gm_mask,
            (n, c1),
        ),
        ForwardImpl::Im2col => emit_im2col_compute(
            p,
            prob,
            reduction,
            out_base,
            layout,
            band,
            slot,
            gm_mask,
            (n, c1),
        ),
        ForwardImpl::Expansion => {
            emit_expansion_compute(p, prob, reduction, out_base, layout, band, slot)
        }
        ForwardImpl::XYSplit => {
            emit_xysplit_compute(p, prob, reduction, out_base, layout, band, slot)
        }
    }
}

/// Unified-Buffer footprint of one band for each implementation, in
/// bytes. `boh` = output rows in the band.
pub(crate) fn ub_footprint(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    with_mask: bool,
    boh: usize,
) -> usize {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let in_band = band_input_rows(params, boh) * prob.iw * ROW;
    let out_band = boh * ow * ROW;
    let planes = params.kh * params.kw;
    let padded = PoolProblem::padded_plane_bytes(boh * ow);
    let mask = if with_mask { planes * padded } else { 0 };
    match impl_ {
        ForwardImpl::Standard => in_band + out_band + mask,
        // Im2col: the raw input stages in L1, the UB holds the column
        // planes plus a fractal-padded output.
        ForwardImpl::Im2col => (planes + 1) * padded + mask,
        ForwardImpl::Expansion => in_band + (planes + 1) * padded,
        ForwardImpl::XYSplit => {
            let tmp = band_input_rows(params, boh) * ow * ROW;
            in_band + tmp + out_band
        }
    }
}

/// Choose the band height and overlap mode: the largest band that fits
/// the UB (and, for Im2col, stages its input rows in L1).
///
/// When [`Schedule::double`] is set and the plane does not fit in one
/// band, the capacity query runs again against the halved budget (2x the
/// band footprint must fit) to size the overlapped plan; if even a
/// one-row band cannot be doubled, the plan falls back to single
/// buffering. The overlap mechanism is per implementation:
///
/// * **Im2col** keeps the MTE/SCU pipe nearly saturated by design — the
///   expansion work shares a pipe with the prefetch itself, and ping-pong
///   slots recover only the small Vector reduce tail (measured on the
///   Fig. 8 sweep, PR 3 declined them outright). With
///   [`Schedule::rotate`] the decline is no longer hardcoded: a
///   [`BandMode::Versioned`] single-slot plan (UB budget halved for the
///   renamer's headroom, L1 left whole) is adopted whenever the per-pipe
///   cost predictor says its pipelined makespan beats the serial plan.
/// * Every other implementation takes classic [`BandMode::PingPong`]
///   slots when they fit.
pub(crate) fn plan_band(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    with_mask: bool,
    caps: Capacities,
    sched: &Schedule,
) -> Result<(usize, BandMode), LowerError> {
    let (oh, _) = prob.out_dims();
    let fit = |ub_copies: usize, l1_copies: usize| -> Result<usize, dv_akg::TilingError> {
        let mut boh = max_row_band(oh, caps.ub, |b| {
            ub_copies * ub_footprint(prob, impl_, with_mask, b)
        })?;
        if impl_ == ForwardImpl::Im2col {
            let l1_band = max_row_band(oh, caps.l1, |b| {
                l1_copies * band_input_rows(&prob.params, b) * prob.iw * ROW
            })?;
            boh = boh.min(l1_band);
        }
        Ok(boh)
    };
    let boh = fit(1, 1)?;
    if !sched.double || boh >= oh {
        // No band cycling: nothing to overlap.
        return Ok((boh, BandMode::Single));
    }
    if impl_ == ForwardImpl::Im2col {
        if !sched.rotate {
            // Without renaming, versioned slots recover nothing and
            // ping-pong was measured a loss (see above): stay serial.
            return Ok((boh, BandMode::Single));
        }
        let Ok(v_boh) = fit(2, 1) else {
            return Ok((boh, BandMode::Single));
        };
        if schedule::forward_im2col_versioned_wins(prob, with_mask, &sched.cost, boh, v_boh) {
            return Ok((v_boh, BandMode::Versioned));
        }
        return Ok((boh, BandMode::Single));
    }
    match fit(2, 2) {
        Ok(db_boh) => Ok((db_boh, BandMode::PingPong)),
        Err(_) => Ok((boh, BandMode::Single)),
    }
}

/// The Fig. 8 *tiling threshold*: the largest square input `H = W` one
/// band can process for this implementation (N = C1 = 1).
pub fn tiling_threshold(params: &PoolParams, impl_: ForwardImpl, caps: Capacities) -> usize {
    dv_akg::tiling_threshold(caps.ub, 4096, |hw| {
        match PoolProblem::new(
            1,
            1,
            hw.max(params.eff_kh()),
            hw.max(params.eff_kw()),
            *params,
        ) {
            Ok(p) => {
                let (oh, _) = p.out_dims();
                let ub = ub_footprint(&p, impl_, false, oh);
                if impl_ == ForwardImpl::Im2col {
                    // also require the L1 staging to fit
                    if p.in_plane_bytes() > caps.l1 {
                        return usize::MAX;
                    }
                }
                ub
            }
            Err(_) => usize::MAX,
        }
    })
}

// ---------------------------------------------------------------------
// Standard (Listing 1): strided reduction on the NC1HWC0 band.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_standard_compute(
    p: &mut Program,
    prob: &PoolProblem,
    reduction: Reduction,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
    gm_mask: Option<usize>,
    (n, c1): (usize, usize),
) -> Result<(), LowerError> {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let padded = layout.padded;

    let ub_in = Addr::ub(layout.ub_in.expect("standard layout").of(slot));
    let ub_out = Addr::ub(layout.ub_out.of(slot));
    let ub_mask = layout.ub_mask.map(|s| Addr::ub(s.of(slot)));

    // Initialise the output accumulator (the band was staged by the
    // load stage, possibly into the alternate slot).
    fill_region(p, ub_out, reduction.init(), boh * ow * C0)?;

    if params.sw == 1 {
        // Stride width 1: consecutive patches are consecutive in memory,
        // so the lowering "combin[es] the mask register set with all 128
        // elements and its repeat parameter" (Section VI-B): per output
        // row and kernel row, full-mask chunks whose Kw-repeat slides the
        // source one column (32 B) per iteration — the behaviour that
        // makes direct pooling win Fig. 8a.
        for oh_r in 0..boh {
            for kh in 0..params.kh {
                let dst_row = ub_out.add(oh_r * ow * ROW);
                let src_row = ub_in.add((oh_r * params.sh + kh * params.dh) * prob.iw * ROW);
                let elems = ow * C0;
                let mut e0 = 0usize;
                while e0 < elems {
                    let n = (elems - e0).min(dv_isa::VECTOR_LANES);
                    p.push(Instr::Vector(VectorInstr {
                        op: reduction.op(),
                        dst: dst_row.add(e0 * 2),
                        src0: dst_row.add(e0 * 2),
                        src1: src_row.add(e0 * 2),
                        mask: Mask::first_n(n),
                        repeat: params.kw as u16,
                        dst_stride: 0,
                        src0_stride: 0,
                        src1_stride: params.dw * ROW,
                    }))?;
                    e0 += n;
                }
            }
        }
    } else {
        // General case: 16 of 128 mask lanes (the C0 group), one issue
        // per (oh, ow, kh) with a Kw-repeat over the patch width.
        for oh_r in 0..boh {
            for ow_i in 0..ow {
                for kh in 0..params.kh {
                    let dst = ub_out.add((oh_r * ow + ow_i) * ROW);
                    let src = ub_in.add(
                        ((oh_r * params.sh + kh * params.dh) * prob.iw + ow_i * params.sw) * ROW,
                    );
                    strided_accumulate(
                        p,
                        reduction.op(),
                        dst,
                        src,
                        Mask::C0_ONLY,
                        params.kw as u16,
                        params.dw * ROW,
                    )?;
                }
            }
        }
    }

    if let Reduction::Sum { scale } = reduction {
        elementwise(
            p,
            VectorOp::MulScalar(scale),
            ub_out,
            ub_out,
            ub_out,
            boh * ow * C0,
        )?;
    }

    // Argmax mask: compare every patch element against the patch maximum
    // (Section V-A). One vcmp per (oh, ow, kh) with a Kw repeat whose
    // destination strides across whole mask planes.
    if let (Some(mask_base), Some(ub_mask)) = (gm_mask, ub_mask) {
        for oh_r in 0..boh {
            for ow_i in 0..ow {
                for kh in 0..params.kh {
                    p.push(Instr::Vector(VectorInstr {
                        op: VectorOp::CmpEq,
                        dst: ub_mask.add((kh * params.kw) * padded + (oh_r * ow + ow_i) * ROW),
                        src0: ub_in.add(
                            ((oh_r * params.sh + kh * params.dh) * prob.iw + ow_i * params.sw)
                                * ROW,
                        ),
                        src1: ub_out.add((oh_r * ow + ow_i) * ROW),
                        mask: Mask::C0_ONLY,
                        repeat: params.kw as u16,
                        dst_stride: padded,
                        src0_stride: params.dw * ROW,
                        src1_stride: 0,
                    }))?;
                }
            }
        }
        for kh in 0..params.kh {
            for kw in 0..params.kw {
                let plane_gm =
                    mask_base + prob.mask_plane_offset(n, c1, kh, kw) + band.oh0 * ow * ROW;
                dma(
                    p,
                    ub_mask.add((kh * params.kw + kw) * padded),
                    Addr::gm(plane_gm),
                    boh * ow * ROW,
                )?;
            }
        }
    }

    dma(
        p,
        ub_out,
        Addr::gm(out_base + band.oh0 * ow * ROW),
        boh * ow * ROW,
    )?;
    Ok(())
}

// ---------------------------------------------------------------------
// Im2col (Listing 2): SCU loads into (Kh, Kw, Oh, Ow, C0), saturated
// reduction over the outer kernel axes.
// ---------------------------------------------------------------------

/// Emit the mode-1 `Im2Col` issues covering `bf` fractals of one
/// `(kh, kw)` plane (chunked at the hardware repeat limit).
fn emit_im2col_plane(
    p: &mut Program,
    geom: Im2ColGeometry,
    k_off: (usize, usize),
    src: Addr,
    dst: Addr,
    bf: usize,
) -> Result<(), LowerError> {
    let mut f0 = 0usize;
    while f0 < bf {
        let rep = (bf - f0).min(MAX_REPEAT as usize);
        p.push(Instr::Im2Col(Im2Col {
            geom,
            src,
            dst: dst.add(f0 * FRACTAL_BYTES),
            first_patch: f0 * FRACTAL_ROWS,
            k_off,
            c1: 0,
            repeat: rep as u16,
            mode: RepeatMode::Mode1,
        }))?;
        f0 += rep;
    }
    Ok(())
}

/// The Im2col load stage: stage the band in its L1 slot and issue the
/// SCU loads into the band's column-plane slot. All of it runs on pipe
/// 0 (MTE + SCU), so under double buffering it overlaps the previous
/// band's Vector reduction.
fn emit_im2col_load(
    p: &mut Program,
    prob: &PoolProblem,
    in_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
) -> Result<(), LowerError> {
    let params = prob.params;
    let (oh_total, ow) = prob.out_dims();
    let boh = band.oh_len();
    let padded = layout.padded;
    let bf = PoolProblem::fractals_for(boh * ow);
    let ub_cols = Addr::ub(layout.ub_cols.expect("im2col layout").of(slot));
    let l1_in = Addr::l1(layout.l1_in.of(slot));

    // Band geometry: multi-band lowering requires no vertical padding and
    // no ceil-mode (both enforced by `row_bands`), so dropping top/bottom
    // — and leaving the partial band's rounding at floor — is exact.
    // Dilation must ride along: the band's taps stay dilated.
    let band_params = if band.oh0 == 0 && band.oh1 == oh_total {
        params
    } else {
        PoolParams::with_padding(
            (params.kh, params.kw),
            (params.sh, params.sw),
            dv_tensor::Padding {
                top: 0,
                bottom: 0,
                left: params.padding.left,
                right: params.padding.right,
            },
        )
        .with_dilation((params.dh, params.dw))
    };
    let geom =
        Im2ColGeometry::new(band.ih_len, prob.iw, 1, band_params).map_err(LowerError::Isa)?;
    debug_assert_eq!(geom.out_dims(), (boh, ow));

    dma(
        p,
        Addr::gm(in_base + band.ih0 * prob.iw * ROW),
        l1_in,
        band.ih_len * prob.iw * ROW,
    )?;
    for kh in 0..params.kh {
        for kw in 0..params.kw {
            let plane = ub_cols.add((kh * params.kw + kw) * padded);
            emit_im2col_plane(p, geom, (kh, kw), l1_in, plane, bf)?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_im2col_compute(
    p: &mut Program,
    prob: &PoolProblem,
    reduction: Reduction,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
    gm_mask: Option<usize>,
    (n, c1): (usize, usize),
) -> Result<(), LowerError> {
    emit_im2col_reduce(p, prob, reduction, layout, band, slot, gm_mask)?;
    emit_im2col_flush(p, prob, out_base, layout, band, slot, gm_mask, (n, c1))
}

/// The Vector-pipe half of the Im2col compute stage: the fill, the
/// saturated reduction and the argmax compares. Emitted separately from
/// [`emit_im2col_flush`] so the versioned schedule can slide the next
/// band's load between them.
fn emit_im2col_reduce(
    p: &mut Program,
    prob: &PoolProblem,
    reduction: Reduction,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
    gm_mask: Option<usize>,
) -> Result<(), LowerError> {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let planes = params.kh * params.kw;
    let padded = layout.padded;
    let bf = PoolProblem::fractals_for(boh * ow);

    let ub_cols = Addr::ub(layout.ub_cols.expect("im2col layout").of(slot));
    let ub_out = Addr::ub(layout.ub_out.of(slot));
    let ub_mask = layout.ub_mask.map(|s| Addr::ub(s.of(slot)));

    // Saturated reduction: Kh*Kw elementwise issues over the whole band.
    fill_region(p, ub_out, reduction.init(), bf * FRACTAL_ROWS * C0)?;
    for plane_idx in 0..planes {
        let plane = ub_cols.add(plane_idx * padded);
        elementwise(
            p,
            reduction.op(),
            ub_out,
            ub_out,
            plane,
            bf * FRACTAL_ROWS * C0,
        )?;
    }
    if let Reduction::Sum { scale } = reduction {
        elementwise(
            p,
            VectorOp::MulScalar(scale),
            ub_out,
            ub_out,
            ub_out,
            bf * FRACTAL_ROWS * C0,
        )?;
    }

    // Argmax mask: one saturated vcmp per plane, comparing the plane
    // against the reduced maximum ("comparing each patch of the input
    // with its maximum value").
    if let (Some(_), Some(ub_mask)) = (gm_mask, ub_mask) {
        for plane_idx in 0..planes {
            let plane = ub_cols.add(plane_idx * padded);
            let mplane = ub_mask.add(plane_idx * padded);
            elementwise(
                p,
                VectorOp::CmpEq,
                mplane,
                plane,
                ub_out,
                bf * FRACTAL_ROWS * C0,
            )?;
        }
    }
    Ok(())
}

/// The MTE half of the Im2col compute stage: the argmax-mask plane DMAs
/// and the output-band DMA back to GM.
#[allow(clippy::too_many_arguments)]
fn emit_im2col_flush(
    p: &mut Program,
    prob: &PoolProblem,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
    gm_mask: Option<usize>,
    (n, c1): (usize, usize),
) -> Result<(), LowerError> {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let padded = layout.padded;
    let ub_out = Addr::ub(layout.ub_out.of(slot));
    let ub_mask = layout.ub_mask.map(|s| Addr::ub(s.of(slot)));

    if let (Some(mask_base), Some(ub_mask)) = (gm_mask, ub_mask) {
        for kh in 0..params.kh {
            for kw in 0..params.kw {
                let plane_gm =
                    mask_base + prob.mask_plane_offset(n, c1, kh, kw) + band.oh0 * ow * ROW;
                dma(
                    p,
                    ub_mask.add((kh * params.kw + kw) * padded),
                    Addr::gm(plane_gm),
                    boh * ow * ROW,
                )?;
            }
        }
    }

    dma(
        p,
        ub_out,
        Addr::gm(out_base + band.oh0 * ow * ROW),
        boh * ow * ROW,
    )?;
    Ok(())
}

// ---------------------------------------------------------------------
// Expansion (Fig. 8): layout change with regular vector copies in the UB.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_expansion_compute(
    p: &mut Program,
    prob: &PoolProblem,
    reduction: Reduction,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
) -> Result<(), LowerError> {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let planes = params.kh * params.kw;
    let padded = layout.padded;
    let bf = PoolProblem::fractals_for(boh * ow);

    let ub_in = Addr::ub(layout.ub_in.expect("expansion layout").of(slot));
    let ub_cols = Addr::ub(layout.ub_cols.expect("expansion layout").of(slot));
    let ub_out = Addr::ub(layout.ub_out.of(slot));

    // The expansion itself: copy each (kh, kw) selection into its dense
    // plane. With Sw = 1 the source is contiguous and the copy saturates;
    // otherwise it is a 16-lane strided gather per output row.
    for kh in 0..params.kh {
        for kw in 0..params.kw {
            let plane = ub_cols.add((kh * params.kw + kw) * padded);
            for oh_r in 0..boh {
                let src_row = (oh_r * params.sh + kh) * prob.iw;
                if params.sw == 1 {
                    elementwise(
                        p,
                        VectorOp::Copy,
                        plane.add(oh_r * ow * ROW),
                        ub_in.add((src_row + kw) * ROW),
                        Addr::ub(0),
                        ow * C0,
                    )?;
                } else {
                    let mut o0 = 0usize;
                    while o0 < ow {
                        let rep = (ow - o0).min(MAX_REPEAT as usize);
                        p.push(Instr::Vector(VectorInstr {
                            op: VectorOp::Copy,
                            dst: plane.add((oh_r * ow + o0) * ROW),
                            src0: ub_in.add((src_row + o0 * params.sw + kw) * ROW),
                            src1: Addr::ub(0),
                            mask: Mask::C0_ONLY,
                            repeat: rep as u16,
                            dst_stride: ROW,
                            src0_stride: params.sw * ROW,
                            src1_stride: 0,
                        }))?;
                        o0 += rep;
                    }
                }
            }
        }
    }

    // Identical reduction to the Im2col variant.
    fill_region(p, ub_out, reduction.init(), bf * FRACTAL_ROWS * C0)?;
    for plane_idx in 0..planes {
        let plane = ub_cols.add(plane_idx * padded);
        // Only the valid prefix was written by the expansion; reduce just
        // that (the padded tail of ub_out stays at its init value).
        elementwise(p, reduction.op(), ub_out, ub_out, plane, boh * ow * C0)?;
    }
    if let Reduction::Sum { scale } = reduction {
        elementwise(
            p,
            VectorOp::MulScalar(scale),
            ub_out,
            ub_out,
            ub_out,
            boh * ow * C0,
        )?;
    }

    dma(
        p,
        ub_out,
        Addr::gm(out_base + band.oh0 * ow * ROW),
        boh * ow * ROW,
    )?;
    Ok(())
}

// ---------------------------------------------------------------------
// X-Y split (Fig. 8b): width reduction, then height reduction over the
// intermediate tensor ("In TVM, all computations generate a new tensor,
// and thus the in-place approach is not possible").
// ---------------------------------------------------------------------

fn emit_xysplit_compute(
    p: &mut Program,
    prob: &PoolProblem,
    reduction: Reduction,
    out_base: usize,
    layout: &ForwardLayout,
    band: &Band,
    slot: usize,
) -> Result<(), LowerError> {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();

    let ub_in = Addr::ub(layout.ub_in.expect("xysplit layout").of(slot));
    let ub_tmp = Addr::ub(layout.ub_tmp.expect("xysplit layout").of(slot));
    let ub_out = Addr::ub(layout.ub_out.of(slot));

    // Step 1: reduce along the patch width into tmp[ih, ow, c0].
    fill_region(p, ub_tmp, reduction.init(), band.ih_len * ow * C0)?;
    for ih_r in 0..band.ih_len {
        if params.sw == 1 {
            for kw in 0..params.kw {
                let dst = ub_tmp.add(ih_r * ow * ROW);
                let src = ub_in.add((ih_r * prob.iw + kw) * ROW);
                elementwise(p, reduction.op(), dst, dst, src, ow * C0)?;
            }
        } else {
            for ow_i in 0..ow {
                strided_accumulate(
                    p,
                    reduction.op(),
                    ub_tmp.add((ih_r * ow + ow_i) * ROW),
                    ub_in.add((ih_r * prob.iw + ow_i * params.sw) * ROW),
                    Mask::C0_ONLY,
                    params.kw as u16,
                    ROW,
                )?;
            }
        }
    }

    // Step 2: reduce along the patch height — tmp rows are dense, so this
    // step is fully saturated.
    fill_region(p, ub_out, reduction.init(), boh * ow * C0)?;
    for oh_r in 0..boh {
        for kh in 0..params.kh {
            let dst = ub_out.add(oh_r * ow * ROW);
            let src = ub_tmp.add((oh_r * params.sh + kh) * ow * ROW);
            elementwise(p, reduction.op(), dst, dst, src, ow * C0)?;
        }
    }
    if let Reduction::Sum { scale } = reduction {
        elementwise(
            p,
            VectorOp::MulScalar(scale),
            ub_out,
            ub_out,
            ub_out,
            boh * ow * C0,
        )?;
    }

    dma(
        p,
        ub_out,
        Addr::gm(out_base + band.oh0 * ow * ROW),
        boh * ow * ROW,
    )?;
    Ok(())
}
