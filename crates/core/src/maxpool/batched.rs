//! Batch-folded Im2col forward lowering (`RepeatMode::Mode0`).
//!
//! The per-plane schedule issues one program per `(n, c1)` plane and,
//! inside it, one Mode-1 `Im2Col` per `(kh, kw)` plane per band — the
//! batch dimension multiplies the instruction count by `N`. Mode 0 walks
//! the *other* axis of Fig. 5: with the `c1` field of the repeat chain
//! repurposed as the batch index (the tile's "c1 planes" are the `N`
//! batch planes of one real `c1` slice, staged contiguously in L1), a
//! single issue with `repeat = N * Kh * Kw` expands one fractal of
//! output patches across every kernel offset of every batch plane. One
//! issue per output fractal replaces `N * Kh * Kw` issues per band —
//! the hardware repeat amortises issue overhead across the batch exactly
//! as the paper's thesis demands.
//!
//! Layout: the chain of fractal `f0` lands as `N * Kh * Kw` consecutive
//! fractals (`[n][kh][kw]` order), so the column buffer is chunked *by
//! output fractal*, not by plane: only `chunk` chains need UB residency
//! at a time while the `N` per-plane accumulators stay resident for the
//! whole band. The reduction then walks each chain with one strided
//! `vmax`/`vadd` per `(n, k, half)` whose `src1` stride hops between
//! chains (`chain_bytes`) and whose `dst` stride hops between output
//! fractals — per-element accumulation order is `k`-ascending, identical
//! to the per-plane schedule, so results are bit-exact.
//!
//! Double buffering composes at the *chunk* level: the cols region gets
//! ping-pong [`BandSlots`] and chunk `i + 1`'s SCU chains are issued
//! before chunk `i`'s Vector reduction (the same software pipeline the
//! per-plane lowerings run across row bands).
//!
//! Capacity planning goes through the batch-aware `akg::tiling` wrappers
//! so every failure is typed [`TilingError::Batched`]; the engine falls
//! back to the per-plane schedule on capacity causes and surfaces the
//! typed error when no schedule exists (padded multi-band geometry).

use crate::maxpool::forward::{plan_band, Reduction};
use crate::problem::{ForwardImpl, LowerError, PoolProblem};
use crate::schedule::Schedule;
use dv_akg::{
    band_input_rows, dma, elementwise, fill_region, max_row_band_batched, row_bands,
    row_bands_batched, Band, TilingError, UbArena,
};
use dv_isa::{
    Addr, Im2Col, Im2ColGeometry, Instr, Mask, Program, RepeatMode, VectorInstr, VectorOp,
    MAX_REPEAT, VECTOR_LANES,
};
use dv_sim::Capacities;
use dv_tensor::{PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};

const ROW: usize = C0 * 2;
/// Bytes one full-mask vector issue covers (128 lanes of f16) — half a
/// fractal, so every fractal-granular op runs as two half issues.
const HALF: usize = VECTOR_LANES * 2;

/// The resolved batch-folded schedule for one `c1` program.
struct BatchedPlan {
    /// Row bands (shared by all `N` planes of the fold).
    bands: Vec<Band>,
    /// Fractal-padded per-plane output bytes at the planned band height.
    padded: usize,
    /// Output fractals per cols chunk (also the strided-reduce repeat,
    /// so it is clamped to [`MAX_REPEAT`]).
    chunk: usize,
    /// Whether the cols chunks got ping-pong slots.
    db: bool,
    /// L1 staging slot stride in bytes (covers the widest band of all
    /// `N` planes).
    l1_slot: usize,
    /// Number of L1 staging slots (2 = next-band prefetch escapes the
    /// WAR hazard on the current band's Im2Cols).
    l1_copies: usize,
}

/// Plan the batch fold: band height from the batch-aware capacity query
/// (N accumulators + optional N*Kh*Kw mask planes resident per band, at
/// least one cols chunk), then as many cols chunks as the leftover UB
/// holds. All failures are typed [`TilingError::Batched`].
fn plan_batched(
    prob: &PoolProblem,
    with_mask: bool,
    caps: Capacities,
    double: bool,
) -> Result<BatchedPlan, TilingError> {
    let n = prob.n;
    let params = prob.params;
    let (oh, ow) = prob.out_dims();
    let kk = params.kh * params.kw;
    let chain = n * kk * FRACTAL_BYTES;

    // Band-resident bytes, excluding the cols chunks.
    let base = |boh: usize| {
        let padded = PoolProblem::padded_plane_bytes(boh * ow);
        n * padded + if with_mask { n * kk * padded } else { 0 }
    };
    let fit = |copies: usize, l1_copies: usize| -> Result<usize, TilingError> {
        let boh = max_row_band_batched(n, oh, caps.ub, |b| base(b) + copies * chain)?;
        let l1 = max_row_band_batched(n, oh, caps.l1, |b| {
            l1_copies * n * band_input_rows(&params, b) * prob.iw * ROW
        })?;
        Ok(boh.min(l1))
    };
    // Ping-pong needs two cols chunk slots in UB and two band staging
    // slots in L1 (the latter lets the next band's prefetch DMA escape
    // its WAR hazard against the current band's Im2Cols). Each degrades
    // independently to single-buffered rather than failing the fold; the
    // L1 slots matter more for makespan, so they are dropped last.
    let ladder: &[(usize, usize)] = if double {
        &[(2, 2), (1, 2), (2, 1), (1, 1)]
    } else {
        &[(1, 1)]
    };
    let (mut copies, mut l1_copies, boh) = ladder
        .iter()
        .find_map(|&(c, lc)| fit(c, lc).ok().map(|b| (c, lc, b)))
        .ok_or_else(|| match fit(1, 1) {
            Err(e) => e,
            Ok(_) => unreachable!("ladder ends at (1, 1)"),
        })?;

    let bands = row_bands_batched(n, &params, oh, boh, prob.ih)?;
    if bands.len() == 1 {
        // No next band to prefetch — a second L1 slot would buy nothing
        // (and a widened single band may not even fit twice).
        l1_copies = 1;
    }
    // A single band widens to the full input extent; re-check the L1
    // staging of the N (possibly widened) planes against what the DMAs
    // will actually move.
    let l1_slot = n * bands.iter().map(|b| b.ih_len).max().unwrap() * prob.iw * ROW;
    if l1_copies * l1_slot > caps.l1 {
        l1_copies = 1;
    }
    if l1_slot > caps.l1 {
        return Err(TilingError::Capacity {
            min_footprint: l1_slot,
            capacity: caps.l1,
        }
        .batched(n));
    }

    let padded = PoolProblem::padded_plane_bytes(boh * ow);
    let max_bf = bands
        .iter()
        .map(|b| PoolProblem::fractals_for(b.oh_len() * ow))
        .max()
        .unwrap();
    let avail = caps.ub - base(boh);
    let mut chunk = (avail / (copies * chain))
        .min(MAX_REPEAT as usize)
        .min(max_bf);
    if copies == 2 && chunk >= max_bf {
        // Every band fits in one chunk: nothing to pipeline, so spend
        // the second slot's bytes on nothing and keep one slot.
        copies = 1;
        chunk = (avail / chain).min(MAX_REPEAT as usize).min(max_bf);
    }
    debug_assert!(chunk >= 1);
    Ok(BatchedPlan {
        bands,
        padded,
        chunk,
        db: copies == 2,
        l1_slot,
        l1_copies,
    })
}

/// `Im2Col` issues the per-plane Im2col schedule would spend on one `c1`
/// slice (all `N` planes), under the same capacities. Errors if the
/// per-plane schedule itself cannot be planned.
pub(crate) fn per_plane_im2col_issues(
    prob: &PoolProblem,
    with_mask: bool,
    caps: Capacities,
) -> Result<usize, LowerError> {
    // Instruction-count audit: band heights from the strictly serial
    // schedule, matching what the fold is compared against in PR 1's
    // issue-count tables (overlap modes never change issue counts of the
    // winning plan's bands, but the serial heights are the stable datum).
    let (boh, _) = plan_band(
        prob,
        ForwardImpl::Im2col,
        with_mask,
        caps,
        &Schedule::serial(),
    )?;
    let (oh, ow) = prob.out_dims();
    let bands = row_bands(&prob.params, oh, boh, prob.ih)?;
    let kk = prob.params.kh * prob.params.kw;
    let per_plane: usize = bands
        .iter()
        .map(|b| PoolProblem::fractals_for(b.oh_len() * ow).div_ceil(MAX_REPEAT as usize))
        .sum();
    Ok(prob.n * kk * per_plane)
}

/// Build batch-folded forward pooling: one [`Program`] per `c1` slice,
/// covering all `N` batch planes through Mode-0 `Im2Col` repeat chains.
///
/// `gm_mask` additionally stores the argmax mask (requires
/// [`Reduction::Max`], mirroring the per-plane argmax builder). Errors
/// are typed: capacity and geometry failures surface as
/// [`TilingError::Batched`] wrapping their per-plane cause, which is how
/// the engine distinguishes "fold does not fit — run per-plane" from
/// "this shape cannot be banded at all".
pub fn build_forward_batched(
    prob: &PoolProblem,
    reduction: Reduction,
    gm_in: usize,
    gm_out: usize,
    gm_mask: Option<usize>,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    if gm_mask.is_some() && reduction != Reduction::Max {
        return Err(LowerError::Unsupported(
            "argmax mask requires Reduction::Max".into(),
        ));
    }
    let plan = plan_batched(prob, gm_mask.is_some(), caps, sched.double)?;
    let n = prob.n;
    let params = prob.params;
    let (oh, ow) = prob.out_dims();
    let kk = params.kh * params.kw;
    let chain = n * kk * FRACTAL_BYTES;
    let padded = plan.padded;

    let mut programs = Vec::with_capacity(prob.c1);
    for c1 in 0..prob.c1 {
        let mut ub = UbArena::new(caps.ub);
        // plan_batched sized everything below against caps.ub, so these
        // allocations cannot fail.
        let ub_out = Addr::ub(ub.alloc(n * padded)?);
        let ub_mask = match gm_mask {
            Some(_) => Some(Addr::ub(ub.alloc(n * kk * padded)?)),
            None => None,
        };
        let cols = ub.alloc_band(plan.chunk * chain, plan.db)?;

        // Stage a band of all N planes contiguously in L1: plane `nn` at
        // `nn * band_bytes` inside the band's ping-pong slot, matching
        // the Mode-0 walk's `src_plane_bytes` stride.
        let l1_base = |bi: usize| Addr::l1((bi % plan.l1_copies) * plan.l1_slot);
        let stage = |p: &mut Program, bi: usize, band: &dv_akg::Band| -> Result<(), LowerError> {
            let band_bytes = band.ih_len * prob.iw * ROW;
            for nn in 0..n {
                dma(
                    p,
                    Addr::gm(gm_in + prob.in_plane_offset(nn, c1) + band.ih0 * prob.iw * ROW),
                    l1_base(bi).add(nn * band_bytes),
                    band_bytes,
                )?;
            }
            Ok(())
        };

        let mut p = Program::new();
        stage(&mut p, 0, &plan.bands[0])?;
        for (bi, band) in plan.bands.iter().enumerate() {
            let boh = band.oh_len();
            let bf = PoolProblem::fractals_for(boh * ow);

            // Band geometry: multi-band splits are vertically unpadded
            // (row_bands rejects the rest), so partial bands drop Pt/Pb.
            let band_params = if band.oh0 == 0 && band.oh1 == oh {
                params
            } else {
                PoolParams::with_padding(
                    (params.kh, params.kw),
                    (params.sh, params.sw),
                    dv_tensor::Padding {
                        top: 0,
                        bottom: 0,
                        left: params.padding.left,
                        right: params.padding.right,
                    },
                )
            };
            let geom = Im2ColGeometry::new(band.ih_len, prob.iw, n, band_params)
                .map_err(LowerError::Isa)?;
            debug_assert_eq!(geom.out_dims(), (boh, ow));

            for nn in 0..n {
                fill_region(
                    &mut p,
                    ub_out.add(nn * padded),
                    reduction.init(),
                    bf * FRACTAL_ROWS * C0,
                )?;
            }

            let chunks: Vec<(usize, usize)> = (0..bf)
                .step_by(plan.chunk)
                .map(|f0| (f0, plan.chunk.min(bf - f0)))
                .collect();
            let emit_chains = |p: &mut Program, ci: usize| -> Result<(), LowerError> {
                let (f0, len) = chunks[ci];
                emit_chunk_chains(p, geom, l1_base(bi), Addr::ub(cols.of(ci)), f0, len, n, kk)
            };
            let emit_reduce = |p: &mut Program, ci: usize| -> Result<(), LowerError> {
                let (f0, len) = chunks[ci];
                let slot = Addr::ub(cols.of(ci));
                emit_chunk_reduce(p, reduction, ub_out, padded, slot, chain, f0, len, n, kk)?;
                if let Some(ub_mask) = ub_mask {
                    emit_chunk_argmax(p, ub_mask, ub_out, padded, slot, chain, f0, len, n, kk)?;
                }
                Ok(())
            };

            if cols.is_double() && chunks.len() > 1 {
                // Software pipeline: chunk i+1's SCU chains land in the
                // alternate slot before chunk i's Vector reduction.
                emit_chains(&mut p, 0)?;
                for ci in 0..chunks.len() {
                    if ci + 1 < chunks.len() {
                        emit_chains(&mut p, ci + 1)?;
                    }
                    emit_reduce(&mut p, ci)?;
                }
            } else {
                for ci in 0..chunks.len() {
                    emit_chains(&mut p, ci)?;
                    emit_reduce(&mut p, ci)?;
                }
            }

            // Software-pipeline the next band's L1 staging ahead of this
            // band's copy-out: the MTE queue is in-order, and the copy-out
            // below waits on the reduce tail. With two L1 slots the
            // prefetch lands in the alternate slot and has no hazard on
            // this band's Im2Cols at all; single-slotted it still only
            // reaches back to the already-issued Im2Cols.
            if let Some(next) = plan.bands.get(bi + 1) {
                stage(&mut p, bi + 1, next)?;
            }

            // Band finalize: per-plane output rows, then mask planes.
            for nn in 0..n {
                dma(
                    &mut p,
                    ub_out.add(nn * padded),
                    Addr::gm(gm_out + prob.out_plane_offset(nn, c1) + band.oh0 * ow * ROW),
                    boh * ow * ROW,
                )?;
            }
            if let (Some(mask_base), Some(ub_mask)) = (gm_mask, ub_mask) {
                for nn in 0..n {
                    for kh in 0..params.kh {
                        for kw in 0..params.kw {
                            let plane_gm = mask_base
                                + prob.mask_plane_offset(nn, c1, kh, kw)
                                + band.oh0 * ow * ROW;
                            dma(
                                &mut p,
                                ub_mask.add((nn * kk + kh * params.kw + kw) * padded),
                                Addr::gm(plane_gm),
                                boh * ow * ROW,
                            )?;
                        }
                    }
                }
            }
        }
        programs.push(p);
    }
    Ok(programs)
}

/// Emit the Mode-0 repeat chains of one cols chunk: one chain per output
/// fractal, each expanding all `n * kk` `(batch, kh, kw)` positions into
/// consecutive destination fractals (split only at the hardware repeat
/// limit, resuming at the equivalent `(c1, k_off)` start).
#[allow(clippy::too_many_arguments)]
fn emit_chunk_chains(
    p: &mut Program,
    geom: Im2ColGeometry,
    l1_in: Addr,
    slot: Addr,
    f0_start: usize,
    len: usize,
    n: usize,
    kk: usize,
) -> Result<(), LowerError> {
    let kw = geom.params.kw;
    let total = n * kk;
    for i in 0..len {
        let f0 = f0_start + i;
        let dst = slot.add(i * total * FRACTAL_BYTES);
        let mut flat = 0usize;
        while flat < total {
            let rep = (total - flat).min(MAX_REPEAT as usize);
            let rem = flat % kk;
            p.push(Instr::Im2Col(Im2Col {
                geom,
                src: l1_in,
                dst: dst.add(flat * FRACTAL_BYTES),
                first_patch: f0 * FRACTAL_ROWS,
                k_off: (rem / kw, rem % kw),
                c1: flat / kk,
                repeat: rep as u16,
                mode: RepeatMode::Mode0,
            }))?;
            flat += rep;
        }
    }
    Ok(())
}

/// Reduce one cols chunk into the `n` per-plane accumulators, always in
/// `k`-ascending per-element order (bit-identical to the per-plane
/// saturated reduction), choosing the repeat axis that issues fewer
/// instructions:
///
/// * **across chains** (`n * kk * 2` issues, repeat = chunk length):
///   for each `(batch, k, half)` one strided issue whose repeat walks the
///   chunk's output fractals (`dst` hops fractal-to-fractal, `src1`
///   chain-to-chain) — wins when the UB holds long chunks;
/// * **within each chain** (`len * n * 2` issues, repeat = `kk`): one
///   in-place accumulate per output fractal whose repeat walks the `kk`
///   kernel fractals of that chain (`dst_stride = 0`, the hardware
///   applies repeats sequentially) — wins when capacity forces short
///   chunks, where the across-chain form degenerates to repeat 1–2 and
///   its issue overhead would swamp the Im2Col savings.
#[allow(clippy::too_many_arguments)]
fn emit_chunk_reduce(
    p: &mut Program,
    reduction: Reduction,
    ub_out: Addr,
    padded: usize,
    slot: Addr,
    chain: usize,
    f0_start: usize,
    len: usize,
    n: usize,
    kk: usize,
) -> Result<(), LowerError> {
    if len < kk && kk <= MAX_REPEAT as usize {
        for i in 0..len {
            let f0 = f0_start + i;
            for nn in 0..n {
                let acc = ub_out.add(nn * padded + f0 * FRACTAL_BYTES);
                let src = slot.add(i * chain + nn * kk * FRACTAL_BYTES);
                for half in 0..2 {
                    p.push(Instr::Vector(VectorInstr {
                        op: reduction.op(),
                        dst: acc.add(half * HALF),
                        src0: acc.add(half * HALF),
                        src1: src.add(half * HALF),
                        mask: Mask::FULL,
                        repeat: kk as u16,
                        dst_stride: 0,
                        src0_stride: 0,
                        src1_stride: FRACTAL_BYTES,
                    }))?;
                }
            }
        }
    } else {
        for nn in 0..n {
            let out_n = ub_out.add(nn * padded + f0_start * FRACTAL_BYTES);
            for k in 0..kk {
                let src = slot.add((nn * kk + k) * FRACTAL_BYTES);
                for half in 0..2 {
                    p.push(Instr::Vector(VectorInstr {
                        op: reduction.op(),
                        dst: out_n.add(half * HALF),
                        src0: out_n.add(half * HALF),
                        src1: src.add(half * HALF),
                        mask: Mask::FULL,
                        repeat: len as u16,
                        dst_stride: FRACTAL_BYTES,
                        src0_stride: FRACTAL_BYTES,
                        src1_stride: chain,
                    }))?;
                }
            }
        }
    }
    if let Reduction::Sum { scale } = reduction {
        // Every element of this chunk's fractals is fully accumulated:
        // scale them now, contiguously per plane.
        for nn in 0..n {
            let out_n = ub_out.add(nn * padded + f0_start * FRACTAL_BYTES);
            elementwise(
                p,
                VectorOp::MulScalar(scale),
                out_n,
                out_n,
                out_n,
                len * FRACTAL_ROWS * C0,
            )?;
        }
    }
    Ok(())
}

/// Argmax compare of one cols chunk: `vcmp` of each `(batch, k)` chain
/// fractal against the finished per-plane maximum, landing in the
/// `[n][kh][kw]` mask planes. Mirrors [`emit_chunk_reduce`]'s repeat-axis
/// choice: across chains for long chunks, across the `kk` kernel
/// fractals of one chain (`dst` hopping mask-plane-to-mask-plane) when
/// capacity forces short chunks.
#[allow(clippy::too_many_arguments)]
fn emit_chunk_argmax(
    p: &mut Program,
    ub_mask: Addr,
    ub_out: Addr,
    padded: usize,
    slot: Addr,
    chain: usize,
    f0_start: usize,
    len: usize,
    n: usize,
    kk: usize,
) -> Result<(), LowerError> {
    if len < kk && kk <= MAX_REPEAT as usize {
        for i in 0..len {
            let f0 = f0_start + i;
            for nn in 0..n {
                let out_n = ub_out.add(nn * padded + f0 * FRACTAL_BYTES);
                let src = slot.add(i * chain + nn * kk * FRACTAL_BYTES);
                let mplane = ub_mask.add(nn * kk * padded + f0 * FRACTAL_BYTES);
                for half in 0..2 {
                    p.push(Instr::Vector(VectorInstr {
                        op: VectorOp::CmpEq,
                        dst: mplane.add(half * HALF),
                        src0: src.add(half * HALF),
                        src1: out_n.add(half * HALF),
                        mask: Mask::FULL,
                        repeat: kk as u16,
                        dst_stride: padded,
                        src0_stride: FRACTAL_BYTES,
                        src1_stride: 0,
                    }))?;
                }
            }
        }
    } else {
        for nn in 0..n {
            let out_n = ub_out.add(nn * padded + f0_start * FRACTAL_BYTES);
            for k in 0..kk {
                let src = slot.add((nn * kk + k) * FRACTAL_BYTES);
                let mplane = ub_mask.add((nn * kk + k) * padded + f0_start * FRACTAL_BYTES);
                for half in 0..2 {
                    p.push(Instr::Vector(VectorInstr {
                        op: VectorOp::CmpEq,
                        dst: mplane.add(half * HALF),
                        src0: src.add(half * HALF),
                        src1: out_n.add(half * HALF),
                        mask: Mask::FULL,
                        repeat: len as u16,
                        dst_stride: FRACTAL_BYTES,
                        src0_stride: chain,
                        src1_stride: FRACTAL_BYTES,
                    }))?;
                }
            }
        }
    }
    Ok(())
}
