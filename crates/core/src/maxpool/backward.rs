//! Backward pooling lowerings (paper, Section V-B).
//!
//! Both implementations share the multiply step (`vmul` of the argmax
//! mask with the broadcast gradients, Listing 3 — or a `vmuls` of the
//! gradient for AvgPool's uniform mask) and differ only in the **merge
//! step**, which is "exactly the Col2im operation":
//!
//! * [`MergeImpl::VAdd`] — the standard lowering: one 16-lane `vadd` per
//!   `(kh, kw, oh, ow)` patch element, `Kh*Kw*Oh*Ow` issues, no repeat
//!   ("the scattered access pattern of the merge step leads to very poor
//!   usage of the Vector Unit").
//! * [`MergeImpl::Col2Im`] — the accelerated lowering: `Kh*Kw` `Col2Im`
//!   issues per tile, each merging a whole plane fractal-by-fractal with
//!   the hardware repeat.
//!
//! Tiling: bands of output rows. Because patches of adjacent bands
//! overlap on `Kh - Sh` input rows, the lowering keeps that halo resident
//! in the UB between bands: finalized rows are DMA-ed out, the halo is
//! shifted to the front of the `dx` region with a vector copy, and the
//! rest is re-zeroed (Col2Im requires a zero-initialised target,
//! Section III-D).

use crate::problem::{LowerError, MergeImpl, PoolProblem};
use dv_akg::{
    band_input_rows, dma, elementwise, max_row_band, row_bands, zero_region, Band, UbArena,
};
use dv_fp16::F16;
use dv_isa::{
    Addr, Col2Im, Im2ColGeometry, Instr, Mask, Program, VectorInstr, VectorOp, MAX_REPEAT,
};
use dv_sim::Capacities;
use dv_tensor::{PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};

const ROW: usize = C0 * 2;

/// Where the per-patch multiplier comes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackwardSource {
    /// MaxPool: the argmax mask tensor (im2col patch layout) at this GM
    /// byte offset; the multiply step is `vmul(mask, grad)`.
    MaxMask {
        /// GM byte offset of the mask tensor
        gm_mask: usize,
    },
    /// AvgPool: "the equivalent mask contains 1 in all its positions" —
    /// the multiply step collapses to `vmuls(grad, scale)` with
    /// `scale = 1/(Kh*Kw)`.
    AvgUniform {
        /// the uniform scale factor
        scale: F16,
    },
}

/// Build backward pooling programs, one per `(n, c1)` plane.
///
/// `gm_grad` is the incoming-gradient tensor `(N, C1, Oh, Ow, C0)`;
/// `gm_dx` receives the input-shaped gradient `(N, C1, Ih, Iw, C0)`.
pub fn build_backward(
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
) -> Result<Vec<Program>, LowerError> {
    let params = prob.params;
    let (oh, ow) = prob.out_dims();
    let planes = params.kh * params.kw;

    // Footprint: gradient band + Kh*Kw mask-gradient planes + the dx
    // window including the inter-band halo slack.
    let footprint = |boh: usize| {
        let padded = PoolProblem::padded_plane_bytes(boh * ow);
        let dx_rows = band_input_rows(&params, boh) + params.sh;
        padded + planes * padded + dx_rows * prob.iw * ROW
    };
    let boh = max_row_band(oh, caps.ub, footprint)?;
    let mut bands = row_bands(&params, oh, boh);
    if bands.len() == 1 {
        // Single band: hold the whole image (covers vertical padding and
        // trailing rows no patch touches).
        bands[0].ih_len = prob.ih;
    } else if params.padding.top > 0 || params.padding.bottom > 0 {
        return Err(LowerError::Unsupported(
            "vertical padding requires the plane to fit in a single band".into(),
        ));
    }

    // The dx window must hold every band's rows AND everything its
    // finalize DMA flushes: for the last band that is everything up to
    // Ih (rows past the last patch stay zero); for inner bands it is
    // `boh * Sh` rows, which exceeds the touched `ih_len` rows when
    // Sh > Kh (the gap rows between patches, flushed as zeros).
    let alloc_rows = bands
        .iter()
        .enumerate()
        .map(|(i, b)| {
            if i + 1 == bands.len() {
                prob.ih - b.ih0
            } else {
                b.ih_len.max(bands[i + 1].ih0 - b.ih0)
            }
        })
        .max()
        .unwrap();

    let boh_max = bands[0].oh_len();
    let padded = PoolProblem::padded_plane_bytes(boh_max * ow);

    let mut programs = Vec::with_capacity(prob.n * prob.c1);
    for (n, c1) in prob.planes() {
        let grad_base = gm_grad + prob.out_plane_offset(n, c1);
        let dx_base = gm_dx + prob.in_plane_offset(n, c1);

        let mut ub = UbArena::new(caps.ub);
        let ub_grad = Addr::ub(ub.alloc(padded)?);
        let ub_mg = Addr::ub(ub.alloc(planes * padded)?);
        let ub_dx = Addr::ub(ub.alloc(alloc_rows * prob.iw * ROW)?);

        let mut p = Program::new();
        let mut prev: Option<Band> = None;
        for (bi, band) in bands.iter().enumerate() {
            let last = bi + 1 == bands.len();
            emit_backward_band(
                &mut p,
                prob,
                merge,
                source,
                grad_base,
                dx_base,
                band,
                prev.as_ref(),
                last,
                alloc_rows,
                padded,
                (n, c1),
                ub_grad,
                ub_mg,
                ub_dx,
            )?;
            prev = Some(*band);
        }
        programs.push(p);
    }
    Ok(programs)
}

#[allow(clippy::too_many_arguments)]
fn emit_backward_band(
    p: &mut Program,
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    grad_base: usize,
    dx_base: usize,
    band: &Band,
    prev: Option<&Band>,
    last: bool,
    alloc_rows: usize,
    padded: usize,
    (n, c1): (usize, usize),
    ub_grad: Addr,
    ub_mg: Addr,
    ub_dx: Addr,
) -> Result<(), LowerError> {
    let params = prob.params;
    let (oh_total, ow) = prob.out_dims();
    let boh = band.oh_len();
    let planes = params.kh * params.kw;
    let valid = boh * ow * C0;
    let row_bytes = prob.iw * ROW;

    // --- dx window preparation: shift the halo, zero the rest.
    match prev {
        None => zero_region(p, ub_dx, alloc_rows * prob.iw * C0)?,
        Some(prev) => {
            let shift_rows = band.ih0 - prev.ih0;
            let halo_rows = (prev.ih0 + prev.ih_len).saturating_sub(band.ih0);
            if halo_rows > 0 {
                // Forward-overlapping copy (dst < src): the Vector Unit
                // processes lanes and repeats in ascending order, so this
                // is a well-defined left shift.
                elementwise(
                    p,
                    VectorOp::Copy,
                    ub_dx,
                    ub_dx.add(shift_rows * row_bytes),
                    Addr::ub(0),
                    halo_rows * prob.iw * C0,
                )?;
            }
            zero_region(
                p,
                ub_dx.add(halo_rows * row_bytes),
                (alloc_rows - halo_rows) * prob.iw * C0,
            )?;
        }
    }

    // --- load the gradient band.
    dma(
        p,
        Addr::gm(grad_base + band.oh0 * ow * ROW),
        ub_grad,
        boh * ow * ROW,
    )?;

    // --- multiply step (Listing 3).
    match source {
        BackwardSource::MaxMask { gm_mask } => {
            for kh in 0..params.kh {
                for kw in 0..params.kw {
                    let idx = kh * params.kw + kw;
                    let mplane = ub_mg.add(idx * padded);
                    let plane_gm =
                        gm_mask + prob.mask_plane_offset(n, c1, kh, kw) + band.oh0 * ow * ROW;
                    dma(p, Addr::gm(plane_gm), mplane, boh * ow * ROW)?;
                    elementwise(p, VectorOp::Mul, mplane, mplane, ub_grad, valid)?;
                }
            }
        }
        BackwardSource::AvgUniform { scale } => {
            for idx in 0..planes {
                let mplane = ub_mg.add(idx * padded);
                elementwise(
                    p,
                    VectorOp::MulScalar(scale),
                    mplane,
                    ub_grad,
                    ub_grad,
                    valid,
                )?;
            }
        }
    }

    // --- band geometry for the merge.
    let band_params = if band.oh0 == 0 && band.oh1 == oh_total {
        params
    } else {
        PoolParams::with_padding(
            (params.kh, params.kw),
            (params.sh, params.sw),
            dv_tensor::Padding {
                top: 0,
                bottom: 0,
                left: params.padding.left,
                right: params.padding.right,
            },
        )
    };
    let geom =
        Im2ColGeometry::new(band.ih_len, prob.iw, 1, band_params).map_err(LowerError::Isa)?;
    debug_assert_eq!(geom.out_dims(), (boh, ow));

    // --- merge step.
    match merge {
        MergeImpl::VAdd => {
            // "the vadd instructions only set 16 elements of the vector
            // mask (vectorizing on C0) and repetition is not used."
            for kh in 0..params.kh {
                for kw in 0..params.kw {
                    let mplane = ub_mg.add((kh * params.kw + kw) * padded);
                    for patch in 0..boh * ow {
                        let Some((h, w)) = geom.element_coord(patch, kh, kw) else {
                            continue; // contribution lands in padding
                        };
                        let dst = ub_dx.add((h * prob.iw + w) * ROW);
                        p.push(Instr::Vector(VectorInstr {
                            op: VectorOp::Add,
                            dst,
                            src0: dst,
                            src1: mplane.add(patch * ROW),
                            mask: Mask::C0_ONLY,
                            repeat: 1,
                            dst_stride: 0,
                            src0_stride: 0,
                            src1_stride: 0,
                        }))?;
                    }
                }
            }
        }
        MergeImpl::Col2Im => {
            let bf = PoolProblem::fractals_for(boh * ow);
            for kh in 0..params.kh {
                for kw in 0..params.kw {
                    let mplane = ub_mg.add((kh * params.kw + kw) * padded);
                    let mut f0 = 0usize;
                    while f0 < bf {
                        let rep = (bf - f0).min(MAX_REPEAT as usize);
                        p.push(Instr::Col2Im(Col2Im {
                            geom,
                            src: mplane.add(f0 * FRACTAL_BYTES),
                            dst: ub_dx,
                            first_patch: f0 * FRACTAL_ROWS,
                            k_off: (kh, kw),
                            c1: 0,
                            repeat: rep as u16,
                        }))?;
                        f0 += rep;
                    }
                }
            }
        }
    }

    // --- finalize: rows no later band will touch go back to GM.
    let end_abs = if last { prob.ih } else { band.oh1 * params.sh };
    let rows_out = end_abs - band.ih0;
    dma(
        p,
        ub_dx,
        Addr::gm(dx_base + band.ih0 * row_bytes),
        rows_out * row_bytes,
    )?;
    Ok(())
}
