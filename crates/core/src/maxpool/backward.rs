//! Backward pooling lowerings (paper, Section V-B).
//!
//! Both implementations share the multiply step (`vmul` of the argmax
//! mask with the broadcast gradients, Listing 3 — or a `vmuls` of the
//! gradient for AvgPool's uniform mask) and differ only in the **merge
//! step**, which is "exactly the Col2im operation":
//!
//! * [`MergeImpl::VAdd`] — the standard lowering: one 16-lane `vadd` per
//!   `(kh, kw, oh, ow)` patch element, `Kh*Kw*Oh*Ow` issues, no repeat
//!   ("the scattered access pattern of the merge step leads to very poor
//!   usage of the Vector Unit").
//! * [`MergeImpl::Col2Im`] — the accelerated lowering: `Kh*Kw` `Col2Im`
//!   issues per tile, each merging a whole plane fractal-by-fractal with
//!   the hardware repeat.
//!
//! Tiling: bands of output rows, each finalizing a disjoint range of
//! `dx` rows. Because patches of adjacent bands overlap on `Kh - Sh`
//! input rows when `Sh < Kh`, a band loads (and re-multiplies) *every*
//! patch that touches its finalized rows — including the few overlap
//! patches the previous band already processed — and merges them all,
//! `Kh`-major, into a zero-initialised private window (Col2Im requires a
//! zero target, Section III-D). Contributions that land outside the
//! finalized range are scratch and are simply not DMA-ed out. Recomputing
//! the overlap instead of carrying partial sums between bands keeps every
//! `dx` pixel's accumulation entirely within one band, in exactly the
//! unsplit kernel's order — so band splitting is bit-exact even though
//! f16 addition does not associate.

use crate::problem::{LowerError, MergeImpl, PoolProblem};
use crate::schedule::{self, Schedule};
use dv_akg::{
    band_input_rows, dma, elementwise, max_row_band, row_bands, zero_region, BandMode, UbArena,
};
use dv_fp16::F16;
use dv_isa::{
    Addr, Col2Im, Im2ColGeometry, Instr, Mask, Program, VectorInstr, VectorOp, MAX_REPEAT,
};
use dv_sim::{Capacities, CostModel};
use dv_tensor::{PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};

const ROW: usize = C0 * 2;

/// Where the per-patch multiplier comes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackwardSource {
    /// MaxPool: the argmax mask tensor (im2col patch layout) at this GM
    /// byte offset; the multiply step is `vmul(mask, grad)`.
    MaxMask {
        /// GM byte offset of the mask tensor
        gm_mask: usize,
    },
    /// AvgPool: "the equivalent mask contains 1 in all its positions" —
    /// the multiply step collapses to `vmuls(grad, scale)` with
    /// `scale = 1/(Kh*Kw)`.
    AvgUniform {
        /// the uniform scale factor
        scale: F16,
    },
}

/// One backward band resolved to what it loads, merges, and flushes.
///
/// `[r0, r1)` are the `dx` rows this band finalizes (disjoint across
/// bands, covering `[0, Ih)`); `[o_lo, o_hi)` are the gradient rows of
/// *every* patch touching those rows, including overlap patches the
/// previous band already processed; the scratch window starts at input
/// row `w_lo = o_lo * Sh` and spans `w_rows` rows — wide enough for all
/// loaded patches plus any gap/trailing zero rows the finalize flushes.
#[derive(Clone, Copy, Debug)]
struct BandSpan {
    o_lo: usize,
    o_hi: usize,
    w_lo: usize,
    w_rows: usize,
    r0: usize,
    r1: usize,
}

impl BandSpan {
    fn new(prob: &PoolProblem, oh0: usize, oh1: usize, last: bool) -> Self {
        let (kh, sh) = (prob.params.eff_kh(), prob.params.sh);
        let r0 = oh0 * sh;
        let r1 = if last { prob.ih } else { oh1 * sh };
        // Smallest o with o*Sh + Kh > r0: the first patch reaching r0.
        let o_lo = (r0 + 1).saturating_sub(kh).div_ceil(sh);
        let w_lo = o_lo * sh;
        let w_hi = if last {
            prob.ih
        } else {
            r1.max((oh1 - 1) * sh + kh)
        };
        BandSpan {
            o_lo,
            o_hi: oh1,
            w_lo,
            w_rows: w_hi - w_lo,
            r0,
            r1,
        }
    }

    /// Gradient rows (patch rows) the band loads and merges.
    fn o_len(&self) -> usize {
        self.o_hi - self.o_lo
    }
}

/// Build backward pooling programs, one per `(n, c1)` plane.
///
/// `gm_grad` is the incoming-gradient tensor `(N, C1, Oh, Ow, C0)`;
/// `gm_dx` receives the input-shaped gradient `(N, C1, Ih, Iw, C0)`.
///
/// `sched` controls cross-band overlap so band `i + 1`'s DMAs overlap
/// band `i`'s multiply/merge under the dual-pipe model: the Col2Im merge
/// takes ping-pong slots for the per-band gradient and mask-gradient
/// regions; the VAdd merge, whose ping-pong was measured a loss, takes a
/// renamer-backed versioned layout when [`Schedule::rotate`] is set and
/// the per-pipe cost predictor approves (see [`crate::schedule`]). The
/// `dx` window stays single-resident (per-band scratch — overlap
/// contributions are recomputed, never carried between bands). Results
/// are bit-identical in every mode.
pub fn build_backward(
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_backward_inner(prob, merge, source, gm_grad, gm_dx, caps, sched, false)
}

/// Like [`build_backward`], but consolidated per `c1`: one [`Program`]
/// covers all `N` batch planes of a `c1` slice (the UB band slots are
/// allocated once and reused plane after plane), so the chip dispatches
/// `C1` programs instead of `N * C1`. There is no `Im2Col` in the
/// backward pass to chain, so the fold here is purely program-level —
/// the per-plane instruction streams are emitted back to back and the
/// results stay bit-identical by construction.
pub fn build_backward_batched(
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
    sched: Schedule,
) -> Result<Vec<Program>, LowerError> {
    build_backward_inner(prob, merge, source, gm_grad, gm_dx, caps, sched, true)
}

#[allow(clippy::too_many_arguments)]
fn build_backward_inner(
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    gm_grad: usize,
    gm_dx: usize,
    caps: Capacities,
    sched: Schedule,
    fold: bool,
) -> Result<Vec<Program>, LowerError> {
    let params = prob.params;
    let (oh, ow) = prob.out_dims();
    let planes = params.kh * params.kw;
    let masked = matches!(source, BackwardSource::MaxMask { .. });
    let (boh, mut mode) = plan_backward(prob, merge, masked, caps, &sched)?;
    // `row_bands` validates the split (and rejects padded multi-band
    // requests); the spans below re-derive each band's gradient and
    // window extents including the overlap patches.
    let bands = row_bands(&params, oh, boh, prob.ih)?;
    if bands.len() == 1 {
        mode = BandMode::Single;
    }
    let spans: Vec<BandSpan> = bands
        .iter()
        .enumerate()
        .map(|(i, b)| BandSpan::new(prob, b.oh0, b.oh1, i + 1 == bands.len()))
        .collect();

    let alloc_rows = spans.iter().map(|s| s.w_rows).max().unwrap();
    let boh_max = spans.iter().map(|s| s.o_len()).max().unwrap();
    let padded = PoolProblem::padded_plane_bytes(boh_max * ow);
    let full_plane = spans.len() == 1;

    // Program grouping: per (n, c1) plane normally; per c1 slice (all N
    // planes back to back, reusing one UB layout) when folding.
    let groups: Vec<Vec<(usize, usize)>> = if fold {
        (0..prob.c1)
            .map(|c1| (0..prob.n).map(|n| (n, c1)).collect())
            .collect()
    } else {
        prob.planes().map(|nc| vec![nc]).collect()
    };

    let mut programs = Vec::with_capacity(groups.len());
    for group in groups {
        let mut ub = UbArena::new(caps.ub);
        let grad_slots = ub.alloc_band_mode(padded, mode)?;
        let mg_slots = ub.alloc_band_mode(planes * padded, mode)?;
        let ub_dx = Addr::ub(ub.alloc(alloc_rows * prob.iw * ROW)?);
        if mode == BandMode::Versioned {
            // One physical version of everything above, reserved as the
            // topmost allocation so the renamer can always rotate a
            // band's writers past the previous band's in-flight reads.
            ub.reserve_headroom(ub.used())?;
        }

        let mut p = Program::new();
        for (n, c1) in group {
            let grad_base = gm_grad + prob.out_plane_offset(n, c1);
            let dx_base = gm_dx + prob.in_plane_offset(n, c1);

            let load = |p: &mut Program, span: &BandSpan, slot: usize| {
                emit_backward_load(
                    p,
                    prob,
                    source,
                    grad_base,
                    span,
                    padded,
                    (n, c1),
                    Addr::ub(grad_slots.of(slot)),
                    Addr::ub(mg_slots.of(slot)),
                )
            };
            let compute = |p: &mut Program, bi: usize, span: &BandSpan| {
                emit_backward_compute(
                    p,
                    prob,
                    merge,
                    source,
                    span,
                    full_plane,
                    alloc_rows,
                    padded,
                    Addr::ub(grad_slots.of(bi)),
                    Addr::ub(mg_slots.of(bi)),
                    ub_dx,
                )
            };
            let finalize = |p: &mut Program, span: &BandSpan| {
                emit_backward_finalize(p, prob, dx_base, span, ub_dx)
            };

            match mode {
                BandMode::PingPong => {
                    // Software pipeline: band i+1's gradient and mask
                    // DMAs go to the alternate slots before band i's
                    // multiply/merge.
                    load(&mut p, &spans[0], 0)?;
                    for (bi, span) in spans.iter().enumerate() {
                        if let Some(next) = spans.get(bi + 1) {
                            load(&mut p, next, bi + 1)?;
                        }
                        compute(&mut p, bi, span)?;
                        finalize(&mut p, span)?;
                    }
                }
                BandMode::Versioned => {
                    // Single-slot pipeline: band i+1's loads are emitted
                    // after band i's last slot read (multiply/merge) but
                    // before its finalize DMA, so program order stays
                    // functionally serial while the renamer rotates the
                    // loads past the WAR/WAW hazards and overlaps them
                    // with the in-flight Vector work.
                    load(&mut p, &spans[0], 0)?;
                    for (bi, span) in spans.iter().enumerate() {
                        compute(&mut p, bi, span)?;
                        if let Some(next) = spans.get(bi + 1) {
                            load(&mut p, next, 0)?;
                        }
                        finalize(&mut p, span)?;
                    }
                }
                BandMode::Single => {
                    for (bi, span) in spans.iter().enumerate() {
                        load(&mut p, span, 0)?;
                        compute(&mut p, bi, span)?;
                        finalize(&mut p, span)?;
                    }
                }
            }
        }
        programs.push(p);
    }
    Ok(programs)
}

/// The band height and overlap mode the backward lowering adopts — kept
/// as one function so the auto-tuner's cost estimates
/// ([`backward_plane_est`]) band exactly as [`build_backward`] does.
fn plan_backward(
    prob: &PoolProblem,
    merge: MergeImpl,
    masked: bool,
    caps: Capacities,
    sched: &Schedule,
) -> Result<(usize, BandMode), LowerError> {
    let params = prob.params;
    let (oh, ow) = prob.out_dims();
    let planes = params.kh * params.kw;

    // Patches of the previous band that can reach into a band's
    // finalized rows and must be re-loaded: at most (effKh-1)/Sh rows,
    // where effKh is the dilated kernel extent.
    let overlap = (params.eff_kh() - 1) / params.sh;

    // Footprint: `copies` gradient bands + Kh*Kw mask-gradient plane
    // sets (both sized for the band *plus* its overlap patches) + the dx
    // scratch window (shared across bands, never doubled).
    let footprint = |copies: usize, boh: usize| {
        let padded = PoolProblem::padded_plane_bytes((boh + overlap) * ow);
        let dx_rows = band_input_rows(&params, boh + overlap) + params.sh;
        copies * (padded + planes * padded) + dx_rows * prob.iw * ROW
    };
    let boh1 = max_row_band(oh, caps.ub, |b| footprint(1, b))?;
    let mut boh = boh1;
    let mut mode = BandMode::Single;
    if sched.double && boh1 < oh {
        match merge {
            MergeImpl::Col2Im => {
                // Ping-pong profits here: second capacity query at the
                // halved budget; if doubling does not fit even one-row
                // bands, stay single-buffered.
                if let Ok(b) = max_row_band(oh, caps.ub, |b| footprint(2, b)) {
                    boh = b;
                    mode = BandMode::PingPong;
                }
            }
            MergeImpl::VAdd => {
                // The VAdd merge is overwhelmingly Vector-bound — the
                // gradient and mask loads a prefetch would hide are a
                // sliver of the makespan, while halving the band height
                // doubles the per-band overlap re-expansion tax. PR 3
                // measured ping-pong a loss on the whole Fig. 7 sweep and
                // hardcoded a decline. With slot renaming the bands keep
                // single software addresses and only physical headroom is
                // reserved, so the tax is smaller; overlap when the
                // per-pipe predictor says the versioned plan wins.
                if sched.rotate {
                    if let Ok(vb) = max_row_band(oh, caps.ub, |b| 2 * footprint(1, b)) {
                        if vadd_versioned_wins(prob, masked, &sched.cost, boh1, vb) {
                            boh = vb;
                            mode = BandMode::Versioned;
                        }
                    }
                }
            }
        }
    }
    Ok((boh, mode))
}

/// The pipe-0 (MTE) stage of one band: the gradient-band DMA and, for
/// MaxPool, the Kh*Kw argmax-mask plane DMAs into the band's slots.
#[allow(clippy::too_many_arguments)]
fn emit_backward_load(
    p: &mut Program,
    prob: &PoolProblem,
    source: BackwardSource,
    grad_base: usize,
    span: &BandSpan,
    padded: usize,
    (n, c1): (usize, usize),
    ub_grad: Addr,
    ub_mg: Addr,
) -> Result<(), LowerError> {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = span.o_len();

    dma(
        p,
        Addr::gm(grad_base + span.o_lo * ow * ROW),
        ub_grad,
        boh * ow * ROW,
    )?;
    if let BackwardSource::MaxMask { gm_mask } = source {
        for kh in 0..params.kh {
            for kw in 0..params.kw {
                let idx = kh * params.kw + kw;
                let mplane = ub_mg.add(idx * padded);
                let plane_gm =
                    gm_mask + prob.mask_plane_offset(n, c1, kh, kw) + span.o_lo * ow * ROW;
                dma(p, Addr::gm(plane_gm), mplane, boh * ow * ROW)?;
            }
        }
    }
    Ok(())
}

/// The compute stage of one band: dx-window zeroing, the multiply step
/// and the merge. The finalize DMA is a separate stage
/// ([`emit_backward_finalize`]) so the versioned schedule can emit the
/// next band's loads between a band's last slot read and its flush.
#[allow(clippy::too_many_arguments)]
fn emit_backward_compute(
    p: &mut Program,
    prob: &PoolProblem,
    merge: MergeImpl,
    source: BackwardSource,
    span: &BandSpan,
    full_plane: bool,
    alloc_rows: usize,
    padded: usize,
    ub_grad: Addr,
    ub_mg: Addr,
    ub_dx: Addr,
) -> Result<(), LowerError> {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = span.o_len();
    let planes = params.kh * params.kw;
    let valid = boh * ow * C0;

    // --- dx window preparation: Col2Im accumulates, so the whole
    // scratch window starts from zero every band (no state is carried —
    // contributions of overlap patches are recomputed instead).
    zero_region(p, ub_dx, alloc_rows * prob.iw * C0)?;

    // --- multiply step (Listing 3); the gradient band and mask planes
    // were staged by the load stage.
    match source {
        BackwardSource::MaxMask { .. } => {
            for idx in 0..planes {
                let mplane = ub_mg.add(idx * padded);
                elementwise(p, VectorOp::Mul, mplane, mplane, ub_grad, valid)?;
            }
        }
        BackwardSource::AvgUniform { scale } => {
            for idx in 0..planes {
                let mplane = ub_mg.add(idx * padded);
                elementwise(
                    p,
                    VectorOp::MulScalar(scale),
                    mplane,
                    ub_grad,
                    ub_grad,
                    valid,
                )?;
            }
        }
    }

    // --- band geometry for the merge, over the scratch window. A full
    // plane keeps the original (possibly padded) geometry; multi-band
    // splits are always vertically unpadded (`row_bands` rejects the
    // rest), so only the horizontal padding survives. Either way the
    // window yields exactly the band's patch grid.
    let band_params = if full_plane {
        params
    } else {
        PoolParams::with_padding(
            (params.kh, params.kw),
            (params.sh, params.sw),
            dv_tensor::Padding {
                top: 0,
                bottom: 0,
                left: params.padding.left,
                right: params.padding.right,
            },
        )
        .with_dilation((params.dh, params.dw))
    };
    let geom =
        Im2ColGeometry::new(span.w_rows, prob.iw, 1, band_params).map_err(LowerError::Isa)?;
    debug_assert_eq!(geom.out_dims(), (boh, ow));

    // --- merge step.
    match merge {
        MergeImpl::VAdd => {
            // "the vadd instructions only set 16 elements of the vector
            // mask (vectorizing on C0) and repetition is not used."
            for kh in 0..params.kh {
                for kw in 0..params.kw {
                    let mplane = ub_mg.add((kh * params.kw + kw) * padded);
                    for patch in 0..boh * ow {
                        let Some((h, w)) = geom.element_coord(patch, kh, kw) else {
                            continue; // contribution lands in padding
                        };
                        let dst = ub_dx.add((h * prob.iw + w) * ROW);
                        p.push(Instr::Vector(VectorInstr {
                            op: VectorOp::Add,
                            dst,
                            src0: dst,
                            src1: mplane.add(patch * ROW),
                            mask: Mask::C0_ONLY,
                            repeat: 1,
                            dst_stride: 0,
                            src0_stride: 0,
                            src1_stride: 0,
                        }))?;
                    }
                }
            }
        }
        MergeImpl::Col2Im => {
            let bf = PoolProblem::fractals_for(boh * ow);
            for kh in 0..params.kh {
                for kw in 0..params.kw {
                    let mplane = ub_mg.add((kh * params.kw + kw) * padded);
                    let mut f0 = 0usize;
                    while f0 < bf {
                        let rep = (bf - f0).min(MAX_REPEAT as usize);
                        p.push(Instr::Col2Im(Col2Im {
                            geom,
                            src: mplane.add(f0 * FRACTAL_BYTES),
                            dst: ub_dx,
                            first_patch: f0 * FRACTAL_ROWS,
                            k_off: (kh, kw),
                            c1: 0,
                            repeat: rep as u16,
                        }))?;
                        f0 += rep;
                    }
                }
            }
        }
    }

    Ok(())
}

/// The finalize stage of one band: only the band's own rows go back to
/// GM; scratch contributions outside `[r0, r1)` (partial sums another
/// band owns) are discarded with the window.
fn emit_backward_finalize(
    p: &mut Program,
    prob: &PoolProblem,
    dx_base: usize,
    span: &BandSpan,
    ub_dx: Addr,
) -> Result<(), LowerError> {
    let row_bytes = prob.iw * ROW;
    dma(
        p,
        ub_dx.add((span.r0 - span.w_lo) * row_bytes),
        Addr::gm(dx_base + span.r0 * row_bytes),
        (span.r1 - span.r0) * row_bytes,
    )?;
    Ok(())
}

/// Stage estimate of one VAdd-merge backward band: the gradient band DMA
/// and the mask-plane DMAs (MaxPool only) as `load`; the window zero,
/// the multiply passes and the unrepeated 16-lane merge adds as
/// `compute`; the dx-row DMA as `flush`. No `expand` — the backward pass
/// has no `Im2Col`.
fn vadd_band_cycles(
    prob: &PoolProblem,
    masked: bool,
    cost: &CostModel,
    span: &BandSpan,
    alloc_rows: usize,
) -> schedule::BandStages {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = span.o_len();
    let planes = (params.kh * params.kw) as u64;
    let band_bytes = boh * ow * ROW;
    let mut load = schedule::dma_est(cost, band_bytes);
    if masked {
        load += planes * schedule::dma_est(cost, band_bytes);
    }
    // "the vadd instructions only set 16 elements of the vector mask
    // (vectorizing on C0) and repetition is not used": one issue per
    // (plane, patch). An overestimate for padded geometries (padding
    // patches are skipped), which only biases against overlapping.
    let merge = planes * (boh * ow) as u64 * (cost.issue_overhead + cost.vector_per_repeat);
    schedule::BandStages {
        load,
        expand: 0,
        compute: schedule::vec_sat(cost, alloc_rows * prob.iw * C0)
            + planes * schedule::vec_sat(cost, boh * ow * C0)
            + merge,
        flush: schedule::dma_est(cost, (span.r1 - span.r0) * prob.iw * ROW),
    }
}

/// Decide the VAdd backward's cross-band overlap: does the versioned
/// plan at band height `boh_versioned` (pipelined, but with its smaller
/// bands' extra overlap-patch reloads and issue tax) beat the serial
/// plan at `boh_serial`?
fn vadd_versioned_wins(
    prob: &PoolProblem,
    masked: bool,
    cost: &CostModel,
    boh_serial: usize,
    boh_versioned: usize,
) -> bool {
    let (oh, _) = prob.out_dims();
    let spans_for = |boh: usize| -> Option<Vec<BandSpan>> {
        let bands = row_bands(&prob.params, oh, boh, prob.ih).ok()?;
        Some(
            bands
                .iter()
                .enumerate()
                .map(|(i, b)| BandSpan::new(prob, b.oh0, b.oh1, i + 1 == bands.len()))
                .collect(),
        )
    };
    let (Some(serial), Some(versioned)) = (spans_for(boh_serial), spans_for(boh_versioned)) else {
        return false;
    };
    if versioned.len() < 2 {
        return false;
    }
    let est = |spans: &[BandSpan]| -> Vec<schedule::BandStages> {
        let alloc_rows = spans.iter().map(|s| s.w_rows).max().unwrap();
        spans
            .iter()
            .map(|s| vadd_band_cycles(prob, masked, cost, s, alloc_rows))
            .collect()
    };
    schedule::versioned_makespan(&est(&versioned)) < schedule::serial_makespan(est(&serial))
}

/// Stage estimate of one Col2Im-merge backward band: same load and flush
/// as the VAdd merge, but the merge step is Kh*Kw hardware-repeated
/// `Col2Im` issues sweeping the band's fractals.
fn col2im_band_cycles(
    prob: &PoolProblem,
    masked: bool,
    cost: &CostModel,
    span: &BandSpan,
    alloc_rows: usize,
) -> schedule::BandStages {
    let params = prob.params;
    let (_, ow) = prob.out_dims();
    let boh = span.o_len();
    let planes = (params.kh * params.kw) as u64;
    let band_bytes = boh * ow * ROW;
    let mut load = schedule::dma_est(cost, band_bytes);
    if masked {
        load += planes * schedule::dma_est(cost, band_bytes);
    }
    let bf = PoolProblem::fractals_for(boh * ow) as u64;
    let merge = planes
        * (bf.div_ceil(MAX_REPEAT as u64) * cost.issue_overhead + bf * cost.col2im_per_fractal);
    schedule::BandStages {
        load,
        expand: 0,
        compute: schedule::vec_sat(cost, alloc_rows * prob.iw * C0)
            + planes * schedule::vec_sat(cost, boh * ow * C0)
            + merge,
        flush: schedule::dma_est(cost, (span.r1 - span.r0) * prob.iw * ROW),
    }
}

/// Estimated (cycles, GM bytes) of one plane's backward program under
/// `merge`, banded exactly as [`build_backward`] would band it (same
/// [`plan_backward`], same spans). `None` when the geometry cannot be
/// planned — the candidate is then absent from the auto-tuner's ranking.
/// This is the per-plane cost [`crate::schedule::choose_backward_algorithm`]
/// scales to chip cycles.
pub(crate) fn backward_plane_est(
    prob: &PoolProblem,
    merge: MergeImpl,
    masked: bool,
    caps: Capacities,
    sched: &Schedule,
) -> Option<(u64, u64)> {
    let cost = &sched.cost;
    let (boh, mode) = plan_backward(prob, merge, masked, caps, sched).ok()?;
    let (oh, ow) = prob.out_dims();
    let bands = row_bands(&prob.params, oh, boh, prob.ih).ok()?;
    let spans: Vec<BandSpan> = bands
        .iter()
        .enumerate()
        .map(|(i, b)| BandSpan::new(prob, b.oh0, b.oh1, i + 1 == bands.len()))
        .collect();
    let alloc_rows = spans.iter().map(|s| s.w_rows).max()?;
    let stages: Vec<schedule::BandStages> = spans
        .iter()
        .map(|s| match merge {
            MergeImpl::VAdd => vadd_band_cycles(prob, masked, cost, s, alloc_rows),
            MergeImpl::Col2Im => col2im_band_cycles(prob, masked, cost, s, alloc_rows),
        })
        .collect();
    let cycles = if spans.len() < 2 || mode == BandMode::Single {
        schedule::serial_makespan(stages.iter().copied())
    } else {
        // Ping-pong and versioned plans both recover load(i+1) ∥
        // compute(i); the deferred-flush order is the closest closed form.
        schedule::versioned_makespan(&stages)
    };
    let planes = (prob.params.kh * prob.params.kw) as u64;
    let grad_bytes: u64 = spans.iter().map(|s| (s.o_len() * ow * ROW) as u64).sum();
    let mask_bytes = if masked { planes * grad_bytes } else { 0 };
    let dx_bytes = (prob.ih * prob.iw * ROW) as u64;
    Some((cycles, grad_bytes + mask_bytes + dx_bytes))
}
