//! Cross-band overlap scheduling: how a lowering decides *whether* and
//! *how* to overlap band `i + 1`'s loads with band `i`'s compute.
//!
//! PR 3 hardcoded two declines — the Im2col forward and the VAdd-merge
//! backward never double-buffered, because on the shapes measured then
//! the halved band height cost more than the overlap recovered. Those
//! were measurements of the *ping-pong* mechanism, which halves every
//! band region to fit two software-addressed slots. With buffer-slot
//! renaming in the dual-pipe scoreboard there is a second mechanism:
//! keep **one** slot per region, reserve physical headroom at the top of
//! the UB plan, and let the scheduler rotate the next band's writes past
//! the previous band's in-flight reads ([`dv_akg::BandMode::Versioned`]).
//! Whether that pays is a per-workload question, so the declines are
//! replaced by a closed-form per-pipe cycle predictor: estimate each
//! band's pipe-0 (MTE/SCU) and pipe-1 (Vector) cycles from the
//! [`CostModel`] constants, compare the serial single-slot makespan
//! against the two-stage-pipeline makespan of the versioned plan, and
//! overlap only when the model says it wins. The simulator's dual-pipe
//! makespan is the ground truth the estimates approximate; the perf gate
//! measures every decision against the no-rename control column.

use crate::problem::{ForwardImpl, MergeImpl, PoolProblem};
use dv_akg::{row_bands, Band, BandMode};
use dv_isa::{Program, MAX_REPEAT, VECTOR_LANES};
use dv_sim::{Capacities, CostModel, IssueModel};
use dv_tensor::{C0, FRACTAL_ROWS};

const ROW: usize = C0 * 2;

/// Per-workload scheduling knobs a lowering plans against, resolved by
/// [`crate::PoolingEngine`] from its chip's cost model (or overridden
/// for controlled comparisons).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Schedule {
    /// Allow cross-band overlap at all (the engine's `double_buffer`
    /// switch). Off means strictly serial single-slot bands.
    pub double: bool,
    /// Plan for buffer-slot renaming: lets the planner choose
    /// [`dv_akg::BandMode::Versioned`] layouts whose overlap exists only
    /// because the dual-pipe scheduler rotates writers past WAR/WAW
    /// hazards. Must be false when the executing model cannot rename —
    /// a versioned plan run without renaming is correct but recovers no
    /// overlap (and its makespan is what the rename gate's control
    /// column measures).
    pub rotate: bool,
    /// The cycle charges the overlap predictor estimates with.
    pub cost: CostModel,
}

impl Schedule {
    /// The schedule a given cost model implies: renaming is planned for
    /// exactly when the model's dual-pipe scheduler performs it.
    pub fn for_cost(cost: CostModel, double: bool) -> Schedule {
        Schedule {
            double,
            rotate: cost.rename && cost.issue_model == IssueModel::DualPipe,
            cost,
        }
    }

    /// Strictly serial banding: no prefetch, no renaming. What
    /// `double_buffer = false` engines and instruction-count audits use.
    pub fn serial() -> Schedule {
        Schedule {
            double: false,
            rotate: false,
            cost: CostModel::ascend910_like(),
        }
    }

    /// Override the rotation-planning bit (see [`Schedule::rotate`]).
    pub fn with_rotation(mut self, on: bool) -> Schedule {
        self.rotate = on;
        self
    }
}

impl Default for Schedule {
    /// Overlap allowed, renaming as the default cost model performs it.
    fn default() -> Schedule {
        Schedule::for_cost(CostModel::ascend910_like(), true)
    }
}

/// Estimated busy cycles of one band's four schedule stages. Pipe 0
/// (MTE/SCU) runs `load`, `expand` and `flush` in program order; pipe 1
/// (Vector) runs `compute`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BandStages {
    /// Staging DMAs: the input (or gradient + mask) band loads.
    pub load: u64,
    /// `Im2Col` expansions the compute stage waits on (0 for backward).
    pub expand: u64,
    /// Vector work: fills, reductions, compares, multiplies, merges.
    pub compute: u64,
    /// Result DMAs back to GM (output, mask planes, dx rows).
    pub flush: u64,
}

/// Cycles of a full-mask elementwise pass over `elems` f16 elements, as
/// `dv_akg::emit::elementwise` chunks it: `MAX_REPEAT`-repeat issues over
/// the 128-lane blocks plus one tail issue.
pub(crate) fn vec_sat(cost: &CostModel, elems: usize) -> u64 {
    let full = elems / VECTOR_LANES;
    let tail = usize::from(!elems.is_multiple_of(VECTOR_LANES));
    let issues = full.div_ceil(MAX_REPEAT as usize) + tail;
    let reps = full + tail;
    issues as u64 * cost.issue_overhead + reps as u64 * cost.vector_per_repeat
}

/// Cycles of one MTE move of `bytes` bytes, issue overhead included.
pub(crate) fn dma_est(cost: &CostModel, bytes: usize) -> u64 {
    cost.issue_overhead + cost.move_cycles(bytes)
}

/// Makespan of running every band's stages strictly in sequence — the
/// single-slot schedule, where band `i + 1`'s loads wait for band `i`'s
/// last read.
pub(crate) fn serial_makespan(stages: impl IntoIterator<Item = BandStages>) -> u64 {
    stages
        .into_iter()
        .map(|s| s.load + s.expand + s.compute + s.flush)
        .sum()
}

/// Makespan of the versioned (deferred-flush) emission, assuming every
/// rotation is granted — which the reserved headroom guarantees, because
/// this schedule never runs more than one band ahead (`flush(i)` gates
/// pipe 0 on `compute(i)`), so at most two versions of any region are
/// ever live.
///
/// Emission order per band: `expand(i)+compute(i); load(i+1); flush(i)`
/// after a prologue `load(0)`. Pipe 0 is in-order, so its stream is
/// `load(0), expand(0), load(1), flush(0), expand(1), load(2), flush(1),
/// …`; `compute(i)` starts once its inputs are staged (after `expand(i)`
/// when there is one, else after `load(i)`) and pipe 1 is free;
/// `flush(i)` waits on `compute(i)` (RAW). The only true overlap this
/// schedule recovers is band `i + 1`'s loads (and, transitively, work
/// behind them) against band `i`'s compute — exactly what a granted
/// rotation buys past the WAR/WAW hazards — so modelling the order
/// exactly is what keeps the predictor honest on pipe-0-bound workloads,
/// where an idealised two-stage pipeline bound overpromises.
pub(crate) fn versioned_makespan(stages: &[BandStages]) -> u64 {
    let Some(first) = stages.first() else {
        return 0;
    };
    let mut t = first.load; // pipe-0 cursor
    let mut load_done = t; // completion of the latest band load
    let mut r = 0u64; // pipe-1 cursor
    for (i, s) in stages.iter().enumerate() {
        t += s.expand;
        let staged = if s.expand > 0 { t } else { load_done };
        r = r.max(staged) + s.compute;
        if let Some(next) = stages.get(i + 1) {
            t += next.load;
            load_done = t;
        }
        t = t.max(r) + s.flush;
    }
    t.max(r)
}

/// Finer-grained stage estimate of one Im2col-forward band. The forward
/// compute is not a monolith: the reduction for plane `p` only waits on
/// plane `p`'s `Im2Col` chain (RAW per plane), so on the dual-pipe
/// machine the vector chain *trails* the expansion stream and mostly
/// hides under it — in **both** the single-slot and the versioned plan.
/// Modelling that trailing is what keeps the serial baseline honest;
/// summing whole stages overstates it by roughly one compute per band.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FwdStages {
    /// Input-band DMA into L1.
    pub load: u64,
    /// `Im2Col` chain of one `(kh, kw)` plane.
    pub plane_expand: u64,
    /// `Kh * Kw`.
    pub planes: u64,
    /// One full-band vector pass (the fill, one reduction, or one mask
    /// compare — all chunk identically).
    pub plane_vec: u64,
    /// One argmax mask-plane DMA back to GM (0 without a mask).
    pub mask_dma: u64,
    /// The output-band DMA back to GM.
    pub out_dma: u64,
}

impl FwdStages {
    fn expand(&self) -> u64 {
        self.planes * self.plane_expand
    }

    /// When this band's saturated reduction completes, given the pipe-1
    /// cursor `r_prev` (previous band's last vector instruction this
    /// chain queues behind) and the pipe-0 time its last expansion
    /// lands. The fill runs as soon as pipe 1 frees up; reduction `p`
    /// waits only on expansion `p` (RAW per plane), so the chain trails
    /// the expansion stream.
    fn reduce_end(&self, r_prev: u64, expand_end: u64) -> u64 {
        let first_staged = expand_end - self.expand() + self.plane_expand;
        let chain = r_prev.max(first_staged) + (1 + self.planes) * self.plane_vec;
        // Even a fully-hidden chain still exposes the last plane's
        // reduction past the last expansion.
        chain.max(expand_end + self.plane_vec)
    }

    /// Walk the flush stage from pipe-0 time `p0`: each mask-plane DMA
    /// RAW-waits only on *its* compare (which trails the reduction on
    /// pipe 1), then the output DMA waits on the reduction. Returns the
    /// pipe-0 and pipe-1 completion times.
    fn flush_end(&self, p0: u64, reduce_end: u64) -> (u64, u64) {
        let mut t = p0;
        let mut cmp = reduce_end;
        if self.mask_dma > 0 {
            for _ in 0..self.planes {
                cmp += self.plane_vec;
                t = t.max(cmp) + self.mask_dma;
            }
        }
        (t.max(reduce_end) + self.out_dma, cmp)
    }
}

/// Makespan of the single-slot (serial) Im2col forward on the dual-pipe
/// machine. Pipe 0 runs `load, expand, flush` per band back-to-back;
/// the flush RAW-waits on the band's vector chain; the next band's fill
/// WAR-waits on the output DMA (no renaming), so pipe 1 resumes only
/// after the flush completes.
pub(crate) fn forward_serial_makespan(stages: &[FwdStages]) -> u64 {
    let mut t = 0u64; // pipe-0 cursor
    let mut r = 0u64; // pipe-1 cursor
    for s in stages {
        t += s.load + s.expand();
        let re = s.reduce_end(r, t);
        (t, _) = s.flush_end(t, re);
        // The next fill's WAR on the out region binds to this flush.
        r = t;
    }
    t
}

/// Makespan of the versioned (deferred-flush) Im2col forward, assuming
/// every rotation is granted — guaranteed by the reserved headroom,
/// because pipe 0 never runs more than one band ahead (`flush(i)` gates
/// it on `compute(i)`), so at most two versions of any region are live.
///
/// Pipe-0 stream: `load(0), expand(0), load(1), expand(1), flush(0),
/// load(2), expand(2), flush(1), …` — band `i + 1`'s load *and*
/// expansions issue ahead of band `i`'s RAW-bound flush, writing into
/// rotated versions. Pipe 1 chains are unchanged; the fill's WAR on the
/// in-flight flush is renamed away, so pipe 1 resumes at its own pace.
pub(crate) fn forward_versioned_makespan(stages: &[FwdStages]) -> u64 {
    let Some(first) = stages.first() else {
        return 0;
    };
    let mut t = first.load + first.expand(); // pipe-0 cursor
    let mut expand_end = t;
    let mut r = 0u64; // pipe-1 cursor
    for (i, s) in stages.iter().enumerate() {
        let re = s.reduce_end(r, expand_end);
        if let Some(next) = stages.get(i + 1) {
            t += next.load + next.expand();
            expand_end = t;
        }
        (t, r) = s.flush_end(t, re);
    }
    t.max(r)
}

/// Which axis a sharded forward partitions the chip's work over — the
/// three splits Section V-A admits ("the outer loops are parallelized
/// between the AI Cores available").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionAxis {
    /// One program per `(n, c1)` plane — the paper's per-plane schedule
    /// and the only shape every lowering supports. Covers the
    /// "per-batch-element" split: with `C1 = 1` each program *is* one
    /// batch element.
    PerPlane,
    /// Batch fold: one program per `c1` slice carrying all `N` batch
    /// planes through a Mode-0 `Im2Col` repeat chain. Fewer, bigger
    /// programs — worthwhile exactly when occupancy survives the drop
    /// from `N * C1` to `C1` programs.
    PerC1,
    /// Row bands: each plane's output rows split across otherwise-idle
    /// cores, one program per band group. More, smaller programs — buys
    /// occupancy when there are fewer planes than cores, at the price of
    /// per-band halo reloads and issue overhead.
    PerRowBand,
}

/// Estimated (cycles, GM bytes) of one Im2col-forward program covering a
/// `1/groups` row-band share of one plane (`groups == 1`: the whole
/// plane). `None` when the geometry cannot be banded that way (vertical
/// padding, degenerate heights) — the caller must not pick that split.
fn shard_est(
    prob: &PoolProblem,
    with_mask: bool,
    cost: &CostModel,
    groups: usize,
) -> Option<(u64, u64)> {
    let (oh, ow) = prob.out_dims();
    let g = groups.clamp(1, oh);
    let boh = oh.div_ceil(g);
    let bands = row_bands(&prob.params, oh, boh, prob.ih).ok()?;
    // The tallest (first) band bounds the shard makespan.
    let s = forward_im2col_band(prob, with_mask, cost, &bands[0]);
    let cycles = forward_serial_makespan(std::slice::from_ref(&s));
    let band_out = bands[0].oh_len() * ow * ROW;
    let mask_out = if with_mask {
        prob.params.kh * prob.params.kw * band_out
    } else {
        0
    };
    let gm = bands[0].ih_len * prob.iw * ROW + band_out + mask_out;
    Some((cycles, gm as u64))
}

/// Estimated chip makespan of `programs` identical shards of `per` =
/// (cycles, GM bytes) each, round-robined over `cores`. Under a shared
/// L2/HBM pipe of `shared` bytes/cycle the estimate is inflated by the
/// analytic contention multiplier `max(1, concurrent * demand / shared)`
/// — the uniform-streams closed form of the simulator's fluid model
/// (`dv_sim::contention`), which is exact when all concurrent shards are
/// identical, as they are here.
fn chip_makespan(
    programs: usize,
    per: (u64, u64),
    cores: usize,
    cost: &CostModel,
    shared: Option<u64>,
) -> f64 {
    if programs == 0 {
        return 0.0;
    }
    let rounds = programs.div_ceil(cores) as f64;
    let per_cycles = (per.0 + cost.core_dispatch).max(1) as f64;
    let factor = match shared {
        Some(b) => {
            let concurrent = programs.min(cores) as f64;
            let demand = (per.1 as f64 / per_cycles).min(cost.move_bytes_per_cycle as f64);
            (concurrent * demand / b.max(1) as f64).max(1.0)
        }
        None => 1.0,
    };
    rounds * per_cycles * factor
}

/// Pick the partition axis for a sharded Im2col forward: estimate the
/// chip makespan of each feasible split with the same per-band cost
/// predictor the overlap decisions use, inflate by the shared-bandwidth
/// contention multiplier when the chip models one, and take the cheapest.
/// Ties prefer [`PartitionAxis::PerC1`] over [`PartitionAxis::PerPlane`]
/// (the fold also saves `Im2Col` issues, which the makespan estimate
/// does not see) and `PerPlane` over [`PartitionAxis::PerRowBand`] (band
/// splits pay halo reloads the win must clear).
pub fn choose_partition(
    prob: &PoolProblem,
    with_mask: bool,
    cores: usize,
    sched: &Schedule,
    shared_bandwidth: Option<u64>,
) -> PartitionAxis {
    let cost = &sched.cost;
    let planes = prob.n * prob.c1;
    let Some(plane) = shard_est(prob, with_mask, cost, 1) else {
        return PartitionAxis::PerPlane;
    };
    let mut best = (
        chip_makespan(planes, plane, cores, cost, shared_bandwidth),
        PartitionAxis::PerPlane,
    );
    if prob.n > 1 {
        let folded = (
            plane.0.saturating_mul(prob.n as u64),
            plane.1.saturating_mul(prob.n as u64),
        );
        let est = chip_makespan(prob.c1, folded, cores, cost, shared_bandwidth);
        if est <= best.0 {
            best = (est, PartitionAxis::PerC1);
        }
    }
    let groups = cores.checked_div(planes).unwrap_or(0);
    if groups > 1 {
        if let Some(band) = shard_est(prob, with_mask, cost, groups) {
            let est = chip_makespan(planes * groups, band, cores, cost, shared_bandwidth);
            if est < best.0 {
                best = (est, PartitionAxis::PerRowBand);
            }
        }
    }
    best.1
}

/// Stage estimate of one Im2col-forward band at its actual height.
pub(crate) fn forward_im2col_band(
    prob: &PoolProblem,
    with_mask: bool,
    cost: &CostModel,
    band: &Band,
) -> FwdStages {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let planes = (params.kh * params.kw) as u64;
    let bf = PoolProblem::fractals_for(boh * ow);
    let elems = bf * FRACTAL_ROWS * C0;
    let band_bytes = boh * ow * ROW;
    let plane_expand = bf.div_ceil(MAX_REPEAT as usize) as u64 * cost.issue_overhead
        + bf as u64 * cost.im2col_per_fractal;
    let plane_vec = vec_sat(cost, elems);
    FwdStages {
        load: dma_est(cost, band.ih_len * prob.iw * ROW),
        plane_expand,
        planes,
        plane_vec,
        mask_dma: if with_mask {
            dma_est(cost, band_bytes)
        } else {
            0
        },
        out_dma: dma_est(cost, band_bytes),
    }
}

/// Decide the Im2col forward's cross-band overlap: does the versioned
/// plan at band height `boh_versioned` (overlapped, but with its smaller
/// bands' re-expansion and issue tax) beat the single-slot plan at
/// `boh_serial`?
pub(crate) fn forward_im2col_versioned_wins(
    prob: &PoolProblem,
    with_mask: bool,
    cost: &CostModel,
    boh_serial: usize,
    boh_versioned: usize,
) -> bool {
    let (oh, _) = prob.out_dims();
    let Ok(serial_bands) = row_bands(&prob.params, oh, boh_serial, prob.ih) else {
        return false;
    };
    let Ok(v_bands) = row_bands(&prob.params, oh, boh_versioned, prob.ih) else {
        return false;
    };
    if v_bands.len() < 2 {
        return false;
    }
    let est = |b: &Band| forward_im2col_band(prob, with_mask, cost, b);
    let v_stages: Vec<FwdStages> = v_bands.iter().map(est).collect();
    let s_stages: Vec<FwdStages> = serial_bands.iter().map(est).collect();
    forward_versioned_makespan(&v_stages) < forward_serial_makespan(&s_stages)
}

// ---------------------------------------------------------------------
// The auto-tuner: rank whole algorithm families per workload.
// ---------------------------------------------------------------------

/// The algorithm families [`choose_forward_algorithm`] and
/// [`choose_backward_algorithm`] rank — the auto-tuner's dispatch table.
/// Each maps onto the existing lowering switches: the tuner never invents
/// a new lowering, it only decides which one runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Direct reduction on the NC1HWC0 layout: [`ForwardImpl::Standard`]
    /// forward, [`MergeImpl::VAdd`] backward — the lowering that wins
    /// Fig. 8a's stride-(1,1) regime.
    Direct,
    /// The paper's accelerated path: [`ForwardImpl::Im2col`] forward,
    /// [`MergeImpl::Col2Im`] backward, one program per `(n, c1)` plane.
    Im2col,
    /// The Mode-0 batch fold (forward only): all `N` planes of a `c1`
    /// slice through one `Im2Col` repeat-chain program.
    Fold,
}

impl Algorithm {
    /// Stable name for baselines, gate sections and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Direct => "direct",
            Algorithm::Im2col => "im2col",
            Algorithm::Fold => "fold",
        }
    }

    /// The forward lowering this algorithm dispatches.
    pub fn forward_impl(self) -> ForwardImpl {
        match self {
            Algorithm::Direct => ForwardImpl::Standard,
            Algorithm::Im2col | Algorithm::Fold => ForwardImpl::Im2col,
        }
    }

    /// The backward merge this algorithm dispatches.
    pub fn merge_impl(self) -> MergeImpl {
        match self {
            Algorithm::Direct => MergeImpl::VAdd,
            Algorithm::Im2col | Algorithm::Fold => MergeImpl::Col2Im,
        }
    }
}

/// One ranked candidate: an algorithm and its predicted chip cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The candidate algorithm.
    pub algorithm: Algorithm,
    /// Predicted chip cycles (banding, round-robin dispatch and the
    /// shared-bandwidth contention multiplier folded in).
    pub cycles: u64,
}

/// The tuner's verdict: every feasible candidate, cheapest first. An
/// infeasible candidate (padded direct reduction, a fold with `N = 1`, a
/// geometry no band plan fits) is simply absent — the engine dispatches
/// [`AlgorithmChoice::winner`] and certifies the run against the rest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgorithmChoice {
    /// Feasible candidates sorted by predicted cycles, ascending. Ties
    /// prefer `Fold`, then `Im2col`, then `Direct` (the sort is stable
    /// and that is the insertion order): the fold consolidates `Im2Col`
    /// issues the estimate does not see, and `Direct` must strictly beat
    /// the paper's accelerated path to displace it.
    pub ranking: Vec<Prediction>,
}

impl AlgorithmChoice {
    /// The algorithm the engine dispatches (cheapest predicted cycles).
    pub fn winner(&self) -> Option<Algorithm> {
        self.ranking.first().map(|p| p.algorithm)
    }

    /// The predicted cycles of one candidate, if it was feasible.
    pub fn predicted(&self, algo: Algorithm) -> Option<u64> {
        self.ranking
            .iter()
            .find(|p| p.algorithm == algo)
            .map(|p| p.cycles)
    }
}

/// Stage estimate of one direct-reduction (Standard) forward band,
/// mirroring `emit_standard_compute`'s issue counts: the accumulator
/// fill, then — with `Sw == 1` — `Boh * Kh` row chains of
/// `ceil(Ow*C0/128)` full-mask issues each repeating `Kw` times, or the
/// general `Boh * Ow * Kh` 16-lane issues; one extra saturated pass for
/// the AvgPool scale; `Boh * Ow * Kh` compare issues plus `Kh * Kw`
/// mask-plane DMAs when the argmax mask is kept.
fn standard_band_stages(
    prob: &PoolProblem,
    with_mask: bool,
    is_avg: bool,
    cost: &CostModel,
    band: &Band,
) -> BandStages {
    let params = &prob.params;
    let (_, ow) = prob.out_dims();
    let boh = band.oh_len();
    let issue = cost.issue_overhead + params.kw as u64 * cost.vector_per_repeat;
    let reduce_issues = if params.sw == 1 {
        (boh * params.kh * (ow * C0).div_ceil(VECTOR_LANES)) as u64
    } else {
        (boh * ow * params.kh) as u64
    };
    let mut compute = vec_sat(cost, boh * ow * C0) + reduce_issues * issue;
    if is_avg {
        compute += vec_sat(cost, boh * ow * C0);
    }
    let band_bytes = boh * ow * ROW;
    let mut flush = dma_est(cost, band_bytes);
    if with_mask {
        compute += (boh * ow * params.kh) as u64 * issue;
        flush += (params.kh * params.kw) as u64 * dma_est(cost, band_bytes);
    }
    BandStages {
        load: dma_est(cost, band.ih_len * prob.iw * ROW),
        expand: 0,
        compute,
        flush,
    }
}

/// Estimated (cycles, GM bytes) of one plane's forward program under
/// `impl_`, banded exactly as the lowering would band it (same
/// `plan_band`, same feasibility gates as `build_forward_inner`). `None`
/// when the implementation cannot run this geometry — the candidate is
/// then absent from the ranking, never silently mispriced.
fn forward_plane_est(
    prob: &PoolProblem,
    impl_: ForwardImpl,
    with_mask: bool,
    is_avg: bool,
    caps: Capacities,
    sched: &Schedule,
) -> Option<(u64, u64)> {
    let cost = &sched.cost;
    let params = &prob.params;
    if impl_ != ForwardImpl::Im2col {
        // Mirror build_forward_inner's gates: only the coordinate-checked
        // Im2Col gather realises padding and ceil-mode overhang reads.
        if !params.padding.is_none() {
            return None;
        }
        if params.ceil_mode && params.ceil_overhang(prob.ih, prob.iw).ok()? != (0, 0) {
            return None;
        }
        if params.has_dilation() && impl_ != ForwardImpl::Standard {
            return None;
        }
    }
    let (oh, ow) = prob.out_dims();
    let (boh, mode) =
        crate::maxpool::forward::plan_band(prob, impl_, with_mask, caps, sched).ok()?;
    let bands = row_bands(params, oh, boh, prob.ih).ok()?;
    let serial = bands.len() < 2 || mode == BandMode::Single;
    let cycles = match impl_ {
        ForwardImpl::Im2col => {
            let stages: Vec<FwdStages> = bands
                .iter()
                .map(|b| forward_im2col_band(prob, with_mask, cost, b))
                .collect();
            let mut c = if serial {
                forward_serial_makespan(&stages)
            } else {
                forward_versioned_makespan(&stages)
            };
            if is_avg {
                // The AvgPool scale: one extra saturated pass per band.
                c += stages.iter().map(|s| s.plane_vec).sum::<u64>();
            }
            c
        }
        _ => {
            let stages: Vec<BandStages> = bands
                .iter()
                .map(|b| standard_band_stages(prob, with_mask, is_avg, cost, b))
                .collect();
            if serial {
                serial_makespan(stages.iter().copied())
            } else {
                // Ping-pong recovers the same load(i+1) ∥ compute(i)
                // overlap the deferred-flush order models.
                versioned_makespan(&stages)
            }
        }
    };
    let in_bytes: u64 = bands
        .iter()
        .map(|b| (b.ih_len * prob.iw * ROW) as u64)
        .sum();
    let out_bytes = (oh * ow * ROW) as u64;
    let mask_bytes = if with_mask {
        (params.kh * params.kw) as u64 * out_bytes
    } else {
        0
    };
    Some((cycles, in_bytes + out_bytes + mask_bytes))
}

/// Rank the forward algorithm families for one workload: per-plane
/// direct reduction, per-plane Im2col, and the Mode-0 batch fold, each
/// priced by the same per-band stage estimators the overlap and
/// partition decisions use and scaled to chip cycles by the round-robin
/// + contention makespan model. Infeasible candidates are absent.
pub fn choose_forward_algorithm(
    prob: &PoolProblem,
    with_mask: bool,
    is_avg: bool,
    cores: usize,
    sched: &Schedule,
    caps: Capacities,
    shared_bandwidth: Option<u64>,
) -> AlgorithmChoice {
    let cost = &sched.cost;
    let planes = prob.n * prob.c1;
    let mut ranking = Vec::new();
    let mut push = |algorithm, programs: usize, per: (u64, u64)| {
        let est = chip_makespan(programs, per, cores, cost, shared_bandwidth);
        ranking.push(Prediction {
            algorithm,
            cycles: est.round() as u64,
        });
    };
    let im2col = forward_plane_est(prob, ForwardImpl::Im2col, with_mask, is_avg, caps, sched);
    // Insertion order encodes tie preference (see [`AlgorithmChoice`]).
    if prob.n > 1 {
        if let Some(plane) = im2col {
            let folded = (
                plane.0.saturating_mul(prob.n as u64),
                plane.1.saturating_mul(prob.n as u64),
            );
            push(Algorithm::Fold, prob.c1, folded);
        }
    }
    if let Some(plane) = im2col {
        push(Algorithm::Im2col, planes, plane);
    }
    if let Some(plane) =
        forward_plane_est(prob, ForwardImpl::Standard, with_mask, is_avg, caps, sched)
    {
        push(Algorithm::Direct, planes, plane);
    }
    ranking.sort_by_key(|p| p.cycles);
    AlgorithmChoice { ranking }
}

/// Rank the backward merge families for one workload: the Col2Im merge
/// ([`Algorithm::Im2col`]) against the unrepeated 16-lane VAdd merge
/// ([`Algorithm::Direct`]), priced per plane by the same band estimators
/// the overlap decisions use. Batch folding is orthogonal here — the
/// backward fold emits identical per-plane streams, so the engine keeps
/// its occupancy-gated consolidation on whichever merge wins.
pub fn choose_backward_algorithm(
    prob: &PoolProblem,
    masked: bool,
    cores: usize,
    sched: &Schedule,
    caps: Capacities,
    shared_bandwidth: Option<u64>,
) -> AlgorithmChoice {
    let cost = &sched.cost;
    let planes = prob.n * prob.c1;
    let mut ranking = Vec::new();
    for (algorithm, merge) in [
        (Algorithm::Im2col, MergeImpl::Col2Im),
        (Algorithm::Direct, MergeImpl::VAdd),
    ] {
        if let Some(per) =
            crate::maxpool::backward::backward_plane_est(prob, merge, masked, caps, sched)
        {
            let est = chip_makespan(planes, per, cores, cost, shared_bandwidth);
            ranking.push(Prediction {
                algorithm,
                cycles: est.round() as u64,
            });
        }
    }
    ranking.sort_by_key(|p| p.cycles);
    AlgorithmChoice { ranking }
}

/// A certified lower bound on the cycles one program adds to its core,
/// valid under both issue models: each pipe is in-order and every
/// instruction occupies its pipe for its full
/// [`CostModel::instr_cycles`] charge — the same single source of truth
/// the executors charge through — so the dual-pipe makespan can never
/// undercut the busier pipe's busy total, and the single-issue sum is
/// the two totals added.
pub fn program_cycle_floor(p: &Program, cost: &CostModel) -> u64 {
    let mut pipes = [0u64; 2];
    for instr in p.instrs() {
        pipes[dv_sim::pipe_of(instr.unit())] += cost.instr_cycles(instr);
    }
    pipes[0].max(pipes[1])
}

/// A certified lower bound on [`dv_sim::Chip::run`]'s chip cycles for
/// `programs`, mirroring its round-robin core assignment and per-program
/// dispatch charge exactly; contention stalls only ever add on top, so
/// the bound holds under any memory model. This is what the engine
/// certifies a tuned run against: a rejected alternative whose floor is
/// still below the winner's *measured* cycles means the predicted win
/// cannot be certified, and the engine books a
/// [`dv_sim::HwCounters::tuner_mispredicted`] instead of staying silent.
pub fn chip_cycle_floor(programs: &[Program], cores: usize, cost: &CostModel) -> u64 {
    let cores = cores.max(1);
    (0..cores.min(programs.len()))
        .map(|c| {
            let mut cycles = 0u64;
            let mut on_core = 0u64;
            for p in programs.iter().skip(c).step_by(cores) {
                cycles += program_cycle_floor(p, cost);
                on_core += 1;
            }
            cycles + on_core * cost.core_dispatch
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_cost_gates_rotation_on_the_model() {
        assert!(Schedule::for_cost(CostModel::ascend910_like(), true).rotate);
        assert!(
            !Schedule::for_cost(CostModel::dual_pipe_no_rename(), true).rotate,
            "no-rename model must not plan versioned layouts"
        );
        assert!(
            !Schedule::for_cost(CostModel::single_issue(), true).rotate,
            "the serial machine never renames"
        );
        assert!(!Schedule::serial().double);
        assert!(Schedule::serial().with_rotation(true).rotate);
    }

    fn st(load: u64, expand: u64, compute: u64, flush: u64) -> BandStages {
        BandStages {
            load,
            expand,
            compute,
            flush,
        }
    }

    #[test]
    fn versioned_makespan_models_the_deferred_flush_order() {
        // Single band: strictly serial, no overlap possible.
        assert_eq!(versioned_makespan(&[st(10, 4, 6, 2)]), 22);
        // Two compute-bound backward-shaped bands (no expand): band 1's
        // load (8) hides fully under band 0's compute (100):
        // load0=8, c0 at 8..108, load1 at 8..16, flush0 at 108..110,
        // c1 at 108..208, flush1 at 208..210.
        assert_eq!(
            versioned_makespan(&[st(8, 0, 100, 2), st(8, 0, 100, 2)]),
            210
        );
        // The same bands serially: 2 * 110.
        assert_eq!(serial_makespan([st(8, 0, 100, 2), st(8, 0, 100, 2)]), 220);
        // Pipe-0-bound forward-shaped bands: the flush RAW-waits on the
        // compute, and the next expand sits behind the flush, so almost
        // nothing overlaps — the model must NOT promise a pipeline here.
        // load0=10, expand0 at 10..110, c0 at 110..115, load1 at
        // 110..120, flush0 at 120..123 (pipe 0 was the later constraint),
        // expand1 at 123..223, c1 at 223..228, flush1 at 228..231.
        assert_eq!(
            versioned_makespan(&[st(10, 100, 5, 3), st(10, 100, 5, 3)]),
            231
        );
        assert_eq!(serial_makespan([st(10, 100, 5, 3), st(10, 100, 5, 3)]), 236);
    }

    #[test]
    fn versioned_never_exceeds_serial() {
        let cases: &[&[BandStages]] = &[
            &[st(5, 9, 4, 1)],
            &[st(10, 3, 7, 8), st(2, 2, 9, 1), st(4, 0, 4, 4)],
            &[
                st(0, 4, 6, 0),
                st(3, 3, 1, 7),
                st(1, 7, 2, 2),
                st(5, 0, 0, 1),
            ],
        ];
        for bands in cases {
            assert!(versioned_makespan(bands) <= serial_makespan(bands.iter().copied()));
        }
    }

    fn fs(
        load: u64,
        plane_expand: u64,
        planes: u64,
        plane_vec: u64,
        mask_dma: u64,
        out_dma: u64,
    ) -> FwdStages {
        FwdStages {
            load,
            plane_expand,
            planes,
            plane_vec,
            mask_dma,
            out_dma,
        }
    }

    #[test]
    fn forward_models_trail_the_reduction_under_the_expansions() {
        // One band, no mask: load 10, two plane expansions of 5, vector
        // passes of 3, out DMA 4. Expansions end at 20; the chain
        // (fill + 2 reductions) trails them, finishing at 24 — the
        // exposed cost is one pass past the last expansion plus the
        // queued fill — and the flush lands at 28.
        let b = fs(10, 5, 2, 3, 0, 4);
        assert_eq!(forward_serial_makespan(&[b]), 28);
        // Two such bands serially: band 1's chain re-queues behind the
        // flush (fill WAR on the out DMA), ending at 52; flush at 56.
        assert_eq!(forward_serial_makespan(&[b, b]), 56);
        // Versioned: band 1's load + expansions issue ahead of band 0's
        // flush (granted rotations), so pipe 0 runs 10+10+10+10 solid,
        // flush 0 at 44, chain 1 at 44, flush 1 at 48.
        assert_eq!(forward_versioned_makespan(&[b, b]), 48);
    }

    #[test]
    fn forward_flush_interleaves_mask_dmas_with_compares() {
        // Single band with a mask: expansions end at 20 (2 planes of 9
        // after a load of 2), reduction at 23. Each mask DMA (10)
        // RAW-waits only on its own compare (3): cmp0 at 26 gates DMA0
        // (26..36), cmp1 at 29 is ready before DMA1 (36..46), out DMA
        // lands at 50 — NOT reduction + all compares + all DMAs (53).
        let b = fs(2, 9, 2, 3, 10, 4);
        assert_eq!(forward_serial_makespan(&[b]), 50);
    }

    #[test]
    fn forward_versioned_never_exceeds_serial() {
        let cases: &[&[FwdStages]] = &[
            &[fs(10, 5, 2, 3, 0, 4)],
            &[fs(2, 9, 2, 3, 10, 4), fs(2, 9, 2, 3, 10, 4)],
            &[
                fs(7, 1, 9, 6, 0, 2),
                fs(3, 2, 9, 1, 0, 9),
                fs(4, 8, 9, 2, 0, 1),
            ],
            &[
                fs(5, 3, 4, 8, 6, 2),
                fs(5, 3, 4, 8, 6, 2),
                fs(1, 1, 4, 9, 3, 7),
            ],
        ];
        for bands in cases {
            assert!(
                forward_versioned_makespan(bands) <= forward_serial_makespan(bands),
                "deferred flush must never lose on identical stage lists: {bands:?}"
            );
        }
    }

    fn prob(n: usize, c1: usize, hw: usize) -> PoolProblem {
        PoolProblem::new(n, c1, hw, hw, dv_tensor::PoolParams::K3S2).unwrap()
    }

    #[test]
    fn choose_partition_covers_the_three_axes() {
        let sched = Schedule::default();
        // One big plane, 32 cores: only a band split draws the chip.
        assert_eq!(
            choose_partition(&prob(1, 1, 147), false, 32, &sched, None),
            PartitionAxis::PerRowBand
        );
        // Plenty of c1 slices and N > 1: the batch fold keeps every core
        // busy with fewer programs.
        assert_eq!(
            choose_partition(&prob(4, 64, 36), false, 32, &sched, None),
            PartitionAxis::PerC1
        );
        // N > 1 but c1 < cores: folding to 4 programs would idle 28
        // cores — the per-plane split wins.
        assert_eq!(
            choose_partition(&prob(8, 4, 36), false, 32, &sched, None),
            PartitionAxis::PerPlane
        );
        // Single core: occupancy is moot, the fold's consolidation wins
        // (matches the legacy fold_batches gate).
        assert_eq!(
            choose_partition(&prob(4, 2, 36), false, 1, &sched, None),
            PartitionAxis::PerC1
        );
        // Enough planes to cover the cores: no reason to band-split.
        assert_eq!(
            choose_partition(&prob(1, 32, 73), false, 32, &sched, None),
            PartitionAxis::PerPlane
        );
    }

    #[test]
    fn choose_partition_never_bands_padded_geometry() {
        let padded =
            dv_tensor::PoolParams::with_padding((3, 3), (2, 2), dv_tensor::Padding::uniform(1));
        let p = PoolProblem::new(1, 1, 56, 56, padded).unwrap();
        // Banding is infeasible (padding forbids multi-band planes), so
        // even a 32-core chip must stay per-plane.
        assert_eq!(
            choose_partition(&p, false, 32, &Schedule::default(), None),
            PartitionAxis::PerPlane
        );
    }

    #[test]
    fn scarce_shared_bandwidth_discourages_wide_splits() {
        let sched = Schedule::default();
        let p = prob(1, 1, 147);
        // Independent memory: band-split across all 32 cores.
        assert_eq!(
            choose_partition(&p, false, 32, &sched, None),
            PartitionAxis::PerRowBand
        );
        // A starved shared pipe (1 B/cycle): 32 concurrent streams pay a
        // 32x contention multiplier plus the halo reloads, and the
        // estimate keeps the plane whole.
        assert_eq!(
            choose_partition(&p, false, 32, &sched, Some(1)),
            PartitionAxis::PerPlane
        );
    }

    #[test]
    fn vec_sat_counts_issue_chunks_and_tail() {
        let cost = CostModel::ascend910_like();
        assert_eq!(vec_sat(&cost, 0), 0);
        // 128 elems: one issue, one repeat.
        assert_eq!(vec_sat(&cost, 128), cost.issue_overhead + 1);
        // 129 elems: full block + tail issue.
        assert_eq!(vec_sat(&cost, 129), 2 * cost.issue_overhead + 2);
        // MAX_REPEAT blocks + 1: second chunk issue.
        let elems = (MAX_REPEAT as usize + 1) * 128;
        assert_eq!(
            vec_sat(&cost, elems),
            2 * cost.issue_overhead + (MAX_REPEAT as u64 + 1)
        );
    }

    fn choice(p: &PoolProblem, mask: bool) -> AlgorithmChoice {
        choose_forward_algorithm(
            p,
            mask,
            false,
            1,
            &Schedule::default(),
            Capacities::ASCEND910,
            None,
        )
    }

    #[test]
    fn forward_tuner_reproduces_the_fig8_crossover() {
        // Fig. 8a: at stride (1, 1) the direct reduction's full-mask
        // Kw-repeat row chains beat the Im2col expansion tax...
        let s1 =
            PoolProblem::new(1, 1, 56, 56, dv_tensor::PoolParams::new((3, 3), (1, 1))).unwrap();
        assert_eq!(choice(&s1, false).winner(), Some(Algorithm::Direct));
        // ...and at stride (2, 2) the 16-lane issue-per-element pattern
        // loses to the saturated Im2col reduction (Fig. 8 crossover).
        let s2 = PoolProblem::new(1, 1, 56, 56, dv_tensor::PoolParams::K3S2).unwrap();
        assert_eq!(choice(&s2, false).winner(), Some(Algorithm::Im2col));
        // The ranking is sorted ascending and exposes both predictions.
        let c = choice(&s2, false);
        assert!(c.ranking.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(c.predicted(Algorithm::Direct) > c.predicted(Algorithm::Im2col));
    }

    #[test]
    fn forward_tuner_drops_infeasible_candidates() {
        // Padding: only Im2col can lower it, so Direct must be absent.
        let padded =
            dv_tensor::PoolParams::with_padding((3, 3), (2, 2), dv_tensor::Padding::uniform(1));
        let p = PoolProblem::new(1, 1, 56, 56, padded).unwrap();
        let c = choice(&p, false);
        assert_eq!(c.predicted(Algorithm::Direct), None);
        assert_eq!(c.winner(), Some(Algorithm::Im2col));
        // Ceil-mode overhang: 6x6 K3S2+ceil rounds up to 3x3 outputs and
        // reads one synthesised row/column past the input — Im2col only.
        let ceil = dv_tensor::PoolParams::K3S2.with_ceil_mode(true);
        let p = PoolProblem::new(1, 1, 6, 6, ceil).unwrap();
        assert_eq!(p.out_dims(), (3, 3));
        let c = choice(&p, false);
        assert_eq!(c.predicted(Algorithm::Direct), None);
        assert_eq!(c.winner(), Some(Algorithm::Im2col));
        // N = 1: no fold candidate.
        assert_eq!(choice(&p, false).predicted(Algorithm::Fold), None);
    }

    #[test]
    fn forward_tuner_folds_batches_when_occupancy_survives() {
        // The choose_partition PerC1 scenario: plenty of c1 slices, N > 1
        // — the fold's consolidated dispatch wins the ranking too.
        let p = prob(4, 64, 36);
        let c = choose_forward_algorithm(
            &p,
            false,
            false,
            32,
            &Schedule::default(),
            Capacities::ASCEND910,
            None,
        );
        assert_eq!(c.winner(), Some(Algorithm::Fold));
    }

    #[test]
    fn backward_tuner_prefers_col2im_on_the_paper_shapes() {
        // Fig. 7c's point: the scattered VAdd merge issues Kh*Kw*Oh*Ow
        // unrepeated 16-lane adds; Col2Im replaces them with Kh*Kw
        // hardware-repeated issues. The tuner must see that.
        let p = prob(1, 1, 73);
        let c = choose_backward_algorithm(
            &p,
            true,
            1,
            &Schedule::default(),
            Capacities::ASCEND910,
            None,
        );
        assert_eq!(c.winner(), Some(Algorithm::Im2col));
        assert!(c.predicted(Algorithm::Direct) > c.predicted(Algorithm::Im2col));
    }

    #[test]
    fn algorithm_labels_and_lowering_map() {
        assert_eq!(Algorithm::Direct.label(), "direct");
        assert_eq!(Algorithm::Im2col.label(), "im2col");
        assert_eq!(Algorithm::Fold.label(), "fold");
        assert_eq!(Algorithm::Direct.forward_impl(), ForwardImpl::Standard);
        assert_eq!(Algorithm::Fold.forward_impl(), ForwardImpl::Im2col);
        assert_eq!(Algorithm::Direct.merge_impl(), MergeImpl::VAdd);
        assert_eq!(Algorithm::Im2col.merge_impl(), MergeImpl::Col2Im);
    }

    #[test]
    fn cycle_floors_never_exceed_measured_cycles() {
        use crate::maxpool::build_forward;
        use crate::maxpool::forward::Reduction;
        let p = prob(1, 2, 36);
        let gm_in = 0;
        let gm_out = p.in_bytes();
        for cost in [
            CostModel::ascend910_like(),
            CostModel::single_issue(),
            CostModel::dual_pipe_no_rename(),
        ] {
            for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
                let programs = build_forward(
                    &p,
                    impl_,
                    Reduction::Max,
                    gm_in,
                    gm_out,
                    Capacities::ASCEND910,
                )
                .unwrap();
                let chip = dv_sim::Chip {
                    cores: 2,
                    cost,
                    ..dv_sim::Chip::ascend910()
                };
                let mut image = vec![0u8; p.in_bytes() + p.out_bytes()];
                let run = chip.run(&mut image, &programs).unwrap();
                let floor = chip_cycle_floor(&programs, chip.cores, &cost);
                assert!(
                    floor <= run.cycles,
                    "floor {floor} exceeds measured {} ({impl_:?}, {:?})",
                    run.cycles,
                    cost.issue_model
                );
                // The floor is not vacuous: it must carry real charges.
                assert!(floor > 0);
            }
        }
    }
}
