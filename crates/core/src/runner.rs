//! The high-level API: run pooling operators on a simulated chip.
//!
//! [`PoolingEngine`] owns a [`Chip`], lays out tensors in a global-memory
//! image, lowers the requested implementation, runs it, and returns the
//! output tensors together with the chip's hardware counters — the f16
//! results are what the tests compare bit-exactly against the golden
//! references, and the cycle counts are what the benchmark harness plots
//! against the paper's figures.

use crate::avgpool::{
    build_avgpool_backward, build_avgpool_backward_batched, build_avgpool_forward_parallel,
};
use crate::maxpool::batched::per_plane_im2col_issues;
use crate::maxpool::{
    build_backward, build_backward_batched, build_forward_batched, build_forward_parallel,
    build_forward_with_argmax_parallel, BackwardSource, Reduction,
};
use crate::problem::{ForwardImpl, LowerError, MergeImpl, PoolProblem};
use crate::schedule::{
    chip_cycle_floor, choose_backward_algorithm, choose_forward_algorithm, choose_partition,
    Algorithm, PartitionAxis, Schedule,
};
use core::fmt;
use dv_akg::GmArena;
use dv_isa::Program;
use dv_sim::{Chip, ChipRun, MemoryModel, SimError};
use dv_tensor::{Nc1hwc0, PatchTensor, PoolParams, C0};

/// Errors surfaced by engine runs.
#[derive(Debug)]
pub enum RunError {
    /// Lowering failed.
    Lower(LowerError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Lower(e) => write!(f, "lowering: {e}"),
            RunError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<LowerError> for RunError {
    fn from(e: LowerError) -> Self {
        RunError::Lower(e)
    }
}
impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A pooling run's outcome: the simulated chip statistics.
pub type PoolRun = ChipRun;

/// Owns a simulated chip and runs pooling operators on it.
#[derive(Clone, Debug)]
pub struct PoolingEngine {
    /// The simulated chip (cores, cost model, capacities).
    pub chip: Chip,
    /// When set, forward lowerings split each plane's row bands across
    /// idle cores ("each core calculates a share of the output") instead
    /// of parallelising over (N, C1) planes only. Off by default to match
    /// the paper's per-plane schedule; the multi-core scaling experiment
    /// turns it on. Backward never splits (adjacent bands share a halo).
    pub split_bands: bool,
    /// Double-buffer row bands (on by default): when a plane is split
    /// into bands and twice the band footprint fits the scratchpads, the
    /// lowering gives the band-cycled regions ping-pong (A/B) slots and
    /// issues band `i + 1`'s loads before band `i`'s reduction, letting
    /// the dual-pipe issue model overlap MTE/SCU work with Vector work
    /// instead of WAR-stalling on slot reuse. Results are bit-identical
    /// either way — only the schedule changes.
    pub double_buffer: bool,
    /// Fold the batch dimension through the SCU (on by default): when a
    /// run has `N > 1` and folding cannot hurt multi-core occupancy, the
    /// Im2col forward lowers all `N` planes of a `c1` slice through one
    /// Mode-0 `Im2Col` repeat-chain program, and the backward pass
    /// consolidates its `N` per-plane streams into one program per `c1`.
    /// The engine falls back to the per-plane schedule whenever the fold
    /// does not fit the scratchpads or would issue more `Im2Col`s than
    /// it saves. Results are bit-identical either way.
    pub batching: bool,
    /// Shard forward workloads across the chip by cost model (off by
    /// default): when set, each Im2col forward picks its partition axis —
    /// per-`(n, c1)` plane, batch-folded per-`c1`, or per-row-band —
    /// from [`choose_partition`]'s multi-core makespan estimate (which
    /// folds in the chip's shared-bandwidth contention model when one is
    /// configured), instead of the fixed `split_bands`/`batching`
    /// switches. Results are bit-identical on every axis; only the
    /// program partitioning changes. Backward passes are never sharded
    /// below plane granularity (adjacent bands share a halo and would
    /// merge overlapping GM writes).
    pub shard: bool,
    /// Override for [`Schedule::rotate`]: whether lowerings may plan
    /// versioned (renamer-backed) band layouts. `None` (the default)
    /// derives it from the chip's cost model — planned exactly when the
    /// dual-pipe scheduler renames. `Some(x)` pins it regardless, which
    /// controlled comparisons use to run the *same* program under
    /// renaming and no-renaming cost models.
    pub rotation_planning: Option<bool>,
    /// Auto-tune the algorithm per workload (off by default): when set,
    /// the pooling entry points *ignore* their `impl_`/`merge` argument
    /// and dispatch the winner of [`choose_forward_algorithm`] /
    /// [`choose_backward_algorithm`] — direct reduction, per-plane
    /// Im2col, or the Mode-0 batch fold. The choice is never silently
    /// trusted: a ranked candidate that fails to lower books a
    /// [`dv_sim::HwCounters::tuner_fallbacks`], and after the run every
    /// rejected alternative is certified against its
    /// [`chip_cycle_floor`] — if the winner's measured cycles exceed an
    /// alternative's floor, the win is uncertified and the engine books
    /// a [`dv_sim::HwCounters::tuner_mispredicted`] (so
    /// `tuner_mispredicted == 0` proves the tuned run is no slower than
    /// any lowerable alternative). Results are bit-identical on every
    /// algorithm; only cycles change.
    pub auto_tune: bool,
}

/// A tuner dispatch: the chosen algorithm's programs plus everything the
/// post-run certification needs.
struct Tuned {
    programs: Vec<Program>,
    /// Lowered programs of each rejected (but lowerable) alternative.
    alternatives: Vec<Vec<Program>>,
    /// Ranked candidates that failed to lower before one succeeded.
    fallbacks: u64,
}

impl PoolingEngine {
    /// An engine over an Ascend-910-like chip (32 cores).
    pub fn ascend910() -> PoolingEngine {
        PoolingEngine::new(Chip::ascend910())
    }

    /// An engine over a custom chip.
    pub fn new(chip: Chip) -> PoolingEngine {
        PoolingEngine {
            chip,
            split_bands: false,
            double_buffer: true,
            batching: true,
            shard: false,
            rotation_planning: None,
            auto_tune: false,
        }
    }

    /// Enable or disable forward band splitting across idle cores.
    pub fn with_band_splitting(mut self, on: bool) -> PoolingEngine {
        self.split_bands = on;
        self
    }

    /// Enable or disable double-buffered (ping-pong) row-band prefetch
    /// (see [`PoolingEngine::double_buffer`]).
    pub fn with_double_buffering(mut self, on: bool) -> PoolingEngine {
        self.double_buffer = on;
        self
    }

    /// The same engine with per-instruction tracing configured on its
    /// chip: every returned [`PoolRun`] then carries a [`dv_sim::Trace`]
    /// per core, exportable via [`ChipRun::chrome_trace_json`] and
    /// summarisable via [`ChipRun::breakdown`].
    pub fn with_trace(mut self, trace: dv_sim::TraceConfig) -> PoolingEngine {
        self.chip = self.chip.with_trace(trace);
        self
    }

    /// Enable or disable batch folding (see [`PoolingEngine::batching`]).
    pub fn with_batching(mut self, on: bool) -> PoolingEngine {
        self.batching = on;
        self
    }

    /// Enable or disable cost-model sharding (see
    /// [`PoolingEngine::shard`]).
    pub fn with_sharding(mut self, on: bool) -> PoolingEngine {
        self.shard = on;
        self
    }

    /// Pin whether lowerings plan versioned (renamer-backed) band
    /// layouts (see [`PoolingEngine::rotation_planning`]).
    pub fn with_rotation_planning(mut self, on: bool) -> PoolingEngine {
        self.rotation_planning = Some(on);
        self
    }

    /// Enable or disable per-workload algorithm auto-tuning (see
    /// [`PoolingEngine::auto_tune`]).
    pub fn with_auto_tuning(mut self, on: bool) -> PoolingEngine {
        self.auto_tune = on;
        self
    }

    /// The same engine with a different host execution backend on its
    /// chip. Backends change host wall-clock only — outputs, counters,
    /// traces, and peaks are bit-identical across all of them.
    pub fn with_backend(mut self, backend: dv_sim::Backend) -> PoolingEngine {
        self.chip = self.chip.with_backend(backend);
        self
    }

    /// The overlap schedule this engine's lowerings plan against:
    /// `double_buffer` plus rotation planning resolved from the chip's
    /// cost model (or the pinned override).
    pub fn schedule(&self) -> Schedule {
        let mut sched = Schedule::for_cost(self.chip.cost, self.double_buffer);
        if let Some(rotate) = self.rotation_planning {
            sched.rotate = rotate;
        }
        sched
    }

    fn parallel(&self) -> usize {
        if self.split_bands {
            self.chip.cores
        } else {
            1
        }
    }

    /// The chip's shared L2/HBM bandwidth, if it models one — what the
    /// tuner's and partitioner's contention multipliers price against.
    fn shared_bandwidth(&self) -> Option<u64> {
        match self.chip.memory {
            MemoryModel::Independent => None,
            MemoryModel::SharedBandwidth { bytes_per_cycle } => Some(bytes_per_cycle),
        }
    }

    /// Walk a tuner ranking: the first candidate that lowers is
    /// dispatched; candidates that fail to lower before it are counted
    /// as typed fallbacks; the remaining lowerable candidates are kept
    /// for post-run certification. An empty (or fully infeasible)
    /// ranking surfaces the last lowering error.
    fn dispatch_ranked(
        choice: &crate::schedule::AlgorithmChoice,
        mut lower: impl FnMut(Algorithm) -> Result<Vec<Program>, LowerError>,
    ) -> Result<Tuned, LowerError> {
        let mut fallbacks = 0u64;
        let mut chosen: Option<Vec<Program>> = None;
        let mut alternatives = Vec::new();
        let mut last_err: Option<LowerError> = None;
        for pred in &choice.ranking {
            match lower(pred.algorithm) {
                Ok(ps) => {
                    if chosen.is_none() {
                        chosen = Some(ps);
                    } else {
                        alternatives.push(ps);
                    }
                }
                Err(e) => {
                    if chosen.is_none() {
                        // The predicted winner could not be lowered: a
                        // typed decline, never a silent re-rank.
                        fallbacks += 1;
                    }
                    last_err = Some(e);
                }
            }
        }
        match chosen {
            Some(programs) => Ok(Tuned {
                programs,
                alternatives,
                fallbacks,
            }),
            None => Err(last_err.unwrap_or_else(|| {
                LowerError::Unsupported("auto-tuner found no feasible algorithm".into())
            })),
        }
    }

    /// Auto-tuned forward dispatch: rank the algorithm families, lower
    /// the winner (falling through the ranking on typed declines), and
    /// keep the rejected alternatives for certification.
    fn tuned_forward(
        &self,
        prob: &PoolProblem,
        reduction: Reduction,
        gm_in: usize,
        gm_out: usize,
        gm_mask: Option<usize>,
    ) -> Result<Tuned, LowerError> {
        let is_avg = matches!(reduction, Reduction::Sum { .. });
        let choice = choose_forward_algorithm(
            prob,
            gm_mask.is_some(),
            is_avg,
            self.chip.cores,
            &self.schedule(),
            self.chip.caps,
            self.shared_bandwidth(),
        );
        Self::dispatch_ranked(&choice, |algo| match algo {
            Algorithm::Fold => build_forward_batched(
                prob,
                reduction,
                gm_in,
                gm_out,
                gm_mask,
                self.chip.caps,
                self.schedule(),
            ),
            _ => match gm_mask {
                Some(m) => build_forward_with_argmax_parallel(
                    prob,
                    algo.forward_impl(),
                    gm_in,
                    gm_out,
                    m,
                    self.chip.caps,
                    1,
                    self.schedule(),
                ),
                None => build_forward_parallel(
                    prob,
                    algo.forward_impl(),
                    reduction,
                    gm_in,
                    gm_out,
                    self.chip.caps,
                    1,
                    self.schedule(),
                ),
            },
        })
    }

    /// Auto-tuned backward dispatch: rank the merge families and lower
    /// the winner. Batch folding stays the engine's occupancy-gated
    /// consolidation (identical per-plane streams either way).
    fn tuned_backward(
        &self,
        prob: &PoolProblem,
        source: BackwardSource,
        gm_grad: usize,
        gm_dx: usize,
    ) -> Result<Tuned, LowerError> {
        let masked = matches!(source, BackwardSource::MaxMask { .. });
        let choice = choose_backward_algorithm(
            prob,
            masked,
            self.chip.cores,
            &self.schedule(),
            self.chip.caps,
            self.shared_bandwidth(),
        );
        Self::dispatch_ranked(&choice, |algo| {
            let merge = algo.merge_impl();
            if self.fold_batches(prob) {
                build_backward_batched(
                    prob,
                    merge,
                    source,
                    gm_grad,
                    gm_dx,
                    self.chip.caps,
                    self.schedule(),
                )
            } else {
                build_backward(
                    prob,
                    merge,
                    source,
                    gm_grad,
                    gm_dx,
                    self.chip.caps,
                    self.schedule(),
                )
            }
        })
    }

    /// Post-run honesty booking: surface every decline the tuner took
    /// and certify the dispatched winner against each rejected
    /// alternative's cycle floor. A floor the measured cycles exceed
    /// means the predicted win cannot be certified — booked as a
    /// misprediction, never silently dropped.
    fn book_tuner(&self, run: &mut PoolRun, tuned: &Tuned) {
        run.total.tuner_fallbacks += tuned.fallbacks;
        for alt in &tuned.alternatives {
            if chip_cycle_floor(alt, self.chip.cores, &self.chip.cost) < run.cycles {
                run.total.tuner_mispredicted += 1;
            }
        }
    }

    /// The partition axis this forward run shards over. With
    /// [`PoolingEngine::shard`] off the mapping reproduces the legacy
    /// switches exactly (batch fold if eligible, else band splitting if
    /// requested, else per-plane). With it on, the Im2col forward asks
    /// [`choose_partition`]'s multi-core makespan estimate, feeding it
    /// the chip's shared-bandwidth model so contention-heavy splits are
    /// priced; non-Im2col forwards have no batched lowering and keep the
    /// legacy mapping.
    fn forward_axis(
        &self,
        prob: &PoolProblem,
        impl_: ForwardImpl,
        with_mask: bool,
    ) -> PartitionAxis {
        if self.shard && impl_ == ForwardImpl::Im2col {
            let axis = choose_partition(
                prob,
                with_mask,
                self.chip.cores,
                &self.schedule(),
                self.shared_bandwidth(),
            );
            if axis == PartitionAxis::PerC1 && !self.batching {
                PartitionAxis::PerPlane
            } else {
                axis
            }
        } else if impl_ == ForwardImpl::Im2col && self.fold_batches(prob) {
            PartitionAxis::PerC1
        } else if self.split_bands {
            PartitionAxis::PerRowBand
        } else {
            PartitionAxis::PerPlane
        }
    }

    /// How many shares each plane's bands split into under `axis`.
    fn axis_parallel(&self, axis: PartitionAxis) -> usize {
        match axis {
            PartitionAxis::PerRowBand => self.chip.cores,
            PartitionAxis::PerPlane | PartitionAxis::PerC1 => 1,
        }
    }

    /// Whether this run folds the batch dimension: only with `N > 1`,
    /// never alongside band splitting (which already re-partitions the
    /// work), and only when dropping from `N * C1` to `C1` programs
    /// cannot reduce multi-core occupancy.
    fn fold_batches(&self, prob: &PoolProblem) -> bool {
        self.batching
            && prob.n > 1
            && self.parallel() == 1
            && (self.chip.cores == 1 || prob.c1 >= self.chip.cores)
    }

    /// Forward Im2col with batch folding: build the Mode-0 fold, keep it
    /// only if it issues strictly fewer `Im2Col`s than the per-plane
    /// schedule would, and otherwise fall back. When the fold itself
    /// fails to plan, the per-plane schedule is tried; if that also
    /// fails, the *batched* (typed) error is reported — it carries the
    /// per-plane cause.
    fn batched_forward_or_fallback(
        &self,
        prob: &PoolProblem,
        reduction: Reduction,
        gm_in: usize,
        gm_out: usize,
        gm_mask: Option<usize>,
    ) -> Result<Vec<Program>, LowerError> {
        let per_plane = || -> Result<Vec<Program>, LowerError> {
            match gm_mask {
                Some(m) => build_forward_with_argmax_parallel(
                    prob,
                    ForwardImpl::Im2col,
                    gm_in,
                    gm_out,
                    m,
                    self.chip.caps,
                    self.parallel(),
                    self.schedule(),
                ),
                None => build_forward_parallel(
                    prob,
                    ForwardImpl::Im2col,
                    reduction,
                    gm_in,
                    gm_out,
                    self.chip.caps,
                    self.parallel(),
                    self.schedule(),
                ),
            }
        };
        match build_forward_batched(
            prob,
            reduction,
            gm_in,
            gm_out,
            gm_mask,
            self.chip.caps,
            self.schedule(),
        ) {
            Ok(folded) => {
                let folded_issues: usize = folded.iter().map(|p| p.issue_count("im2col")).sum();
                let per_plane_issues =
                    per_plane_im2col_issues(prob, gm_mask.is_some(), self.chip.caps)
                        .map(|per_c1| per_c1 * prob.c1)
                        .unwrap_or(usize::MAX);
                if folded_issues < per_plane_issues {
                    Ok(folded)
                } else {
                    per_plane()
                }
            }
            Err(batched_err) => per_plane().map_err(|_| batched_err),
        }
    }

    fn problem(input: &Nc1hwc0, params: PoolParams) -> Result<PoolProblem, LowerError> {
        PoolProblem::new(input.n, input.c1, input.h, input.w, params)
    }

    /// MaxPool forward (Fig. 7a / Fig. 8): returns the pooled tensor and
    /// the chip counters.
    pub fn maxpool_forward(
        &self,
        input: &Nc1hwc0,
        params: PoolParams,
        impl_: ForwardImpl,
    ) -> Result<(Nc1hwc0, PoolRun), RunError> {
        let prob = Self::problem(input, params)?;
        let mut gm = GmArena::new();
        let gm_in = gm.alloc(prob.in_bytes());
        let gm_out = gm.alloc(prob.out_bytes());
        let (programs, tuned) = if self.auto_tune {
            let t = self.tuned_forward(&prob, Reduction::Max, gm_in, gm_out, None)?;
            (Vec::new(), Some(t))
        } else {
            let ps = match self.forward_axis(&prob, impl_, false) {
                PartitionAxis::PerC1 => {
                    self.batched_forward_or_fallback(&prob, Reduction::Max, gm_in, gm_out, None)?
                }
                axis => build_forward_parallel(
                    &prob,
                    impl_,
                    Reduction::Max,
                    gm_in,
                    gm_out,
                    self.chip.caps,
                    self.axis_parallel(axis),
                    self.schedule(),
                )?,
            };
            (ps, None)
        };
        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_in, input.data());
        let mut run = self.chip.run(
            &mut image,
            tuned.as_ref().map_or(&programs, |t| &t.programs),
        )?;
        if let Some(t) = &tuned {
            self.book_tuner(&mut run, t);
        }
        let out = read_plane_tensor(&image, gm_out, &prob);
        Ok((out, run))
    }

    /// MaxPool forward with the argmax mask (Fig. 7b).
    pub fn maxpool_forward_with_argmax(
        &self,
        input: &Nc1hwc0,
        params: PoolParams,
        impl_: ForwardImpl,
    ) -> Result<(Nc1hwc0, PatchTensor, PoolRun), RunError> {
        let prob = Self::problem(input, params)?;
        let mut gm = GmArena::new();
        let gm_in = gm.alloc(prob.in_bytes());
        let gm_out = gm.alloc(prob.out_bytes());
        let gm_mask = gm.alloc(prob.mask_bytes());
        let (programs, tuned) = if self.auto_tune {
            let t = self.tuned_forward(&prob, Reduction::Max, gm_in, gm_out, Some(gm_mask))?;
            (Vec::new(), Some(t))
        } else {
            let ps = match self.forward_axis(&prob, impl_, true) {
                PartitionAxis::PerC1 => self.batched_forward_or_fallback(
                    &prob,
                    Reduction::Max,
                    gm_in,
                    gm_out,
                    Some(gm_mask),
                )?,
                axis => build_forward_with_argmax_parallel(
                    &prob,
                    impl_,
                    gm_in,
                    gm_out,
                    gm_mask,
                    self.chip.caps,
                    self.axis_parallel(axis),
                    self.schedule(),
                )?,
            };
            (ps, None)
        };
        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_in, input.data());
        let mut run = self.chip.run(
            &mut image,
            tuned.as_ref().map_or(&programs, |t| &t.programs),
        )?;
        if let Some(t) = &tuned {
            self.book_tuner(&mut run, t);
        }
        let out = read_plane_tensor(&image, gm_out, &prob);
        let mask = read_mask_tensor(&image, gm_mask, &prob);
        Ok((out, mask, run))
    }

    /// MaxPool backward (Fig. 7c): scatter the masked gradients back to
    /// the input shape.
    pub fn maxpool_backward(
        &self,
        mask: &PatchTensor,
        gradients: &Nc1hwc0,
        params: PoolParams,
        ih: usize,
        iw: usize,
        merge: MergeImpl,
    ) -> Result<(Nc1hwc0, PoolRun), RunError> {
        let prob = PoolProblem::new(mask.n, mask.c1, ih, iw, params)?;
        let (oh, ow) = prob.out_dims();
        if (mask.oh, mask.ow) != (oh, ow) || (gradients.h, gradients.w) != (oh, ow) {
            return Err(RunError::Lower(LowerError::Shape(
                dv_tensor::ShapeError::Mismatch(format!(
                    "mask {:?} / gradients {:?} do not match derived patch grid {:?}",
                    (mask.oh, mask.ow),
                    (gradients.h, gradients.w),
                    (oh, ow)
                )),
            )));
        }
        let mut gm = GmArena::new();
        let gm_mask = gm.alloc(prob.mask_bytes());
        let gm_grad = gm.alloc(prob.out_bytes());
        let gm_dx = gm.alloc(prob.in_bytes());
        let source = BackwardSource::MaxMask { gm_mask };
        let (programs, tuned) = if self.auto_tune {
            let t = self.tuned_backward(&prob, source, gm_grad, gm_dx)?;
            (Vec::new(), Some(t))
        } else if self.fold_batches(&prob) {
            let ps = build_backward_batched(
                &prob,
                merge,
                source,
                gm_grad,
                gm_dx,
                self.chip.caps,
                self.schedule(),
            )?;
            (ps, None)
        } else {
            let ps = build_backward(
                &prob,
                merge,
                source,
                gm_grad,
                gm_dx,
                self.chip.caps,
                self.schedule(),
            )?;
            (ps, None)
        };
        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_mask, mask.data());
        write_tensor(&mut image, gm_grad, gradients.data());
        let mut run = self.chip.run(
            &mut image,
            tuned.as_ref().map_or(&programs, |t| &t.programs),
        )?;
        if let Some(t) = &tuned {
            self.book_tuner(&mut run, t);
        }
        let dx = read_input_tensor(&image, gm_dx, &prob);
        Ok((dx, run))
    }

    /// Rectified-linear activation (`vrelu`) over a whole tensor — the
    /// elementwise layer a CNN interleaves between convolution and
    /// pooling. One program per `(n, c1)` plane; each tiles against the
    /// UB like the pooling kernels.
    pub fn relu(&self, input: &Nc1hwc0) -> Result<(Nc1hwc0, PoolRun), RunError> {
        use dv_akg::{dma, elementwise, UbArena};
        use dv_isa::{Addr, Program, VectorOp};

        let plane_bytes = input.h * input.w * C0 * 2;
        let mut gm = GmArena::new();
        let gm_in = gm.alloc(input.byte_len());
        let gm_out = gm.alloc(input.byte_len());

        let mut programs = Vec::new();
        for n in 0..input.n {
            for c1 in 0..input.c1 {
                let off = (n * input.c1 + c1) * plane_bytes;
                let mut p = Program::new();
                // tile the plane against the UB (in + out regions)
                let mut ub = UbArena::new(self.chip.caps.ub);
                let tile_bytes = (self.chip.caps.ub / 2 - 64).min(plane_bytes);
                let ub_in = Addr::ub(ub.alloc(tile_bytes).map_err(LowerError::Ub)?);
                let ub_out = Addr::ub(ub.alloc(tile_bytes).map_err(LowerError::Ub)?);
                let mut done = 0usize;
                while done < plane_bytes {
                    let chunk = tile_bytes.min(plane_bytes - done);
                    dma(&mut p, Addr::gm(gm_in + off + done), ub_in, chunk)
                        .map_err(LowerError::Isa)?;
                    elementwise(&mut p, VectorOp::Relu, ub_out, ub_in, ub_in, chunk / 2)
                        .map_err(LowerError::Isa)?;
                    dma(&mut p, ub_out, Addr::gm(gm_out + off + done), chunk)
                        .map_err(LowerError::Isa)?;
                    done += chunk;
                }
                programs.push(p);
            }
        }

        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_in, input.data());
        let run = self.chip.run(&mut image, &programs)?;
        let data = read_f16s(&image, gm_out, input.len());
        let mut out = Nc1hwc0::from_vec(input.n, input.c1, input.h, input.w, data)
            .expect("engine-produced shape");
        out.orig_c = input.orig_c;
        Ok((out, run))
    }

    /// AvgPool forward (Section V-C).
    pub fn avgpool_forward(
        &self,
        input: &Nc1hwc0,
        params: PoolParams,
        impl_: ForwardImpl,
    ) -> Result<(Nc1hwc0, PoolRun), RunError> {
        let prob = Self::problem(input, params)?;
        let mut gm = GmArena::new();
        let gm_in = gm.alloc(prob.in_bytes());
        let gm_out = gm.alloc(prob.out_bytes());
        let (programs, tuned) = if self.auto_tune {
            let scale = crate::avgpool::avg_scale(&prob);
            let t = self.tuned_forward(&prob, Reduction::Sum { scale }, gm_in, gm_out, None)?;
            (Vec::new(), Some(t))
        } else {
            let ps = match self.forward_axis(&prob, impl_, false) {
                PartitionAxis::PerC1 => {
                    let scale = crate::avgpool::avg_scale(&prob);
                    self.batched_forward_or_fallback(
                        &prob,
                        Reduction::Sum { scale },
                        gm_in,
                        gm_out,
                        None,
                    )?
                }
                axis => build_avgpool_forward_parallel(
                    &prob,
                    impl_,
                    gm_in,
                    gm_out,
                    self.chip.caps,
                    self.axis_parallel(axis),
                    self.schedule(),
                )?,
            };
            (ps, None)
        };
        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_in, input.data());
        let mut run = self.chip.run(
            &mut image,
            tuned.as_ref().map_or(&programs, |t| &t.programs),
        )?;
        if let Some(t) = &tuned {
            self.book_tuner(&mut run, t);
        }
        let out = read_plane_tensor(&image, gm_out, &prob);
        Ok((out, run))
    }

    /// AvgPool backward (Section V-C): uniform mask, same merge choices.
    pub fn avgpool_backward(
        &self,
        gradients: &Nc1hwc0,
        params: PoolParams,
        ih: usize,
        iw: usize,
        merge: MergeImpl,
    ) -> Result<(Nc1hwc0, PoolRun), RunError> {
        let prob = PoolProblem::new(gradients.n, gradients.c1, ih, iw, params)?;
        let (oh, ow) = prob.out_dims();
        if (gradients.h, gradients.w) != (oh, ow) {
            return Err(RunError::Lower(LowerError::Shape(
                dv_tensor::ShapeError::Mismatch(format!(
                    "gradients {:?} do not match derived patch grid {:?}",
                    (gradients.h, gradients.w),
                    (oh, ow)
                )),
            )));
        }
        let mut gm = GmArena::new();
        let gm_grad = gm.alloc(prob.out_bytes());
        let gm_dx = gm.alloc(prob.in_bytes());
        let (programs, tuned) = if self.auto_tune {
            let source = BackwardSource::AvgUniform {
                scale: crate::avgpool::avg_scale(&prob),
            };
            let t = self.tuned_backward(&prob, source, gm_grad, gm_dx)?;
            (Vec::new(), Some(t))
        } else if self.fold_batches(&prob) {
            let ps = build_avgpool_backward_batched(
                &prob,
                merge,
                gm_grad,
                gm_dx,
                self.chip.caps,
                self.schedule(),
            )?;
            (ps, None)
        } else {
            let ps = build_avgpool_backward(
                &prob,
                merge,
                gm_grad,
                gm_dx,
                self.chip.caps,
                self.schedule(),
            )?;
            (ps, None)
        };
        let mut image = vec![0u8; gm.size()];
        write_tensor(&mut image, gm_grad, gradients.data());
        let mut run = self.chip.run(
            &mut image,
            tuned.as_ref().map_or(&programs, |t| &t.programs),
        )?;
        if let Some(t) = &tuned {
            self.book_tuner(&mut run, t);
        }
        let dx = read_input_tensor(&image, gm_dx, &prob);
        Ok((dx, run))
    }
}

fn write_tensor(image: &mut [u8], offset: usize, data: &[dv_fp16::F16]) {
    let bytes = dv_fp16::as_bytes(data);
    image[offset..offset + bytes.len()].copy_from_slice(bytes);
}

fn read_f16s(image: &[u8], offset: usize, len: usize) -> Vec<dv_fp16::F16> {
    (0..len)
        .map(|i| {
            let o = offset + i * 2;
            dv_fp16::F16::from_bits(u16::from_le_bytes([image[o], image[o + 1]]))
        })
        .collect()
}

/// Read the output tensor `(N, C1, Oh, Ow, C0)`.
fn read_plane_tensor(image: &[u8], offset: usize, prob: &PoolProblem) -> Nc1hwc0 {
    let (oh, ow) = prob.out_dims();
    let data = read_f16s(image, offset, prob.n * prob.c1 * oh * ow * C0);
    Nc1hwc0::from_vec(prob.n, prob.c1, oh, ow, data).expect("engine-produced shape")
}

/// Read the input-shaped tensor `(N, C1, Ih, Iw, C0)`.
fn read_input_tensor(image: &[u8], offset: usize, prob: &PoolProblem) -> Nc1hwc0 {
    let data = read_f16s(image, offset, prob.n * prob.c1 * prob.ih * prob.iw * C0);
    Nc1hwc0::from_vec(prob.n, prob.c1, prob.ih, prob.iw, data).expect("engine-produced shape")
}

/// Read the argmax mask `(N, C1, Kh, Kw, Oh, Ow, C0)`.
fn read_mask_tensor(image: &[u8], offset: usize, prob: &PoolProblem) -> PatchTensor {
    let (oh, ow) = prob.out_dims();
    let len = prob.n * prob.c1 * prob.params.kh * prob.params.kw * oh * ow * C0;
    let data = read_f16s(image, offset, len);
    PatchTensor::from_vec(
        prob.n,
        prob.c1,
        prob.params.kh,
        prob.params.kw,
        oh,
        ow,
        data,
    )
    .expect("engine-produced shape")
}
