//! Pooling problem descriptions and shared lowering plumbing.

use core::fmt;
use dv_akg::{TilingError, UbOverflow};
use dv_isa::IsaError;
use dv_tensor::{PoolParams, ShapeError, C0, FRACTAL_BYTES, FRACTAL_ROWS};

/// Which forward implementation to lower (Section V-A / VI-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ForwardImpl {
    /// Strided reduction directly on the NC1HWC0 tile (Listing 1).
    Standard,
    /// `Im2Col`-load based (Listing 2) — the paper's contribution.
    Im2col,
    /// Layout change done in the UB with regular vector copies.
    Expansion,
    /// Width-then-height split reduction (Lai et al.).
    XYSplit,
}

impl ForwardImpl {
    /// All variants, for sweeps.
    pub const ALL: [ForwardImpl; 4] = [
        ForwardImpl::Standard,
        ForwardImpl::Im2col,
        ForwardImpl::Expansion,
        ForwardImpl::XYSplit,
    ];

    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ForwardImpl::Standard => "Maxpool",
            ForwardImpl::Im2col => "Maxpool with Im2col",
            ForwardImpl::Expansion => "Maxpool with expansion",
            ForwardImpl::XYSplit => "Maxpool with X-Y split",
        }
    }
}

/// Which backward merge implementation to lower (Section V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MergeImpl {
    /// Scattered 16-lane `vadd` loop — the standard lowering.
    VAdd,
    /// `Col2Im` instructions — the paper's contribution.
    Col2Im,
}

impl MergeImpl {
    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            MergeImpl::VAdd => "Maxpool backward",
            MergeImpl::Col2Im => "Maxpool backward with Col2im",
        }
    }
}

/// Lowering errors.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// A tile plan exceeded a scratchpad capacity.
    Ub(UbOverflow),
    /// Even the minimal tile does not fit.
    Tiling(TilingError),
    /// Instruction emission failed (lowering bug surfaced by validation).
    Isa(IsaError),
    /// Geometry error.
    Shape(ShapeError),
    /// A feature combination this lowering does not support.
    Unsupported(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Ub(e) => write!(f, "{e}"),
            LowerError::Tiling(e) => write!(f, "{e}"),
            LowerError::Isa(e) => write!(f, "{e}"),
            LowerError::Shape(e) => write!(f, "{e}"),
            LowerError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<UbOverflow> for LowerError {
    fn from(e: UbOverflow) -> Self {
        LowerError::Ub(e)
    }
}
impl From<TilingError> for LowerError {
    fn from(e: TilingError) -> Self {
        LowerError::Tiling(e)
    }
}
impl From<IsaError> for LowerError {
    fn from(e: IsaError) -> Self {
        LowerError::Isa(e)
    }
}
impl From<ShapeError> for LowerError {
    fn from(e: ShapeError) -> Self {
        LowerError::Shape(e)
    }
}

/// A pooling problem: shapes plus geometry (global-memory placement is
/// supplied separately by the runner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolProblem {
    /// Batch size `N`.
    pub n: usize,
    /// Outer channel count `C1`.
    pub c1: usize,
    /// Input height `Ih`.
    pub ih: usize,
    /// Input width `Iw`.
    pub iw: usize,
    /// Kernel / stride / padding.
    pub params: PoolParams,
}

impl PoolProblem {
    /// Construct and validate.
    pub fn new(
        n: usize,
        c1: usize,
        ih: usize,
        iw: usize,
        params: PoolParams,
    ) -> Result<PoolProblem, LowerError> {
        params.out_dims(ih, iw)?;
        if n == 0 || c1 == 0 {
            return Err(LowerError::Unsupported("n and c1 must be nonzero".into()));
        }
        Ok(PoolProblem {
            n,
            c1,
            ih,
            iw,
            params,
        })
    }

    /// `(Oh, Ow)` output extents.
    pub fn out_dims(&self) -> (usize, usize) {
        self.params.out_dims(self.ih, self.iw).expect("validated")
    }

    /// Bytes of one input `(H, W, C0)` plane.
    pub fn in_plane_bytes(&self) -> usize {
        self.ih * self.iw * C0 * 2
    }

    /// Bytes of one output `(Oh, Ow, C0)` plane.
    pub fn out_plane_bytes(&self) -> usize {
        let (oh, ow) = self.out_dims();
        oh * ow * C0 * 2
    }

    /// Bytes of one argmax-mask plane set `(Kh, Kw, Oh, Ow, C0)` for one
    /// `(n, c1)`.
    pub fn mask_plane_bytes(&self) -> usize {
        self.params.kh * self.params.kw * self.out_plane_bytes()
    }

    /// Total input tensor bytes.
    pub fn in_bytes(&self) -> usize {
        self.n * self.c1 * self.in_plane_bytes()
    }

    /// Total output tensor bytes.
    pub fn out_bytes(&self) -> usize {
        self.n * self.c1 * self.out_plane_bytes()
    }

    /// Total argmax-mask tensor bytes.
    pub fn mask_bytes(&self) -> usize {
        self.n * self.c1 * self.mask_plane_bytes()
    }

    /// Iterate `(n, c1)` plane indices — the unit of multi-core
    /// parallelism ("this computation is divided in the C1 dimension").
    pub fn planes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let c1 = self.c1;
        (0..self.n).flat_map(move |n| (0..c1).map(move |c| (n, c)))
    }

    /// GM byte offset of input plane `(n, c1)` relative to the tensor
    /// base.
    pub fn in_plane_offset(&self, n: usize, c1: usize) -> usize {
        (n * self.c1 + c1) * self.in_plane_bytes()
    }

    /// GM byte offset of output plane `(n, c1)` relative to the tensor
    /// base.
    pub fn out_plane_offset(&self, n: usize, c1: usize) -> usize {
        (n * self.c1 + c1) * self.out_plane_bytes()
    }

    /// GM byte offset of mask plane `(n, c1, kh, kw)` relative to the
    /// tensor base.
    pub fn mask_plane_offset(&self, n: usize, c1: usize, kh: usize, kw: usize) -> usize {
        ((n * self.c1 + c1) * self.params.kh * self.params.kw + kh * self.params.kw + kw)
            * self.out_plane_bytes()
    }

    /// Fractals covering `patches` patches.
    pub fn fractals_for(patches: usize) -> usize {
        patches.div_ceil(FRACTAL_ROWS)
    }

    /// Bytes of a fractal-padded patch plane covering `patches` patches.
    pub fn padded_plane_bytes(patches: usize) -> usize {
        Self::fractals_for(patches) * FRACTAL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prob() -> PoolProblem {
        PoolProblem::new(1, 4, 147, 147, PoolParams::K3S2).unwrap()
    }

    #[test]
    fn sizes_match_inception_first_pool() {
        let p = prob();
        assert_eq!(p.out_dims(), (73, 73));
        assert_eq!(p.in_plane_bytes(), 147 * 147 * 32);
        assert_eq!(p.out_plane_bytes(), 73 * 73 * 32);
        assert_eq!(p.in_bytes(), 4 * p.in_plane_bytes());
        assert_eq!(p.mask_plane_bytes(), 9 * p.out_plane_bytes());
    }

    #[test]
    fn plane_enumeration() {
        let p = PoolProblem::new(2, 3, 8, 8, PoolParams::K2S2).unwrap();
        let planes: Vec<_> = p.planes().collect();
        assert_eq!(planes.len(), 6);
        assert_eq!(planes[0], (0, 0));
        assert_eq!(planes[5], (1, 2));
    }

    #[test]
    fn plane_offsets_contiguous() {
        let p = prob();
        assert_eq!(p.in_plane_offset(0, 0), 0);
        assert_eq!(p.in_plane_offset(0, 1), p.in_plane_bytes());
        assert_eq!(p.out_plane_offset(0, 2), 2 * p.out_plane_bytes());
        // mask plane (n=0,c1=1,kh=2,kw=1) with K=(3,3)
        assert_eq!(
            p.mask_plane_offset(0, 1, 2, 1),
            (9 + 7) * p.out_plane_bytes()
        );
    }

    #[test]
    fn fractal_padding_helpers() {
        assert_eq!(PoolProblem::fractals_for(16), 1);
        assert_eq!(PoolProblem::fractals_for(17), 2);
        assert_eq!(PoolProblem::padded_plane_bytes(33), 3 * FRACTAL_BYTES);
    }

    #[test]
    fn invalid_problems_rejected() {
        assert!(PoolProblem::new(0, 1, 8, 8, PoolParams::K2S2).is_err());
        assert!(PoolProblem::new(1, 0, 8, 8, PoolParams::K2S2).is_err());
        assert!(PoolProblem::new(1, 1, 1, 8, PoolParams::K3S2).is_err());
    }
}
