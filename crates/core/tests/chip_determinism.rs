//! Chip-level determinism across core counts and memory models.
//!
//! The sharding tentpole's contract: how work is distributed over the
//! chip — per plane, per `c1` slice, or per row band, on 1 to 32 cores,
//! with or without the shared-HBM contention stage — is pure scheduling.
//! Results must be **bit-identical** everywhere, and the simulator must
//! be deterministic run-to-run (same outputs, same cycles, same
//! counters), because the perf gate's exact-delta reasoning depends on
//! it. Plane-partitioned runs additionally keep their summed `total`
//! counters invariant in the core count: the same programs execute, only
//! their distribution over cores changes.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Chip, CostModel, MemoryModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, PoolParams};

const CORE_COUNTS: [usize; 4] = [1, 2, 8, 32];

fn input(n: usize, c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

/// Integer-valued gradients so every summation order is exact in fp16.
fn grads(n: usize, c1: usize, oh: usize, ow: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed ^ 0xD1FF;
    Nc1hwc0::from_fn(n, c1, oh, ow, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
        F16::from_f32(((s >> 41) % 8) as f32)
    })
}

fn engine(cores: usize, memory: MemoryModel) -> PoolingEngine {
    PoolingEngine::new(Chip::new(cores, CostModel::ascend910_like()).with_memory(memory))
        .with_sharding(true)
}

/// Run all four op x direction combinations on one engine and return
/// every output tensor's data, flattened in a fixed order.
fn all_ops(eng: &PoolingEngine) -> Vec<Vec<F16>> {
    let params = PoolParams::K3S2;
    let (h, w) = (73usize, 73usize);
    let x = input(1, 2, h, w, 11);
    let mask = reference::maxpool_argmax_mask(&x, &params).expect("mask");
    // K(3,3) S(2,2), no padding: 73 -> (73 - 3) / 2 + 1 = 36.
    let (oh, ow) = ((h - 3) / 2 + 1, (w - 3) / 2 + 1);
    let dy = grads(1, 2, oh, ow, 12);

    let (o_max, _) = eng
        .maxpool_forward(&x, params, ForwardImpl::Im2col)
        .expect("max forward");
    let (o_avg, _) = eng
        .avgpool_forward(&x, params, ForwardImpl::Im2col)
        .expect("avg forward");
    let (dx_max, _) = eng
        .maxpool_backward(&mask, &dy, params, h, w, MergeImpl::Col2Im)
        .expect("max backward");
    let (dx_avg, _) = eng
        .avgpool_backward(&dy, params, h, w, MergeImpl::Col2Im)
        .expect("avg backward");
    vec![
        o_max.data().to_vec(),
        o_avg.data().to_vec(),
        dx_max.data().to_vec(),
        dx_avg.data().to_vec(),
    ]
}

/// Outputs are bit-identical at every core count, under both memory
/// models, for max/avg x forward/backward — sharding and contention
/// never touch data.
#[test]
fn outputs_bit_identical_across_core_counts_and_memory_models() {
    let reference = all_ops(&engine(1, MemoryModel::Independent));
    for &cores in &CORE_COUNTS {
        for memory in [MemoryModel::Independent, MemoryModel::ascend910_hbm()] {
            assert_eq!(
                all_ops(&engine(cores, memory)),
                reference,
                "{cores} cores / {memory:?}: output diverged from the serial run"
            );
        }
    }
}

/// Back-to-back runs of the same engine are identical in outputs,
/// makespan, per-core cycles, and summed counters — including the
/// contention stalls booked by the shared-bandwidth stage.
#[test]
fn repeated_runs_are_bit_and_cycle_identical() {
    let params = PoolParams::K3S2;
    let x = input(1, 2, 73, 73, 21);
    for memory in [MemoryModel::Independent, MemoryModel::ascend910_hbm()] {
        let eng = engine(8, memory);
        let (o1, r1) = eng
            .maxpool_forward(&x, params, ForwardImpl::Im2col)
            .expect("first run");
        let (o2, r2) = eng
            .maxpool_forward(&x, params, ForwardImpl::Im2col)
            .expect("second run");
        assert_eq!(o1.data(), o2.data(), "{memory:?}: outputs drifted");
        assert_eq!(r1.cycles, r2.cycles, "{memory:?}: makespan drifted");
        assert_eq!(
            r1.core_cycles, r2.core_cycles,
            "{memory:?}: per-core cycles drifted"
        );
        assert_eq!(r1.total, r2.total, "{memory:?}: summed counters drifted");
    }
}

/// With sharding and band splitting off, the engine lowers the same
/// per-plane programs regardless of chip width: the summed `total`
/// counters are invariant in the core count, and the makespan is
/// monotone non-increasing as cores absorb more planes.
#[test]
fn plane_partitioned_total_counters_invariant_in_core_count() {
    let params = PoolParams::K3S2;
    let x = input(1, 4, 73, 73, 31);
    let runs: Vec<_> = CORE_COUNTS
        .iter()
        .map(|&cores| {
            let eng = PoolingEngine::new(Chip::new(cores, CostModel::ascend910_like()));
            let (o, r) = eng
                .maxpool_forward(&x, params, ForwardImpl::Im2col)
                .expect("forward");
            (o.data().to_vec(), r)
        })
        .collect();
    for (out, run) in &runs[1..] {
        assert_eq!(out, &runs[0].0, "core count changed the output");
        assert_eq!(
            run.total, runs[0].1.total,
            "core count changed the summed counters of identical programs"
        );
    }
    for pair in runs.windows(2) {
        assert!(
            pair[1].1.cycles <= pair[0].1.cycles,
            "more cores made the plane-partitioned makespan worse"
        );
    }
}
