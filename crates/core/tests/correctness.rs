//! End-to-end correctness: every simulated pooling implementation must
//! produce **bit-identical f16 results** to the golden references in
//! `dv_tensor::reference`, across implementations, strides, kernels,
//! tiling regimes and core counts.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Capacities, Chip, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, Padding, PoolParams};

/// Deterministic pseudo-random f16-exact values (multiples of 0.25 in
/// [-4, 4)).
fn test_input(n: usize, c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        let v = ((state >> 16) % 32) as f32 - 16.0;
        F16::from_f32(v * 0.25)
    })
}

/// Integer-valued gradients so any summation order is exact in f16.
fn int_grads(n: usize, c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(7);
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        F16::from_f32(((state >> 20) % 8) as f32)
    })
}

fn engine() -> PoolingEngine {
    PoolingEngine::new(Chip::new(4, CostModel::ascend910_like()))
}

/// An engine with tiny scratchpads to force multi-band tiling on small
/// inputs.
fn tiny_engine() -> PoolingEngine {
    let mut chip = Chip::new(2, CostModel::ascend910_like());
    chip.caps = Capacities {
        l1: 48 * 1024,
        l0a: 4 * 1024,
        l0b: 4 * 1024,
        l0c: 8 * 1024,
        ub: 24 * 1024,
    };
    PoolingEngine::new(chip)
}

fn assert_tensors_eq(got: &Nc1hwc0, want: &Nc1hwc0, what: &str) {
    assert_eq!(
        (got.n, got.c1, got.h, got.w),
        (want.n, want.c1, want.h, want.w),
        "{what}: shape"
    );
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i}: {g:?} != {w:?}"
        );
    }
}

#[test]
fn maxpool_forward_all_impls_k3s2() {
    let input = test_input(1, 2, 23, 19, 1);
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} K3S2"));
    }
}

#[test]
fn maxpool_forward_all_impls_all_strides() {
    // The Fig. 8 stride sweep: kernel (3,3), strides (1,1) (2,2) (3,3).
    let eng = engine();
    for stride in [1usize, 2, 3] {
        let params = PoolParams::new((3, 3), (stride, stride));
        let input = test_input(1, 1, 20, 20, 10 + stride as u32);
        let want = reference::maxpool_forward(&input, &params).unwrap();
        for impl_ in ForwardImpl::ALL {
            let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
            assert_tensors_eq(&got, &want, &format!("{impl_:?} stride {stride}"));
        }
    }
}

#[test]
fn maxpool_forward_vgg_k2s2() {
    let input = test_input(1, 2, 28, 28, 3);
    let params = PoolParams::K2S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} K2S2"));
    }
}

#[test]
fn maxpool_forward_asymmetric_kernel_and_stride() {
    let params = PoolParams::new((2, 3), (1, 2));
    let input = test_input(1, 1, 11, 17, 4);
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} K(2,3) S(1,2)"));
    }
}

#[test]
fn maxpool_forward_multiband_tiling() {
    // Tiny UB forces several row bands; results must not change.
    let input = test_input(1, 1, 41, 37, 5);
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = tiny_engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} multiband"));
    }
}

#[test]
fn maxpool_forward_im2col_with_padding() {
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(1, 2, 15, 15, 6);
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    let (got, _) = eng
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_tensors_eq(&got, &want, "Im2col padded");
    // The other lowerings reject padding explicitly.
    assert!(eng
        .maxpool_forward(&input, params, ForwardImpl::Standard)
        .is_err());
}

#[test]
fn maxpool_forward_im2col_asymmetric_padding() {
    let params = PoolParams::with_padding(
        (3, 3),
        (2, 2),
        Padding {
            top: 1,
            bottom: 0,
            left: 2,
            right: 1,
        },
    );
    let input = test_input(1, 1, 12, 13, 7);
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    let (got, _) = eng
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_tensors_eq(&got, &want, "Im2col asymmetric padding");
}

#[test]
fn maxpool_forward_single_patch_edge() {
    // input exactly kernel-sized: one patch.
    let params = PoolParams::new((3, 3), (2, 2));
    let input = test_input(1, 1, 3, 3, 8);
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} single patch"));
    }
}

#[test]
fn maxpool_argmax_both_impls() {
    // Quantize to few distinct values so ties occur and must match the
    // reference's mark-all-ties semantics.
    let mut input = test_input(1, 2, 17, 17, 9);
    for v in input.data_mut() {
        *v = F16::from_f32((v.to_f32() / 2.0).round());
    }
    let params = PoolParams::K3S2;
    let (want_out, want_mask) = reference::maxpool_forward_with_argmax(&input, &params).unwrap();
    let eng = engine();
    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        let (out, mask, _) = eng
            .maxpool_forward_with_argmax(&input, params, impl_)
            .unwrap();
        assert_tensors_eq(&out, &want_out, &format!("{impl_:?} argmax out"));
        assert_eq!(mask.data(), want_mask.data(), "{impl_:?} argmax mask");
    }
}

#[test]
fn maxpool_argmax_rejects_unsupported_impls() {
    let input = test_input(1, 1, 9, 9, 2);
    let eng = engine();
    for impl_ in [ForwardImpl::Expansion, ForwardImpl::XYSplit] {
        assert!(eng
            .maxpool_forward_with_argmax(&input, PoolParams::K3S2, impl_)
            .is_err());
    }
}

#[test]
fn maxpool_backward_both_merges() {
    let input = test_input(1, 2, 21, 21, 11);
    let params = PoolParams::K3S2;
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(21, 21).unwrap();
    let grads = int_grads(1, 2, oh, ow, 12);
    let want = reference::maxpool_backward(&mask, &grads, &params, 21, 21).unwrap();
    let eng = engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 21, 21, merge)
            .unwrap();
        assert_tensors_eq(&got, &want, &format!("{merge:?} backward"));
    }
}

#[test]
fn maxpool_backward_stride_sweep() {
    for stride in [1usize, 2, 3] {
        let params = PoolParams::new((3, 3), (stride, stride));
        let input = test_input(1, 1, 15, 15, 20 + stride as u32);
        let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
        let (oh, ow) = params.out_dims(15, 15).unwrap();
        let grads = int_grads(1, 1, oh, ow, 21);
        let want = reference::maxpool_backward(&mask, &grads, &params, 15, 15).unwrap();
        let eng = engine();
        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let (got, _) = eng
                .maxpool_backward(&mask, &grads, params, 15, 15, merge)
                .unwrap();
            assert_tensors_eq(&got, &want, &format!("{merge:?} backward stride {stride}"));
        }
    }
}

#[test]
fn maxpool_backward_multiband_tiling() {
    // Tiny UB: the halo-carry path across bands must still produce the
    // reference result (integer gradients make every order exact).
    let input = test_input(1, 1, 41, 23, 13);
    let params = PoolParams::K3S2;
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(41, 23).unwrap();
    let grads = int_grads(1, 1, oh, ow, 14);
    let want = reference::maxpool_backward(&mask, &grads, &params, 41, 23).unwrap();
    let eng = tiny_engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 41, 23, merge)
            .unwrap();
        assert_tensors_eq(&got, &want, &format!("{merge:?} tiled backward"));
    }
}

#[test]
fn maxpool_backward_overlapping_rows_multiband() {
    // Stride (1,1): heavy vertical overlap across bands exercises the
    // halo carry hardest.
    let input = test_input(1, 1, 30, 10, 15);
    let params = PoolParams::new((3, 3), (1, 1));
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(30, 10).unwrap();
    let grads = int_grads(1, 1, oh, ow, 16);
    let want = reference::maxpool_backward(&mask, &grads, &params, 30, 10).unwrap();
    let eng = tiny_engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 30, 10, merge)
            .unwrap();
        assert_tensors_eq(&got, &want, &format!("{merge:?} overlap backward"));
    }
}

#[test]
fn maxpool_backward_gap_rows_multiband() {
    // Stride larger than the kernel leaves input rows no patch touches;
    // tiled backward must still flush them as exact zeros (regression
    // for the dx-window sizing when Sh > Kh).
    let params = PoolParams::new((2, 2), (3, 3));
    let input = test_input(1, 1, 38, 14, 70);
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(38, 14).unwrap();
    let grads = int_grads(1, 1, oh, ow, 71);
    let want = reference::maxpool_backward(&mask, &grads, &params, 38, 14).unwrap();
    let eng = tiny_engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 38, 14, merge)
            .unwrap();
        assert_tensors_eq(&got, &want, &format!("{merge:?} gap rows"));
        // rows 2, 5, 8, ... are untouched by any patch and must be zero
        for w in 0..14 {
            assert_eq!(got.get(0, 0, 2, w, 0), F16::ZERO);
            assert_eq!(got.get(0, 0, 5, w, 3), F16::ZERO);
        }
    }
}

#[test]
fn avgpool_forward_standard_and_im2col() {
    let input = test_input(1, 2, 19, 19, 17);
    for params in [PoolParams::K3S2, PoolParams::K2S2] {
        let want = reference::avgpool_forward(&input, &params).unwrap();
        let eng = engine();
        for impl_ in [
            ForwardImpl::Standard,
            ForwardImpl::Im2col,
            ForwardImpl::Expansion,
        ] {
            let (got, _) = eng.avgpool_forward(&input, params, impl_).unwrap();
            assert_tensors_eq(&got, &want, &format!("avg {impl_:?} {params:?}"));
        }
    }
}

#[test]
fn avgpool_backward_both_merges() {
    let params = PoolParams::K3S2;
    let (oh, ow) = params.out_dims(21, 21).unwrap();
    let grads = int_grads(1, 2, oh, ow, 18);
    let want = reference::avgpool_backward(&grads, &params, 21, 21).unwrap();
    let eng = engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng.avgpool_backward(&grads, params, 21, 21, merge).unwrap();
        assert_tensors_eq(&got, &want, &format!("avg {merge:?} backward"));
    }
}

#[test]
fn results_independent_of_core_count() {
    let input = test_input(1, 6, 17, 17, 19);
    let params = PoolParams::K3S2;
    let mut outputs = Vec::new();
    for cores in [1usize, 3, 32] {
        let eng = PoolingEngine::new(Chip::new(cores, CostModel::ascend910_like()));
        let (out, run) = eng
            .maxpool_forward(&input, params, ForwardImpl::Im2col)
            .unwrap();
        outputs.push((cores, out, run));
    }
    for w in outputs.windows(2) {
        assert_eq!(
            w[0].1.data(),
            w[1].1.data(),
            "outputs differ between {} and {} cores",
            w[0].0,
            w[1].0
        );
        // total work is identical; wall-clock cycles shrink (or stay) as
        // cores grow
        assert_eq!(w[0].2.total.cycles, w[1].2.total.cycles);
        assert!(w[0].2.cycles >= w[1].2.cycles);
    }
}

#[test]
fn im2col_beats_standard_at_stride_2_and_loses_at_stride_1() {
    // The headline structural result (Fig. 8a vs 8b), as a regression
    // test on the cost model.
    let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
    let input = test_input(1, 1, 48, 48, 23);

    let s2 = PoolParams::new((3, 3), (2, 2));
    let (_, std_run) = eng
        .maxpool_forward(&input, s2, ForwardImpl::Standard)
        .unwrap();
    let (_, im_run) = eng
        .maxpool_forward(&input, s2, ForwardImpl::Im2col)
        .unwrap();
    assert!(
        im_run.cycles < std_run.cycles,
        "stride 2: im2col ({}) must beat standard ({})",
        im_run.cycles,
        std_run.cycles
    );

    let s1 = PoolParams::new((3, 3), (1, 1));
    let (_, std_run1) = eng
        .maxpool_forward(&input, s1, ForwardImpl::Standard)
        .unwrap();
    let (_, im_run1) = eng
        .maxpool_forward(&input, s1, ForwardImpl::Im2col)
        .unwrap();
    assert!(
        std_run1.cycles < im_run1.cycles,
        "stride 1: standard ({}) must beat im2col ({})",
        std_run1.cycles,
        im_run1.cycles
    );
}

#[test]
fn col2im_merge_beats_vadd_merge() {
    let input = test_input(1, 1, 41, 41, 29);
    let params = PoolParams::K3S2;
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(41, 41).unwrap();
    let grads = int_grads(1, 1, oh, ow, 30);
    let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
    let (_, vadd) = eng
        .maxpool_backward(&mask, &grads, params, 41, 41, MergeImpl::VAdd)
        .unwrap();
    let (_, col2im) = eng
        .maxpool_backward(&mask, &grads, params, 41, 41, MergeImpl::Col2Im)
        .unwrap();
    assert!(
        col2im.cycles < vadd.cycles,
        "col2im merge ({}) must beat vadd merge ({})",
        col2im.cycles,
        vadd.cycles
    );
}

#[test]
fn training_round_trip_forward_argmax_backward() {
    // Full training-step pipeline on the accelerated path: forward with
    // argmax (im2col), then backward (col2im), everything simulated.
    let input = test_input(1, 2, 19, 19, 31);
    let params = PoolParams::K3S2;
    let eng = engine();
    let (out, mask, _) = eng
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let grads = int_grads(1, 2, out.h, out.w, 32);
    let (dx, _) = eng
        .maxpool_backward(&mask, &grads, params, 19, 19, MergeImpl::Col2Im)
        .unwrap();
    // Oracle chain entirely from references.
    let ref_mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let want = reference::maxpool_backward(&ref_mask, &grads, &params, 19, 19).unwrap();
    assert_eq!(mask.data(), ref_mask.data());
    assert_tensors_eq(&dx, &want, "training round trip");
}

#[test]
fn issue_counts_match_paper_formulas() {
    // "vmax is issued Oh*Ow*Kh times" (standard) vs "only Kh*Kw times"
    // (im2col, modulo the 255-repeat chunking) — check the lowering
    // produces exactly the instruction counts the paper reasons about.
    let input = test_input(1, 1, 21, 21, 33);
    let params = PoolParams::K3S2;
    let (oh, ow) = params.out_dims(21, 21).unwrap();
    let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));

    let (_, std_run) = eng
        .maxpool_forward(&input, params, ForwardImpl::Standard)
        .unwrap();
    assert_eq!(
        std_run.total.issues_of("vmax"),
        (oh * ow * params.kh) as u64,
        "standard vmax issues"
    );

    let (_, im_run) = eng
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    // single band, patches = 100 -> 7 fractals -> 14 repeats, one issue
    // per (kh, kw) plane
    assert_eq!(
        im_run.total.issues_of("vmax"),
        (params.kh * params.kw) as u64,
        "im2col vmax issues"
    );
    assert_eq!(
        im_run.total.issues_of("im2col"),
        (params.kh * params.kw) as u64,
        "one mode-1 Im2Col per (kh, kw)"
    );

    // Backward: vadd merge issues Kh*Kw*Oh*Ow vadds; col2im issues Kh*Kw.
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let grads = int_grads(1, 1, oh, ow, 34);
    let (_, vadd_run) = eng
        .maxpool_backward(&mask, &grads, params, 21, 21, MergeImpl::VAdd)
        .unwrap();
    assert_eq!(
        vadd_run.total.issues_of("vadd"),
        (params.kh * params.kw * oh * ow) as u64,
        "standard merge vadd issues"
    );
    let (_, c2i_run) = eng
        .maxpool_backward(&mask, &grads, params, 21, 21, MergeImpl::Col2Im)
        .unwrap();
    assert_eq!(
        c2i_run.total.issues_of("col2im"),
        (params.kh * params.kw) as u64,
        "col2im merge issues"
    );
}

#[test]
fn vector_utilization_reflects_mask_saturation() {
    let input = test_input(1, 1, 33, 33, 35);
    let params = PoolParams::K3S2;
    let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
    let (_, std_run) = eng
        .maxpool_forward(&input, params, ForwardImpl::Standard)
        .unwrap();
    let (_, im_run) = eng
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    // The standard lowering can only enable the 16 C0 lanes; the im2col
    // lowering saturates.
    assert!(
        std_run.total.vector_utilization() < 0.25,
        "standard utilization {}",
        std_run.total.vector_utilization()
    );
    assert!(
        im_run.total.vector_utilization() > 0.9,
        "im2col utilization {}",
        im_run.total.vector_utilization()
    );
}

#[test]
fn maxpool_backward_with_padding_single_band() {
    // Padding drops merge contributions that land in the border; both
    // merges and the argmax path must agree with the reference.
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(1, 1, 13, 13, 40);
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(13, 13).unwrap();
    let grads = int_grads(1, 1, oh, ow, 41);
    let want = reference::maxpool_backward(&mask, &grads, &params, 13, 13).unwrap();
    let eng = engine();
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (got, _) = eng
            .maxpool_backward(&mask, &grads, params, 13, 13, merge)
            .unwrap();
        assert_tensors_eq(&got, &want, &format!("{merge:?} padded backward"));
    }
}

#[test]
fn argmax_im2col_with_padding() {
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(1, 1, 11, 11, 42);
    let (want_out, want_mask) = reference::maxpool_forward_with_argmax(&input, &params).unwrap();
    let eng = engine();
    let (out, mask, _) = eng
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_tensors_eq(&out, &want_out, "padded argmax out");
    assert_eq!(mask.data(), want_mask.data(), "padded argmax mask");
}

#[test]
fn avgpool_im2col_with_padding() {
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(1, 2, 11, 11, 43);
    let want = reference::avgpool_forward(&input, &params).unwrap();
    let eng = engine();
    let (got, _) = eng
        .avgpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_tensors_eq(&got, &want, "padded avg forward");
}

#[test]
fn engine_rejects_mismatched_backward_shapes() {
    let params = PoolParams::K3S2;
    let input = test_input(1, 1, 11, 11, 44);
    let mask = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let eng = engine();
    // gradient plane doesn't match the patch grid
    let bad_grads = int_grads(1, 1, 9, 9, 45);
    assert!(eng
        .maxpool_backward(&mask, &bad_grads, params, 11, 11, MergeImpl::Col2Im)
        .is_err());
    // avg: same check
    assert!(eng
        .avgpool_backward(&bad_grads, params, 11, 11, MergeImpl::Col2Im)
        .is_err());
}

#[test]
fn engine_rejects_impossible_geometry() {
    let eng = engine();
    let input = test_input(1, 1, 2, 2, 46);
    assert!(eng
        .maxpool_forward(&input, PoolParams::K3S2, ForwardImpl::Im2col)
        .is_err());
}

#[test]
fn multiband_vertical_padding_is_rejected_not_miscomputed() {
    // Force tiling with vertical padding: the lowering must refuse
    // rather than produce wrong values.
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(1, 1, 61, 61, 47);
    let eng = tiny_engine();
    let r = eng.maxpool_forward(&input, params, ForwardImpl::Im2col);
    assert!(r.is_err(), "vertical padding + tiling must be rejected");
}

#[test]
fn global_pooling_kernel_covers_whole_image() {
    // Kernel = image extent: one patch per plane (global max pooling).
    let params = PoolParams::new((9, 9), (1, 1));
    let input = test_input(1, 2, 9, 9, 48);
    let want = reference::maxpool_forward(&input, &params).unwrap();
    assert_eq!((want.h, want.w), (1, 1));
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} global pool"));
    }
}

#[test]
fn relu_matches_scalar_reference() {
    let input = test_input(2, 3, 21, 17, 60);
    let eng = engine();
    let (out, run) = eng.relu(&input).unwrap();
    assert_eq!((out.n, out.c1, out.h, out.w), (2, 3, 21, 17));
    for (got, x) in out.data().iter().zip(input.data()) {
        assert_eq!(*got, x.max(F16::ZERO), "relu({x:?})");
    }
    assert!(run.total.issues_of("vrelu") > 0);
    assert!(
        run.total.vector_utilization() > 0.9,
        "relu is a dense elementwise op and should saturate"
    );
}

#[test]
fn relu_tiles_large_planes() {
    // plane larger than half the tiny UB forces the chunk loop
    let input = test_input(1, 1, 64, 64, 61);
    let eng = tiny_engine();
    let (out, _) = eng.relu(&input).unwrap();
    for (got, x) in out.data().iter().zip(input.data()) {
        assert_eq!(*got, x.max(F16::ZERO));
    }
}

#[test]
fn band_splitting_preserves_results_and_scales() {
    let input = test_input(1, 1, 57, 41, 50);
    let params = PoolParams::K3S2;
    let chip = Chip::new(8, CostModel::ascend910_like());
    let plane_only = PoolingEngine::new(chip.clone());
    let split = PoolingEngine::new(chip).with_band_splitting(true);
    for impl_ in ForwardImpl::ALL {
        let (a, run_a) = plane_only.maxpool_forward(&input, params, impl_).unwrap();
        let (b, run_b) = split.maxpool_forward(&input, params, impl_).unwrap();
        assert_eq!(a.data(), b.data(), "{impl_:?}: splitting changed results");
        assert!(
            run_b.cycles <= run_a.cycles,
            "{impl_:?}: splitting must not be slower ({} > {})",
            run_b.cycles,
            run_a.cycles
        );
        // total work may grow slightly (per-band DMA), but not wildly
        assert!(run_b.total.cycles < run_a.total.cycles * 2);
    }
    // argmax path splits too
    let (o1, m1, _) = plane_only
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (o2, m2, _) = split
        .maxpool_forward_with_argmax(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_eq!(o1.data(), o2.data());
    assert_eq!(m1.data(), m2.data());
}

#[test]
fn batch_dimension_n_greater_than_one() {
    let input = test_input(2, 2, 13, 13, 36);
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();
    let eng = engine();
    for impl_ in ForwardImpl::ALL {
        let (got, _) = eng.maxpool_forward(&input, params, impl_).unwrap();
        assert_tensors_eq(&got, &want, &format!("{impl_:?} N=2"));
    }
}
