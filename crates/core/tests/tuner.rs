//! Differential wall for the algorithm auto-tuner.
//!
//! The tuner is a *scheduling* decision: whatever algorithm it dispatches,
//! results must be bit-identical to every forced lowering and to the golden
//! references in `dv_tensor::reference`. On top of the bit-match, every
//! case checks the prediction-honesty contract: when a tuned run books no
//! `tuner_mispredicted`, its measured makespan is no worse than any forced
//! alternative's — because the engine certified the win against each
//! rejected algorithm's cycle floor, and measured cycles can never fall
//! below the floor. With auto-tuning off, both tuner counters stay zero.

use dv_core::{ForwardImpl, MergeImpl, PoolRun, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Chip, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, Padding, PoolParams};
use proptest::prelude::*;
use proptest::sample::select;

/// Which pooling operator a case exercises.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Max,
    Avg,
}

/// Both issue models, two cores each, auto-tuning *off* — the tuned
/// engine is derived per case with `with_auto_tuning(true)` so forced and
/// tuned runs share the chip exactly.
fn base_engines() -> [(&'static str, PoolingEngine); 2] {
    [
        (
            "dual_pipe",
            PoolingEngine::new(Chip::new(2, CostModel::ascend910_like())),
        ),
        (
            "single_issue",
            PoolingEngine::new(Chip::new(2, CostModel::single_issue())),
        ),
    ]
}

/// Random kernel/stride geometry with optional padding, so cases cover
/// both the im2col-only region (padded) and the contested region where
/// direct reduction can win (unpadded, stride 1).
fn geometry() -> impl Strategy<Value = (PoolParams, usize, usize)> {
    (
        2usize..=3,
        2usize..=3,
        1usize..=3,
        1usize..=3,
        0usize..=1,
        0usize..=1,
    )
        .prop_flat_map(|(kh, kw, sh, sw, pad_v, pad_h)| {
            let padding = Padding {
                top: pad_v,
                bottom: pad_v,
                left: pad_h,
                right: pad_h,
            };
            (
                Just(PoolParams::with_padding((kh, kw), (sh, sw), padding)),
                kh + 4..kh + 14,
                kw + 4..kw + 14,
            )
        })
}

fn input(n: usize, c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

/// Integer-valued gradients so every summation order is exact in fp16.
fn grads(n: usize, c1: usize, oh: usize, ow: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed ^ 0xD1FF;
    Nc1hwc0::from_fn(n, c1, oh, ow, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
        F16::from_f32(((s >> 41) % 8) as f32)
    })
}

/// A forced (auto-tuning off) run must never book a tuner counter.
fn assert_untuned(what: &str, run: &PoolRun) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        run.total.tuner_mispredicted,
        0,
        "{}: tuner_mispredicted booked with auto-tuning off",
        what
    );
    prop_assert_eq!(
        run.total.tuner_fallbacks,
        0,
        "{}: tuner_fallbacks booked with auto-tuning off",
        what
    );
    Ok(())
}

/// The honesty gate: a tuned run that books no misprediction certified
/// its win against every lowerable alternative's cycle floor, so it must
/// not be slower than any forced run of those same lowerings.
fn assert_honest(
    what: &str,
    tuned: &PoolRun,
    forced: &[(&'static str, u64)],
) -> Result<(), TestCaseError> {
    if tuned.total.tuner_mispredicted > 0 {
        // The win could not be certified — the decline is typed, the
        // makespan bound is void. Nothing more to check.
        return Ok(());
    }
    for (label, cycles) in forced {
        prop_assert!(
            tuned.cycles <= *cycles,
            "{}: tuned run ({} cycles) lost to forced {} ({} cycles) \
             without booking a misprediction",
            what,
            tuned.cycles,
            label,
            cycles
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward: the tuned engine bit-matches the reference and every
    /// forced algorithm (direct reduction, per-plane im2col), and when no
    /// misprediction is booked it is at least as fast as each of them.
    #[test]
    fn tuned_forward_bitmatches_and_never_loses_uncertified(
        (params, ih, iw) in geometry(),
        n in 1usize..=2,
        c1 in 1usize..=2,
        op in select(vec![Op::Max, Op::Avg]),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(n, c1, ih, iw, seed);
        let want = match op {
            Op::Max => reference::maxpool_forward(&x, &params).unwrap(),
            Op::Avg => reference::avgpool_forward(&x, &params).unwrap(),
        };
        for (model, base) in base_engines() {
            let tuner = base.clone().with_auto_tuning(true);
            // The `impl_` argument is ignored under auto-tuning; pass the
            // one the tuner is *least* likely to pick to prove it.
            let (got, run) = match op {
                Op::Max => tuner.maxpool_forward(&x, params, ForwardImpl::Standard),
                Op::Avg => tuner.avgpool_forward(&x, params, ForwardImpl::Standard),
            }
            .unwrap();
            prop_assert_eq!(
                got.data(),
                want.data(),
                "{} {:?} tuned fwd diverged from reference {:?} N={} {}x{}",
                model, op, params, n, ih, iw
            );

            // Forced alternatives on the same chip. Per-plane im2col
            // (batching off) matches the tuner's `Algorithm::Im2col`
            // lowering; the Standard impl is `Algorithm::Direct`. Either
            // may be infeasible (padding, ceil overhang) — skip those.
            let mut forced = Vec::new();
            let direct = match op {
                Op::Max => base.maxpool_forward(&x, params, ForwardImpl::Standard),
                Op::Avg => base.avgpool_forward(&x, params, ForwardImpl::Standard),
            };
            let per_plane = base.clone().with_batching(false);
            let im2col = match op {
                Op::Max => per_plane.maxpool_forward(&x, params, ForwardImpl::Im2col),
                Op::Avg => per_plane.avgpool_forward(&x, params, ForwardImpl::Im2col),
            };
            for (label, res) in [("direct", direct), ("im2col", im2col)] {
                if let Ok((out, frun)) = res {
                    prop_assert_eq!(
                        out.data(),
                        want.data(),
                        "{} {:?} forced {} fwd diverged {:?} {}x{}",
                        model, op, label, params, ih, iw
                    );
                    assert_untuned(label, &frun)?;
                    forced.push((label, frun.cycles));
                }
            }
            prop_assert!(
                !forced.is_empty(),
                "{}: no forced algorithm lowered {:?} {}x{}",
                model, params, ih, iw
            );
            assert_honest(model, &run, &forced)?;
        }
    }

    /// Backward: the tuned engine bit-matches the reference and both
    /// forced merges (scattered vadd, col2im), with the same certified
    /// makespan bound.
    #[test]
    fn tuned_backward_bitmatches_and_never_loses_uncertified(
        (params, ih, iw) in geometry(),
        n in 1usize..=2,
        op in select(vec![Op::Max, Op::Avg]),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(n, 1, ih, iw, seed);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let dy = grads(n, 1, oh, ow, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let want = match op {
            Op::Max => reference::maxpool_backward(&mask, &dy, &params, ih, iw).unwrap(),
            Op::Avg => reference::avgpool_backward(&dy, &params, ih, iw).unwrap(),
        };
        for (model, base) in base_engines() {
            let tuner = base.clone().with_auto_tuning(true);
            let (got, run) = match op {
                Op::Max => tuner.maxpool_backward(&mask, &dy, params, ih, iw, MergeImpl::VAdd),
                Op::Avg => tuner.avgpool_backward(&dy, params, ih, iw, MergeImpl::VAdd),
            }
            .unwrap();
            prop_assert_eq!(
                got.data(),
                want.data(),
                "{} {:?} tuned bwd diverged from reference {:?} N={} {}x{}",
                model, op, params, n, ih, iw
            );

            let mut forced = Vec::new();
            for (label, merge) in [("direct", MergeImpl::VAdd), ("im2col", MergeImpl::Col2Im)] {
                let res = match op {
                    Op::Max => base.maxpool_backward(&mask, &dy, params, ih, iw, merge),
                    Op::Avg => base.avgpool_backward(&dy, params, ih, iw, merge),
                };
                if let Ok((dx, frun)) = res {
                    prop_assert_eq!(
                        dx.data(),
                        want.data(),
                        "{} {:?} forced {} bwd diverged {:?} {}x{}",
                        model, op, label, params, ih, iw
                    );
                    assert_untuned(label, &frun)?;
                    forced.push((label, frun.cycles));
                }
            }
            prop_assert!(
                !forced.is_empty(),
                "{}: no forced merge lowered {:?} {}x{}",
                model, params, ih, iw
            );
            assert_honest(model, &run, &forced)?;
        }
    }

    /// The argmax-producing forward is tuned through the same dispatch:
    /// output *and mask* bit-match the reference and the forced im2col
    /// path, so a tuned training step reconstructs identical gradients.
    #[test]
    fn tuned_argmax_forward_bitmatches_forced(
        (params, ih, iw) in geometry(),
        c1 in 1usize..=2,
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(1, c1, ih, iw, seed);
        let want_mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let want_out = reference::maxpool_forward(&x, &params).unwrap();
        for (model, base) in base_engines() {
            let tuner = base.clone().with_auto_tuning(true);
            let (out_t, mask_t, run) = tuner
                .maxpool_forward_with_argmax(&x, params, ForwardImpl::Standard)
                .unwrap();
            prop_assert_eq!(out_t.data(), want_out.data(), "{} tuned argmax output", model);
            prop_assert_eq!(mask_t.data(), want_mask.data(), "{} tuned argmax mask", model);
            let (out_f, mask_f, frun) = base
                .maxpool_forward_with_argmax(&x, params, ForwardImpl::Im2col)
                .unwrap();
            prop_assert_eq!(out_t.data(), out_f.data(), "{} argmax output vs forced", model);
            prop_assert_eq!(mask_t.data(), mask_f.data(), "{} argmax mask vs forced", model);
            assert_untuned("argmax", &frun)?;
            assert_honest(model, &run, &[("im2col", frun.cycles)])?;
        }
    }
}
