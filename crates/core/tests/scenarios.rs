//! Scenario-breadth differential suites: dilated, global, and ceil-mode
//! pooling pinned bit-exact against the `dv_tensor::reference` oracles.
//!
//! Each scenario runs forward (max and avg) and backward (through the
//! argmax mask for max, uniform redistribution for avg) across random
//! shapes, under both issue models, with double-buffering on and off —
//! and once more through the auto-tuner, which must route every scenario
//! through a feasible algorithm (dilation and ceil-overhang shrink the
//! candidate set; the tuned result must still be bit-identical).

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Chip, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, Padding, PoolParams};
use proptest::prelude::*;
use proptest::sample::select;

/// Which pooling operator a case exercises.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Max,
    Avg,
}

/// Both issue models with the requested double-buffering, plus a tuned
/// variant of each: four engines per case.
fn engines(db: bool) -> Vec<(&'static str, PoolingEngine)> {
    [
        ("dual_pipe", CostModel::ascend910_like()),
        ("single_issue", CostModel::single_issue()),
    ]
    .into_iter()
    .flat_map(|(name, cost)| {
        let eng = PoolingEngine::new(Chip::new(2, cost)).with_double_buffering(db);
        [(name, eng.clone()), (name, eng.with_auto_tuning(true))]
    })
    .collect()
}

fn input(n: usize, c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

/// Integer-valued gradients so every summation order is exact in fp16.
fn grads(n: usize, c1: usize, oh: usize, ow: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed ^ 0xD1FF;
    Nc1hwc0::from_fn(n, c1, oh, ow, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
        F16::from_f32(((s >> 41) % 8) as f32)
    })
}

/// Run one scenario case — forward and backward, max or avg — through
/// every engine and pin it against the references.
fn check_scenario(
    what: &str,
    params: PoolParams,
    ih: usize,
    iw: usize,
    op: Op,
    db: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    let x = input(1, 1, ih, iw, seed);
    let (oh, ow) = params.out_dims(ih, iw).unwrap();
    let dy = grads(1, 1, oh, ow, seed);
    let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
    let want_fwd = match op {
        Op::Max => reference::maxpool_forward(&x, &params).unwrap(),
        Op::Avg => reference::avgpool_forward(&x, &params).unwrap(),
    };
    let want_bwd = match op {
        Op::Max => reference::maxpool_backward(&mask, &dy, &params, ih, iw).unwrap(),
        Op::Avg => reference::avgpool_backward(&dy, &params, ih, iw).unwrap(),
    };
    for (model, eng) in engines(db) {
        let tuned = if eng.auto_tune { " tuned" } else { "" };
        let (got, _) = match op {
            Op::Max => eng.maxpool_forward(&x, params, ForwardImpl::Im2col),
            Op::Avg => eng.avgpool_forward(&x, params, ForwardImpl::Im2col),
        }
        .unwrap();
        prop_assert_eq!(
            got.data(),
            want_fwd.data(),
            "{} {}{} {:?} fwd {:?} {}x{} (db={})",
            what,
            model,
            tuned,
            op,
            params,
            ih,
            iw,
            db
        );
        let (dx, _) = match op {
            Op::Max => eng.maxpool_backward(&mask, &dy, params, ih, iw, MergeImpl::Col2Im),
            Op::Avg => eng.avgpool_backward(&dy, params, ih, iw, MergeImpl::Col2Im),
        }
        .unwrap();
        prop_assert_eq!(
            dx.data(),
            want_bwd.data(),
            "{} {}{} {:?} bwd {:?} {}x{} (db={})",
            what,
            model,
            tuned,
            op,
            params,
            ih,
            iw,
            db
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dilated pooling: kernel taps skip `Dh`/`Dw` elements. The Im2col
    /// lowering carries the dilation into the `Im2ColGeometry`; the
    /// reference walks `kernel_offsets` — both must agree bit-for-bit.
    #[test]
    fn dilated_pooling_bitmatches_reference(
        (kh, kw, sh, sw) in (2usize..=3, 2usize..=3, 1usize..=2, 1usize..=2),
        (dh, dw) in (2usize..=3, 2usize..=3),
        (extra_h, extra_w) in (0usize..=6, 0usize..=6),
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = PoolParams::new((kh, kw), (sh, sw)).with_dilation((dh, dw));
        let (ih, iw) = (params.eff_kh() + 2 + extra_h, params.eff_kw() + 2 + extra_w);
        prop_assume!(params.out_dims(ih, iw).is_ok());
        check_scenario("dilated", params, ih, iw, op, db, seed)?;
    }

    /// Global pooling: one window covering the whole plane — a single
    /// output pixel whose backward redistributes into every input pixel.
    #[test]
    fn global_pooling_bitmatches_reference(
        ih in 3usize..=14,
        iw in 3usize..=14,
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = PoolParams::global(ih, iw);
        check_scenario("global", params, ih, iw, op, db, seed)?;
    }

    /// Ceil-mode rounding: the trailing partial window (PyTorch
    /// `ceil_mode=True` semantics, including the start-in-padding clamp)
    /// must round-trip through lowering and backward bit-exactly.
    #[test]
    fn ceil_mode_pooling_bitmatches_reference(
        (kh, kw, sh, sw) in (2usize..=3, 2usize..=3, 2usize..=3, 2usize..=3),
        pad in 0usize..=1,
        (extra_h, extra_w) in (0usize..=9, 0usize..=9),
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let params = PoolParams::with_padding((kh, kw), (sh, sw), Padding::uniform(pad))
            .with_ceil_mode(true);
        let (ih, iw) = (kh + 3 + extra_h, kw + 3 + extra_w);
        prop_assume!(params.out_dims(ih, iw).is_ok());
        check_scenario("ceil", params, ih, iw, op, db, seed)?;
    }
}
