//! Batch-folding behaviour tests: when the Mode-0 fold engages, when it
//! falls back to the per-plane schedule, and how failures are typed.

use dv_akg::TilingError;
use dv_core::{ForwardImpl, LowerError, MergeImpl, PoolingEngine, RunError};
use dv_fp16::F16;
use dv_sim::{Capacities, Chip, CostModel};
use dv_tensor::{reference, Nc1hwc0, Padding, PoolParams};

fn test_input(n: usize, c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(7);
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        F16::from_f32(((state >> 20) % 8) as f32)
    })
}

/// A single-core engine whose UB is clamped to `ub` bytes.
fn engine_with_ub(ub: usize) -> PoolingEngine {
    let mut chip = Chip::new(1, CostModel::ascend910_like());
    chip.caps = Capacities {
        ub,
        ..Capacities::ASCEND910
    };
    PoolingEngine::new(chip)
}

#[test]
fn fold_engages_and_cuts_im2col_issues() {
    // Fig. 7-style shape where one fold chunk covers N*Kh*Kw = 36
    // positions per output fractal: 19 output fractals need 19 issues,
    // against N*Kh*Kw = 36 per-plane Mode-1 issues.
    let input = test_input(4, 1, 35, 35, 11);
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();

    let folded = engine_with_ub(Capacities::ASCEND910.ub);
    let per_plane = folded.clone().with_batching(false);
    let (out_b, run_b) = folded
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (out_p, run_p) = per_plane
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();

    assert_eq!(out_b.data(), want.data(), "fold diverged from reference");
    assert_eq!(out_b.data(), out_p.data(), "fold diverged from per-plane");
    let (ib, ip) = (
        run_b.total.issues_of("im2col"),
        run_p.total.issues_of("im2col"),
    );
    assert!(ib < ip, "fold must cut Im2Col issues ({ib} >= {ip})");
    // N=4, K3: 19 output fractals, chains of 36 fit one repeat each.
    assert_eq!(ib, 19);
    assert_eq!(ip, 36);
}

#[test]
fn unprofitable_fold_falls_back_to_per_plane() {
    // At the full 256 KiB UB a 71x71 K3S2 plane runs in few, long bands:
    // per-plane Mode-1 chunks at repeat 255 beat one-issue-per-fractal
    // Mode-0 chains, so the engine must keep the per-plane schedule.
    let input = test_input(4, 1, 71, 71, 13);
    let params = PoolParams::K3S2;
    let folded = engine_with_ub(Capacities::ASCEND910.ub);
    let per_plane = folded.clone().with_batching(false);
    let (out_b, run_b) = folded
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (out_p, run_p) = per_plane
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_eq!(out_b.data(), out_p.data());
    assert_eq!(
        run_b.total.issues_of("im2col"),
        run_p.total.issues_of("im2col"),
        "unprofitable fold must fall back to the per-plane schedule"
    );
}

#[test]
fn capacity_overflow_falls_back_not_errors() {
    // One Mode-0 chain is N*Kh*Kw fractals = 36 KiB for N=8, K3 — more
    // than the whole 16 KiB UB, so the fold cannot plan even one chunk.
    // The engine must fall back to the per-plane schedule, not error.
    let input = test_input(8, 1, 41, 41, 17);
    let params = PoolParams::K3S2;
    let want = reference::maxpool_forward(&input, &params).unwrap();

    let folded = engine_with_ub(16 * 1024);
    let per_plane = folded.clone().with_batching(false);
    let (out_b, run_b) = folded
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (_, run_p) = per_plane
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_eq!(out_b.data(), want.data());
    assert_eq!(
        run_b.total.issues_of("im2col"),
        run_p.total.issues_of("im2col"),
        "capacity fallback must reproduce the per-plane schedule"
    );
}

#[test]
fn padded_multiband_batched_reports_typed_error() {
    // Vertical padding + a UB too small for one band: no schedule exists
    // (mirroring the single-plane PaddedMultiBand rejection), and with
    // batching on the error must carry the batched type with the
    // per-plane cause inside.
    let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
    let input = test_input(4, 1, 61, 61, 19);
    let eng = engine_with_ub(32 * 1024);

    let err = eng
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap_err();
    match err {
        RunError::Lower(LowerError::Tiling(TilingError::Batched { n, cause })) => {
            assert_eq!(n, 4);
            assert!(
                matches!(*cause, TilingError::PaddedMultiBand { .. }),
                "cause must be the per-plane PaddedMultiBand, got {cause:?}"
            );
        }
        other => panic!("expected typed batched tiling error, got {other:?}"),
    }

    // The per-plane schedule rejects the same shape with the plain error
    // (the PR 3 single-plane behaviour the batched variant mirrors).
    let err = eng
        .clone()
        .with_batching(false)
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap_err();
    assert!(
        matches!(
            err,
            RunError::Lower(LowerError::Tiling(TilingError::PaddedMultiBand { .. }))
        ),
        "per-plane error must stay untyped-batched, got {err:?}"
    );
}

#[test]
fn strict_builder_types_capacity_failures() {
    use dv_core::build_forward_batched;
    use dv_core::maxpool::Reduction;
    use dv_core::PoolProblem;

    let prob = PoolProblem::new(8, 1, 41, 41, PoolParams::K3S2).unwrap();
    let caps = Capacities {
        ub: 16 * 1024,
        ..Capacities::ASCEND910
    };
    let err = build_forward_batched(
        &prob,
        Reduction::Max,
        0,
        4096,
        None,
        caps,
        dv_core::Schedule::default(),
    )
    .unwrap_err();
    match err {
        LowerError::Tiling(TilingError::Batched { n, cause }) => {
            assert_eq!(n, 8);
            assert!(
                matches!(*cause, TilingError::Capacity { .. }),
                "cause must be Capacity, got {cause:?}"
            );
        }
        other => panic!("expected batched capacity error, got {other:?}"),
    }
}

#[test]
fn backward_consolidation_saves_dispatch_and_stays_bit_exact() {
    let params = PoolParams::K3S2;
    let input = test_input(4, 2, 21, 21, 23);
    let x_ref = reference::maxpool_argmax_mask(&input, &params).unwrap();
    let (oh, ow) = params.out_dims(21, 21).unwrap();
    let dy = test_input(4, 2, oh, ow, 29);
    let want = reference::maxpool_backward(&x_ref, &dy, &params, 21, 21).unwrap();

    let folded = engine_with_ub(Capacities::ASCEND910.ub);
    let per_plane = folded.clone().with_batching(false);
    let (dx_b, run_b) = folded
        .maxpool_backward(&x_ref, &dy, params, 21, 21, MergeImpl::Col2Im)
        .unwrap();
    let (dx_p, run_p) = per_plane
        .maxpool_backward(&x_ref, &dy, params, 21, 21, MergeImpl::Col2Im)
        .unwrap();
    assert_eq!(dx_b.data(), want.data());
    assert_eq!(dx_b.data(), dx_p.data());
    // Same instruction streams, fewer program dispatches (C1 programs
    // instead of N*C1) — strictly cheaper on one core.
    assert!(
        run_b.cycles < run_p.cycles,
        "consolidation must save dispatch overhead ({} >= {})",
        run_b.cycles,
        run_p.cycles
    );
}

#[test]
fn fold_declines_when_it_would_hurt_occupancy() {
    // 4 planes over 4 cores run fully parallel per-plane; folding to one
    // program per c1 (here: 1) would serialise them. The guard must keep
    // the per-plane schedule on multi-core chips with C1 < cores.
    let input = test_input(4, 1, 35, 35, 31);
    let params = PoolParams::K3S2;
    let multi = PoolingEngine::new(Chip::new(4, CostModel::ascend910_like()));
    let per_plane = multi.clone().with_batching(false);
    let (out_b, run_b) = multi
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    let (out_p, run_p) = per_plane
        .maxpool_forward(&input, params, ForwardImpl::Im2col)
        .unwrap();
    assert_eq!(out_b.data(), out_p.data());
    assert_eq!(
        run_b.total.issues_of("im2col"),
        run_p.total.issues_of("im2col"),
        "fold must not engage when C1 < cores"
    );
    assert_eq!(run_b.cycles, run_p.cycles);
}
