//! Property-based end-to-end correctness: random pooling geometries
//! through every lowering must match the golden references bit-exactly.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Capacities, Chip, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, PoolParams};
use proptest::prelude::*;

fn engine() -> PoolingEngine {
    PoolingEngine::new(Chip::new(2, CostModel::ascend910_like()))
}

/// Engine with shrunken scratchpads so even small geometries tile.
fn tiny_engine() -> PoolingEngine {
    let mut chip = Chip::new(2, CostModel::ascend910_like());
    chip.caps = Capacities {
        l1: 24 * 1024,
        l0a: 4 * 1024,
        l0b: 4 * 1024,
        l0c: 8 * 1024,
        ub: 32 * 1024,
    };
    PoolingEngine::new(chip)
}

fn geometry() -> impl Strategy<Value = (PoolParams, usize, usize)> {
    (1usize..=3, 1usize..=3, 1usize..=3, 1usize..=3).prop_flat_map(|(kh, kw, sh, sw)| {
        (
            Just(PoolParams::new((kh, kw), (sh, sw))),
            kh..kh + 14,
            kw..kw + 14,
        )
    })
}

fn input(c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(1, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four forward lowerings equal the reference on random
    /// geometries.
    #[test]
    fn forward_all_impls((params, ih, iw) in geometry(), c1 in 1usize..=2, seed in any::<u64>()) {
        let x = input(c1, ih, iw, seed);
        let want = reference::maxpool_forward(&x, &params).unwrap();
        let eng = engine();
        for impl_ in ForwardImpl::ALL {
            let (got, _) = eng.maxpool_forward(&x, params, impl_).unwrap();
            prop_assert_eq!(got.data(), want.data(), "{:?} {:?} {}x{}", impl_, params, ih, iw);
        }
    }

    /// Forward under forced tiling equals the reference.
    #[test]
    fn forward_tiled((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = input(1, ih + 10, iw + 10, seed);
        let want = reference::maxpool_forward(&x, &params).unwrap();
        let eng = tiny_engine();
        for impl_ in ForwardImpl::ALL {
            let (got, _) = eng.maxpool_forward(&x, params, impl_).unwrap();
            prop_assert_eq!(got.data(), want.data(), "{:?} tiled", impl_);
        }
    }

    /// Argmax masks from both lowerings equal the reference on random
    /// geometries, including tie-heavy inputs.
    #[test]
    fn argmax_both_impls((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let mut x = input(1, ih, iw, seed);
        // quantize to force ties
        for v in x.data_mut() {
            *v = F16::from_f32((v.to_f32() / 4.0).round());
        }
        let (want_out, want_mask) = reference::maxpool_forward_with_argmax(&x, &params).unwrap();
        let eng = engine();
        for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
            let (out, mask, _) = eng.maxpool_forward_with_argmax(&x, params, impl_).unwrap();
            prop_assert_eq!(out.data(), want_out.data(), "{:?} out", impl_);
            prop_assert_eq!(mask.data(), want_mask.data(), "{:?} mask", impl_);
        }
    }

    /// Both backward merges equal the reference on random geometries
    /// (integer gradients make all summation orders exact).
    #[test]
    fn backward_both_merges((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = input(1, ih, iw, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0xF00D;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            F16::from_f32(((s >> 41) % 8) as f32)
        });
        let want = reference::maxpool_backward(&mask, &grads, &params, ih, iw).unwrap();
        let eng = engine();
        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let (got, _) = eng.maxpool_backward(&mask, &grads, params, ih, iw, merge).unwrap();
            prop_assert_eq!(got.data(), want.data(), "{:?}", merge);
        }
    }

    /// Backward under forced tiling (halo carry) equals the reference.
    #[test]
    fn backward_tiled((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let (ih, iw) = (ih + 12, iw + 6);
        let x = input(1, ih, iw, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0xBEEF;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(13);
            F16::from_f32(((s >> 42) % 8) as f32)
        });
        let want = reference::maxpool_backward(&mask, &grads, &params, ih, iw).unwrap();
        let eng = tiny_engine();
        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let (got, _) = eng.maxpool_backward(&mask, &grads, params, ih, iw, merge).unwrap();
            prop_assert_eq!(got.data(), want.data(), "{:?} tiled", merge);
        }
    }

    /// AvgPool forward/backward equals the reference on random
    /// geometries.
    #[test]
    fn avgpool_matches((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = input(1, ih, iw, seed);
        let want = reference::avgpool_forward(&x, &params).unwrap();
        let eng = engine();
        for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
            let (got, _) = eng.avgpool_forward(&x, params, impl_).unwrap();
            prop_assert_eq!(got.data(), want.data(), "avg fwd {:?}", impl_);
        }
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0xCAFE;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
            F16::from_f32(((s >> 43) % 8) as f32)
        });
        let want_dx = reference::avgpool_backward(&grads, &params, ih, iw).unwrap();
        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let (got, _) = eng.avgpool_backward(&grads, params, ih, iw, merge).unwrap();
            prop_assert_eq!(got.data(), want_dx.data(), "avg bwd {:?}", merge);
        }
    }

    /// The im2col lowering handles arbitrary (valid) padding bit-exactly,
    /// forward and backward (single-band regime).
    #[test]
    fn padded_im2col_forward_and_backward(
        kh in 2usize..=3, kw in 2usize..=3,
        sh in 1usize..=2, sw in 1usize..=2,
        pt in 0usize..=1, pb in 0usize..=1, plft in 0usize..=1, prt in 0usize..=1,
        seed in any::<u64>(),
    ) {
        let padding = dv_tensor::Padding { top: pt, bottom: pb, left: plft, right: prt };
        let params = PoolParams::with_padding((kh, kw), (sh, sw), padding);
        let (ih, iw) = (11, 12);
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(1, ih, iw, seed);
        let want = reference::maxpool_forward(&x, &params).unwrap();
        let eng = engine();
        let (got, _) = eng.maxpool_forward(&x, params, ForwardImpl::Im2col).unwrap();
        prop_assert_eq!(got.data(), want.data(), "padded forward {:?}", params);

        // backward through the reference mask
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0x1234;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(5);
            F16::from_f32(((s >> 44) % 8) as f32)
        });
        let want_dx = reference::maxpool_backward(&mask, &grads, &params, ih, iw).unwrap();
        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let (dx, _) = eng.maxpool_backward(&mask, &grads, params, ih, iw, merge).unwrap();
            prop_assert_eq!(dx.data(), want_dx.data(), "padded backward {:?}", merge);
        }
    }

    /// The cycle hierarchy of Fig. 8 holds for any K=(3,3) geometry with
    /// stride >= 2 big enough to leave the issue-bound regime.
    #[test]
    fn im2col_wins_at_large_strided_sizes(stride in 2usize..=3, hw in 36usize..=56) {
        let params = PoolParams::new((3, 3), (stride, stride));
        let x = input(1, hw, hw, hw as u64);
        let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
        let (_, std) = eng.maxpool_forward(&x, params, ForwardImpl::Standard).unwrap();
        let (_, im) = eng.maxpool_forward(&x, params, ForwardImpl::Im2col).unwrap();
        prop_assert!(im.cycles < std.cycles,
            "stride {} hw {}: im2col {} !< standard {}", stride, hw, im.cycles, std.cycles);
    }
}
