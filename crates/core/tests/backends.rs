//! Differential property wall for the host execution backends: every
//! backend must be bit-identical to the `Scalar` reference interpreter on
//! random workloads — same GM bytes, same hardware counters, same trace
//! makespans, same scratchpad peaks. Backends are a host-speed knob only;
//! any simulated divergence is a bug.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_sim::{Backend, Chip, CostModel, HwCounters, IssueModel, TraceConfig};
use dv_tensor::{Nc1hwc0, PoolParams};
use proptest::prelude::*;

fn engine(issue: IssueModel, backend: Backend) -> PoolingEngine {
    let mut cost = CostModel::ascend910_like().with_backend(backend);
    cost.issue_model = issue;
    PoolingEngine::new(Chip::new(2, cost)).with_trace(TraceConfig::ON)
}

fn geometry() -> impl Strategy<Value = (PoolParams, usize, usize)> {
    (1usize..=3, 1usize..=3, 1usize..=3, 1usize..=3).prop_flat_map(|(kh, kw, sh, sw)| {
        (
            Just(PoolParams::new((kh, kw), (sh, sw))),
            kh..kh + 12,
            kw..kw + 12,
        )
    })
}

fn input(c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(1, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

/// The simulated observables of one run, every one of which must be
/// backend-invariant.
#[derive(Debug, PartialEq)]
struct Observables {
    out: Vec<F16>,
    per_core: Vec<HwCounters>,
    total: HwCounters,
    cycles: u64,
    makespans: Vec<u64>,
    peaks: dv_sim::BufferPeaks,
}

fn observe(out: &Nc1hwc0, run: &dv_core::PoolRun) -> Observables {
    Observables {
        out: out.data().to_vec(),
        per_core: run.per_core.clone(),
        total: run.total.clone(),
        cycles: run.cycles,
        makespans: run
            .traces
            .iter()
            .map(|t| {
                t.events
                    .iter()
                    .map(|e| e.start + e.cycles)
                    .max()
                    .unwrap_or(0)
            })
            .collect(),
        peaks: run.peaks,
    }
}

const ISSUE_MODELS: [IssueModel; 2] = [IssueModel::SingleIssue, IssueModel::DualPipe];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Max pooling, forward: all backends agree with `Scalar` under both
    /// issue models, for both forward lowerings.
    #[test]
    fn backend_is_bit_identical_max_forward(
        (params, ih, iw) in geometry(), c1 in 1usize..=2, seed in any::<u64>()
    ) {
        let x = input(c1, ih, iw, seed);
        for issue in ISSUE_MODELS {
            for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
                let (out, run) = engine(issue, Backend::Scalar)
                    .maxpool_forward(&x, params, impl_)
                    .unwrap();
                let want = observe(&out, &run);
                for backend in [Backend::Sliced, Backend::Threaded] {
                    let (out, run) = engine(issue, backend)
                        .maxpool_forward(&x, params, impl_)
                        .unwrap();
                    prop_assert_eq!(
                        &observe(&out, &run), &want,
                        "{:?}/{:?}/{:?} diverged from Scalar", backend, issue, impl_
                    );
                }
            }
        }
    }

    /// Max pooling, backward: both merge strategies, both issue models.
    #[test]
    fn backend_is_bit_identical_max_backward(
        (params, ih, iw) in geometry(), seed in any::<u64>()
    ) {
        let x = input(1, ih, iw, seed);
        let mask = dv_tensor::reference::maxpool_argmax_mask(&x, &params).unwrap();
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0xF00D;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            F16::from_f32(((s >> 41) % 8) as f32)
        });
        for issue in ISSUE_MODELS {
            for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
                let (dx, run) = engine(issue, Backend::Scalar)
                    .maxpool_backward(&mask, &grads, params, ih, iw, merge)
                    .unwrap();
                let want = observe(&dx, &run);
                for backend in [Backend::Sliced, Backend::Threaded] {
                    let (dx, run) = engine(issue, backend)
                        .maxpool_backward(&mask, &grads, params, ih, iw, merge)
                        .unwrap();
                    prop_assert_eq!(
                        &observe(&dx, &run), &want,
                        "{:?}/{:?}/{:?} diverged from Scalar", backend, issue, merge
                    );
                }
            }
        }
    }

    /// Average pooling, forward and backward (exercises the cube matmul
    /// and L0C drain paths too).
    #[test]
    fn backend_is_bit_identical_avg(
        (params, ih, iw) in geometry(), seed in any::<u64>()
    ) {
        let x = input(1, ih, iw, seed);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let mut s = seed ^ 0xCAFE;
        let grads = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
            F16::from_f32(((s >> 43) % 8) as f32)
        });
        for issue in ISSUE_MODELS {
            let (out, run) = engine(issue, Backend::Scalar)
                .avgpool_forward(&x, params, ForwardImpl::Im2col)
                .unwrap();
            let want_fwd = observe(&out, &run);
            let (dx, run) = engine(issue, Backend::Scalar)
                .avgpool_backward(&grads, params, ih, iw, MergeImpl::Col2Im)
                .unwrap();
            let want_bwd = observe(&dx, &run);
            for backend in [Backend::Sliced, Backend::Threaded] {
                let (out, run) = engine(issue, backend)
                    .avgpool_forward(&x, params, ForwardImpl::Im2col)
                    .unwrap();
                prop_assert_eq!(
                    &observe(&out, &run), &want_fwd,
                    "avg fwd {:?}/{:?} diverged from Scalar", backend, issue
                );
                let (dx, run) = engine(issue, backend)
                    .avgpool_backward(&grads, params, ih, iw, MergeImpl::Col2Im)
                    .unwrap();
                prop_assert_eq!(
                    &observe(&dx, &run), &want_bwd,
                    "avg bwd {:?}/{:?} diverged from Scalar", backend, issue
                );
            }
        }
    }
}
