//! Differential property tests across the issue models.
//!
//! The dual-pipe scheduler — with or without buffer-slot renaming —
//! reorders *timing*, never *execution*: results must be bit-identical
//! to the legacy single-issue machine and to the golden references
//! (`dv_tensor::reference` for single operators, `dv_nn::reference_forward`
//! for whole models), on random geometries covering kernel/stride/padding,
//! max/avg, and forward/backward. Alongside the bit-match, every case
//! checks the timing contract on the *same* program (rotation planning is
//! pinned so every engine lowers identically): renaming never exceeds the
//! rename-less dual-pipe makespan, which never exceeds the serial sum;
//! the serial machine never books a stall; and per-instruction busy-cycle
//! charges are issue-model-independent.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_nn::{reference_forward, Layer, Sequential};
use dv_sim::{Capacities, Chip, ChipRun, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nc1hwc0, Nchw, Padding, PoolParams};
use proptest::prelude::*;
use proptest::sample::select;

/// Which pooling operator a case exercises.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Max,
    Avg,
}

/// The issue models under test, strongest first: dual-pipe with renaming,
/// dual-pipe without, legacy single-issue. Rotation planning is pinned on
/// for all three so they lower the *same* program — the rename-less
/// machines then run versioned plans with the overlap un-recovered, which
/// is exactly the control the timing contract compares against.
fn engines() -> [(&'static str, PoolingEngine); 3] {
    [
        (
            "dual_pipe",
            PoolingEngine::new(Chip::new(2, CostModel::ascend910_like()))
                .with_rotation_planning(true),
        ),
        (
            "dual_pipe_norename",
            PoolingEngine::new(Chip::new(2, CostModel::dual_pipe_no_rename()))
                .with_rotation_planning(true),
        ),
        (
            "single_issue",
            PoolingEngine::new(Chip::new(2, CostModel::single_issue()))
                .with_rotation_planning(true),
        ),
    ]
}

/// Timing contract shared by every differential case: `runs[0]` is the
/// renaming dual-pipe run, `runs[1]` the rename-less dual-pipe run and
/// `runs[2]` the single-issue run of the same program.
fn check_timing(what: &str, runs: &[ChipRun; 3]) -> Result<(), TestCaseError> {
    let (renamed, norename, single) = (&runs[0], &runs[1], &runs[2]);
    prop_assert!(
        renamed.cycles <= norename.cycles,
        "{}: renaming made the makespan worse ({} > {})",
        what,
        renamed.cycles,
        norename.cycles
    );
    prop_assert!(
        norename.cycles <= single.cycles,
        "{}: dual-pipe makespan {} exceeds serial {}",
        what,
        norename.cycles,
        single.cycles
    );
    prop_assert_eq!(
        norename.total.renames,
        0,
        "{}: the rename-less scheduler must never rotate",
        what
    );
    prop_assert_eq!(
        single.total.stall_cycles,
        0,
        "{}: the serial machine never stalls",
        what
    );
    for (model, run) in [("dual_pipe_norename", norename), ("single_issue", single)] {
        prop_assert_eq!(
            runs[0].total.busy_cycles(),
            run.total.busy_cycles(),
            "{}: per-instruction charges diverge between dual_pipe and {}",
            what,
            model
        );
    }
    Ok(())
}

/// Random kernel/stride/padding geometry plus an input size that keeps
/// `out_dims` valid (padding stays below the kernel extent).
fn geometry() -> impl Strategy<Value = (PoolParams, usize, usize)> {
    (
        2usize..=3,
        2usize..=3,
        1usize..=3,
        1usize..=3,
        0usize..=1,
        0usize..=1,
        0usize..=1,
        0usize..=1,
    )
        .prop_flat_map(|(kh, kw, sh, sw, top, bottom, left, right)| {
            let padding = Padding {
                top,
                bottom,
                left,
                right,
            };
            (
                Just(PoolParams::with_padding((kh, kw), (sh, sw), padding)),
                kh + 4..kh + 14,
                kw + 4..kw + 14,
            )
        })
}

fn batch_input(n: usize, c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed | 1;
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
        F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
    })
}

fn input(c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    batch_input(1, c1, h, w, seed)
}

/// Integer-valued gradients so every summation order is exact in fp16.
fn batch_grads(n: usize, c1: usize, oh: usize, ow: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed ^ 0xD1FF;
    Nc1hwc0::from_fn(n, c1, oh, ow, |_, _, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
        F16::from_f32(((s >> 41) % 8) as f32)
    })
}

fn grads(oh: usize, ow: usize, seed: u64) -> Nc1hwc0 {
    batch_grads(1, 1, oh, ow, seed)
}

/// Single-core engine pairs (batch folding engages on one core), both
/// issue models, with the UB optionally shrunk to force the fold into
/// its capacity-fallback path.
fn batch_engines(db: bool, tiny_ub: bool) -> Vec<(&'static str, PoolingEngine)> {
    [
        ("dual_pipe", CostModel::ascend910_like()),
        ("dual_pipe_norename", CostModel::dual_pipe_no_rename()),
        ("single_issue", CostModel::single_issue()),
    ]
    .into_iter()
    .map(|(name, cost)| {
        let mut chip = Chip::new(1, cost);
        if tiny_ub {
            chip.caps = Capacities {
                ub: 16384,
                ..Capacities::ASCEND910
            };
        }
        (
            name,
            PoolingEngine::new(chip)
                .with_double_buffering(db)
                .with_rotation_planning(true),
        )
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward im2col lowering: both issue models bit-match the tensor
    /// reference (and therefore each other) for max and avg pooling on
    /// random padded geometries.
    #[test]
    fn forward_bitmatches_reference_in_both_issue_models(
        (params, ih, iw) in geometry(),
        c1 in 1usize..=2,
        op in select(vec![Op::Max, Op::Avg]),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(c1, ih, iw, seed);
        let want = match op {
            Op::Max => reference::maxpool_forward(&x, &params).unwrap(),
            Op::Avg => reference::avgpool_forward(&x, &params).unwrap(),
        };
        let mut runs = Vec::new();
        for (model, eng) in engines() {
            let (got, run) = match op {
                Op::Max => eng.maxpool_forward(&x, params, ForwardImpl::Im2col),
                Op::Avg => eng.avgpool_forward(&x, params, ForwardImpl::Im2col),
            }
            .unwrap();
            prop_assert_eq!(
                got.data(),
                want.data(),
                "{} {:?} fwd {:?} {}x{}",
                model,
                op,
                params,
                ih,
                iw
            );
            runs.push(run);
        }
        check_timing("forward", &[runs.remove(0), runs.remove(0), runs.remove(0)])?;
    }

    /// Backward col2im merge: both issue models bit-match the tensor
    /// reference for max (through the argmax mask) and avg pooling.
    #[test]
    fn backward_bitmatches_reference_in_both_issue_models(
        (params, ih, iw) in geometry(),
        op in select(vec![Op::Max, Op::Avg]),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = input(1, ih, iw, seed);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let dy = grads(oh, ow, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let want = match op {
            Op::Max => reference::maxpool_backward(&mask, &dy, &params, ih, iw).unwrap(),
            Op::Avg => reference::avgpool_backward(&dy, &params, ih, iw).unwrap(),
        };
        let mut runs = Vec::new();
        for (model, eng) in engines() {
            let (got, run) = match op {
                Op::Max => eng.maxpool_backward(&mask, &dy, params, ih, iw, MergeImpl::Col2Im),
                Op::Avg => eng.avgpool_backward(&dy, params, ih, iw, MergeImpl::Col2Im),
            }
            .unwrap();
            prop_assert_eq!(
                got.data(),
                want.data(),
                "{} {:?} bwd {:?} {}x{}",
                model,
                op,
                params,
                ih,
                iw
            );
            runs.push(run);
        }
        check_timing("backward", &[runs.remove(0), runs.remove(0), runs.remove(0)])?;
    }

    /// Every forward lowering (not just im2col) is issue-model-invariant:
    /// dual-pipe and single-issue runs of the same lowering produce
    /// bit-identical outputs. Unpadded geometry, because the Standard
    /// lowering rejects padding.
    #[test]
    fn all_lowerings_are_issue_model_invariant(
        (params, ih, iw) in geometry(),
        seed in any::<u64>(),
    ) {
        let params = PoolParams::new((params.kh, params.kw), (params.sh, params.sw));
        let x = input(1, ih, iw, seed);
        let [(_, renamed), (_, norename), (_, single)] = engines();
        for impl_ in ForwardImpl::ALL {
            let (out_r, run_r) = renamed.maxpool_forward(&x, params, impl_).unwrap();
            let (out_n, run_n) = norename.maxpool_forward(&x, params, impl_).unwrap();
            let (out_s, run_s) = single.maxpool_forward(&x, params, impl_).unwrap();
            prop_assert_eq!(
                out_r.data(),
                out_n.data(),
                "{:?}: renaming changed results",
                impl_
            );
            prop_assert_eq!(
                out_r.data(),
                out_s.data(),
                "{:?}: issue model changed results",
                impl_
            );
            check_timing("lowering", &[run_r, run_n, run_s])?;
        }
    }

    /// Band splitting is purely a scheduling decision: with the UB shrunk
    /// so the lowerings must split into row bands (including `sh < kh`
    /// halo overlap between bands), every lowering and merge stays
    /// bit-identical to the golden reference — with double-buffering on
    /// and off, under both issue models — and the timing contract between
    /// the issue models still holds on the banded programs.
    #[test]
    fn band_splitting_and_double_buffering_are_bit_exact(
        (params, ih, iw) in geometry(),
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Unpadded (vertical padding forbids multi-band splitting by
        // design) and biased taller so the shrunken UB forces 2+ bands.
        let params = PoolParams::new((params.kh, params.kw), (params.sh, params.sw));
        let ih = ih + 8;
        let x = input(1, ih, iw, seed);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let dy = grads(oh, ow, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();

        let engines: Vec<(&str, PoolingEngine)> = [
            ("dual_pipe", CostModel::ascend910_like()),
            ("dual_pipe_norename", CostModel::dual_pipe_no_rename()),
            ("single_issue", CostModel::single_issue()),
        ]
        .into_iter()
        .map(|(name, cost)| {
            let mut chip = Chip::new(1, cost);
            chip.caps = Capacities { ub: 16384, ..Capacities::ASCEND910 };
            (
                name,
                PoolingEngine::new(chip)
                    .with_double_buffering(db)
                    .with_rotation_planning(true),
            )
        })
        .collect();

        let fwd_impls: &[ForwardImpl] = match op {
            Op::Max => &ForwardImpl::ALL,
            // The X-Y split re-associates the f16 sum; AvgPool rejects it.
            Op::Avg => &[ForwardImpl::Standard, ForwardImpl::Im2col, ForwardImpl::Expansion],
        };
        for impl_ in fwd_impls {
            let want = match op {
                Op::Max => reference::maxpool_forward(&x, &params).unwrap(),
                Op::Avg => reference::avgpool_forward(&x, &params).unwrap(),
            };
            let mut runs = Vec::new();
            for (model, eng) in &engines {
                let (got, run) = match op {
                    Op::Max => eng.maxpool_forward(&x, params, *impl_),
                    Op::Avg => eng.avgpool_forward(&x, params, *impl_),
                }
                .unwrap();
                prop_assert_eq!(
                    got.data(),
                    want.data(),
                    "{} {:?} banded fwd {:?} (db={}) {:?} {}x{}",
                    model, op, impl_, db, params, ih, iw
                );
                runs.push(run);
            }
            check_timing("banded forward", &[runs.remove(0), runs.remove(0), runs.remove(0)])?;
        }

        for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
            let want = match op {
                Op::Max => reference::maxpool_backward(&mask, &dy, &params, ih, iw).unwrap(),
                Op::Avg => reference::avgpool_backward(&dy, &params, ih, iw).unwrap(),
            };
            let mut runs = Vec::new();
            for (model, eng) in &engines {
                let (got, run) = match op {
                    Op::Max => eng.maxpool_backward(&mask, &dy, params, ih, iw, merge),
                    Op::Avg => eng.avgpool_backward(&dy, params, ih, iw, merge),
                }
                .unwrap();
                prop_assert_eq!(
                    got.data(),
                    want.data(),
                    "{} {:?} banded bwd {:?} (db={}) {:?} {}x{}",
                    model, op, merge, db, params, ih, iw
                );
                runs.push(run);
            }
            check_timing("banded backward", &[runs.remove(0), runs.remove(0), runs.remove(0)])?;
        }
    }

    /// Batch folding is purely a scheduling decision: for `N > 1` the
    /// Mode-0 Im2Col fold (engine default) must produce bit-identical
    /// outputs to the per-plane schedule (`with_batching(false)`) and to
    /// the golden reference — across random padded geometries, max and
    /// avg, both issue models, double-buffering on/off, and with the UB
    /// shrunk so the fold exercises its capacity-fallback path. When the
    /// fold engages it must never issue *more* `Im2Col`s than per-plane.
    #[test]
    fn batched_forward_is_bit_identical_to_per_plane(
        (params, ih, iw) in geometry(),
        n in 2usize..=4,
        c1 in 1usize..=2,
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        tiny_ub in any::<bool>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = batch_input(n, c1, ih, iw, seed);
        let want = match op {
            Op::Max => reference::maxpool_forward(&x, &params).unwrap(),
            Op::Avg => reference::avgpool_forward(&x, &params).unwrap(),
        };
        for (model, folded) in batch_engines(db, tiny_ub) {
            let per_plane = folded.clone().with_batching(false);
            let run = |eng: &PoolingEngine| match op {
                Op::Max => eng.maxpool_forward(&x, params, ForwardImpl::Im2col),
                Op::Avg => eng.avgpool_forward(&x, params, ForwardImpl::Im2col),
            };
            match (run(&folded), run(&per_plane)) {
                (Ok((got_b, run_b)), Ok((got_p, run_p))) => {
                    prop_assert_eq!(
                        got_b.data(), got_p.data(),
                        "{} {:?} fold diverged from per-plane (db={} tiny={}) {:?} N={} {}x{}",
                        model, op, db, tiny_ub, params, n, ih, iw
                    );
                    prop_assert_eq!(
                        got_b.data(), want.data(),
                        "{} {:?} fold diverged from reference", model, op
                    );
                    prop_assert!(
                        run_b.total.issues_of("im2col") <= run_p.total.issues_of("im2col"),
                        "{} {:?}: fold issued more im2cols ({} > {})",
                        model, op,
                        run_b.total.issues_of("im2col"), run_p.total.issues_of("im2col")
                    );
                }
                // The fold can rescue shapes the per-plane plan rejects
                // (N accumulators can be smaller than Kh*Kw+1 planes);
                // the reverse must never happen.
                (Ok((got_b, _)), Err(_)) => {
                    prop_assert_eq!(got_b.data(), want.data());
                }
                (Err(_), Err(_)) => {} // e.g. padded multi-band on the tiny UB
                (Err(e), Ok(_)) => prop_assert!(
                    false,
                    "{}: fold errored where per-plane succeeds: {} (db={} tiny={})",
                    model, e, db, tiny_ub
                ),
            }
        }
    }

    /// The argmax-mask fold and both backward consolidations are
    /// bit-identical to the per-plane schedule and the reference for
    /// `N > 1`, in both issue models, double-buffering on/off.
    #[test]
    fn batched_argmax_and_backward_match_per_plane(
        (params, ih, iw) in geometry(),
        n in 2usize..=4,
        op in select(vec![Op::Max, Op::Avg]),
        db in any::<bool>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = batch_input(n, 1, ih, iw, seed);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let dy = batch_grads(n, 1, oh, ow, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        for (model, folded) in batch_engines(db, false) {
            let per_plane = folded.clone().with_batching(false);

            if op == Op::Max {
                let (out_b, mask_b, _) = folded
                    .maxpool_forward_with_argmax(&x, params, ForwardImpl::Im2col)
                    .unwrap();
                let (out_p, mask_p, _) = per_plane
                    .maxpool_forward_with_argmax(&x, params, ForwardImpl::Im2col)
                    .unwrap();
                prop_assert_eq!(
                    out_b.data(), out_p.data(),
                    "{} argmax fold output diverged (db={}) {:?} N={}", model, db, params, n
                );
                prop_assert_eq!(
                    mask_b.data(), mask_p.data(),
                    "{} argmax fold mask diverged (db={}) {:?} N={}", model, db, params, n
                );
                prop_assert_eq!(mask_b.data(), mask.data(), "{} mask vs reference", model);
            }

            let want = match op {
                Op::Max => reference::maxpool_backward(&mask, &dy, &params, ih, iw).unwrap(),
                Op::Avg => reference::avgpool_backward(&dy, &params, ih, iw).unwrap(),
            };
            for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
                let run = |eng: &PoolingEngine| match op {
                    Op::Max => eng.maxpool_backward(&mask, &dy, params, ih, iw, merge),
                    Op::Avg => eng.avgpool_backward(&dy, params, ih, iw, merge),
                };
                let (dx_b, _) = run(&folded).unwrap();
                let (dx_p, _) = run(&per_plane).unwrap();
                prop_assert_eq!(
                    dx_b.data(), dx_p.data(),
                    "{} {:?} bwd consolidation diverged {:?} (db={}) N={}",
                    model, op, merge, db, n
                );
                prop_assert_eq!(dx_b.data(), want.data(), "{} {:?} bwd vs reference", model, op);
            }
        }
    }

    /// Whole-model oracle: a small max+avg network simulated under either
    /// issue model bit-matches `dv_nn::reference_forward`.
    #[test]
    fn model_forward_bitmatches_nn_reference_in_both_issue_models(
        (params, ih, iw) in geometry(),
        c in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let (ih, iw) = (ih + 4, iw + 4);
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        prop_assume!(PoolParams::K2S2.out_dims(oh, ow).is_ok());
        let mut s = seed | 1;
        let x = Nchw::from_fn(1, c, ih, iw, |_, _, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(23);
            F16::from_f32(((s >> 40) % 33) as f32 - 16.0)
        });
        let mut outs = Vec::new();
        for (model_name, eng) in engines() {
            let model = Sequential::new(eng)
                .layer(Layer::maxpool2d(params, ForwardImpl::Im2col))
                .layer(Layer::avgpool2d(PoolParams::K2S2, ForwardImpl::Im2col));
            let (got, run) = model.forward(&x).unwrap();
            let want = reference_forward(&model, &x).unwrap();
            prop_assert_eq!(
                &got,
                &want,
                "{}: simulated model diverged from the nn reference",
                model_name
            );
            prop_assert!(run.total_cycles() > 0);
            outs.push(got);
        }
        for other in &outs[1..] {
            prop_assert_eq!(&outs[0], other, "issue models disagree on the model output");
        }
    }
}
