#![deny(missing_docs)]
//! Tensor layouts and golden reference operators for the DaVinci pooling
//! reproduction.
//!
//! The paper (Section II-A, III-B) works with three memory layouts:
//!
//! * **NCHW** — the framework-level layout: batch, channels, height, width.
//! * **NC1HWC0** — DaVinci's *fractal* layout: the channel dimension is
//!   split as `C = C1 * C0` with constant `C0 = 16` for `Float16` (a
//!   data-fractal is 4096 bits = 16 x 16 f16). Channels are zero-padded up
//!   to a multiple of `C0`.
//! * **NC1KhKwOhOwC0** — the layout produced by the `Im2Col` instruction in
//!   repeat mode 1 with loop order `[c1, (xk, yk), (x, y)]`: each
//!   `(kh, kw)` plane holds, contiguously, the element every patch selects
//!   at that kernel offset. Pooling reductions over this layout run over the
//!   *outer* `(Kh, Kw)` axes so vector instructions are fully saturated.
//!
//! The [`mod@reference`] module holds scalar golden implementations of im2col,
//! col2im, max/avg pooling forward and backward, argmax masks and direct
//! convolution. Every simulated kernel in the workspace is tested for
//! bit-identical `f16` output against these.

pub mod im2col;
pub mod layout;
pub mod pool;
pub mod reference;
pub mod shape;

pub use im2col::{col2im_fractal, coverage_multiplicity, im2col_fractal, PatchTensor};
pub use layout::{Nc1hwc0, Nchw, C0, FRACTAL_BYTES, FRACTAL_ROWS};
pub use pool::{PoolKind, PoolParams};
pub use shape::{Padding, ShapeError};

pub use dv_fp16::F16;
