//! The im2col patch layout `(N, C1, Kh, Kw, Oh, Ow, C0)` and the golden
//! scalar im2col / col2im transformations over the fractal layout.
//!
//! This is the output shape of the `Im2Col` instruction in repeat mode 1
//! with loop order `[c1, (xk, yk), (x, y)]` (paper, end of Section III-C):
//! a matrix of shape `(C1*Kh*Kw*16, (Oh*Ow)/16 * C0)` viewed as the tensor
//! `(C1, Kh, Kw, Oh, Ow, C0)`. Each `(kh, kw)` plane stores, densely in
//! patch order, the element every patch selects at that kernel offset —
//! so a reduction over patches becomes a dense loop and the 128-lane
//! vector mask can be fully saturated (Section V-A).

use crate::layout::{Nc1hwc0, C0};
use crate::pool::PoolParams;
use crate::shape::ShapeError;
use dv_fp16::F16;

/// A dense tensor in the `(N, C1, Kh, Kw, Oh, Ow, C0)` im2col layout.
#[derive(Clone, Debug, PartialEq)]
pub struct PatchTensor {
    /// Batch size `N`.
    pub n: usize,
    /// Outer channel count `C1`.
    pub c1: usize,
    /// Kernel height `Kh`.
    pub kh: usize,
    /// Kernel width `Kw`.
    pub kw: usize,
    /// Patch rows `Oh`.
    pub oh: usize,
    /// Patch columns `Ow`.
    pub ow: usize,
    data: Vec<F16>,
}

impl PatchTensor {
    /// All-zero tensor.
    pub fn zeros(n: usize, c1: usize, kh: usize, kw: usize, oh: usize, ow: usize) -> PatchTensor {
        PatchTensor {
            n,
            c1,
            kh,
            kw,
            oh,
            ow,
            data: vec![F16::ZERO; n * c1 * kh * kw * oh * ow * C0],
        }
    }

    /// Build from existing data.
    pub fn from_vec(
        n: usize,
        c1: usize,
        kh: usize,
        kw: usize,
        oh: usize,
        ow: usize,
        data: Vec<F16>,
    ) -> Result<PatchTensor, ShapeError> {
        let expected = n * c1 * kh * kw * oh * ow * C0;
        if data.len() != expected {
            return Err(ShapeError::DataLength {
                expected,
                got: data.len(),
            });
        }
        Ok(PatchTensor {
            n,
            c1,
            kh,
            kw,
            oh,
            ow,
            data,
        })
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes in a scratchpad buffer.
    pub fn byte_len(&self) -> usize {
        self.data.len() * F16::SIZE_BYTES
    }

    /// Linear index of `(n, c1, kh, kw, oh, ow, c0)`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn index(
        &self,
        n: usize,
        c1: usize,
        kh: usize,
        kw: usize,
        oh: usize,
        ow: usize,
        c0: usize,
    ) -> usize {
        debug_assert!(
            n < self.n
                && c1 < self.c1
                && kh < self.kh
                && kw < self.kw
                && oh < self.oh
                && ow < self.ow
                && c0 < C0
        );
        (((((n * self.c1 + c1) * self.kh + kh) * self.kw + kw) * self.oh + oh) * self.ow + ow) * C0
            + c0
    }

    /// Element accessor.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &self,
        n: usize,
        c1: usize,
        kh: usize,
        kw: usize,
        oh: usize,
        ow: usize,
        c0: usize,
    ) -> F16 {
        self.data[self.index(n, c1, kh, kw, oh, ow, c0)]
    }

    /// Set one element.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn set(
        &mut self,
        n: usize,
        c1: usize,
        kh: usize,
        kw: usize,
        oh: usize,
        ow: usize,
        c0: usize,
        v: F16,
    ) {
        let i = self.index(n, c1, kh, kw, oh, ow, c0);
        self.data[i] = v;
    }

    /// The flat element slice.
    pub fn data(&self) -> &[F16] {
        &self.data
    }

    /// The flat mutable element slice.
    pub fn data_mut(&mut self) -> &mut [F16] {
        &mut self.data
    }
}

/// Golden im2col over the fractal layout: transform an NC1HWC0 input into
/// the `(N, C1, Kh, Kw, Oh, Ow, C0)` patch layout, reading zeros inside the
/// padding border. This is the semantic the `Im2Col` *instruction* realises
/// fractal-by-fractal; the simulator's SCU is tested against this function.
pub fn im2col_fractal(input: &Nc1hwc0, params: &PoolParams) -> Result<PatchTensor, ShapeError> {
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let mut out = PatchTensor::zeros(input.n, input.c1, params.kh, params.kw, oh, ow);
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    for n in 0..input.n {
        for c1 in 0..input.c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let ih = (ohi * params.sh + khi * params.dh) as isize - pt;
                            let iw = (owi * params.sw + kwi * params.dw) as isize - pl;
                            for c0 in 0..C0 {
                                let v = if ih >= 0
                                    && iw >= 0
                                    && (ih as usize) < input.h
                                    && (iw as usize) < input.w
                                {
                                    input.get(n, c1, ih as usize, iw as usize, c0)
                                } else {
                                    F16::ZERO // zero padding
                                };
                                out.set(n, c1, khi, kwi, ohi, owi, c0, v);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Golden col2im over the fractal layout: scatter-add the patch tensor back
/// into NC1HWC0 shape. Values of overlapping patches that refer to the same
/// input position are **summed** (paper, Section II-B and Fig. 2);
/// contributions that fall inside the padding border are dropped.
///
/// The accumulation order is the canonical `(kh, kw, oh, ow)` row-major
/// order — all simulated merge implementations iterate identically so
/// `f16` results are bit-exact.
pub fn col2im_fractal(
    patches: &PatchTensor,
    params: &PoolParams,
    ih: usize,
    iw: usize,
) -> Result<Nc1hwc0, ShapeError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    if (oh, ow) != (patches.oh, patches.ow) {
        return Err(ShapeError::Mismatch(format!(
            "patch grid {:?} does not match geometry-derived {:?}",
            (patches.oh, patches.ow),
            (oh, ow)
        )));
    }
    if (params.kh, params.kw) != (patches.kh, patches.kw) {
        return Err(ShapeError::Mismatch(format!(
            "kernel {:?} does not match patch tensor {:?}",
            (params.kh, params.kw),
            (patches.kh, patches.kw)
        )));
    }
    let mut out = Nc1hwc0::zeros(patches.n, patches.c1, ih, iw);
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    for n in 0..patches.n {
        for c1 in 0..patches.c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let h = (ohi * params.sh + khi * params.dh) as isize - pt;
                            let w = (owi * params.sw + kwi * params.dw) as isize - pl;
                            if h < 0 || w < 0 || h as usize >= ih || w as usize >= iw {
                                continue; // contribution lands in padding
                            }
                            for c0 in 0..C0 {
                                let cur = out.get(n, c1, h as usize, w as usize, c0);
                                let add = patches.get(n, c1, khi, kwi, ohi, owi, c0);
                                out.set(n, c1, h as usize, w as usize, c0, cur + add);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// How many patches cover each input position — the "multiplicity map".
/// `col2im(im2col(x)) == multiplicity ⊙ x` elementwise, which the property
/// tests exploit. Returned in `(H, W)` row-major order (it is identical
/// for every `(n, c1, c0)`).
pub fn coverage_multiplicity(params: &PoolParams, ih: usize, iw: usize) -> Vec<u32> {
    let (oh, ow) = params
        .out_dims(ih, iw)
        .expect("coverage_multiplicity requires a valid geometry");
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let mut mult = vec![0u32; ih * iw];
    for khi in 0..params.kh {
        for kwi in 0..params.kw {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let h = (ohi * params.sh + khi * params.dh) as isize - pt;
                    let w = (owi * params.sw + kwi * params.dw) as isize - pl;
                    if h >= 0 && w >= 0 && (h as usize) < ih && (w as usize) < iw {
                        mult[h as usize * iw + w as usize] += 1;
                    }
                }
            }
        }
    }
    mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Nchw;

    /// The worked example of Fig. 2: a single-channel 5x5-ish image with
    /// two overlapping patches. We reproduce the overlap-sum semantics on
    /// a 1x1x3x8 input with K=(3,3), S=(1,5)... simpler: use the actual
    /// figure: patches of (3,5) kernel? The figure uses two 3x5 patches of
    /// a 3x8 image overlapping in one column triplet {3, 8, 13}.
    /// Here we verify the same *property* on the figure's geometry:
    /// K=(3,5), S=(1,3), input 3x8 -> two patches overlapping by 2 columns.
    #[test]
    fn figure_2_overlap_sum() {
        let params = PoolParams::new((3, 5), (1, 3));
        let input =
            Nchw::from_fn(1, 1, 3, 8, |_, _, h, w| F16::from_f32((h * 8 + w) as f32)).to_nc1hwc0();
        let patches = im2col_fractal(&input, &params).unwrap();
        assert_eq!((patches.oh, patches.ow), (1, 2));
        // Columns 3 and 4 are covered by both patches.
        let mult = coverage_multiplicity(&params, 3, 8);
        for h in 0..3 {
            for w in 0..8 {
                let expect = if (3..5).contains(&w) { 2 } else { 1 };
                assert_eq!(mult[h * 8 + w], expect, "multiplicity at ({h},{w})");
            }
        }
        // col2im of the identity patches doubles the overlapped columns.
        let back = col2im_fractal(&patches, &params, 3, 8).unwrap();
        for h in 0..3 {
            for w in 0..8 {
                let x = input.get(0, 0, h, w, 0).to_f32();
                let got = back.get(0, 0, h, w, 0).to_f32();
                let expect = x * mult[h * 8 + w] as f32;
                assert_eq!(got, expect, "({h},{w})");
            }
        }
    }

    /// Fig. 5's geometry: 8x8 input, K=(2,2), S=(2,2) — exactly 16
    /// non-overlapping patches; col2im inverts im2col.
    #[test]
    fn figure_5_no_overlap_identity() {
        let params = PoolParams::new((2, 2), (2, 2));
        let input = Nchw::from_fn(1, 16, 8, 8, |_, c, h, w| {
            F16::from_f32((c + h * 8 + w) as f32)
        })
        .to_nc1hwc0();
        let patches = im2col_fractal(&input, &params).unwrap();
        assert_eq!((patches.oh, patches.ow), (4, 4));
        let back = col2im_fractal(&patches, &params, 8, 8).unwrap();
        assert_eq!(back.data(), input.data());
    }

    #[test]
    fn im2col_layout_places_patch_elements_densely() {
        // 4x4 input, K=(2,2), S=(2,2): patch (oh,ow)=(0,1) starts at
        // (0,2); its (kh,kw)=(1,0) element is input (1,2).
        let params = PoolParams::new((2, 2), (2, 2));
        let input = Nchw::from_fn(1, 16, 4, 4, |_, c, h, w| {
            F16::from_f32((c * 100 + h * 10 + w) as f32)
        })
        .to_nc1hwc0();
        let patches = im2col_fractal(&input, &params).unwrap();
        assert_eq!(
            patches.get(0, 0, 1, 0, 0, 1, 3).to_f32(),
            (3 * 100 + 10 + 2) as f32
        );
        // the (kh,kw) plane is contiguous over (oh, ow, c0)
        let i_a = patches.index(0, 0, 0, 0, 0, 0, 0);
        let i_b = patches.index(0, 0, 0, 0, 0, 1, 0);
        assert_eq!(i_b - i_a, C0);
    }

    #[test]
    fn im2col_reads_zero_padding() {
        use crate::shape::Padding;
        let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
        let input = Nchw::from_fn(1, 16, 5, 5, |_, _, _, _| F16::ONE).to_nc1hwc0();
        let patches = im2col_fractal(&input, &params).unwrap();
        assert_eq!((patches.oh, patches.ow), (3, 3));
        // top-left patch, kernel offset (0,0) falls at (-1,-1): zero.
        assert_eq!(patches.get(0, 0, 0, 0, 0, 0, 0), F16::ZERO);
        // kernel offset (1,1) falls at (0,0): one.
        assert_eq!(patches.get(0, 0, 1, 1, 0, 0, 0), F16::ONE);
    }

    #[test]
    fn col2im_drops_padding_contributions() {
        use crate::shape::Padding;
        let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
        let input = Nchw::from_fn(1, 16, 5, 5, |_, _, _, _| F16::ONE).to_nc1hwc0();
        let patches = im2col_fractal(&input, &params).unwrap();
        let back = col2im_fractal(&patches, &params, 5, 5).unwrap();
        let mult = coverage_multiplicity(&params, 5, 5);
        for h in 0..5 {
            for w in 0..5 {
                assert_eq!(
                    back.get(0, 0, h, w, 0).to_f32(),
                    mult[h * 5 + w] as f32,
                    "({h},{w})"
                );
            }
        }
    }

    #[test]
    fn col2im_shape_mismatch_rejected() {
        let params = PoolParams::new((2, 2), (2, 2));
        let patches = PatchTensor::zeros(1, 1, 2, 2, 4, 4);
        // wrong input extent for this patch grid
        assert!(col2im_fractal(&patches, &params, 6, 6).is_err());
        // wrong kernel
        let params_bad = PoolParams::new((3, 3), (2, 2));
        assert!(col2im_fractal(&patches, &params_bad, 8, 8).is_err());
    }
}
