//! Shape arithmetic shared by every crate: zero padding, Equation 1 of the
//! paper (output patch counts), and validation errors.

use core::fmt;

/// Zero padding applied around the spatial `(H, W)` plane before patches
/// are selected. Matches the `Im2Col` instruction parameters `Pl, Pr, Pt,
/// Pb` (paper, Section III-C).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Padding {
    /// Rows of zeros above the image (`Pt`).
    pub top: usize,
    /// Rows of zeros below the image (`Pb`).
    pub bottom: usize,
    /// Columns of zeros left of the image (`Pl`).
    pub left: usize,
    /// Columns of zeros right of the image (`Pr`).
    pub right: usize,
}

impl Padding {
    /// No padding — the configuration used by all of the paper's
    /// experiments ("No padding is used in them").
    pub const NONE: Padding = Padding {
        top: 0,
        bottom: 0,
        left: 0,
        right: 0,
    };

    /// Symmetric padding of `p` on every side.
    pub const fn uniform(p: usize) -> Padding {
        Padding {
            top: p,
            bottom: p,
            left: p,
            right: p,
        }
    }

    /// Total vertical padding `Pt + Pb`.
    pub const fn vertical(&self) -> usize {
        self.top + self.bottom
    }

    /// Total horizontal padding `Pl + Pr`.
    pub const fn horizontal(&self) -> usize {
        self.left + self.right
    }

    /// True when no padding is applied on any side.
    pub const fn is_none(&self) -> bool {
        self.top == 0 && self.bottom == 0 && self.left == 0 && self.right == 0
    }
}

/// Errors produced when a pooling/convolution geometry is inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// Kernel height/width of zero.
    ZeroKernel,
    /// Stride height/width of zero.
    ZeroStride,
    /// Dilation height/width of zero.
    ZeroDilation,
    /// Input too small for even one patch: `Ih + Pt + Pb < Kh` (or the
    /// width equivalent).
    KernelLargerThanInput {
        /// padded input extent in the failing dimension
        padded: usize,
        /// kernel extent in the failing dimension
        kernel: usize,
    },
    /// Padding at least as large as the kernel would create patches made
    /// entirely of zeros, which frameworks reject.
    PaddingTooLarge {
        /// the offending padding amount
        padding: usize,
        /// kernel extent in that dimension
        kernel: usize,
    },
    /// A tensor constructor was handed a data vector of the wrong length.
    DataLength {
        /// expected element count
        expected: usize,
        /// provided element count
        got: usize,
    },
    /// Two tensors that must agree in shape do not.
    Mismatch(String),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroKernel => write!(f, "kernel dimensions must be nonzero"),
            ShapeError::ZeroStride => write!(f, "stride dimensions must be nonzero"),
            ShapeError::ZeroDilation => write!(f, "dilation dimensions must be nonzero"),
            ShapeError::KernelLargerThanInput { padded, kernel } => write!(
                f,
                "kernel extent {kernel} exceeds padded input extent {padded}"
            ),
            ShapeError::PaddingTooLarge { padding, kernel } => write!(
                f,
                "padding {padding} must be smaller than kernel extent {kernel}"
            ),
            ShapeError::DataLength { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape volume {expected}"
                )
            }
            ShapeError::Mismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Equation 1 of the paper for one dimension:
/// `O = floor((I + P_lo + P_hi - K) / S) + 1`.
///
/// Returns an error when the padded input cannot fit a single patch.
pub fn out_extent(
    input: usize,
    pad_lo: usize,
    pad_hi: usize,
    kernel: usize,
    stride: usize,
) -> Result<usize, ShapeError> {
    out_extent_ext(input, pad_lo, pad_hi, kernel, stride, 1, false)
}

/// Generalised Equation 1 with dilation and ceil-mode rounding:
/// `O = round((I + P_lo + P_hi - ((K-1)*D + 1)) / S) + 1`, where `round`
/// is `floor` normally and `ceil` when `ceil_mode` is set.
///
/// Ceil mode follows the PyTorch convention: when the rounding makes the
/// last window start entirely inside the `lo`-side padding *or beyond the
/// real input* (`(O-1) * S >= I + P_lo`), the extra output is dropped —
/// such a window would read only synthesised zeros past the data.
pub fn out_extent_ext(
    input: usize,
    pad_lo: usize,
    pad_hi: usize,
    kernel: usize,
    stride: usize,
    dilation: usize,
    ceil_mode: bool,
) -> Result<usize, ShapeError> {
    if kernel == 0 {
        return Err(ShapeError::ZeroKernel);
    }
    if stride == 0 {
        return Err(ShapeError::ZeroStride);
    }
    if dilation == 0 {
        return Err(ShapeError::ZeroDilation);
    }
    // The window's span on the padded image: (K-1)*D + 1.
    let eff_kernel = (kernel - 1)
        .checked_mul(dilation)
        .and_then(|x| x.checked_add(1))
        .ok_or_else(|| ShapeError::Mismatch("dilated kernel extent overflows usize".into()))?;
    if pad_lo >= eff_kernel || pad_hi >= eff_kernel {
        return Err(ShapeError::PaddingTooLarge {
            padding: pad_lo.max(pad_hi),
            kernel: eff_kernel,
        });
    }
    let padded = input
        .checked_add(pad_lo)
        .and_then(|x| x.checked_add(pad_hi))
        .ok_or_else(|| ShapeError::Mismatch("padded input extent overflows usize".into()))?;
    if padded < eff_kernel {
        return Err(ShapeError::KernelLargerThanInput {
            padded,
            kernel: eff_kernel,
        });
    }
    let span = padded - eff_kernel;
    let mut out = span / stride + 1;
    if ceil_mode && span % stride != 0 {
        out += 1;
        // PyTorch clamp: the rounded-up window must start before the end
        // of the real data, not entirely within padding / past the input.
        if (out - 1) * stride >= input + pad_lo {
            out -= 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_matches_paper_examples() {
        // Fig. 5: Ih = Iw = 8, K = 2, S = 2, no padding -> Oh = Ow = 4.
        assert_eq!(out_extent(8, 0, 0, 2, 2), Ok(4));
        // InceptionV3 first maxpool: 147, K=3, S=2 -> 73.
        assert_eq!(out_extent(147, 0, 0, 3, 2), Ok(73));
        // 71 -> 35; 35 -> 17 (Fig. 7 shapes).
        assert_eq!(out_extent(71, 0, 0, 3, 2), Ok(35));
        assert_eq!(out_extent(35, 0, 0, 3, 2), Ok(17));
        // VGG16: 224, K=2, S=2 -> 112.
        assert_eq!(out_extent(224, 0, 0, 2, 2), Ok(112));
    }

    #[test]
    fn equation_1_with_padding() {
        // 5 input, pad 1 each side, K=3, S=1 -> same-size output 5.
        assert_eq!(out_extent(5, 1, 1, 3, 1), Ok(5));
        // 4 input, pad 1/0, K=3, S=2 -> floor((4+1-3)/2)+1 = 2.
        assert_eq!(out_extent(4, 1, 0, 3, 2), Ok(2));
    }

    #[test]
    fn degenerate_shapes_rejected() {
        assert_eq!(out_extent(8, 0, 0, 0, 1), Err(ShapeError::ZeroKernel));
        assert_eq!(out_extent(8, 0, 0, 2, 0), Err(ShapeError::ZeroStride));
        assert_eq!(
            out_extent(2, 0, 0, 3, 1),
            Err(ShapeError::KernelLargerThanInput {
                padded: 2,
                kernel: 3
            })
        );
        assert_eq!(
            out_extent(8, 3, 0, 3, 1),
            Err(ShapeError::PaddingTooLarge {
                padding: 3,
                kernel: 3
            })
        );
    }

    #[test]
    fn padded_extent_overflow_is_an_error_not_a_panic() {
        // `usize::MAX + 2` would wrap; must surface as a ShapeError.
        let err = out_extent(usize::MAX, 1, 1, 2, 1).unwrap_err();
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn single_patch_edge_case() {
        // Input exactly kernel-sized: one patch regardless of stride.
        assert_eq!(out_extent(3, 0, 0, 3, 1), Ok(1));
        assert_eq!(out_extent(3, 0, 0, 3, 7), Ok(1));
    }

    #[test]
    fn dilation_shrinks_the_output_extent() {
        // 10 input, K=3, D=2: effective window 5 -> floor((10-5)/1)+1 = 6.
        assert_eq!(out_extent_ext(10, 0, 0, 3, 1, 2, false), Ok(6));
        // Effective window exactly the input: one patch.
        assert_eq!(out_extent_ext(5, 0, 0, 3, 1, 2, false), Ok(1));
        // Effective window larger than the padded input: rejected with the
        // *effective* extent in the error.
        assert_eq!(
            out_extent_ext(4, 0, 0, 3, 1, 2, false),
            Err(ShapeError::KernelLargerThanInput {
                padded: 4,
                kernel: 5
            })
        );
        // Zero dilation is a typed error, not a wrap.
        assert_eq!(
            out_extent_ext(8, 0, 0, 3, 1, 0, false),
            Err(ShapeError::ZeroDilation)
        );
        // Padding is judged against the effective kernel: pad 3 < eff 5.
        assert_eq!(out_extent_ext(8, 3, 3, 3, 1, 2, false), Ok(10));
        assert_eq!(
            out_extent_ext(8, 3, 3, 3, 1, 1, false),
            Err(ShapeError::PaddingTooLarge {
                padding: 3,
                kernel: 3
            })
        );
    }

    #[test]
    fn ceil_mode_rounds_partial_windows_up() {
        // 5 input, K=2, S=2: floor -> 2, ceil -> 3 (last window covers
        // only row 4 and reads one synthesised zero past the edge).
        assert_eq!(out_extent_ext(5, 0, 0, 2, 2, 1, false), Ok(2));
        assert_eq!(out_extent_ext(5, 0, 0, 2, 2, 1, true), Ok(3));
        // Exact division: ceil changes nothing.
        assert_eq!(out_extent_ext(8, 0, 0, 2, 2, 1, true), Ok(4));
        // 7 input, K=3, S=2: span 4 divides evenly -> 3 either way.
        assert_eq!(out_extent_ext(7, 0, 0, 3, 2, 1, true), Ok(3));
    }

    #[test]
    fn ceil_mode_clamps_windows_starting_in_padding() {
        // 3 input, pad 1/1, K=2, S=2: unclamped ceil would produce 3
        // outputs, but the third window starts at padded index 4 =
        // I + P_lo — entirely past the data. PyTorch clamps to 2.
        assert_eq!(out_extent_ext(3, 1, 1, 2, 2, 1, true), Ok(2));
        // 6 input, pad 2/2, K=3, S=4: unclamped ceil -> 3, but
        // (3-1)*4 = 8 >= 6+2 — clamped to the floor answer 2.
        assert_eq!(out_extent_ext(6, 2, 2, 3, 4, 1, true), Ok(2));
        // Control: 6 input, pad 1/1, K=3, S=2 keeps its extra ceil output
        // ((4-1)*2 = 6 < 6+1 — the window still touches real data).
        assert_eq!(out_extent_ext(6, 1, 1, 3, 2, 1, false), Ok(3));
        assert_eq!(out_extent_ext(6, 1, 1, 3, 2, 1, true), Ok(4));
    }

    #[test]
    fn padding_helpers() {
        let p = Padding::uniform(2);
        assert_eq!(p.vertical(), 4);
        assert_eq!(p.horizontal(), 4);
        assert!(!p.is_none());
        assert!(Padding::NONE.is_none());
    }
}
