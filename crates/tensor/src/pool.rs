//! Pooling geometry: kernel/stride/padding parameter block and derived
//! quantities (output extents, duplication factor, overlap predicate).

use crate::shape::{out_extent_ext, Padding, ShapeError};

/// Which reduction a pooling layer applies (paper, Section II-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// `max` reduction — the variant CNNs prefer ("maximal activation of
    /// features").
    Max,
    /// `avg` reduction — sum then scale by `1/(Kh*Kw)`.
    Avg,
}

/// The parameter block shared by pooling layers and the `Im2Col`/`Col2Im`
/// instructions: kernel extents `(Kh, Kw)`, strides `(Sh, Sw)` and zero
/// padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Kernel height `Kh`.
    pub kh: usize,
    /// Kernel width `Kw`.
    pub kw: usize,
    /// Stride in the height direction `Sh`.
    pub sh: usize,
    /// Stride in the width direction `Sw`.
    pub sw: usize,
    /// Zero padding `(Pt, Pb, Pl, Pr)`.
    pub padding: Padding,
    /// Dilation in the height direction `Dh` (1 = dense kernel).
    pub dh: usize,
    /// Dilation in the width direction `Dw` (1 = dense kernel).
    pub dw: usize,
    /// Ceil-mode output rounding: partial windows at the high edge emit
    /// an extra output (PyTorch `ceil_mode=True` semantics, including the
    /// clamp that drops windows starting entirely past the data).
    pub ceil_mode: bool,
}

impl PoolParams {
    /// Construct with no padding — the configuration of every experiment
    /// in the paper's evaluation.
    pub const fn new(kernel: (usize, usize), stride: (usize, usize)) -> PoolParams {
        PoolParams {
            kh: kernel.0,
            kw: kernel.1,
            sh: stride.0,
            sw: stride.1,
            padding: Padding::NONE,
            dh: 1,
            dw: 1,
            ceil_mode: false,
        }
    }

    /// Construct with explicit padding.
    pub const fn with_padding(
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: Padding,
    ) -> PoolParams {
        PoolParams {
            kh: kernel.0,
            kw: kernel.1,
            sh: stride.0,
            sw: stride.1,
            padding,
            dh: 1,
            dw: 1,
            ceil_mode: false,
        }
    }

    /// Builder: replace the dilation (`(Dh, Dw)`, default `(1, 1)`).
    pub const fn with_dilation(mut self, dilation: (usize, usize)) -> PoolParams {
        self.dh = dilation.0;
        self.dw = dilation.1;
        self
    }

    /// Builder: set ceil-mode output rounding (default `false`).
    pub const fn with_ceil_mode(mut self, ceil_mode: bool) -> PoolParams {
        self.ceil_mode = ceil_mode;
        self
    }

    /// Global pooling over an `(Ih, Iw)` plane: one window covering the
    /// whole input, producing a `1x1` output.
    pub const fn global(ih: usize, iw: usize) -> PoolParams {
        PoolParams::new((ih, iw), (ih, iw))
    }

    /// The paper's headline configuration: kernel (3,3), stride (2,2),
    /// no padding (used by InceptionV3, Xception, Resnet50).
    pub const K3S2: PoolParams = PoolParams::new((3, 3), (2, 2));

    /// VGG16's configuration: kernel (2,2), stride (2,2).
    pub const K2S2: PoolParams = PoolParams::new((2, 2), (2, 2));

    /// Output extents `(Oh, Ow)` for an `(Ih, Iw)` input — Equation 1,
    /// generalised over dilation and ceil-mode rounding.
    pub fn out_dims(&self, ih: usize, iw: usize) -> Result<(usize, usize), ShapeError> {
        let oh = out_extent_ext(
            ih,
            self.padding.top,
            self.padding.bottom,
            self.kh,
            self.sh,
            self.dh,
            self.ceil_mode,
        )?;
        let ow = out_extent_ext(
            iw,
            self.padding.left,
            self.padding.right,
            self.kw,
            self.sw,
            self.dw,
            self.ceil_mode,
        )?;
        Ok((oh, ow))
    }

    /// Effective kernel height on the padded image: `(Kh - 1) * Dh + 1`.
    pub const fn eff_kh(&self) -> usize {
        (self.kh - 1) * self.dh + 1
    }

    /// Effective kernel width on the padded image: `(Kw - 1) * Dw + 1`.
    pub const fn eff_kw(&self) -> usize {
        (self.kw - 1) * self.dw + 1
    }

    /// True when either dilation exceeds 1 — kernel taps skip elements.
    pub const fn has_dilation(&self) -> bool {
        self.dh > 1 || self.dw > 1
    }

    /// Rows/columns the last output windows reach past the *padded* input
    /// — nonzero only under ceil-mode rounding, where those positions read
    /// synthesised zeros. Lowerings that address the input directly (no
    /// coordinate-checked gather) cannot run such geometries.
    pub fn ceil_overhang(&self, ih: usize, iw: usize) -> Result<(usize, usize), ShapeError> {
        let (oh, ow) = self.out_dims(ih, iw)?;
        let over_h =
            ((oh - 1) * self.sh + self.eff_kh()).saturating_sub(ih + self.padding.vertical());
        let over_w =
            ((ow - 1) * self.sw + self.eff_kw()).saturating_sub(iw + self.padding.horizontal());
        Ok((over_h, over_w))
    }

    /// Number of elements inside one patch (per channel).
    pub const fn patch_len(&self) -> usize {
        self.kh * self.kw
    }

    /// `true` when neighbouring patches share input elements, i.e. the
    /// stride is smaller than the *effective* kernel in either dimension.
    /// Overlap is what makes im2col duplicate data and what makes col2im
    /// *sum* (Section II-A/B, Fig. 2).
    pub const fn patches_overlap(&self) -> bool {
        self.sh < self.eff_kh() || self.sw < self.eff_kw()
    }

    /// The data duplication factor of im2col relative to the input:
    /// `(Kh * Kw) / (Sh * Sw)` as a rational, returned as (numerator,
    /// denominator). For K=(3,3): stride (1,1) -> 9x, (2,2) -> 2.25x,
    /// (3,3) -> 1x (Section VI-B).
    pub const fn duplication_ratio(&self) -> (usize, usize) {
        (self.kh * self.kw, self.sh * self.sw)
    }

    /// Validate the geometry against an input extent without computing
    /// outputs.
    pub fn validate(&self, ih: usize, iw: usize) -> Result<(), ShapeError> {
        self.out_dims(ih, iw).map(|_| ())
    }

    /// Iterator over `(kh, kw)` kernel offsets in the canonical row-major
    /// order used by every merge/reduction implementation in this
    /// workspace. Fixing the order makes `f16` accumulation bit-exact
    /// across implementations.
    pub fn kernel_offsets(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let kw = self.kw;
        (0..self.kh).flat_map(move |r| (0..kw).map(move |c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k3s2_inception_shapes() {
        let p = PoolParams::K3S2;
        assert_eq!(p.out_dims(147, 147), Ok((73, 73)));
        assert_eq!(p.out_dims(71, 71), Ok((35, 35)));
        assert_eq!(p.out_dims(35, 35), Ok((17, 17)));
        assert!(p.patches_overlap());
        assert_eq!(p.duplication_ratio(), (9, 4));
    }

    #[test]
    fn k2s2_vgg_shapes() {
        let p = PoolParams::K2S2;
        assert_eq!(p.out_dims(224, 224), Ok((112, 112)));
        assert!(!p.patches_overlap());
        assert_eq!(p.duplication_ratio(), (4, 4));
    }

    #[test]
    fn stride_variants_of_figure_8() {
        // K=(3,3) with strides (1,1), (2,2), (3,3).
        let s1 = PoolParams::new((3, 3), (1, 1));
        let s2 = PoolParams::new((3, 3), (2, 2));
        let s3 = PoolParams::new((3, 3), (3, 3));
        assert!(s1.patches_overlap());
        assert!(s2.patches_overlap());
        assert!(!s3.patches_overlap());
        assert_eq!(s1.duplication_ratio(), (9, 1));
        assert_eq!(s3.duplication_ratio(), (9, 9));
        // 30x30 input: s1 -> 28, s2 -> 14, s3 -> 10.
        assert_eq!(s1.out_dims(30, 30), Ok((28, 28)));
        assert_eq!(s2.out_dims(30, 30), Ok((14, 14)));
        assert_eq!(s3.out_dims(30, 30), Ok((10, 10)));
    }

    #[test]
    fn kernel_offsets_row_major() {
        let p = PoolParams::new((2, 3), (1, 1));
        let offs: Vec<_> = p.kernel_offsets().collect();
        assert_eq!(offs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(p.patch_len(), 6);
    }

    #[test]
    fn invalid_geometry_propagates_errors() {
        let p = PoolParams::new((5, 5), (1, 1));
        assert!(p.validate(4, 10).is_err());
        assert!(p.validate(10, 4).is_err());
        assert!(p.validate(5, 5).is_ok());
    }

    #[test]
    fn kernel_larger_than_padded_input_is_rejected_not_underflowed() {
        // Without the `padded < kernel` guard, `(padded - kernel)` would
        // wrap and produce an astronomically large output extent.
        let p = PoolParams::new((5, 5), (1, 1));
        assert_eq!(
            p.out_dims(4, 4),
            Err(ShapeError::KernelLargerThanInput {
                padded: 4,
                kernel: 5
            })
        );
        // Padding narrows the gap but still leaves the input one short:
        // 2 + 1 + 1 = 4 < 5.
        let padded = PoolParams::with_padding((5, 5), (1, 1), Padding::uniform(1));
        assert_eq!(
            padded.out_dims(2, 2),
            Err(ShapeError::KernelLargerThanInput {
                padded: 4,
                kernel: 5
            })
        );
        // One more row/column of input makes the geometry valid.
        assert_eq!(padded.out_dims(3, 3), Ok((1, 1)));
    }

    #[test]
    fn zero_stride_is_rejected_per_dimension() {
        assert_eq!(
            PoolParams::new((3, 3), (0, 1)).out_dims(8, 8),
            Err(ShapeError::ZeroStride)
        );
        assert_eq!(
            PoolParams::new((3, 3), (1, 0)).out_dims(8, 8),
            Err(ShapeError::ZeroStride)
        );
        assert_eq!(
            PoolParams::new((3, 3), (0, 0)).validate(8, 8),
            Err(ShapeError::ZeroStride)
        );
    }

    #[test]
    fn dilated_params_derive_effective_extents() {
        let p = PoolParams::new((3, 3), (1, 1)).with_dilation((2, 3));
        assert_eq!((p.eff_kh(), p.eff_kw()), (5, 7));
        assert!(p.has_dilation());
        // 10x10 input: Oh = 10-5+1 = 6, Ow = 10-7+1 = 4.
        assert_eq!(p.out_dims(10, 10), Ok((6, 4)));
        // Effective window exceeding the input is rejected with the
        // effective extent in the error.
        assert_eq!(
            p.out_dims(10, 6),
            Err(ShapeError::KernelLargerThanInput {
                padded: 6,
                kernel: 7
            })
        );
        assert_eq!(
            PoolParams::new((3, 3), (1, 1))
                .with_dilation((0, 1))
                .out_dims(8, 8),
            Err(ShapeError::ZeroDilation)
        );
        // Unit dilation is the default and changes nothing.
        assert!(!PoolParams::K3S2.has_dilation());
        assert_eq!(PoolParams::K3S2.out_dims(147, 147), Ok((73, 73)));
    }

    #[test]
    fn dilation_extends_the_overlap_predicate() {
        // K=2 at stride 2 does not overlap densely, but dilated to an
        // effective extent of 3 its windows do share input columns.
        let dense = PoolParams::new((2, 2), (2, 2));
        assert!(!dense.patches_overlap());
        assert!(dense.with_dilation((2, 2)).patches_overlap());
    }

    #[test]
    fn global_pooling_is_one_window() {
        let p = PoolParams::global(17, 23);
        assert_eq!(p.out_dims(17, 23), Ok((1, 1)));
        assert_eq!(p.patch_len(), 17 * 23);
        assert!(!p.patches_overlap());
    }

    #[test]
    fn ceil_mode_rounds_up_and_marks_overhang() {
        let p = PoolParams::new((3, 3), (2, 2)).with_ceil_mode(true);
        // 8x8: span 5 leaves a remainder -> 4 outputs instead of 3; the
        // last window covers rows {6, 7, 8} — one row past the input.
        assert_eq!(p.out_dims(8, 8), Ok((4, 4)));
        assert_eq!(p.ceil_overhang(8, 8), Ok((1, 1)));
        // Exact division: identical to floor mode, no overhang.
        assert_eq!(p.out_dims(7, 7), Ok((3, 3)));
        assert_eq!(p.ceil_overhang(7, 7), Ok((0, 0)));
        // Floor mode never has overhang.
        assert_eq!(PoolParams::K3S2.ceil_overhang(8, 8), Ok((0, 0)));
    }

    #[test]
    fn ceil_mode_clamps_window_starting_entirely_in_padding() {
        // Regression for the PyTorch clamp: 3x3 input, K=2, S=2, pad 1.
        // Unclamped ceil would emit a 3rd output whose window starts at
        // padded row 4 = Ih + Pt — entirely past the data. PyTorch (and
        // this clamp) drop it.
        let p = PoolParams::with_padding((2, 2), (2, 2), Padding::uniform(1)).with_ceil_mode(true);
        assert_eq!(p.out_dims(3, 3), Ok((2, 2)));
        // The kept geometry still has no window past the *padded* image.
        assert_eq!(p.ceil_overhang(3, 3), Ok((0, 0)));
        // One more input row and the extra window earns its keep.
        assert_eq!(p.out_dims(4, 4), Ok((3, 3)));
    }

    #[test]
    fn zero_kernel_and_oversized_padding_are_rejected() {
        assert_eq!(
            PoolParams::new((0, 3), (1, 1)).out_dims(8, 8),
            Err(ShapeError::ZeroKernel)
        );
        // Padding >= kernel would manufacture all-zero patches.
        let p = PoolParams::with_padding(
            (2, 2),
            (1, 1),
            Padding {
                top: 2,
                bottom: 0,
                left: 0,
                right: 0,
            },
        );
        assert_eq!(
            p.out_dims(8, 8),
            Err(ShapeError::PaddingTooLarge {
                padding: 2,
                kernel: 2
            })
        );
    }
}
