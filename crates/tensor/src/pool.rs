//! Pooling geometry: kernel/stride/padding parameter block and derived
//! quantities (output extents, duplication factor, overlap predicate).

use crate::shape::{out_extent, Padding, ShapeError};

/// Which reduction a pooling layer applies (paper, Section II-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// `max` reduction — the variant CNNs prefer ("maximal activation of
    /// features").
    Max,
    /// `avg` reduction — sum then scale by `1/(Kh*Kw)`.
    Avg,
}

/// The parameter block shared by pooling layers and the `Im2Col`/`Col2Im`
/// instructions: kernel extents `(Kh, Kw)`, strides `(Sh, Sw)` and zero
/// padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Kernel height `Kh`.
    pub kh: usize,
    /// Kernel width `Kw`.
    pub kw: usize,
    /// Stride in the height direction `Sh`.
    pub sh: usize,
    /// Stride in the width direction `Sw`.
    pub sw: usize,
    /// Zero padding `(Pt, Pb, Pl, Pr)`.
    pub padding: Padding,
}

impl PoolParams {
    /// Construct with no padding — the configuration of every experiment
    /// in the paper's evaluation.
    pub const fn new(kernel: (usize, usize), stride: (usize, usize)) -> PoolParams {
        PoolParams {
            kh: kernel.0,
            kw: kernel.1,
            sh: stride.0,
            sw: stride.1,
            padding: Padding::NONE,
        }
    }

    /// Construct with explicit padding.
    pub const fn with_padding(
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: Padding,
    ) -> PoolParams {
        PoolParams {
            kh: kernel.0,
            kw: kernel.1,
            sh: stride.0,
            sw: stride.1,
            padding,
        }
    }

    /// The paper's headline configuration: kernel (3,3), stride (2,2),
    /// no padding (used by InceptionV3, Xception, Resnet50).
    pub const K3S2: PoolParams = PoolParams::new((3, 3), (2, 2));

    /// VGG16's configuration: kernel (2,2), stride (2,2).
    pub const K2S2: PoolParams = PoolParams::new((2, 2), (2, 2));

    /// Output extents `(Oh, Ow)` for an `(Ih, Iw)` input — Equation 1.
    pub fn out_dims(&self, ih: usize, iw: usize) -> Result<(usize, usize), ShapeError> {
        let oh = out_extent(ih, self.padding.top, self.padding.bottom, self.kh, self.sh)?;
        let ow = out_extent(iw, self.padding.left, self.padding.right, self.kw, self.sw)?;
        Ok((oh, ow))
    }

    /// Number of elements inside one patch (per channel).
    pub const fn patch_len(&self) -> usize {
        self.kh * self.kw
    }

    /// `true` when neighbouring patches share input elements, i.e. the
    /// stride is smaller than the kernel in either dimension. Overlap is
    /// what makes im2col duplicate data and what makes col2im *sum*
    /// (Section II-A/B, Fig. 2).
    pub const fn patches_overlap(&self) -> bool {
        self.sh < self.kh || self.sw < self.kw
    }

    /// The data duplication factor of im2col relative to the input:
    /// `(Kh * Kw) / (Sh * Sw)` as a rational, returned as (numerator,
    /// denominator). For K=(3,3): stride (1,1) -> 9x, (2,2) -> 2.25x,
    /// (3,3) -> 1x (Section VI-B).
    pub const fn duplication_ratio(&self) -> (usize, usize) {
        (self.kh * self.kw, self.sh * self.sw)
    }

    /// Validate the geometry against an input extent without computing
    /// outputs.
    pub fn validate(&self, ih: usize, iw: usize) -> Result<(), ShapeError> {
        self.out_dims(ih, iw).map(|_| ())
    }

    /// Iterator over `(kh, kw)` kernel offsets in the canonical row-major
    /// order used by every merge/reduction implementation in this
    /// workspace. Fixing the order makes `f16` accumulation bit-exact
    /// across implementations.
    pub fn kernel_offsets(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let kw = self.kw;
        (0..self.kh).flat_map(move |r| (0..kw).map(move |c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k3s2_inception_shapes() {
        let p = PoolParams::K3S2;
        assert_eq!(p.out_dims(147, 147), Ok((73, 73)));
        assert_eq!(p.out_dims(71, 71), Ok((35, 35)));
        assert_eq!(p.out_dims(35, 35), Ok((17, 17)));
        assert!(p.patches_overlap());
        assert_eq!(p.duplication_ratio(), (9, 4));
    }

    #[test]
    fn k2s2_vgg_shapes() {
        let p = PoolParams::K2S2;
        assert_eq!(p.out_dims(224, 224), Ok((112, 112)));
        assert!(!p.patches_overlap());
        assert_eq!(p.duplication_ratio(), (4, 4));
    }

    #[test]
    fn stride_variants_of_figure_8() {
        // K=(3,3) with strides (1,1), (2,2), (3,3).
        let s1 = PoolParams::new((3, 3), (1, 1));
        let s2 = PoolParams::new((3, 3), (2, 2));
        let s3 = PoolParams::new((3, 3), (3, 3));
        assert!(s1.patches_overlap());
        assert!(s2.patches_overlap());
        assert!(!s3.patches_overlap());
        assert_eq!(s1.duplication_ratio(), (9, 1));
        assert_eq!(s3.duplication_ratio(), (9, 9));
        // 30x30 input: s1 -> 28, s2 -> 14, s3 -> 10.
        assert_eq!(s1.out_dims(30, 30), Ok((28, 28)));
        assert_eq!(s2.out_dims(30, 30), Ok((14, 14)));
        assert_eq!(s3.out_dims(30, 30), Ok((10, 10)));
    }

    #[test]
    fn kernel_offsets_row_major() {
        let p = PoolParams::new((2, 3), (1, 1));
        let offs: Vec<_> = p.kernel_offsets().collect();
        assert_eq!(offs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(p.patch_len(), 6);
    }

    #[test]
    fn invalid_geometry_propagates_errors() {
        let p = PoolParams::new((5, 5), (1, 1));
        assert!(p.validate(4, 10).is_err());
        assert!(p.validate(10, 4).is_err());
        assert!(p.validate(5, 5).is_ok());
    }

    #[test]
    fn kernel_larger_than_padded_input_is_rejected_not_underflowed() {
        // Without the `padded < kernel` guard, `(padded - kernel)` would
        // wrap and produce an astronomically large output extent.
        let p = PoolParams::new((5, 5), (1, 1));
        assert_eq!(
            p.out_dims(4, 4),
            Err(ShapeError::KernelLargerThanInput {
                padded: 4,
                kernel: 5
            })
        );
        // Padding narrows the gap but still leaves the input one short:
        // 2 + 1 + 1 = 4 < 5.
        let padded = PoolParams::with_padding((5, 5), (1, 1), Padding::uniform(1));
        assert_eq!(
            padded.out_dims(2, 2),
            Err(ShapeError::KernelLargerThanInput {
                padded: 4,
                kernel: 5
            })
        );
        // One more row/column of input makes the geometry valid.
        assert_eq!(padded.out_dims(3, 3), Ok((1, 1)));
    }

    #[test]
    fn zero_stride_is_rejected_per_dimension() {
        assert_eq!(
            PoolParams::new((3, 3), (0, 1)).out_dims(8, 8),
            Err(ShapeError::ZeroStride)
        );
        assert_eq!(
            PoolParams::new((3, 3), (1, 0)).out_dims(8, 8),
            Err(ShapeError::ZeroStride)
        );
        assert_eq!(
            PoolParams::new((3, 3), (0, 0)).validate(8, 8),
            Err(ShapeError::ZeroStride)
        );
    }

    #[test]
    fn zero_kernel_and_oversized_padding_are_rejected() {
        assert_eq!(
            PoolParams::new((0, 3), (1, 1)).out_dims(8, 8),
            Err(ShapeError::ZeroKernel)
        );
        // Padding >= kernel would manufacture all-zero patches.
        let p = PoolParams::with_padding(
            (2, 2),
            (1, 1),
            Padding {
                top: 2,
                bottom: 0,
                left: 0,
                right: 0,
            },
        );
        assert_eq!(
            p.out_dims(8, 8),
            Err(ShapeError::PaddingTooLarge {
                padding: 2,
                kernel: 2
            })
        );
    }
}
