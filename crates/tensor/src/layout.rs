//! Dense `f16` tensors in the two framework layouts the paper uses:
//! NCHW and DaVinci's fractal NC1HWC0 (Section III-B).

use crate::shape::ShapeError;
use dv_fp16::F16;

/// The constant fractal channel split for `Float16`: a data-fractal is
/// 4096 bits = 16 rows x `C0` elements, so `C0 = 16` (paper, Section
/// III-B; for `Unsigned8` it would be 32 — this workspace is f16-only,
/// as is the paper).
pub const C0: usize = 16;

/// Number of patch rows in one fractal: `Im2Col` always loads "the next 16
/// consecutive patches" per fractal (Section III-C).
pub const FRACTAL_ROWS: usize = 16;

/// Bytes in one data-fractal (4096 bits).
pub const FRACTAL_BYTES: usize = FRACTAL_ROWS * C0 * F16::SIZE_BYTES;

/// A dense tensor in `NCHW` layout (batch, channel, height, width),
/// row-major with `W` innermost.
#[derive(Clone, Debug, PartialEq)]
pub struct Nchw {
    /// Batch size `N`. The paper fixes `N = 1` throughout; the layout
    /// still carries it for generality.
    pub n: usize,
    /// Channels `C`.
    pub c: usize,
    /// Height `H`.
    pub h: usize,
    /// Width `W`.
    pub w: usize,
    data: Vec<F16>,
}

impl Nchw {
    /// All-zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Nchw {
        Nchw {
            n,
            c,
            h,
            w,
            data: vec![F16::ZERO; n * c * h * w],
        }
    }

    /// Build from existing data (length must equal `n*c*h*w`).
    pub fn from_vec(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        data: Vec<F16>,
    ) -> Result<Nchw, ShapeError> {
        let expected = n * c * h * w;
        if data.len() != expected {
            return Err(ShapeError::DataLength {
                expected,
                got: data.len(),
            });
        }
        Ok(Nchw { n, c, h, w, data })
    }

    /// Build by evaluating `f(n, c, h, w)` at every index.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> F16,
    ) -> Nchw {
        let mut data = Vec::with_capacity(n * c * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(f(ni, ci, hi, wi));
                    }
                }
            }
        }
        Nchw { n, c, h, w, data }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(n, c, h, w)`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> F16 {
        self.data[self.index(n, c, h, w)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut F16 {
        let i = self.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Set one element.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: F16) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// The flat element slice.
    pub fn data(&self) -> &[F16] {
        &self.data
    }

    /// The flat mutable element slice.
    pub fn data_mut(&mut self) -> &mut [F16] {
        &mut self.data
    }

    /// Convert to the fractal NC1HWC0 layout, zero-padding the channel
    /// dimension up to the next multiple of `C0` (Section III-B: "If the
    /// original number of channels is not divisible by C0, the C0
    /// dimension must be zero-padded").
    pub fn to_nc1hwc0(&self) -> Nc1hwc0 {
        let c1 = self.c.div_ceil(C0);
        let mut out = Nc1hwc0::zeros(self.n, c1, self.h, self.w);
        out.orig_c = self.c;
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        out.set(n, c / C0, h, w, c % C0, self.get(n, c, h, w));
                    }
                }
            }
        }
        out
    }
}

/// A dense tensor in DaVinci's fractal `NC1HWC0` layout: channels split as
/// `C = C1 * C0`, `C0 = 16` innermost (so that loads/stores always move
/// whole 16-element channel groups), zero-padded when `C % 16 != 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct Nc1hwc0 {
    /// Batch size `N`.
    pub n: usize,
    /// Outer channel count `C1 = ceil(C / C0)`.
    pub c1: usize,
    /// Height `H`.
    pub h: usize,
    /// Width `W`.
    pub w: usize,
    /// The original (unpadded) channel count, retained so a round trip to
    /// NCHW can drop the zero padding.
    pub orig_c: usize,
    data: Vec<F16>,
}

impl Nc1hwc0 {
    /// All-zero tensor with `orig_c = c1 * C0` (fully used channels).
    pub fn zeros(n: usize, c1: usize, h: usize, w: usize) -> Nc1hwc0 {
        Nc1hwc0 {
            n,
            c1,
            h,
            w,
            orig_c: c1 * C0,
            data: vec![F16::ZERO; n * c1 * h * w * C0],
        }
    }

    /// Build from existing data (length must be `n*c1*h*w*C0`).
    pub fn from_vec(
        n: usize,
        c1: usize,
        h: usize,
        w: usize,
        data: Vec<F16>,
    ) -> Result<Nc1hwc0, ShapeError> {
        let expected = n * c1 * h * w * C0;
        if data.len() != expected {
            return Err(ShapeError::DataLength {
                expected,
                got: data.len(),
            });
        }
        Ok(Nc1hwc0 {
            n,
            c1,
            h,
            w,
            orig_c: c1 * C0,
            data,
        })
    }

    /// Build by evaluating `f(n, c1, h, w, c0)` at every index.
    pub fn from_fn(
        n: usize,
        c1: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize, usize) -> F16,
    ) -> Nc1hwc0 {
        let mut data = Vec::with_capacity(n * c1 * h * w * C0);
        for ni in 0..n {
            for c1i in 0..c1 {
                for hi in 0..h {
                    for wi in 0..w {
                        for c0i in 0..C0 {
                            data.push(f(ni, c1i, hi, wi, c0i));
                        }
                    }
                }
            }
        }
        Nc1hwc0 {
            n,
            c1,
            h,
            w,
            orig_c: c1 * C0,
            data,
        }
    }

    /// Total number of elements (including channel zero padding).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes — what the tensor occupies in a scratchpad buffer.
    pub fn byte_len(&self) -> usize {
        self.data.len() * F16::SIZE_BYTES
    }

    /// Linear index of `(n, c1, h, w, c0)`.
    #[inline]
    pub fn index(&self, n: usize, c1: usize, h: usize, w: usize, c0: usize) -> usize {
        debug_assert!(
            n < self.n && c1 < self.c1 && h < self.h && w < self.w && c0 < C0,
            "index ({n},{c1},{h},{w},{c0}) out of bounds for {:?}",
            (self.n, self.c1, self.h, self.w, C0)
        );
        (((n * self.c1 + c1) * self.h + h) * self.w + w) * C0 + c0
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c1: usize, h: usize, w: usize, c0: usize) -> F16 {
        self.data[self.index(n, c1, h, w, c0)]
    }

    /// Set one element.
    #[inline]
    pub fn set(&mut self, n: usize, c1: usize, h: usize, w: usize, c0: usize, v: F16) {
        let i = self.index(n, c1, h, w, c0);
        self.data[i] = v;
    }

    /// The flat element slice (layout order: N, C1, H, W, C0).
    pub fn data(&self) -> &[F16] {
        &self.data
    }

    /// The flat mutable element slice.
    pub fn data_mut(&mut self) -> &mut [F16] {
        &mut self.data
    }

    /// Extract the `(H, W, C0)` plane of one `(n, c1)` slice as a
    /// contiguous copy — the unit of work a single AI Core receives after
    /// C1-tiling (Section V-A).
    pub fn slice_plane(&self, n: usize, c1: usize) -> Vec<F16> {
        let start = self.index(n, c1, 0, 0, 0);
        let len = self.h * self.w * C0;
        self.data[start..start + len].to_vec()
    }

    /// Write back one `(H, W, C0)` plane.
    pub fn write_plane(&mut self, n: usize, c1: usize, plane: &[F16]) {
        let start = self.index(n, c1, 0, 0, 0);
        let len = self.h * self.w * C0;
        assert_eq!(plane.len(), len, "plane length mismatch");
        self.data[start..start + len].copy_from_slice(plane);
    }

    /// Convert back to NCHW, dropping channel zero-padding beyond
    /// `orig_c`.
    pub fn to_nchw(&self) -> Nchw {
        let mut out = Nchw::zeros(self.n, self.orig_c, self.h, self.w);
        for n in 0..self.n {
            for c in 0..self.orig_c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        out.set(n, c, h, w, self.get(n, c / C0, h, w, c % C0));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, c: usize, h: usize, w: usize) -> Nchw {
        Nchw::from_fn(n, c, h, w, |ni, ci, hi, wi| {
            F16::from_f32((ni * 1000 + ci * 100 + hi * 10 + wi) as f32)
        })
    }

    #[test]
    fn nchw_indexing_row_major() {
        let t = ramp(1, 2, 3, 4);
        assert_eq!(t.index(0, 0, 0, 0), 0);
        assert_eq!(t.index(0, 0, 0, 3), 3);
        assert_eq!(t.index(0, 0, 1, 0), 4);
        assert_eq!(t.index(0, 1, 0, 0), 12);
        assert_eq!(t.get(0, 1, 2, 3).to_f32(), 123.0);
    }

    #[test]
    fn nchw_to_fractal_round_trip_exact_multiple() {
        let t = ramp(1, 32, 5, 7); // C = 32 = 2 * C0
        let f = t.to_nc1hwc0();
        assert_eq!(f.c1, 2);
        assert_eq!(f.orig_c, 32);
        assert_eq!(f.to_nchw(), t);
    }

    #[test]
    fn nchw_to_fractal_pads_channels_with_zeros() {
        let t = ramp(1, 20, 3, 3); // C = 20 -> C1 = 2, 12 channels padded
        let f = t.to_nc1hwc0();
        assert_eq!(f.c1, 2);
        assert_eq!(f.orig_c, 20);
        // padded channels must read zero
        for c0 in 4..C0 {
            for h in 0..3 {
                for w in 0..3 {
                    assert_eq!(f.get(0, 1, h, w, c0), F16::ZERO);
                }
            }
        }
        // round trip drops the padding
        assert_eq!(f.to_nchw(), t);
    }

    #[test]
    fn fractal_layout_c0_innermost() {
        let f = Nc1hwc0::from_fn(1, 1, 2, 2, |_, _, h, w, c0| {
            F16::from_f32((h * 100 + w * 10 + c0) as f32)
        });
        // consecutive memory along c0
        assert_eq!(f.data()[0].to_f32(), 0.0);
        assert_eq!(f.data()[1].to_f32(), 1.0);
        assert_eq!(f.data()[C0].to_f32(), 10.0); // next w
        assert_eq!(f.data()[2 * C0].to_f32(), 100.0); // next h
    }

    #[test]
    fn plane_slicing_round_trip() {
        let t = ramp(2, 32, 4, 4).to_nc1hwc0();
        let mut copy = Nc1hwc0::zeros(2, 2, 4, 4);
        copy.orig_c = 32;
        for n in 0..2 {
            for c1 in 0..2 {
                let plane = t.slice_plane(n, c1);
                assert_eq!(plane.len(), 4 * 4 * C0);
                copy.write_plane(n, c1, &plane);
            }
        }
        assert_eq!(copy, t);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Nchw::from_vec(1, 1, 2, 2, vec![F16::ZERO; 4]).is_ok());
        assert!(matches!(
            Nchw::from_vec(1, 1, 2, 2, vec![F16::ZERO; 5]),
            Err(ShapeError::DataLength {
                expected: 4,
                got: 5
            })
        ));
        assert!(Nc1hwc0::from_vec(1, 1, 1, 1, vec![F16::ZERO; C0]).is_ok());
        assert!(Nc1hwc0::from_vec(1, 1, 1, 1, vec![F16::ZERO; 15]).is_err());
    }

    #[test]
    fn fractal_constants() {
        // A fractal is 4096 bits of f16: 16 rows x 16 elements x 2 bytes.
        assert_eq!(FRACTAL_BYTES * 8, 4096);
        assert_eq!(C0 * FRACTAL_ROWS * F16::SIZE_BYTES, FRACTAL_BYTES);
    }
}
