//! Reference pooling operators over the fractal NC1HWC0 layout
//! (paper, Section II-C and Fig. 3).
//!
//! All operators treat every `(n, c1, c0)` channel independently and apply
//! the reduction over `(Kh, Kw)` windows of the `(H, W)` plane selected by
//! the stride, reading zeros in the padding border.

use crate::im2col::PatchTensor;
use crate::layout::{Nc1hwc0, C0};
use crate::pool::PoolParams;
use crate::shape::ShapeError;
use dv_fp16::F16;

/// MaxPool forward: `out[n,c1,oh,ow,c0] = max over (kh,kw) of the patch`.
///
/// The reduction uses [`F16::max`], whose result is independent of
/// iteration order, and starts from `-inf` exactly like the simulated
/// kernels ("the output tile is initialized with the minimum value of the
/// data type in use", Section V-A).
///
/// With padding, padded positions contribute *zero* (not `-inf`): the
/// paper's Im2Col loads zeros into the padding border, so the simulated
/// reduction sees zeros there. The reference matches that convention
/// (this is "count-include-pad" max semantics; it only differs from
/// ignore-pad semantics when every in-bounds element is negative).
pub fn maxpool_forward(input: &Nc1hwc0, params: &PoolParams) -> Result<Nc1hwc0, ShapeError> {
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let mut out = Nc1hwc0::zeros(input.n, input.c1, oh, ow);
    out.orig_c = input.orig_c;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    // Out-of-bounds taps exist with explicit padding and under ceil-mode
    // rounding, where the last window overhangs the input.
    let oob_legal = !params.padding.is_none() || params.ceil_mode;
    for n in 0..input.n {
        for c1 in 0..input.c1 {
            for ohi in 0..oh {
                for owi in 0..ow {
                    for c0 in 0..C0 {
                        let mut acc = F16::NEG_INFINITY;
                        for khi in 0..params.kh {
                            for kwi in 0..params.kw {
                                let h = (ohi * params.sh + khi * params.dh) as isize - pt;
                                let w = (owi * params.sw + kwi * params.dw) as isize - pl;
                                let v = if h >= 0
                                    && w >= 0
                                    && (h as usize) < input.h
                                    && (w as usize) < input.w
                                {
                                    input.get(n, c1, h as usize, w as usize, c0)
                                } else if oob_legal {
                                    F16::ZERO
                                } else {
                                    unreachable!("no padding but out of bounds")
                                };
                                acc = acc.max(v);
                            }
                        }
                        out.set(n, c1, ohi, owi, c0, acc);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// The argmax mask of MaxPool forward, stored in the im2col patch layout
/// `(N, C1, Kh, Kw, Oh, Ow, C0)` — "the Im2Col output shape of Line 3 in
/// Listing 2 is used to store it, as it keeps overlapping patches
/// separated" (Section V-A).
///
/// For each patch the positions holding the maximum value are set to 1 and
/// the rest to 0. The mask is produced "by comparing each patch of the
/// input with its maximum value", so **ties mark every tied position**
/// (this matches the vcmp-based lowering; gradient then flows to all tied
/// maxima).
pub fn maxpool_argmax_mask(
    input: &Nc1hwc0,
    params: &PoolParams,
) -> Result<PatchTensor, ShapeError> {
    let maxes = maxpool_forward(input, params)?;
    let (oh, ow) = (maxes.h, maxes.w);
    let mut mask = PatchTensor::zeros(input.n, input.c1, params.kh, params.kw, oh, ow);
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    for n in 0..input.n {
        for c1 in 0..input.c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            let h = (ohi * params.sh + khi * params.dh) as isize - pt;
                            let w = (owi * params.sw + kwi * params.dw) as isize - pl;
                            for c0 in 0..C0 {
                                let v = if h >= 0
                                    && w >= 0
                                    && (h as usize) < input.h
                                    && (w as usize) < input.w
                                {
                                    input.get(n, c1, h as usize, w as usize, c0)
                                } else {
                                    F16::ZERO
                                };
                                let m = maxes.get(n, c1, ohi, owi, c0);
                                if v == m {
                                    mask.set(n, c1, khi, kwi, ohi, owi, c0, F16::ONE);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(mask)
}

/// Convenience: forward output *and* argmax mask in one pass — the
/// multi-output computation of Fig. 7b.
pub fn maxpool_forward_with_argmax(
    input: &Nc1hwc0,
    params: &PoolParams,
) -> Result<(Nc1hwc0, PatchTensor), ShapeError> {
    let out = maxpool_forward(input, params)?;
    let mask = maxpool_argmax_mask(input, params)?;
    Ok((out, mask))
}

/// MaxPool backward (Fig. 3 bottom): multiply the argmax mask by the
/// incoming gradients (broadcast over `(Kh, Kw)`), then col2im-merge back
/// to the input shape, summing overlaps.
///
/// Accumulation order: canonical `(kh, kw, oh, ow)` row-major, identical
/// to [`crate::im2col::col2im_fractal`] and to every simulated merge.
pub fn maxpool_backward(
    mask: &PatchTensor,
    gradients: &Nc1hwc0,
    params: &PoolParams,
    ih: usize,
    iw: usize,
) -> Result<Nc1hwc0, ShapeError> {
    if (gradients.h, gradients.w) != (mask.oh, mask.ow) {
        return Err(ShapeError::Mismatch(format!(
            "gradient plane {:?} does not match mask patch grid {:?}",
            (gradients.h, gradients.w),
            (mask.oh, mask.ow)
        )));
    }
    if gradients.n != mask.n || gradients.c1 != mask.c1 {
        return Err(ShapeError::Mismatch(
            "gradient N/C1 does not match mask".into(),
        ));
    }
    // Multiply step (Listing 3): mask-gradient in the patch layout.
    let mut mg = PatchTensor::zeros(mask.n, mask.c1, mask.kh, mask.kw, mask.oh, mask.ow);
    for n in 0..mask.n {
        for c1 in 0..mask.c1 {
            for khi in 0..mask.kh {
                for kwi in 0..mask.kw {
                    for ohi in 0..mask.oh {
                        for owi in 0..mask.ow {
                            for c0 in 0..C0 {
                                let m = mask.get(n, c1, khi, kwi, ohi, owi, c0);
                                let g = gradients.get(n, c1, ohi, owi, c0);
                                mg.set(n, c1, khi, kwi, ohi, owi, c0, m * g);
                            }
                        }
                    }
                }
            }
        }
    }
    // Merge step == col2im (Section V-B).
    crate::im2col::col2im_fractal(&mg, params, ih, iw)
}

/// AvgPool forward (Section V-C): sum-reduce each patch in canonical
/// `(kh, kw)` order, then multiply by `1/(Kh*Kw)` as an f16 constant —
/// exactly the `vadd` + `vmuls` lowering the simulator uses, so results
/// are bit-identical.
pub fn avgpool_forward(input: &Nc1hwc0, params: &PoolParams) -> Result<Nc1hwc0, ShapeError> {
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let mut out = Nc1hwc0::zeros(input.n, input.c1, oh, ow);
    out.orig_c = input.orig_c;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let inv = F16::from_f32(1.0 / (params.kh * params.kw) as f32);
    for n in 0..input.n {
        for c1 in 0..input.c1 {
            for ohi in 0..oh {
                for owi in 0..ow {
                    for c0 in 0..C0 {
                        let mut acc = F16::ZERO;
                        for khi in 0..params.kh {
                            for kwi in 0..params.kw {
                                let h = (ohi * params.sh + khi * params.dh) as isize - pt;
                                let w = (owi * params.sw + kwi * params.dw) as isize - pl;
                                let v = if h >= 0
                                    && w >= 0
                                    && (h as usize) < input.h
                                    && (w as usize) < input.w
                                {
                                    input.get(n, c1, h as usize, w as usize, c0)
                                } else {
                                    F16::ZERO
                                };
                                acc += v;
                            }
                        }
                        out.set(n, c1, ohi, owi, c0, acc * inv);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// AvgPool backward (Section V-C): "the equivalent mask for Avgpool
/// contains 1 in all its positions" — each input position receives the sum
/// over covering patches of `gradient * 1/(Kh*Kw)`.
///
/// The scale is applied to the gradient *before* the merge (one `vmuls`
/// on the small gradient tensor), then merged in canonical order.
pub fn avgpool_backward(
    gradients: &Nc1hwc0,
    params: &PoolParams,
    ih: usize,
    iw: usize,
) -> Result<Nc1hwc0, ShapeError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    if (gradients.h, gradients.w) != (oh, ow) {
        return Err(ShapeError::Mismatch(format!(
            "gradient plane {:?} does not match derived patch grid {:?}",
            (gradients.h, gradients.w),
            (oh, ow)
        )));
    }
    let inv = F16::from_f32(1.0 / (params.kh * params.kw) as f32);
    // Scaled gradient broadcast to the patch layout (uniform mask).
    let mut mg = PatchTensor::zeros(gradients.n, gradients.c1, params.kh, params.kw, oh, ow);
    for n in 0..gradients.n {
        for c1 in 0..gradients.c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for ohi in 0..oh {
                        for owi in 0..ow {
                            for c0 in 0..C0 {
                                let g = gradients.get(n, c1, ohi, owi, c0);
                                mg.set(n, c1, khi, kwi, ohi, owi, c0, g * inv);
                            }
                        }
                    }
                }
            }
        }
    }
    crate::im2col::col2im_fractal(&mg, params, ih, iw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Nchw;

    /// Fig. 3 (top): MaxPool forward on two overlapping patches.
    /// We reconstruct the figure's spirit: K=(2,2), S=(1,1) on a tiny
    /// image; verify max selection per patch.
    #[test]
    fn maxpool_forward_tiny() {
        let input = Nchw::from_vec(
            1,
            1,
            2,
            3,
            [1.0, 5.0, 2.0, 3.0, 4.0, 0.5]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((2, 2), (1, 1));
        let out = maxpool_forward(&input, &params).unwrap();
        assert_eq!((out.h, out.w), (1, 2));
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), 5.0);
        assert_eq!(out.get(0, 0, 0, 1, 0).to_f32(), 5.0);
    }

    #[test]
    fn maxpool_forward_negative_values() {
        // All-negative patch must return the (negative) max, proving the
        // accumulator starts at -inf and not at 0.
        let input = Nchw::from_vec(
            1,
            1,
            2,
            2,
            [-4.0, -2.0, -8.0, -3.0]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((2, 2), (1, 1));
        let out = maxpool_forward(&input, &params).unwrap();
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), -2.0);
    }

    #[test]
    fn argmax_mask_marks_maximum_positions() {
        let input = Nchw::from_vec(
            1,
            1,
            2,
            2,
            [1.0, 9.0, 3.0, 4.0]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((2, 2), (1, 1));
        let mask = maxpool_argmax_mask(&input, &params).unwrap();
        // max 9.0 at (kh,kw)=(0,1)
        assert_eq!(mask.get(0, 0, 0, 0, 0, 0, 0), F16::ZERO);
        assert_eq!(mask.get(0, 0, 0, 1, 0, 0, 0), F16::ONE);
        assert_eq!(mask.get(0, 0, 1, 0, 0, 0, 0), F16::ZERO);
        assert_eq!(mask.get(0, 0, 1, 1, 0, 0, 0), F16::ZERO);
    }

    #[test]
    fn argmax_mask_ties_mark_all() {
        let input = Nchw::from_vec(1, 1, 1, 2, vec![F16::from_f32(7.0), F16::from_f32(7.0)])
            .unwrap()
            .to_nc1hwc0();
        let params = PoolParams::new((1, 2), (1, 1));
        let mask = maxpool_argmax_mask(&input, &params).unwrap();
        assert_eq!(mask.get(0, 0, 0, 0, 0, 0, 0), F16::ONE);
        assert_eq!(mask.get(0, 0, 0, 1, 0, 0, 0), F16::ONE);
    }

    /// Fig. 3 (bottom): backward distributes gradient to max positions,
    /// summing where patches overlap on the same max element.
    #[test]
    fn maxpool_backward_routes_gradient_to_max() {
        // 1x1x2x3 input, K=(2,2), S=(1,1): two patches, both with max 5.0
        // at position (0,1) of the image.
        let input = Nchw::from_vec(
            1,
            1,
            2,
            3,
            [1.0, 5.0, 2.0, 3.0, 4.0, 0.5]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((2, 2), (1, 1));
        let mask = maxpool_argmax_mask(&input, &params).unwrap();
        // gradient of ones
        let grad = Nchw::from_vec(1, 1, 1, 2, vec![F16::ONE; 2])
            .unwrap()
            .to_nc1hwc0();
        let dx = maxpool_backward(&mask, &grad, &params, 2, 3).unwrap();
        // (0,1) is the max of both patches -> gradient 2; everything else 0.
        assert_eq!(dx.get(0, 0, 0, 1, 0).to_f32(), 2.0);
        let mut total = 0.0;
        for h in 0..2 {
            for w in 0..3 {
                total += dx.get(0, 0, h, w, 0).to_f32();
            }
        }
        assert_eq!(total, 2.0, "gradient mass conserved (no ties)");
    }

    #[test]
    fn avgpool_forward_matches_manual_average() {
        let input = Nchw::from_vec(
            1,
            1,
            2,
            2,
            [1.0, 2.0, 3.0, 6.0]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((2, 2), (1, 1));
        let out = avgpool_forward(&input, &params).unwrap();
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), 3.0);
    }

    #[test]
    fn avgpool_backward_conserves_mass_without_padding() {
        // Each gradient element g contributes g * (Kh*Kw) * 1/(Kh*Kw) = g
        // in total, so the total mass is conserved (exact in f16 for
        // power-of-two kernels).
        let params = PoolParams::new((2, 2), (2, 2));
        let grad = Nchw::from_fn(1, 16, 2, 2, |_, _, h, w| {
            F16::from_f32((h * 2 + w + 1) as f32)
        })
        .to_nc1hwc0();
        let dx = avgpool_backward(&grad, &params, 4, 4).unwrap();
        let total: f32 = dx.data().iter().map(|x| x.to_f32()).sum();
        let grad_total: f32 = grad.data().iter().map(|x| x.to_f32()).sum();
        assert_eq!(total, grad_total);
    }

    #[test]
    fn backward_shape_mismatch_rejected() {
        let params = PoolParams::new((2, 2), (2, 2));
        let mask = PatchTensor::zeros(1, 1, 2, 2, 2, 2);
        let grad_bad = Nc1hwc0::zeros(1, 1, 3, 3);
        assert!(maxpool_backward(&mask, &grad_bad, &params, 4, 4).is_err());
        let grad_bad_c1 = Nc1hwc0::zeros(1, 2, 2, 2);
        assert!(maxpool_backward(&mask, &grad_bad_c1, &params, 4, 4).is_err());
    }

    #[test]
    fn dilated_maxpool_skips_between_taps() {
        // 1x1x1x5 row [9, 1, 2, 1, 4], K=(1,3), D=(1,2): the single patch
        // taps columns {0, 2, 4} -> max 9; a dense K=(1,3) patch at the
        // same spot would see {9, 1, 2}.
        let input = Nchw::from_vec(
            1,
            1,
            1,
            5,
            [9.0, 1.0, 2.0, 1.0, 4.0]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((1, 3), (1, 1)).with_dilation((1, 2));
        let out = maxpool_forward(&input, &params).unwrap();
        assert_eq!((out.h, out.w), (1, 1));
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), 9.0);
        // Second tap set {1, 1} never exists: only one output column.
        // Average over the dilated taps: (9+2+4)/3 = 5.
        let avg = avgpool_forward(&input, &params).unwrap();
        assert_eq!(avg.get(0, 0, 0, 0, 0).to_f32(), 5.0);
    }
    #[test]
    fn dilated_backward_routes_to_dilated_taps() {
        // Gradient through the dilated window lands only on tap columns.
        let input = Nchw::from_vec(
            1,
            1,
            1,
            5,
            [9.0, 1.0, 2.0, 1.0, 4.0]
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect(),
        )
        .unwrap()
        .to_nc1hwc0();
        let params = PoolParams::new((1, 3), (1, 1)).with_dilation((1, 2));
        let mask = maxpool_argmax_mask(&input, &params).unwrap();
        let grad = Nchw::from_vec(1, 1, 1, 1, vec![F16::ONE])
            .unwrap()
            .to_nc1hwc0();
        let dx = maxpool_backward(&mask, &grad, &params, 1, 5).unwrap();
        let got: Vec<f32> = (0..5).map(|w| dx.get(0, 0, 0, w, 0).to_f32()).collect();
        assert_eq!(got, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn global_pooling_reduces_the_whole_plane() {
        let input = Nchw::from_fn(1, 16, 3, 4, |_, c, h, w| {
            F16::from_f32((c + h * 4 + w) as f32)
        })
        .to_nc1hwc0();
        let params = PoolParams::global(3, 4);
        let mx = maxpool_forward(&input, &params).unwrap();
        assert_eq!((mx.h, mx.w), (1, 1));
        // channel c: values c .. c+11, max = c + 11.
        assert_eq!(mx.get(0, 0, 0, 0, 5).to_f32(), 5.0 + 11.0);
        let avg = avgpool_forward(&input, &params).unwrap();
        // mean of c + {0..11} = c + 5.5
        assert!((avg.get(0, 0, 0, 0, 2).to_f32() - 7.5).abs() < 0.01);
    }

    #[test]
    fn ceil_mode_overhang_reads_zeros() {
        // 1x1x1x5 row of -1s, K=(1,2), S=(1,2), ceil: 3 outputs; the last
        // window covers column 4 plus one synthesised zero, which wins the
        // max (count-include-pad convention).
        let input = Nchw::from_vec(1, 1, 1, 5, vec![F16::from_f32(-1.0); 5])
            .unwrap()
            .to_nc1hwc0();
        let params = PoolParams::new((1, 2), (1, 2)).with_ceil_mode(true);
        let out = maxpool_forward(&input, &params).unwrap();
        assert_eq!((out.h, out.w), (1, 3));
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), -1.0);
        assert_eq!(out.get(0, 0, 0, 2, 0).to_f32(), 0.0);
        // Avg keeps the fixed 1/(Kh*Kw) denominator: (-1 + 0)/2.
        let avg = avgpool_forward(&input, &params).unwrap();
        assert_eq!(avg.get(0, 0, 0, 2, 0).to_f32(), -0.5);
    }

    #[test]
    fn maxpool_with_padding_sees_zeros() {
        use crate::shape::Padding;
        // all-negative input with padding: the padded zeros win the max on
        // border patches (documented count-include-pad semantics).
        let params = PoolParams::with_padding((3, 3), (2, 2), Padding::uniform(1));
        let input = Nchw::from_fn(1, 16, 5, 5, |_, _, _, _| F16::from_f32(-1.0)).to_nc1hwc0();
        let out = maxpool_forward(&input, &params).unwrap();
        assert_eq!(out.get(0, 0, 0, 0, 0).to_f32(), 0.0); // border patch
        assert_eq!(out.get(0, 0, 1, 1, 0).to_f32(), -1.0); // interior patch
    }
}
