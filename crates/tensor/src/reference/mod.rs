//! Golden (scalar, obviously-correct) reference operators.
//!
//! These are the oracles for the whole workspace: every simulated kernel —
//! baseline or im2col/col2im accelerated — must produce **bit-identical
//! f16 output** to the functions here. To make that possible, each
//! reference fixes an accumulation order (documented per function) and the
//! simulated implementations are lowered so their hardware instructions
//! visit elements in the same order.

mod conv;
mod matrix;
mod pooling;

pub use conv::{conv2d_backward_data, conv2d_direct, conv2d_via_im2col, matmul_f32acc};
pub use matrix::{col2im_matrix, im2col_matrix, outker_matrix};
pub use pooling::{
    avgpool_backward, avgpool_forward, maxpool_argmax_mask, maxpool_backward, maxpool_forward,
    maxpool_forward_with_argmax,
};
