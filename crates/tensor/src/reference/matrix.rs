//! The classic matrix form of im2col/col2im — Figures 1 and 2 of the
//! paper — over plain NCHW tensors.
//!
//! The fractal-layout transforms in [`crate::im2col`] are what the
//! `Im2Col` *instruction* computes; these are the textbook matrices the
//! paper uses to *explain* it: `OutIn` is `(Oh*Ow, C*Kh*Kw)` — "each row
//! of matrix OutIn contains all the input needed to compute one element
//! of an output feature map linearized into one dimension" — and
//! `OutKer` is `(C*Kh*Kw, M)`. Multiplying them performs the
//! convolution.

use crate::layout::Nchw;
use crate::pool::PoolParams;
use crate::shape::ShapeError;
use dv_fp16::F16;

/// The `OutIn` matrix of Fig. 1: row = patch (row-major over `(oh, ow)`),
/// column = `(c, kh, kw)` linearised. Returns `(data, rows, cols)` with
/// `data` row-major. Padding positions contribute zeros.
pub fn im2col_matrix(
    input: &Nchw,
    params: &PoolParams,
) -> Result<(Vec<F16>, usize, usize), ShapeError> {
    if input.n != 1 {
        return Err(ShapeError::Mismatch("matrix im2col takes N = 1".into()));
    }
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let rows = oh * ow;
    let cols = input.c * params.kh * params.kw;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let mut out = vec![F16::ZERO; rows * cols];
    for ohi in 0..oh {
        for owi in 0..ow {
            let row = ohi * ow + owi;
            let mut col = 0usize;
            for c in 0..input.c {
                for khi in 0..params.kh {
                    for kwi in 0..params.kw {
                        let h = (ohi * params.sh + khi) as isize - pt;
                        let w = (owi * params.sw + kwi) as isize - pl;
                        if h >= 0 && w >= 0 && (h as usize) < input.h && (w as usize) < input.w {
                            out[row * cols + col] = input.get(0, c, h as usize, w as usize);
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Ok((out, rows, cols))
}

/// The inverse of [`im2col_matrix`]: scatter-add an `OutIn`-shaped matrix
/// back to `(1, C, Ih, Iw)`. "When patches do overlap, gradients that
/// refer to the same position in the output are summed" (Fig. 2);
/// contributions landing in the padding border are dropped. Accumulation
/// follows the canonical `(kh, kw, patch)` order used everywhere else.
pub fn col2im_matrix(
    matrix: &[F16],
    params: &PoolParams,
    c: usize,
    ih: usize,
    iw: usize,
) -> Result<Nchw, ShapeError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    let rows = oh * ow;
    let cols = c * params.kh * params.kw;
    if matrix.len() != rows * cols {
        return Err(ShapeError::DataLength {
            expected: rows * cols,
            got: matrix.len(),
        });
    }
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let mut out = Nchw::zeros(1, c, ih, iw);
    for ci in 0..c {
        for khi in 0..params.kh {
            for kwi in 0..params.kw {
                let col = (ci * params.kh + khi) * params.kw + kwi;
                for row in 0..rows {
                    let (ohi, owi) = (row / ow, row % ow);
                    let h = (ohi * params.sh + khi) as isize - pt;
                    let w = (owi * params.sw + kwi) as isize - pl;
                    if h < 0 || w < 0 || h as usize >= ih || w as usize >= iw {
                        continue;
                    }
                    let cur = out.get(0, ci, h as usize, w as usize);
                    out.set(
                        0,
                        ci,
                        h as usize,
                        w as usize,
                        cur + matrix[row * cols + col],
                    );
                }
            }
        }
    }
    Ok(out)
}

/// The `OutKer` matrix of Fig. 1: "each column of matrix OutKer contains
/// the weights of a kernel similarly linearized" — rows = `(c, kh, kw)`,
/// columns = output feature maps. Returns `(data, rows, cols)` row-major.
pub fn outker_matrix(kernels: &Nchw) -> (Vec<F16>, usize, usize) {
    let rows = kernels.c * kernels.h * kernels.w;
    let cols = kernels.n;
    let mut out = vec![F16::ZERO; rows * cols];
    for m in 0..kernels.n {
        let mut row = 0usize;
        for c in 0..kernels.c {
            for kh in 0..kernels.h {
                for kw in 0..kernels.w {
                    out[row * cols + m] = kernels.get(m, c, kh, kw);
                    row += 1;
                }
            }
        }
    }
    (out, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{conv2d_direct, matmul_f32acc};

    /// Figure 2, with the paper's exact numbers: a 3x5 single-channel
    /// image numbered row-major
    ///   1  2  3  4  5
    ///   6  7  8  9 10
    ///  11 12 13 14 15
    /// with kernel (3,3) and stride width 2 has two patches that overlap
    /// on the middle column {3, 8, 13}; im2col duplicates those elements
    /// into both rows, and col2im doubles them on the way back.
    #[test]
    fn figure_2_exact_numbers() {
        let img = Nchw::from_fn(1, 1, 3, 5, |_, _, h, w| {
            F16::from_f32((h * 5 + w + 1) as f32)
        });
        let params = PoolParams::new((3, 3), (1, 2));
        let (m, rows, cols) = im2col_matrix(&img, &params).unwrap();
        assert_eq!((rows, cols), (2, 9));
        let as_f32: Vec<f32> = m.iter().map(|v| v.to_f32()).collect();
        assert_eq!(
            &as_f32[..9],
            &[1., 2., 3., 6., 7., 8., 11., 12., 13.],
            "first patch row"
        );
        assert_eq!(
            &as_f32[9..],
            &[3., 4., 5., 8., 9., 10., 13., 14., 15.],
            "second patch row — {{3, 8, 13}} duplicated"
        );
        // col2im sums the duplicated column.
        let back = col2im_matrix(&m, &params, 1, 3, 5).unwrap();
        for h in 0..3 {
            for w in 0..5 {
                let orig = (h * 5 + w + 1) as f32;
                let mult = if w == 2 { 2.0 } else { 1.0 };
                assert_eq!(back.get(0, 0, h, w).to_f32(), orig * mult, "({h},{w})");
            }
        }
    }

    /// Fig. 1's claim: "multiplying OutIn and OutKer is equivalent to
    /// performing convolution with its original inputs."
    #[test]
    fn outin_times_outker_is_convolution() {
        let img = Nchw::from_fn(1, 3, 7, 8, |_, c, h, w| {
            F16::from_f32(((c * 13 + h * 5 + w * 2) % 11) as f32 * 0.25 - 1.25)
        });
        let kernels = Nchw::from_fn(4, 3, 3, 3, |m, c, h, w| {
            F16::from_f32(((m * 7 + c * 3 + h + w) % 9) as f32 * 0.125 - 0.5)
        });
        let params = PoolParams::new((3, 3), (2, 2));
        let (a, rows, k) = im2col_matrix(&img, &params).unwrap();
        let (b, k2, m) = outker_matrix(&kernels);
        assert_eq!(k, k2);
        let prod = matmul_f32acc(&a, &b, rows, k, m);
        let direct = conv2d_direct(&img, &kernels, &params).unwrap();
        let (oh, ow) = params.out_dims(7, 8).unwrap();
        for mi in 0..m {
            for ohi in 0..oh {
                for owi in 0..ow {
                    assert_eq!(
                        prod[(ohi * ow + owi) * m + mi],
                        direct.get(0, mi, ohi, owi),
                        "m={mi} ({ohi},{owi})"
                    );
                }
            }
        }
    }

    /// Matrix and fractal transforms agree where both are defined (full
    /// C0 channel groups).
    #[test]
    fn matrix_and_fractal_im2col_agree() {
        use crate::im2col::im2col_fractal;
        use crate::layout::C0;
        let img = Nchw::from_fn(1, 16, 6, 6, |_, c, h, w| {
            F16::from_f32(((c * 5 + h * 3 + w) % 17) as f32 - 8.0)
        });
        let params = PoolParams::new((2, 2), (2, 2));
        let (m, rows, cols) = im2col_matrix(&img, &params).unwrap();
        let fr = im2col_fractal(&img.to_nc1hwc0(), &params).unwrap();
        let (oh, ow) = params.out_dims(6, 6).unwrap();
        for row in 0..rows {
            for col in 0..cols {
                let c = col / 4; // (kh, kw) = 2x2
                let kh = (col % 4) / 2;
                let kw = col % 2;
                let want = fr.get(0, c / C0, kh, kw, row / ow, row % ow, c % C0);
                assert_eq!(m[row * cols + col], want, "row {row} col {col}");
            }
        }
        let _ = oh;
    }

    #[test]
    fn col2im_matrix_validates_length() {
        let params = PoolParams::new((2, 2), (2, 2));
        assert!(col2im_matrix(&[F16::ZERO; 7], &params, 1, 4, 4).is_err());
    }
}
