//! Reference convolution and matrix multiplication — the substrate the
//! Im2Col/Col2Im instructions were designed for (paper, Section II-A).
//!
//! The Cube Unit accumulates f16 products in f32 (standard for systolic
//! matrix units; Section III-A models the unit after the TPU's MXU), so
//! both references here accumulate in f32 and round once at the end.

use crate::layout::{Nchw, C0};
use crate::pool::PoolParams;
use crate::shape::ShapeError;
use dv_fp16::F16;

/// Direct (nested-loop) 2D convolution in NCHW:
/// `out[n,m,oh,ow] = sum over (c,kh,kw) of in[n,c,oh*Sh+kh-Pt,ow*Sw+kw-Pl] * ker[m,c,kh,kw]`.
///
/// `kernels` is an `Nchw` tensor reinterpreted as `(M, C, Kh, Kw)` — M
/// output feature maps of C-channel `(Kh, Kw)` filters.
pub fn conv2d_direct(
    input: &Nchw,
    kernels: &Nchw,
    params: &PoolParams,
) -> Result<Nchw, ShapeError> {
    if kernels.c != input.c {
        return Err(ShapeError::Mismatch(format!(
            "kernel channels {} != input channels {}",
            kernels.c, input.c
        )));
    }
    if kernels.h != params.kh || kernels.w != params.kw {
        return Err(ShapeError::Mismatch(format!(
            "kernel tensor {:?} does not match params {:?}",
            (kernels.h, kernels.w),
            (params.kh, params.kw)
        )));
    }
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let m = kernels.n;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let mut out = Nchw::zeros(input.n, m, oh, ow);
    for n in 0..input.n {
        for mi in 0..m {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..input.c {
                        for khi in 0..params.kh {
                            for kwi in 0..params.kw {
                                let h = (ohi * params.sh + khi) as isize - pt;
                                let w = (owi * params.sw + kwi) as isize - pl;
                                if h < 0 || w < 0 || h as usize >= input.h || w as usize >= input.w
                                {
                                    continue; // zero padding contributes 0
                                }
                                let x = input.get(n, c, h as usize, w as usize).to_f32();
                                let k = kernels.get(mi, c, khi, kwi).to_f32();
                                acc += x * k;
                            }
                        }
                    }
                    out.set(n, mi, ohi, owi, F16::from_f32(acc));
                }
            }
        }
    }
    Ok(out)
}

/// Reference matrix multiply `C = A x B` with f16 inputs and f32
/// accumulation, `A` is `(m, k)` row-major, `B` is `(k, n)` row-major.
/// This is the oracle for the simulated Cube Unit's fractal matmul.
pub fn matmul_f32acc(a: &[F16], b: &[F16], m: usize, k: usize, n: usize) -> Vec<F16> {
    assert_eq!(a.len(), m * k, "A dimensions");
    assert_eq!(b.len(), k * n, "B dimensions");
    let mut c = vec![F16::ZERO; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l].to_f32() * b[l * n + j].to_f32();
            }
            c[i * n + j] = F16::from_f32(acc);
        }
    }
    c
}

/// Convolution computed the framework way: im2col the input (fractal
/// layout), flatten kernels, and matrix-multiply — the algorithm of
/// Fig. 1. Used in tests to show `conv_im2col == conv_direct` and as
/// oracle for the Cube-Unit pipeline in `dv-conv`.
pub fn conv2d_via_im2col(
    input: &Nchw,
    kernels: &Nchw,
    params: &PoolParams,
) -> Result<Nchw, ShapeError> {
    if kernels.c != input.c {
        return Err(ShapeError::Mismatch(format!(
            "kernel channels {} != input channels {}",
            kernels.c, input.c
        )));
    }
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let fractal = input.to_nc1hwc0();
    let patches = crate::im2col::im2col_fractal(&fractal, params)?;
    let m = kernels.n;
    // OutIn: rows = patches (Oh*Ow), cols = C1*Kh*Kw*C0 (channel-padded).
    let k_len = fractal.c1 * params.kh * params.kw * C0;
    let rows = oh * ow;
    let mut out_in = vec![F16::ZERO; rows * k_len];
    for ohi in 0..oh {
        for owi in 0..ow {
            let row = ohi * ow + owi;
            let mut col = 0;
            for c1 in 0..fractal.c1 {
                for khi in 0..params.kh {
                    for kwi in 0..params.kw {
                        for c0 in 0..C0 {
                            out_in[row * k_len + col] = patches.get(0, c1, khi, kwi, ohi, owi, c0);
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    // OutKer: rows = C1*Kh*Kw*C0 in the same order, cols = M.
    let mut out_ker = vec![F16::ZERO; k_len * m];
    for mi in 0..m {
        let mut row = 0;
        for c1 in 0..fractal.c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for c0 in 0..C0 {
                        let c = c1 * C0 + c0;
                        let v = if c < kernels.c {
                            kernels.get(mi, c, khi, kwi)
                        } else {
                            F16::ZERO // channel padding contributes nothing
                        };
                        out_ker[row * m + mi] = v;
                        row += 1;
                    }
                }
            }
        }
    }
    let prod = matmul_f32acc(&out_in, &out_ker, rows, k_len, m);
    // prod is (Oh*Ow, M); transpose into NCHW (1, M, Oh, Ow).
    let mut out = Nchw::zeros(input.n, m, oh, ow);
    for mi in 0..m {
        for ohi in 0..oh {
            for owi in 0..ow {
                out.set(0, mi, ohi, owi, prod[(ohi * ow + owi) * m + mi]);
            }
        }
    }
    Ok(out)
}

/// Reference backward-data ("dgrad") of a convolution implemented with
/// im2col: `dx = col2im(dY x W^T)` (paper, Section II-B: "Col2im is used
/// in the backward propagation pass of convolutional layers implemented
/// with Im2col").
///
/// `gradients` is `(1, M, Oh, Ow)` NCHW; `kernels` is `(M, C, Kh, Kw)`.
/// The matmul accumulates in f32 (Cube semantics); the col2im merge sums
/// in f16 in the canonical order, exactly like the simulated pipeline.
pub fn conv2d_backward_data(
    gradients: &Nchw,
    kernels: &Nchw,
    params: &PoolParams,
    ih: usize,
    iw: usize,
) -> Result<Nchw, ShapeError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    if (gradients.h, gradients.w) != (oh, ow) || gradients.c != kernels.n {
        return Err(ShapeError::Mismatch(format!(
            "gradients {:?} x{} do not match geometry {:?} x{}",
            (gradients.h, gradients.w),
            gradients.c,
            (oh, ow),
            kernels.n
        )));
    }
    let m = kernels.n;
    let c1 = kernels.c.div_ceil(C0);
    let k_len = c1 * params.kh * params.kw * C0;
    // dY as (patches x M) row-major.
    let rows = oh * ow;
    let mut dy = vec![F16::ZERO; rows * m];
    for mi in 0..m {
        for ohi in 0..oh {
            for owi in 0..ow {
                dy[(ohi * ow + owi) * m + mi] = gradients.get(0, mi, ohi, owi);
            }
        }
    }
    // W^T as (M x K) row-major, K ordered (c1, kh, kw, c0).
    let mut wt = vec![F16::ZERO; m * k_len];
    for mi in 0..m {
        let mut k = 0;
        for c1i in 0..c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for c0 in 0..C0 {
                        let ch = c1i * C0 + c0;
                        wt[mi * k_len + k] = if ch < kernels.c {
                            kernels.get(mi, ch, khi, kwi)
                        } else {
                            F16::ZERO
                        };
                        k += 1;
                    }
                }
            }
        }
    }
    let mg = matmul_f32acc(&dy, &wt, rows, m, k_len);
    // Reshape (patches x K) into the patch tensor and col2im-merge.
    let mut patches = crate::im2col::PatchTensor::zeros(1, c1, params.kh, params.kw, oh, ow);
    for p in 0..rows {
        let mut k = 0;
        for c1i in 0..c1 {
            for khi in 0..params.kh {
                for kwi in 0..params.kw {
                    for c0 in 0..C0 {
                        patches.set(0, c1i, khi, kwi, p / ow, p % ow, c0, mg[p * k_len + k]);
                        k += 1;
                    }
                }
            }
        }
    }
    let dx_fractal = crate::im2col::col2im_fractal(&patches, params, ih, iw)?;
    // back to NCHW, dropping channel padding
    let mut trimmed = Nchw::zeros(1, kernels.c, ih, iw);
    for c in 0..kernels.c {
        for h in 0..ih {
            for w in 0..iw {
                trimmed.set(0, c, h, w, dx_fractal.get(0, c / C0, h, w, c % C0));
            }
        }
    }
    Ok(trimmed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(seed: u32, i: usize) -> F16 {
        // small deterministic pseudo-random values exactly representable
        // in f16 so f32-accumulated paths agree bit-exactly
        let v = ((seed as usize * 31 + i * 17) % 13) as f32 - 6.0;
        F16::from_f32(v * 0.25)
    }

    #[test]
    fn conv_identity_kernel_is_subsampling() {
        // 1x1 kernel of 1.0 with stride 2 just subsamples.
        let input = Nchw::from_fn(1, 1, 4, 4, |_, _, h, w| F16::from_f32((h * 4 + w) as f32));
        let kernels = Nchw::from_vec(1, 1, 1, 1, vec![F16::ONE]).unwrap();
        let params = PoolParams::new((1, 1), (2, 2));
        let out = conv2d_direct(&input, &kernels, &params).unwrap();
        assert_eq!((out.h, out.w), (2, 2));
        assert_eq!(out.get(0, 0, 0, 0).to_f32(), 0.0);
        assert_eq!(out.get(0, 0, 0, 1).to_f32(), 2.0);
        assert_eq!(out.get(0, 0, 1, 0).to_f32(), 8.0);
        assert_eq!(out.get(0, 0, 1, 1).to_f32(), 10.0);
    }

    #[test]
    fn conv_sum_kernel() {
        // all-ones 2x2 kernel computes the patch sum.
        let input = Nchw::from_fn(1, 1, 3, 3, |_, _, h, w| F16::from_f32((h * 3 + w) as f32));
        let kernels = Nchw::from_vec(1, 1, 2, 2, vec![F16::ONE; 4]).unwrap();
        let params = PoolParams::new((2, 2), (1, 1));
        let out = conv2d_direct(&input, &kernels, &params).unwrap();
        assert_eq!(out.get(0, 0, 0, 0).to_f32(), 0.0 + 1.0 + 3.0 + 4.0);
        assert_eq!(out.get(0, 0, 1, 1).to_f32(), 4.0 + 5.0 + 7.0 + 8.0);
    }

    #[test]
    fn matmul_small_known() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a: Vec<F16> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&x| F16::from_f32(x))
            .collect();
        let b: Vec<F16> = [5.0, 6.0, 7.0, 8.0]
            .iter()
            .map(|&x| F16::from_f32(x))
            .collect();
        let c = matmul_f32acc(&a, &b, 2, 2, 2);
        let vals: Vec<f32> = c.iter().map(|x| x.to_f32()).collect();
        assert_eq!(vals, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn im2col_conv_equals_direct_conv() {
        // multi-channel, multi-kernel, overlapping stride
        let input = Nchw::from_fn(1, 5, 6, 7, |_, c, h, w| det(1, c * 100 + h * 10 + w));
        let kernels = Nchw::from_fn(3, 5, 3, 3, |m, c, h, w| {
            det(2, m * 1000 + c * 100 + h * 10 + w)
        });
        let params = PoolParams::new((3, 3), (2, 2));
        let direct = conv2d_direct(&input, &kernels, &params).unwrap();
        let via = conv2d_via_im2col(&input, &kernels, &params).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn im2col_conv_equals_direct_conv_with_padding() {
        use crate::shape::Padding;
        let input = Nchw::from_fn(1, 3, 5, 5, |_, c, h, w| det(3, c * 100 + h * 10 + w));
        let kernels = Nchw::from_fn(2, 3, 3, 3, |m, c, h, w| {
            det(4, m * 1000 + c * 100 + h * 10 + w)
        });
        let params = PoolParams::with_padding((3, 3), (1, 1), Padding::uniform(1));
        let direct = conv2d_direct(&input, &kernels, &params).unwrap();
        let via = conv2d_via_im2col(&input, &kernels, &params).unwrap();
        assert_eq!((direct.h, direct.w), (5, 5)); // same-size conv
        assert_eq!(direct, via);
    }

    #[test]
    fn backward_data_1x1_is_transposed_pointwise_conv() {
        // 1x1 kernel, stride 1: dx[c, h, w] = sum_m dY[m, h, w] * W[m, c].
        let m = 3;
        let c = 5;
        let grads = Nchw::from_fn(1, m, 4, 4, |_, mi, h, w| det(7, mi * 16 + h * 4 + w));
        let kernels = Nchw::from_fn(m, c, 1, 1, |mi, ci, _, _| det(8, mi * c + ci));
        let params = PoolParams::new((1, 1), (1, 1));
        let dx = conv2d_backward_data(&grads, &kernels, &params, 4, 4).unwrap();
        assert_eq!((dx.c, dx.h, dx.w), (c, 4, 4));
        for ci in 0..c {
            for h in 0..4 {
                for w in 0..4 {
                    let mut acc = 0.0f32;
                    for mi in 0..m {
                        acc += grads.get(0, mi, h, w).to_f32() * kernels.get(mi, ci, 0, 0).to_f32();
                    }
                    assert_eq!(dx.get(0, ci, h, w), F16::from_f32(acc), "({ci},{h},{w})");
                }
            }
        }
    }

    #[test]
    fn backward_data_shapes_validated() {
        let grads = Nchw::zeros(1, 3, 4, 4);
        let kernels = Nchw::zeros(3, 5, 3, 3);
        let params = PoolParams::new((3, 3), (1, 1));
        // gradients plane must match Eq.1-derived (oh, ow)
        assert!(conv2d_backward_data(&grads, &kernels, &params, 4, 4).is_err());
        assert!(conv2d_backward_data(&grads, &kernels, &params, 6, 6).is_ok());
        // gradient channels must equal kernel count
        let bad = Nchw::zeros(1, 2, 4, 4);
        assert!(conv2d_backward_data(&bad, &kernels, &params, 6, 6).is_err());
    }

    #[test]
    fn backward_data_gradient_flows_only_to_covered_pixels() {
        // stride 3 with kernel 2: input pixels in the gap receive zero.
        let params = PoolParams::new((2, 2), (3, 3));
        let kernels = Nchw::from_fn(1, 1, 2, 2, |_, _, _, _| F16::ONE);
        let grads = Nchw::from_fn(1, 1, 2, 2, |_, _, _, _| F16::ONE);
        let dx = conv2d_backward_data(&grads, &kernels, &params, 5, 5).unwrap();
        let mult = crate::im2col::coverage_multiplicity(&params, 5, 5);
        for h in 0..5 {
            for w in 0..5 {
                let want = mult[h * 5 + w] as f32;
                assert_eq!(dx.get(0, 0, h, w).to_f32(), want, "({h},{w})");
            }
        }
    }

    #[test]
    fn conv_rejects_mismatched_channels() {
        let input = Nchw::zeros(1, 3, 5, 5);
        let kernels = Nchw::zeros(2, 4, 3, 3);
        let params = PoolParams::new((3, 3), (1, 1));
        assert!(conv2d_direct(&input, &kernels, &params).is_err());
        assert!(conv2d_via_im2col(&input, &kernels, &params).is_err());
    }
}
