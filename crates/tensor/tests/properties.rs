//! Property-based tests over layouts and golden operators.

use dv_fp16::F16;
use dv_tensor::reference;
use dv_tensor::{
    col2im_fractal, coverage_multiplicity, im2col_fractal, Nc1hwc0, Nchw, Padding, PoolParams, C0,
};
use proptest::prelude::*;

/// Strategy: a small pooling geometry plus an input extent that admits at
/// least one patch.
fn geometry() -> impl Strategy<Value = (PoolParams, usize, usize)> {
    (
        1usize..=3,
        1usize..=3,
        1usize..=3,
        1usize..=3,
        0usize..=2,
        0usize..=2,
    )
        .prop_flat_map(|(kh, kw, sh, sw, pv, ph)| {
            let pad = Padding {
                top: pv.min(kh.saturating_sub(1)),
                bottom: pv.min(kh.saturating_sub(1)),
                left: ph.min(kw.saturating_sub(1)),
                right: ph.min(kw.saturating_sub(1)),
            };
            let params = PoolParams::with_padding((kh, kw), (sh, sw), pad);
            let min_h = kh.saturating_sub(pad.vertical()).max(1);
            let min_w = kw.saturating_sub(pad.horizontal()).max(1);
            (
                Just(params),
                min_h.max(kh)..=min_h.max(kh) + 12,
                min_w.max(kw)..=min_w.max(kw) + 12,
            )
        })
}

/// Small-integer tensors: every f16 partial sum over them is exact, so
/// accumulation order never matters.
fn int_tensor(c1: usize, h: usize, w: usize, seed: u64) -> Nc1hwc0 {
    let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
    Nc1hwc0::from_fn(1, c1, h, w, |_, _, _, _, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        F16::from_f32(((s >> 33) % 17) as f32 - 8.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NCHW -> NC1HWC0 -> NCHW is the identity for any channel count.
    #[test]
    fn layout_round_trip(n in 1usize..=2, c in 1usize..=40, h in 1usize..=6, w in 1usize..=6,
                         seed in any::<u32>()) {
        let t = Nchw::from_fn(n, c, h, w, |ni, ci, hi, wi| {
            F16::from_f32(((seed as usize + ni * 97 + ci * 13 + hi * 7 + wi) % 200) as f32 - 100.0)
        });
        let f = t.to_nc1hwc0();
        prop_assert_eq!(f.c1, c.div_ceil(C0));
        prop_assert_eq!(f.to_nchw(), t);
    }

    /// col2im(im2col(x)) == multiplicity ⊙ x, elementwise, for any valid
    /// geometry including padding.
    #[test]
    fn col2im_of_im2col_is_multiplicity((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = int_tensor(1, ih, iw, seed);
        let patches = im2col_fractal(&x, &params).unwrap();
        let back = col2im_fractal(&patches, &params, ih, iw).unwrap();
        let mult = coverage_multiplicity(&params, ih, iw);
        for h in 0..ih {
            for w in 0..iw {
                for c0 in 0..C0 {
                    let want = x.get(0, 0, h, w, c0).to_f32() * mult[h * iw + w] as f32;
                    prop_assert_eq!(back.get(0, 0, h, w, c0).to_f32(), want,
                        "at ({}, {}, {})", h, w, c0);
                }
            }
        }
    }

    /// Without overlap (stride >= kernel) and without padding, col2im is
    /// the exact inverse of im2col.
    #[test]
    fn no_overlap_col2im_inverts(kh in 1usize..=3, kw in 1usize..=3,
                                 extra in 0usize..=2, seed in any::<u64>()) {
        let params = PoolParams::new((kh, kw), (kh + extra, kw + extra));
        let (ih, iw) = (kh * 4 + extra, kw * 4 + extra);
        let x = int_tensor(1, ih, iw, seed);
        let patches = im2col_fractal(&x, &params).unwrap();
        let back = col2im_fractal(&patches, &params, ih, iw).unwrap();
        let mult = coverage_multiplicity(&params, ih, iw);
        for h in 0..ih {
            for w in 0..iw {
                let m = mult[h * iw + w];
                prop_assert!(m <= 1, "no overlap means multiplicity <= 1");
                for c0 in 0..C0 {
                    let want = if m == 1 { x.get(0, 0, h, w, c0) } else { F16::ZERO };
                    prop_assert_eq!(back.get(0, 0, h, w, c0), want);
                }
            }
        }
    }

    /// Every MaxPool output value appears in the input (or is the padding
    /// zero); and it is >= every element of its patch.
    #[test]
    fn maxpool_output_dominates_patch((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = int_tensor(1, ih, iw, seed);
        let out = reference::maxpool_forward(&x, &params).unwrap();
        let patches = im2col_fractal(&x, &params).unwrap();
        for oh in 0..out.h {
            for ow in 0..out.w {
                for c0 in 0..C0 {
                    let m = out.get(0, 0, oh, ow, c0);
                    let mut seen = false;
                    for kh in 0..params.kh {
                        for kw in 0..params.kw {
                            let v = patches.get(0, 0, kh, kw, oh, ow, c0);
                            prop_assert!(v <= m, "patch element exceeds max");
                            if v == m { seen = true; }
                        }
                    }
                    prop_assert!(seen, "max value must come from the patch");
                }
            }
        }
    }

    /// The argmax mask marks exactly the positions holding the patch max
    /// (>= 1 per patch; all ties marked).
    #[test]
    fn argmax_mask_marks_exactly_maxima((params, ih, iw) in geometry(), seed in any::<u64>()) {
        let x = int_tensor(1, ih, iw, seed);
        let out = reference::maxpool_forward(&x, &params).unwrap();
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let patches = im2col_fractal(&x, &params).unwrap();
        for oh in 0..out.h {
            for ow in 0..out.w {
                for c0 in 0..C0 {
                    let m = out.get(0, 0, oh, ow, c0);
                    let mut marked = 0;
                    for kh in 0..params.kh {
                        for kw in 0..params.kw {
                            let bit = mask.get(0, 0, kh, kw, oh, ow, c0);
                            let v = patches.get(0, 0, kh, kw, oh, ow, c0);
                            prop_assert_eq!(bit == F16::ONE, v == m,
                                "mask bit must equal (element == max)");
                            if bit == F16::ONE { marked += 1; }
                        }
                    }
                    prop_assert!(marked >= 1);
                }
            }
        }
    }

    /// MaxPool backward conserves gradient mass scaled by the tie count:
    /// sum(dx) == sum over patches of grad * (#ties in that patch),
    /// exactly for integer values.
    #[test]
    fn maxpool_backward_mass((params, ih, iw) in geometry(), seed in any::<u64>()) {
        // padding drops contributions that land in the border; restrict
        // to no padding for an exact conservation statement
        let params = PoolParams::new((params.kh, params.kw), (params.sh, params.sw));
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let x = int_tensor(1, ih, iw, seed);
        let mask = reference::maxpool_argmax_mask(&x, &params).unwrap();
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let g = int_tensor(1, oh.max(1), ow.max(1), seed ^ 0xABCD);
        // reshape gradient tensor to the patch grid
        let g = Nc1hwc0::from_fn(1, 1, oh, ow, |_, _, h, w, c0| {
            F16::from_f32((g.get(0, 0, h % g.h, w % g.w, c0).to_f32() / 2.0).round().abs())
        });
        let dx = reference::maxpool_backward(&mask, &g, &params, ih, iw).unwrap();
        let dx_sum: f64 = dx.data().iter().map(|v| v.to_f32() as f64).sum();
        let mut want = 0.0f64;
        for ohi in 0..oh {
            for owi in 0..ow {
                for c0 in 0..C0 {
                    let mut ties = 0.0;
                    for kh in 0..params.kh {
                        for kw in 0..params.kw {
                            if mask.get(0, 0, kh, kw, ohi, owi, c0) == F16::ONE {
                                ties += 1.0;
                            }
                        }
                    }
                    want += g.get(0, 0, ohi, owi, c0).to_f32() as f64 * ties;
                }
            }
        }
        prop_assert_eq!(dx_sum, want);
    }

    /// AvgPool of a constant tensor is that constant (for exactly
    /// representable constants and kernel areas whose reciprocal times
    /// area rounds back: use powers of two).
    #[test]
    fn avgpool_constant(k in 1usize..=2, s in 1usize..=2, c in -8i32..=8) {
        let k = 1 << k; // 2 or 4 -> area 4 or 16, reciprocal exact
        let params = PoolParams::new((k, k), (s, s));
        let (ih, iw) = (k + 3 * s, k + 3 * s);
        let x = Nc1hwc0::from_fn(1, 1, ih, iw, |_, _, _, _, _| F16::from_f32(c as f32));
        let out = reference::avgpool_forward(&x, &params).unwrap();
        for v in out.data() {
            prop_assert_eq!(v.to_f32(), c as f32);
        }
    }

    /// AvgPool backward conserves gradient mass exactly when the kernel
    /// area is a power of two and there is no padding.
    #[test]
    fn avgpool_backward_mass(s in 1usize..=2, seed in any::<u64>()) {
        let params = PoolParams::new((2, 2), (s, s));
        let (ih, iw) = (9, 9);
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let g = int_tensor(1, oh, ow, seed);
        let dx = reference::avgpool_backward(&g, &params, ih, iw).unwrap();
        let dx_sum: f64 = dx.data().iter().map(|v| v.to_f32() as f64).sum();
        let g_sum: f64 = g.data().iter().map(|v| v.to_f32() as f64).sum();
        prop_assert_eq!(dx_sum, g_sum);
    }

    /// Equation-1 consistency: the last patch fits inside the padded
    /// input, and one more patch would not.
    #[test]
    fn out_dims_tight((params, ih, iw) in geometry()) {
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let padded_h = ih + params.padding.vertical();
        let padded_w = iw + params.padding.horizontal();
        prop_assert!((oh - 1) * params.sh + params.kh <= padded_h);
        prop_assert!(oh * params.sh + params.kh > padded_h);
        prop_assert!((ow - 1) * params.sw + params.kw <= padded_w);
        prop_assert!(ow * params.sw + params.kw > padded_w);
    }

    /// im2col is injective on data: two tensors differing at a covered
    /// position produce different patch tensors.
    #[test]
    fn im2col_detects_single_element_change((params, ih, iw) in geometry(),
                                            seed in any::<u64>(),
                                            hsel in 0usize..64, wsel in 0usize..64) {
        let x = int_tensor(1, ih, iw, seed);
        let (h, w) = (hsel % ih, wsel % iw);
        let mult = coverage_multiplicity(&params, ih, iw);
        prop_assume!(mult[h * iw + w] > 0);
        let mut y = x.clone();
        let old = y.get(0, 0, h, w, 0);
        y.set(0, 0, h, w, 0, old + F16::from_f32(64.0));
        let px = im2col_fractal(&x, &params).unwrap();
        let py = im2col_fractal(&y, &params).unwrap();
        prop_assert_ne!(px.data(), py.data());
    }
}
