//! The enforcing performance-regression gate: replays the Fig. 7 and
//! Fig. 8 workloads, writes `BENCH_pooling.json` at the workspace root,
//! and fails if any tracked cycle count regressed more than the
//! tolerance against the committed baseline
//! (`crates/bench/baselines/pooling.json`).
//!
//! If this test fails after an *intentional* cost-model or lowering
//! change, regenerate the baseline with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit it.

use dv_bench::gate;
use std::path::Path;

#[test]
fn perf_gate_no_regressions_vs_committed_baseline() {
    match gate::run() {
        Ok(doc) => {
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..");
            let path = root.join("BENCH_pooling.json");
            std::fs::write(&path, &doc).expect("write BENCH_pooling.json");

            // The emitted document must itself be well-formed and carry
            // the per-shape speedups.
            let metrics = gate::parse_metrics(&doc).expect("emitted JSON parses");
            assert_eq!(
                metrics.len(),
                gate::parse_metrics(gate::COMMITTED_BASELINE)
                    .expect("baseline parses")
                    .len(),
                "metric set drifted from the committed baseline"
            );
            for m in &metrics {
                assert!(m.speedup() > 0.0, "{}: degenerate speedup", m.key);
            }
            let parsed = dv_bench::json::parse(&doc).unwrap();
            assert!(
                parsed
                    .get("metrics")
                    .and_then(|a| a.as_arr())
                    .and_then(|a| a.first())
                    .and_then(|m| m.get("vs_baseline_standard"))
                    .is_some(),
                "BENCH_pooling.json must report speedup vs the baseline"
            );
        }
        Err(regressions) => panic!(
            "performance regressions vs the committed baseline:\n  {}\n\
             (if intentional, regenerate with `cargo run --release -p dv-bench --bin repro -- gate`)",
            regressions.join("\n  ")
        ),
    }
}
