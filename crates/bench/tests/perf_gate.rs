//! The enforcing performance-regression gate: replays the Fig. 7,
//! Fig. 8, and Table I workloads, writes `BENCH_pooling.json` at the
//! workspace root, and fails if any tracked cycle count, issue-model
//! column, or buffer-occupancy peak regressed more than the tolerance
//! against the committed baseline
//! (`crates/bench/baselines/pooling.json`).
//!
//! On top of the tolerance gate, three exact invariants are pinned here:
//!
//! * the single-issue columns of every Fig. 7 / Fig. 8 metric equal the
//!   pinned baseline cycle-for-cycle (hardcoded below — regenerating the
//!   baseline must never move them, because per-instruction charges are
//!   issue-model-independent; only an intentional *lowering* change may
//!   re-pin a row, with justification);
//! * dual-pipe mode strictly lowers the accelerated (im2col) cycle count
//!   of every Fig. 7 workload, and never exceeds single-issue anywhere;
//! * direct pooling still beats im2col at stride (1, 1) — the Fig. 8
//!   crossover — in both issue models.
//!
//! If this test fails after an *intentional* cost-model or lowering
//! change, regenerate the baseline with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit it.

use dv_bench::gate;
use std::path::Path;

/// The PR 1 cycle counts (single-issue model), verbatim from the
/// baseline committed before the dual-pipe scheduler landed:
/// (key, standard_cycles, accelerated_cycles).
///
/// Exception: the two *multi-band* backward rows (fig7c at 147 and 71)
/// were re-pinned when banded backward was made bit-exact — each band
/// now re-loads and re-merges the overlap patches instead of carrying
/// partial sums, which legitimately grows the instruction stream. The
/// single-band rows are still the PR 1 numbers cycle-for-cycle.
const PR1_BASELINE: &[(&str, u64, u64)] = &[
    ("fig7a/147x147x64", 332120, 97836),
    ("fig7b/147x147x64", 686895, 159629),
    ("fig7c/147x147x64", 1050334, 173041),
    ("fig7a/71x71x192", 76373, 22673),
    ("fig7b/71x71x192", 157893, 37504),
    ("fig7c/71x71x192", 219928, 36985),
    ("fig7a/35x35x288", 18152, 5714),
    ("fig7b/35x35x288", 37370, 8945),
    ("fig7c/35x35x288", 49379, 8726),
    ("fig8s1/16x16", 2201, 3452),
    ("fig8s1/24x24", 5011, 7660),
    ("fig8s2/16x16", 3233, 1505),
    ("fig8s2/24x24", 7738, 2697),
    ("fig8s2/32x32", 14231, 4649),
    ("fig8s3/16x16", 1838, 1081),
    ("fig8s3/24x24", 4408, 1840),
    ("fig8s3/32x32", 6965, 2924),
];

#[test]
fn perf_gate_no_regressions_vs_committed_baseline() {
    match gate::run() {
        Ok(doc) => {
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..");
            let path = root.join("BENCH_pooling.json");
            std::fs::write(&path, &doc).expect("write BENCH_pooling.json");

            // The emitted document must itself be well-formed and carry
            // the per-shape speedups.
            let metrics = gate::parse_metrics(&doc).expect("emitted JSON parses");
            assert_eq!(
                metrics.len(),
                gate::parse_metrics(gate::COMMITTED_BASELINE)
                    .expect("baseline parses")
                    .len(),
                "metric set drifted from the committed baseline"
            );
            for m in &metrics {
                assert!(m.speedup() > 0.0, "{}: degenerate speedup", m.key);
                assert!(
                    m.standard_cycles <= m.standard_cycles_single
                        && m.accelerated_cycles <= m.accelerated_cycles_single,
                    "{}: the dual-pipe makespan can never exceed the serial sum",
                    m.key
                );
                if m.key.starts_with("fig7") {
                    assert!(
                        m.accelerated_cycles < m.accelerated_cycles_single,
                        "{}: dual-pipe must strictly accelerate the im2col pipeline \
                         ({} vs {})",
                        m.key,
                        m.accelerated_cycles,
                        m.accelerated_cycles_single
                    );
                }
                if m.key.starts_with("fig8s1/") {
                    assert!(
                        m.speedup() < 1.0 && m.speedup_single() < 1.0 && m.speedup_db() < 1.0,
                        "{}: direct pooling must still win at stride (1,1) \
                         in every issue model",
                        m.key
                    );
                }
                // Double-buffering may never exceed the 2x band-footprint
                // budget the halved capacity query promises.
                assert!(
                    m.ub_peak_db <= 2 * m.ub_peak && m.l1_peak_db <= 2 * m.l1_peak.max(1),
                    "{}: double-buffered peaks ({}, {}) exceed the 2x budget of ({}, {})",
                    m.key,
                    m.ub_peak_db,
                    m.l1_peak_db,
                    m.ub_peak,
                    m.l1_peak
                );
                // Every Fig. 8 gate workload sits below its tiling
                // threshold — a single band, so double-buffering has
                // nothing to prefetch and must leave the schedule alone.
                if m.key.starts_with("fig8") {
                    assert_eq!(
                        (m.standard_cycles_db, m.accelerated_cycles_db),
                        (m.standard_cycles, m.accelerated_cycles),
                        "{}: single-band workloads must be unaffected by double-buffering",
                        m.key
                    );
                }
            }

            // Legacy invariant: the single-issue columns are the PR 1
            // numbers, exactly.
            for &(key, std_cycles, acc_cycles) in PR1_BASELINE {
                let m = metrics
                    .iter()
                    .find(|m| m.key == key)
                    .unwrap_or_else(|| panic!("{key}: PR 1 metric disappeared"));
                assert_eq!(
                    (m.standard_cycles_single, m.accelerated_cycles_single),
                    (std_cycles, acc_cycles),
                    "{key}: single-issue columns must reproduce PR 1 cycle-for-cycle"
                );
            }

            let parsed = dv_bench::json::parse(&doc).unwrap();
            assert!(
                parsed
                    .get("metrics")
                    .and_then(|a| a.as_arr())
                    .and_then(|a| a.first())
                    .and_then(|m| m.get("vs_baseline_standard"))
                    .is_some(),
                "BENCH_pooling.json must report speedup vs the baseline"
            );

            // The artifact carries the per-core-count scaling columns:
            // every Fig. 7 shape at every swept core count, with the
            // contended column never below the independent one. (The
            // bit-identical / monotone / fair-share-bound asserts run
            // inside `collect_scaling` itself; the tolerance comparison
            // against the committed baseline ran inside `gate::run`.)
            let scaling = gate::parse_scaling(&doc).expect("scaling section parses");
            assert_eq!(
                scaling.len(),
                3 * gate::SCALING_CORES.len(),
                "scaling section must cover all Fig. 7 shapes x core counts"
            );
            for s in &scaling {
                assert!(
                    s.cycles_contended >= s.cycles,
                    "{}: the contention stage can only add cycles",
                    s.key
                );
            }

            // The artifact carries the auto-tuner's chosen-algorithm
            // column per tracked row. (The honesty contract — no
            // fallbacks, no uncertified wins, bit-identical outputs,
            // tuned never slower than a forced alternative — is asserted
            // inside `collect_tuner` itself; here we re-check the
            // emitted rows and pin the Fig. 8 crossover as *choices*.)
            let tuner = gate::parse_tuner(&doc).expect("tuner section parses");
            assert!(!tuner.is_empty(), "tuner section must be emitted");
            for t in &tuner {
                if t.key.starts_with("tuner/fig8s1/") {
                    assert_eq!(
                        t.chosen, "direct",
                        "{}: stride (1,1) must auto-select the direct reduction",
                        t.key
                    );
                }
                if t.key.starts_with("tuner/fig8s2/") {
                    assert_eq!(
                        t.chosen, "im2col",
                        "{}: stride (2,2) must auto-select im2col",
                        t.key
                    );
                }
                for (what, alt) in [("direct", t.direct_cycles), ("im2col", t.im2col_cycles)] {
                    assert!(
                        alt == 0 || t.tuned_cycles <= alt,
                        "{}: tuned cycles {} exceed the forced {} run's {}",
                        t.key,
                        t.tuned_cycles,
                        what,
                        alt
                    );
                }
            }
        }
        Err(regressions) => panic!(
            "performance regressions vs the committed baseline:\n  {}\n\
             (if intentional, regenerate with `cargo run --release -p dv-bench --bin repro -- gate`)",
            regressions.join("\n  ")
        ),
    }
}

/// The `*_single` columns in the gate are *derived* from dual-pipe runs
/// (`busy_cycles` + dispatch). Pin the derivation against real
/// `CostModel::single_issue()` executions on one Fig. 7 shape: the legacy
/// path must land on the PR 1 numbers, and the derivation must agree with
/// it exactly.
#[test]
fn single_issue_derivation_matches_real_runs() {
    use dv_bench::inputs::feature_map;
    use dv_core::{ForwardImpl, PoolingEngine};
    use dv_sim::{Chip, CostModel};
    use dv_tensor::PoolParams;

    let input = feature_map(1, 288, 35, 35, 71);
    let dual = PoolingEngine::ascend910();
    let single = PoolingEngine::new(Chip::new(32, CostModel::single_issue()));

    for (impl_, pr1_cycles) in [
        (ForwardImpl::Standard, 18152u64),
        (ForwardImpl::Im2col, 5714u64),
    ] {
        let (out_d, run_d) = dual
            .maxpool_forward(&input, PoolParams::K3S2, impl_)
            .expect("dual-pipe forward");
        let (out_s, run_s) = single
            .maxpool_forward(&input, PoolParams::K3S2, impl_)
            .expect("single-issue forward");
        assert_eq!(
            out_d.data(),
            out_s.data(),
            "{impl_:?}: issue model must not change results"
        );
        assert_eq!(
            run_s.cycles, pr1_cycles,
            "{impl_:?}: legacy mode must reproduce the PR 1 cycle count"
        );
        assert_eq!(
            gate::single_issue_cycles(&run_d),
            run_s.cycles,
            "{impl_:?}: derived serial cycles must equal a real serial run"
        );
        assert_eq!(
            run_s.total.stall_cycles, 0,
            "{impl_:?}: the serial machine never stalls"
        );
        assert_eq!(run_d.peaks, run_s.peaks, "{impl_:?}: peaks are timing-free");
    }
}

/// Double-buffered row-band prefetch must strictly lower the dual-pipe
/// makespan on every multi-band Fig. 8 workload whose Vector pipe is the
/// bottleneck (standard, expansion, X-Y split), and must leave the
/// SCU-bound im2col schedule untouched — while staying bit-identical to
/// the single-buffered and serial models in all cases.
#[test]
fn double_buffering_strictly_wins_on_multiband_fig8_workloads() {
    use dv_bench::inputs::plane;
    use dv_core::{ForwardImpl, PoolingEngine};
    use dv_sim::{Chip, CostModel};
    use dv_tensor::PoolParams;

    // 96x96 sits past the tiling threshold of every implementation for
    // K(3,3) at strides 1..3, so each run below splits into row bands.
    let cases: &[(usize, ForwardImpl)] = &[
        (1, ForwardImpl::Standard),
        (2, ForwardImpl::Standard),
        (3, ForwardImpl::Standard),
        (2, ForwardImpl::Expansion),
        (2, ForwardImpl::XYSplit),
        (1, ForwardImpl::Im2col),
        (2, ForwardImpl::Im2col),
        (3, ForwardImpl::Im2col),
    ];
    for &(stride, impl_) in cases {
        let params = PoolParams::new((3, 3), (stride, stride));
        let input = plane(1, 96, 96, 80 + stride as u32);
        let db = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
        let plain = db.clone().with_double_buffering(false);
        let serial = PoolingEngine::new(Chip::new(1, CostModel::single_issue()));
        let (o_db, r_db) = db.maxpool_forward(&input, params, impl_).expect("db");
        let (o_pl, r_pl) = plain.maxpool_forward(&input, params, impl_).expect("plain");
        let (o_se, _) = serial
            .maxpool_forward(&input, params, impl_)
            .expect("serial");
        assert_eq!(
            o_db.data(),
            o_pl.data(),
            "s{stride} {impl_:?}: double-buffering changed the result"
        );
        assert_eq!(
            o_db.data(),
            o_se.data(),
            "s{stride} {impl_:?}: issue model changed the result"
        );
        if impl_ == ForwardImpl::Im2col {
            assert_eq!(
                r_db.cycles, r_pl.cycles,
                "s{stride} {impl_:?}: the SCU-bound im2col lowering must \
                 decline prefetch and keep the reference schedule"
            );
        } else {
            assert!(
                r_db.cycles < r_pl.cycles,
                "s{stride} {impl_:?}: prefetch must strictly lower the \
                 dual-pipe makespan ({} vs {})",
                r_db.cycles,
                r_pl.cycles
            );
        }
    }
}

/// On the multi-band Fig. 7 shape, prefetch must strictly pay off for
/// the Col2Im merge (real MTE time to hide), must be declined by the
/// Vector-bound VAdd merge (halved bands double the overlap tax), and
/// the gradients must stay bit-identical across buffering modes.
#[test]
fn double_buffering_strictly_wins_on_multiband_backward() {
    use dv_bench::inputs::{feature_map, gradients};
    use dv_core::{MergeImpl, PoolingEngine};
    use dv_tensor::reference;

    let w = dv_core::fig7_workloads()[0]; // 147x147x64 — multi-band
    let input = feature_map(1, w.c, w.h, w.w, 73);
    let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
    let (oh, ow) = w.out_dims();
    let grads = gradients(1, input.c1, oh, ow, 74);
    let db = PoolingEngine::ascend910();
    let plain = db.clone().with_double_buffering(false);
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        let (dx_db, r_db) = db
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, merge)
            .expect("db backward");
        let (dx_pl, r_pl) = plain
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, merge)
            .expect("plain backward");
        assert_eq!(
            dx_db.data(),
            dx_pl.data(),
            "{merge:?}: double-buffering changed the gradient"
        );
        if merge == MergeImpl::VAdd {
            assert_eq!(
                r_db.cycles, r_pl.cycles,
                "VAdd: the Vector-bound merge must decline prefetch and \
                 keep the reference schedule"
            );
        } else {
            assert!(
                r_db.cycles < r_pl.cycles,
                "{merge:?}: prefetch must strictly lower the dual-pipe \
                 makespan ({} vs {})",
                r_db.cycles,
                r_pl.cycles
            );
        }
    }
}
