//! The enforcing host-throughput gate: replays every Table I workload's
//! Im2col forward under all three execution backends, writes
//! `BENCH_host.json` at the workspace root, and fails if the sliced
//! speedup ratio on any tracked row fell more than [`host::HOST_TOLERANCE`]
//! below the committed baseline (`crates/bench/baselines/host.json`).
//!
//! Bit-identity across backends is asserted *inside* `collect_host` on
//! every gated workload — this test re-checks the emitted document's
//! structural invariants on top.
//!
//! If this fails after an *intentional* executor change, regenerate with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit the
//! refreshed `host.json`.

use dv_bench::host;
use std::path::Path;

#[test]
fn host_gate_no_throughput_regressions_vs_committed_baseline() {
    match host::run_host() {
        Ok(doc) => {
            let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
            let path = root.join("BENCH_host.json");
            std::fs::write(&path, &doc).expect("write BENCH_host.json");

            let metrics = host::parse_host(&doc).expect("emitted host JSON parses");
            assert_eq!(
                metrics.len(),
                dv_core::table1_workloads().len(),
                "host gate must cover every Table I workload"
            );
            // The acceptance floor travels in the artifact, not just in
            // the in-run assert: at least one Table I row at >= 2x.
            assert!(
                metrics
                    .iter()
                    .any(|m| m.sliced_speedup() >= host::SLICED_FLOOR),
                "emitted BENCH_host.json records no {}x sliced win",
                host::SLICED_FLOOR
            );
            for m in &metrics {
                assert!(
                    m.instructions > 0 && m.sim_cycles > 0,
                    "{}: degenerate denominators",
                    m.key
                );
                assert!(
                    m.scalar_ns > 0 && m.sliced_ns > 0 && m.threaded_ns > 0,
                    "{}: zero wall time measured",
                    m.key
                );
                assert!(
                    m.instr_per_sec(m.sliced_ns) > 0.0 && m.sim_cycles_per_sec(m.sliced_ns) > 0.0,
                    "{}: degenerate throughput",
                    m.key
                );
            }
        }
        Err(regressions) => panic!(
            "host-throughput regressions vs the committed baseline:\n  {}\n\
             (if intentional, regenerate with `cargo run --release -p dv-bench --bin repro -- gate`)",
            regressions.join("\n  ")
        ),
    }
}
