//! Table formatting and CSV output for the repro harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A result table: the unit every experiment produces.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment title (e.g. "Fig. 7a — MaxPool forward").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Serialise as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV under `dir/name.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["10".into(), "x,y".into()]);
        t
    }

    #[test]
    fn render_aligns() {
        let s = sample().render();
        assert!(s.contains("== T =="));
        // column widths: "10" -> 2, "x,y" -> 3
        assert!(s.contains(" a   bb"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,bb\n"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
