//! `repro` — regenerate the paper's tables and figures on the simulator.
//!
//! ```sh
//! cargo run --release -p dv-bench --bin repro -- all
//! cargo run --release -p dv-bench --bin repro -- fig7a fig8b
//! ```
//!
//! Each experiment prints a paper-style table and writes
//! `results/<name>.csv`.

use dv_bench::experiments;
use dv_bench::Table;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    // Prefer the workspace root (where Cargo.toml with [workspace] lives).
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

fn run_one(name: &str) -> Option<(String, Table)> {
    let table = match name {
        "fig7a" => experiments::fig7a(),
        "fig7b" => experiments::fig7b(),
        "fig7c" => experiments::fig7c(),
        "fig8a" => experiments::fig8(1),
        "fig8b" => experiments::fig8(2),
        "fig8c" => experiments::fig8(3),
        "table1" => experiments::table1(),
        "ablate" => experiments::ablate(),
        "avgpool" => experiments::avgpool(),
        "conv" => experiments::conv_substrate(),
        "scaling" => experiments::scaling(),
        "dgrad" => experiments::dgrad(),
        "cubeavg" => experiments::cubeavg(),
        "breakdown" => experiments::breakdown(),
        "kernels" => experiments::kernels(),
        "fusion" => experiments::fusion(),
        "threshold" => experiments::threshold(),
        _ => return None,
    };
    Some((name.to_string(), table))
}

const ALL: [&str; 17] = [
    "fig7a",
    "fig7b",
    "fig7c",
    "fig8a",
    "fig8b",
    "fig8c",
    "table1",
    "ablate",
    "avgpool",
    "conv",
    "scaling",
    "dgrad",
    "cubeavg",
    "breakdown",
    "kernels",
    "fusion",
    "threshold",
];

/// `repro -- gate`: replay the tracked workloads, refresh the committed
/// baseline and the workspace-root `BENCH_pooling.json`, and report any
/// drift against the previous baseline (informational here — the
/// *enforcing* comparison is the `perf_gate` test).
fn run_gate() {
    use dv_bench::gate;
    let root = results_dir()
        .parent()
        .map(PathBuf::from)
        .unwrap_or_default();
    let current = gate::collect();
    let scaling = gate::collect_scaling();
    let tuner = gate::collect_tuner();
    let old = gate::parse_metrics(gate::COMMITTED_BASELINE).ok();
    let old_scaling = gate::parse_scaling(gate::COMMITTED_BASELINE).ok();
    let old_tuner = gate::parse_tuner(gate::COMMITTED_BASELINE).ok();
    let doc = gate::to_json(&current, &scaling, &tuner, old.as_deref());
    let bench_path = root.join("BENCH_pooling.json");
    std::fs::write(&bench_path, &doc).expect("write BENCH_pooling.json");
    println!("wrote {}", bench_path.display());
    let baseline_path = root.join("crates/bench/baselines/pooling.json");
    std::fs::write(
        &baseline_path,
        gate::to_json(&current, &scaling, &tuner, None),
    )
    .expect("write committed baseline");
    println!("refreshed {}", baseline_path.display());
    if let Some(old) = old {
        for r in gate::compare(&current, &old, gate::TOLERANCE) {
            println!("note: vs previous baseline: {r}");
        }
    }
    if let Some(old) = old_scaling {
        for r in gate::compare_scaling(&scaling, &old, gate::TOLERANCE) {
            println!("note: vs previous baseline: {r}");
        }
    }
    if let Some(old) = old_tuner {
        for r in gate::compare_tuner(&tuner, &old, gate::TOLERANCE) {
            println!("note: vs previous baseline: {r}");
        }
    }

    // Host-throughput companion: measure, refresh `BENCH_host.json` and
    // the committed host baseline, and report drift informationally.
    use dv_bench::host;
    let old_host = host::parse_host(host::COMMITTED_HOST_BASELINE).ok();
    let metrics = host::collect_host();
    let doc = host::to_host_json(&metrics);
    let host_path = root.join("BENCH_host.json");
    std::fs::write(&host_path, &doc).expect("write BENCH_host.json");
    println!("wrote {}", host_path.display());
    let host_baseline = root.join("crates/bench/baselines/host.json");
    std::fs::write(&host_baseline, &doc).expect("write committed host baseline");
    println!("refreshed {}", host_baseline.display());
    if let Some(old) = old_host {
        for r in host::compare_host(&metrics, &old, host::HOST_TOLERANCE) {
            println!("note: vs previous baseline: {r}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "gate") {
        run_gate();
        if args.len() == 1 {
            return;
        }
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter()
            .filter(|s| *s != "gate")
            .map(|s| s.as_str())
            .collect()
    };

    let dir = results_dir();
    let mut unknown = Vec::new();
    for name in wanted {
        match run_one(name) {
            Some((name, table)) => {
                println!("{}", table.render());
                if name.starts_with("fig8") {
                    println!("{}", dv_bench::plot::plot_table(&table, "H=W", "cycles"));
                }
                if let Err(e) = table.write_csv(&dir, &name) {
                    eprintln!("warning: could not write {name}.csv: {e}");
                } else {
                    println!("   -> {}\n", dir.join(format!("{name}.csv")).display());
                }
            }
            None => unknown.push(name),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {} — available: {}, gate",
            unknown.join(", "),
            ALL.join(", ")
        );
        std::process::exit(2);
    }
}
