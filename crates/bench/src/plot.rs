//! Terminal line plots — the paper's *figures*, as ASCII.
//!
//! The repro harness prints each Fig. 8 sweep both as a table (for exact
//! values) and as a plot (for the shape the paper's figures show: who
//! wins, where curves cross).

use std::fmt::Write;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

/// Plot dimensions and labels.
#[derive(Clone, Debug)]
pub struct PlotSpec {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Character columns of the plotting area.
    pub width: usize,
    /// Character rows of the plotting area.
    pub height: usize,
}

impl Default for PlotSpec {
    fn default() -> Self {
        PlotSpec {
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            width: 64,
            height: 18,
        }
    }
}

const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render the series into an ASCII chart. Returns an empty string when
/// there is nothing to plot.
pub fn render(spec: &PlotSpec, series: &[Series]) -> String {
    let pts: Vec<&(f64, f64)> = series.iter().flat_map(|s| &s.points).collect();
    if pts.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for (x, y) in pts {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let (w, h) = (spec.width.max(8), spec.height.max(4));
    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy.min(h - 1);
            let col = cx.min(w - 1);
            // later series overwrite on collision; the legend explains
            grid[row][col] = mark;
        }
    }

    let mut out = String::new();
    if !spec.title.is_empty() {
        let _ = writeln!(out, "{}", spec.title);
    }
    let y_top = format!("{y_max:.0}");
    let y_bot = format!("{y_min:.0}");
    let gut = y_top.len().max(y_bot.len()).max(spec.y_label.len());
    let _ = writeln!(out, "{:>gut$} ", spec.y_label);
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            y_top.clone()
        } else if r == h - 1 {
            y_bot.clone()
        } else {
            String::new()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>gut$} |{line}");
    }
    let _ = writeln!(out, "{:>gut$} +{}", "", "-".repeat(w));
    let x_lo = format!("{x_min:.0}");
    let x_hi = format!("{x_max:.0}");
    let pad = w.saturating_sub(x_lo.len() + x_hi.len());
    let _ = writeln!(
        out,
        "{:>gut$}  {x_lo}{}{x_hi}  ({})",
        "",
        " ".repeat(pad),
        spec.x_label
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>gut$}  {} {}", "", MARKS[si % MARKS.len()], s.label);
    }
    out
}

/// Build the plot for a cycles-vs-size table whose first column is the
/// x value and whose remaining columns are series (the Fig. 8 format).
pub fn plot_table(table: &crate::report::Table, x_label: &str, y_label: &str) -> String {
    let mut series: Vec<Series> = table.columns[1..]
        .iter()
        .map(|c| Series {
            label: c.clone(),
            points: Vec::new(),
        })
        .collect();
    for row in &table.rows {
        let Ok(x) = row[0].parse::<f64>() else {
            continue;
        };
        for (i, cell) in row[1..].iter().enumerate() {
            if let Ok(y) = cell.parse::<f64>() {
                series[i].points.push((x, y));
            }
        }
    }
    render(
        &PlotSpec {
            title: table.title.clone(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            ..PlotSpec::default()
        },
        &series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> Vec<Series> {
        vec![
            Series {
                label: "linear".into(),
                points: (0..10).map(|i| (i as f64, i as f64 * 10.0)).collect(),
            },
            Series {
                label: "quadratic".into(),
                points: (0..10).map(|i| (i as f64, (i * i) as f64)).collect(),
            },
        ]
    }

    #[test]
    fn render_contains_marks_axes_and_legend() {
        let s = render(&PlotSpec::default(), &two_series());
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("linear"));
        assert!(s.contains("quadratic"));
        assert!(s.contains('+'));
        assert!(s.contains("90")); // y max of the linear series
    }

    #[test]
    fn empty_series_render_empty() {
        assert_eq!(render(&PlotSpec::default(), &[]), "");
        let empty = vec![Series {
            label: "e".into(),
            points: vec![],
        }];
        assert_eq!(render(&PlotSpec::default(), &empty), "");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = vec![Series {
            label: "flat".into(),
            points: vec![(1.0, 5.0), (2.0, 5.0)],
        }];
        let out = render(&PlotSpec::default(), &s);
        assert!(out.contains('*'));
    }

    #[test]
    fn plot_table_parses_numeric_columns() {
        let mut t = crate::report::Table::new("T", &["H=W", "a", "b"]);
        t.push_row(vec!["8".into(), "100".into(), "200".into()]);
        t.push_row(vec!["10".into(), "150".into(), "120".into()]);
        let s = plot_table(&t, "H=W", "cycles");
        assert!(s.contains("T"));
        assert!(s.contains(" a"));
        assert!(s.contains(" b"));
    }

    #[test]
    fn points_at_extremes_stay_in_grid() {
        // would panic on out-of-bounds indexing if clamping were wrong
        let s = vec![Series {
            label: "edges".into(),
            points: vec![(0.0, 0.0), (100.0, 1000.0), (50.0, -50.0)],
        }];
        let _ = render(&PlotSpec::default(), &s);
    }
}
