//! The performance-regression gate.
//!
//! The whole point of this repository is the *cycle counts* — a refactor
//! that keeps outputs bit-exact but quietly doubles the simulated cycles
//! of the accelerated kernels has destroyed the artifact without failing
//! a single functional test. This module replays the paper's Fig. 7 and
//! Fig. 8 workloads, writes the measured cycles and speedups to
//! `BENCH_pooling.json`, and compares them against the committed baseline
//! in `crates/bench/baselines/pooling.json`: any tracked metric more than
//! [`TOLERANCE`] worse than the baseline fails the gate (the simulator is
//! deterministic, so honest changes show up as exact deltas).
//!
//! When a cost-model or lowering change moves cycles *intentionally*,
//! regenerate the baseline with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit the
//! refreshed `pooling.json` alongside the change.

use crate::inputs::{feature_map, gradients, plane};
use crate::json;
use dv_core::{fig7_workloads, tiling_threshold, ForwardImpl, MergeImpl, PoolingEngine};
use dv_sim::{Chip, CostModel};
use dv_tensor::{reference, PoolParams};
use std::fmt::Write as _;

/// Relative slowdown tolerated before the gate fails (5%).
pub const TOLERANCE: f64 = 0.05;

/// The committed baseline (regenerate via `repro -- gate` when a change
/// legitimately moves cycles).
pub const COMMITTED_BASELINE: &str = include_str!("../baselines/pooling.json");

/// One tracked workload: cycles for the baseline implementation and for
/// the paper's accelerated implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric {
    /// Stable identifier, e.g. `fig7a/147x147x64` or `fig8s2/24x24`.
    pub key: String,
    /// Cycles of the standard (non-accelerated) implementation.
    pub standard_cycles: u64,
    /// Cycles of the Im2col/Col2Im-accelerated implementation.
    pub accelerated_cycles: u64,
}

impl Metric {
    /// Speedup of the accelerated implementation (standard / accelerated).
    pub fn speedup(&self) -> f64 {
        self.standard_cycles as f64 / self.accelerated_cycles as f64
    }
}

/// Replay every tracked workload and measure it.
///
/// Covers all Fig. 7 shapes (forward, forward+argmax, backward — the
/// three bold InceptionV3 rows of Table I on the 32-core chip) and the
/// Fig. 8 stride study (strides 1–3 on one core at fixed sizes below the
/// tiling threshold). Inputs reuse the experiment seeds, so cycle counts
/// match the corresponding `experiments::*` tables exactly.
pub fn collect() -> Vec<Metric> {
    let mut out = Vec::new();
    let eng = PoolingEngine::ascend910();

    for w in fig7_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);

        // Fig. 7a — forward.
        let input = feature_map(1, w.c, w.h, w.w, 71);
        let (o_s, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("fig7a standard");
        let (o_a, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7a im2col");
        assert_eq!(o_s.data(), o_a.data(), "fig7a implementations disagree");
        out.push(Metric {
            key: format!("fig7a/{shape}"),
            standard_cycles: std.cycles,
            accelerated_cycles: acc.cycles,
        });

        // Fig. 7b — forward with the argmax mask.
        let input = feature_map(1, w.c, w.h, w.w, 72);
        let (o_s, m_s, std) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Standard)
            .expect("fig7b standard");
        let (o_a, m_a, acc) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7b im2col");
        assert_eq!(o_s.data(), o_a.data(), "fig7b implementations disagree");
        assert_eq!(m_s.data(), m_a.data(), "fig7b masks disagree");
        out.push(Metric {
            key: format!("fig7b/{shape}"),
            standard_cycles: std.cycles,
            accelerated_cycles: acc.cycles,
        });

        // Fig. 7c — backward.
        let input = feature_map(1, w.c, w.h, w.w, 73);
        let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
        let (oh, ow) = w.out_dims();
        let grads = gradients(1, input.c1, oh, ow, 74);
        let (dx_s, std) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("fig7c vadd");
        let (dx_a, acc) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("fig7c col2im");
        assert_eq!(dx_s.data(), dx_a.data(), "fig7c merges disagree");
        out.push(Metric {
            key: format!("fig7c/{shape}"),
            standard_cycles: std.cycles,
            accelerated_cycles: acc.cycles,
        });
    }

    // Fig. 8 — the stride study, one AI core, K(3,3).
    for stride in 1usize..=3 {
        let params = PoolParams::new((3, 3), (stride, stride));
        let eng1 = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
        let threshold = [ForwardImpl::Standard, ForwardImpl::Im2col]
            .iter()
            .map(|i| tiling_threshold(&params, *i, eng1.chip.caps))
            .min()
            .unwrap();
        for hw in [16usize, 24, 32] {
            if hw > threshold {
                continue;
            }
            let input = plane(1, hw, hw, 80 + hw as u32);
            let (o_s, std) = eng1
                .maxpool_forward(&input, params, ForwardImpl::Standard)
                .expect("fig8 standard");
            let (o_a, acc) = eng1
                .maxpool_forward(&input, params, ForwardImpl::Im2col)
                .expect("fig8 im2col");
            assert_eq!(o_s.data(), o_a.data(), "fig8 implementations disagree");
            out.push(Metric {
                key: format!("fig8s{stride}/{hw}x{hw}"),
                standard_cycles: std.cycles,
                accelerated_cycles: acc.cycles,
            });
        }
    }

    out
}

/// Render metrics as the `BENCH_pooling.json` document. When `baseline`
/// is given, each metric additionally carries its cycle ratio vs the
/// baseline (1.0 = unchanged, >1.0 = slower).
pub fn to_json(metrics: &[Metric], baseline: Option<&[Metric]>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"pooling\",\n");
    let _ = writeln!(out, "  \"tolerance\": {TOLERANCE},");
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"standard_cycles\": {}, \"accelerated_cycles\": {}, \"speedup\": {:.4}",
            m.key, m.standard_cycles, m.accelerated_cycles, m.speedup()
        );
        if let Some(base) = baseline {
            if let Some(b) = base.iter().find(|b| b.key == m.key) {
                let _ = write!(
                    out,
                    ", \"vs_baseline_standard\": {:.4}, \"vs_baseline_accelerated\": {:.4}",
                    m.standard_cycles as f64 / b.standard_cycles as f64,
                    m.accelerated_cycles as f64 / b.accelerated_cycles as f64
                );
            }
        }
        out.push_str(if i + 1 == metrics.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a `BENCH_pooling.json`-format document back into metrics.
pub fn parse_metrics(doc: &str) -> Result<Vec<Metric>, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let arr = v
        .get("metrics")
        .and_then(|m| m.as_arr())
        .ok_or("missing \"metrics\" array")?;
    arr.iter()
        .map(|m| {
            Ok(Metric {
                key: m
                    .get("key")
                    .and_then(|k| k.as_str())
                    .ok_or("metric missing \"key\"")?
                    .to_string(),
                standard_cycles: m
                    .get("standard_cycles")
                    .and_then(|c| c.as_u64())
                    .ok_or("metric missing \"standard_cycles\"")?,
                accelerated_cycles: m
                    .get("accelerated_cycles")
                    .and_then(|c| c.as_u64())
                    .ok_or("metric missing \"accelerated_cycles\"")?,
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(|e| e.to_string())
}

/// Compare current metrics against a baseline. Returns the list of
/// regressions — a baseline metric that disappeared, or one whose cycle
/// count (either implementation) grew by more than `tolerance`. An empty
/// list means the gate passes; improvements and new metrics pass.
pub fn compare(current: &[Metric], baseline: &[Metric], tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            regressions.push(format!("{}: tracked metric disappeared", b.key));
            continue;
        };
        for (what, now, base) in [
            ("standard", c.standard_cycles, b.standard_cycles),
            ("accelerated", c.accelerated_cycles, b.accelerated_cycles),
        ] {
            let ratio = now as f64 / base as f64;
            if ratio > 1.0 + tolerance {
                regressions.push(format!(
                    "{} ({what}): {now} cycles vs baseline {base} ({:+.1}%)",
                    b.key,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }
    regressions
}

/// Run the full gate against [`COMMITTED_BASELINE`]: collect, compare,
/// and return the rendered `BENCH_pooling.json` contents on success or
/// the regression list on failure.
pub fn run() -> Result<String, Vec<String>> {
    let baseline = parse_metrics(COMMITTED_BASELINE)
        .map_err(|e| vec![format!("committed baseline unreadable: {e}")])?;
    let current = collect();
    let regressions = compare(&current, &baseline, TOLERANCE);
    if regressions.is_empty() {
        Ok(to_json(&current, Some(&baseline)))
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(key: &str, s: u64, a: u64) -> Metric {
        Metric {
            key: key.into(),
            standard_cycles: s,
            accelerated_cycles: a,
        }
    }

    #[test]
    fn json_round_trip() {
        let ms = vec![m("fig7a/1x1x16", 1000, 250), m("fig8s2/16x16", 77, 33)];
        let doc = to_json(&ms, None);
        assert_eq!(parse_metrics(&doc).unwrap(), ms);
        // with-baseline rendering stays parseable
        let doc2 = to_json(&ms, Some(&ms));
        assert!(doc2.contains("\"vs_baseline_standard\": 1.0000"));
        assert_eq!(parse_metrics(&doc2).unwrap(), ms);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = vec![m("a", 1000, 100), m("b", 1000, 100)];
        // within tolerance + improvement + new metric → pass
        let ok = vec![m("a", 1040, 100), m("b", 900, 90), m("c", 5, 5)];
        assert!(compare(&ok, &base, TOLERANCE).is_empty());
        // 6% regression on the accelerated column → fail
        let slow = vec![m("a", 1000, 106), m("b", 1000, 100)];
        let regs = compare(&slow, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("a (accelerated)"));
        // disappeared metric → fail
        let gone = vec![m("a", 1000, 100)];
        assert_eq!(compare(&gone, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn committed_baseline_parses_and_covers_all_figures() {
        let base = parse_metrics(COMMITTED_BASELINE).expect("baseline must parse");
        for prefix in [
            "fig7a/", "fig7b/", "fig7c/", "fig8s1/", "fig8s2/", "fig8s3/",
        ] {
            assert!(
                base.iter().any(|m| m.key.starts_with(prefix)),
                "baseline missing {prefix} metrics"
            );
        }
    }
}
