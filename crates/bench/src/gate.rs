//! The performance-regression gate.
//!
//! The whole point of this repository is the *cycle counts* — a refactor
//! that keeps outputs bit-exact but quietly doubles the simulated cycles
//! of the accelerated kernels has destroyed the artifact without failing
//! a single functional test. This module replays the paper's Fig. 7 and
//! Fig. 8 workloads plus the remaining Table I rows, writes the measured
//! cycles, speedups, and buffer-occupancy peaks to `BENCH_pooling.json`,
//! and compares them against the committed baseline in
//! `crates/bench/baselines/pooling.json`: any tracked metric more than
//! [`TOLERANCE`] worse than the baseline fails the gate (the simulator is
//! deterministic, so honest changes show up as exact deltas).
//!
//! Every metric carries **both issue models**. The headline columns are
//! the dual-pipe makespans; the `*_single` columns are the legacy serial
//! timing — derived from the same run via
//! [`HwCounters::busy_cycles`](dv_sim::HwCounters::busy_cycles) plus the
//! per-core dispatch overhead, which reproduces the single-issue model
//! cycle-for-cycle because per-instruction charges are identical in both
//! models (the `single_issue_derivation_matches_real_runs` test in
//! `tests/perf_gate.rs` pins this against actual
//! `CostModel::single_issue()` executions). Buffer peaks (`ub_peak`,
//! `l1_peak`) come from [`ChipRun::peaks`], so a lowering change that
//! silently grows scratchpad footprints fails the gate alongside cycle
//! regressions.
//!
//! The `*_norename` columns rerun the default (double-buffered)
//! schedule under [`CostModel::dual_pipe_no_rename`] — the scoreboard
//! never rotates scratchpad slots and the planner falls back to the
//! pre-renaming single/ping-pong band layouts. [`collect`] asserts on
//! every row that the renamed makespan never exceeds this control's;
//! the per-row `rename_gain` in the JSON is what renaming buys.
//!
//! The `scaling` section tracks the chip-sharding path: every Fig. 7
//! shape's Im2col forward under [`PoolingEngine::with_sharding`] at
//! 1/2/8/32 cores, under both the independent memory model and the
//! shared-HBM contention stage ([`MemoryModel::ascend910_hbm`]).
//! [`collect_scaling`] asserts in-run that outputs are bit-identical at
//! every core count and in both memory models, that speedup is monotone
//! in the core count, that it stays sub-linear (no free cycles — an
//! `n`-core run can never beat `1/n` of the serial cycles), and that
//! contention degrades each core by at most the fair-share factor
//! `active_cores * per_core_peak / shared_bandwidth`. The per-core-count
//! cycle columns are then gated against the committed baseline exactly
//! like the `metrics` rows.
//!
//! The `tuner` section tracks the algorithm auto-tuner
//! ([`PoolingEngine::with_auto_tuning`]): per tracked workload, which
//! algorithm [`choose_forward_algorithm`] / [`choose_backward_algorithm`]
//! picked, its predicted and measured cycles, and each forced
//! alternative's measured cycles. [`collect_tuner`] asserts the
//! prediction-honesty contract in-run — the tuned run never falls back,
//! never books an uncertified win (`tuner_mispredicted == 0`), is
//! bit-identical to every forced algorithm, and is never slower than any
//! of them — and pins the Fig. 8 crossover as tuner *choices*: stride
//! (1, 1) auto-selects the direct reduction, stride (2, 2) im2col.
//! [`compare_tuner`] additionally fails the gate when a chosen algorithm
//! flips against the committed baseline.
//!
//! When a cost-model or lowering change moves cycles *intentionally*,
//! regenerate the baseline with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit the
//! refreshed `pooling.json` alongside the change.

use crate::inputs::{feature_map, gradients, plane};
use crate::json;
use dv_core::{
    choose_backward_algorithm, choose_forward_algorithm, fig7_workloads, table1_workloads,
    tiling_threshold, ForwardImpl, MergeImpl, PoolProblem, PoolingEngine,
};
use dv_isa::BufferId;
use dv_sim::{Chip, ChipRun, CostModel, MemoryModel};
use dv_tensor::{reference, PoolParams};
use dv_tensor::{Nc1hwc0, PatchTensor};
use std::fmt::Write as _;

/// Relative slowdown tolerated before the gate fails (5%).
pub const TOLERANCE: f64 = 0.05;

/// The committed baseline (regenerate via `repro -- gate` when a change
/// legitimately moves cycles).
pub const COMMITTED_BASELINE: &str = include_str!("../baselines/pooling.json");

/// One tracked workload: cycles for the baseline implementation and for
/// the paper's accelerated implementation, under both issue models, plus
/// scratchpad occupancy ceilings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric {
    /// Stable identifier, e.g. `fig7a/147x147x64` or `fig8s2/24x24`.
    pub key: String,
    /// Dual-pipe cycles of the standard (non-accelerated) implementation.
    pub standard_cycles: u64,
    /// Dual-pipe cycles of the Im2col/Col2Im-accelerated implementation.
    pub accelerated_cycles: u64,
    /// Single-issue (legacy serial) cycles of the standard implementation.
    pub standard_cycles_single: u64,
    /// Single-issue cycles of the accelerated implementation.
    pub accelerated_cycles_single: u64,
    /// Dual-pipe cycles of the standard implementation with
    /// double-buffered row-band prefetch (equals `standard_cycles` when
    /// the workload fits a single band).
    pub standard_cycles_db: u64,
    /// Dual-pipe cycles of the accelerated implementation with
    /// double-buffered row-band prefetch.
    pub accelerated_cycles_db: u64,
    /// Peak Unified Buffer occupancy in bytes (max over both
    /// implementations).
    pub ub_peak: u64,
    /// Peak L1 buffer occupancy in bytes (max over both implementations).
    pub l1_peak: u64,
    /// Peak UB occupancy of the double-buffered runs — bounded by twice
    /// the single-buffered band footprint.
    pub ub_peak_db: u64,
    /// Peak L1 occupancy of the double-buffered runs.
    pub l1_peak_db: u64,
    /// Dual-pipe cycles of the standard implementation with scratchpad
    /// renaming disabled ([`CostModel::dual_pipe_no_rename`]) but
    /// otherwise default scheduling — the no-rename control for
    /// `standard_cycles_db`. The gate asserts the renamed column never
    /// exceeds this one on any row.
    pub standard_cycles_norename: u64,
    /// No-rename control for `accelerated_cycles_db`.
    pub accelerated_cycles_norename: u64,
}

impl Metric {
    /// Dual-pipe speedup of the accelerated implementation
    /// (standard / accelerated).
    pub fn speedup(&self) -> f64 {
        self.standard_cycles as f64 / self.accelerated_cycles as f64
    }

    /// Single-issue speedup — the PR 1 headline numbers.
    pub fn speedup_single(&self) -> f64 {
        self.standard_cycles_single as f64 / self.accelerated_cycles_single as f64
    }

    /// Dual-pipe speedup with double-buffered row-band prefetch.
    pub fn speedup_db(&self) -> f64 {
        self.standard_cycles_db as f64 / self.accelerated_cycles_db as f64
    }

    /// What scratchpad renaming buys on the accelerated implementation:
    /// the no-rename control's cycles over the renamed cycles (1.0 =
    /// renaming changed nothing; >1.0 = renaming is a measured win).
    pub fn rename_gain(&self) -> f64 {
        self.accelerated_cycles_norename as f64 / self.accelerated_cycles_db as f64
    }
}

/// The serial (single-issue) chip cycles of a run that may have executed
/// under the dual-pipe model: per core, the unit-busy total plus whatever
/// dispatch overhead the chip charged on top of the core's makespan; the
/// chip-level count is the max over cores, mirroring [`ChipRun::cycles`].
/// Exact because per-instruction charges do not depend on the issue
/// model.
pub fn single_issue_cycles(run: &ChipRun) -> u64 {
    run.per_core
        .iter()
        .zip(&run.core_cycles)
        .map(|(c, total)| c.busy_cycles() + (total - c.cycles))
        .max()
        .unwrap_or(0)
}

/// Core counts the scaling gate sweeps — serial (1), under-subscribed
/// plane parallelism (2), the regime where band splitting starts paying
/// (8), and the full chip where 32 concurrent MTE streams oversubscribe
/// the shared HBM pipe by 4x (32 cores x 32 B/cyc vs 256 B/cyc).
pub const SCALING_CORES: [usize; 4] = [1, 2, 8, 32];

/// One scaling-gate row: a Fig. 7 shape's sharded Im2col forward at one
/// core count, measured under both memory models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalingMetric {
    /// Stable identifier, e.g. `scaling/147x147x64/c8`.
    pub key: String,
    /// Core count of the chip this row ran on.
    pub cores: u64,
    /// Dual-pipe chip cycles under [`MemoryModel::Independent`] (every
    /// core sees its full MTE bandwidth).
    pub cycles: u64,
    /// Dual-pipe chip cycles with the shared-HBM contention stage
    /// ([`MemoryModel::ascend910_hbm`]) booked on top.
    pub cycles_contended: u64,
    /// Contention stalls summed over all cores in the contended run.
    pub contention_stalls: u64,
}

impl ScalingMetric {
    /// Degradation the shared-bandwidth stage charged on this row
    /// (1.0 = bandwidth was never the bottleneck).
    pub fn contention_factor(&self) -> f64 {
        self.cycles_contended as f64 / self.cycles as f64
    }
}

/// Replay the Fig. 7 forward workloads through the sharded engine at
/// every [`SCALING_CORES`] count and measure the scaling curve.
///
/// Asserts the tentpole's correctness contract in-run:
///
/// * outputs are **bit-identical** at every core count and under both
///   memory models (sharding and contention are pure scheduling);
/// * independent-model cycles are **monotone non-increasing** in the
///   core count (more cores never hurt — the partition chooser can
///   always keep the narrower plan);
/// * speedup stays **sub-linear**: `cycles(n) * n >= cycles(1)` — work
///   is conserved, cores only divide it;
/// * contention is **bounded**: each core's stall keeps it within the
///   fair-share factor `max(1, active * per_core_peak / shared)` of its
///   uncontended makespan, so the shared pipe degrades but never
///   livelocks a core.
pub fn collect_scaling() -> Vec<ScalingMetric> {
    let mut out = Vec::new();
    let cost = CostModel::ascend910_like();
    let MemoryModel::SharedBandwidth {
        bytes_per_cycle: shared,
    } = MemoryModel::ascend910_hbm()
    else {
        unreachable!("ascend910_hbm is a shared-bandwidth model");
    };
    for w in fig7_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let input = feature_map(1, w.c, w.h, w.w, 71);
        let mut serial_cycles = 0u64;
        let mut prev_cycles = u64::MAX;
        let mut reference_out = None;
        for &cores in &SCALING_CORES {
            let eng = PoolingEngine::new(Chip::new(cores, cost)).with_sharding(true);
            let eng_c = PoolingEngine::new(
                Chip::new(cores, cost).with_memory(MemoryModel::ascend910_hbm()),
            )
            .with_sharding(true);
            let (o, run) = eng
                .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
                .expect("scaling im2col");
            let (o_c, run_c) = eng_c
                .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
                .expect("scaling im2col contended");
            assert_eq!(
                o.data(),
                o_c.data(),
                "scaling/{shape}/c{cores}: contention stage changed the output"
            );
            match &reference_out {
                None => {
                    reference_out = Some(o.data().to_vec());
                    serial_cycles = run.cycles;
                }
                Some(r) => assert_eq!(
                    o.data(),
                    &r[..],
                    "scaling/{shape}/c{cores}: sharding changed the output"
                ),
            }
            assert!(
                run.cycles <= prev_cycles,
                "scaling/{shape}/c{cores}: speedup must be monotone in the \
                 core count ({} cycles vs {} with fewer cores)",
                run.cycles,
                prev_cycles
            );
            prev_cycles = run.cycles;
            assert!(
                run.cycles * cores as u64 >= serial_cycles,
                "scaling/{shape}/c{cores}: super-linear speedup is a cost-model \
                 bug ({} x {cores} < serial {serial_cycles})",
                run.cycles
            );
            // Bounded degradation: per core, the booked stall keeps the
            // core within the fair-share factor of its uncontended
            // makespan (+1 for the stall rounding).
            let active = run_c.core_cycles.len() as u64;
            let factor = ((active * cost.move_bytes_per_cycle) as f64 / shared as f64).max(1.0);
            for (c, &cc) in run_c.per_core.iter().zip(&run_c.core_cycles) {
                let uncontended = cc - c.contention_stalls;
                assert!(
                    cc as f64 <= factor * uncontended as f64 + 1.0,
                    "scaling/{shape}/c{cores}: contention stall exceeds the \
                     fair-share bound ({cc} vs {factor:.2} x {uncontended})"
                );
            }
            out.push(ScalingMetric {
                key: format!("scaling/{shape}/c{cores}"),
                cores: cores as u64,
                cycles: run.cycles,
                cycles_contended: run_c.cycles,
                contention_stalls: run_c.total.contention_stalls,
            });
        }
    }
    out
}

/// One auto-tuner row: which algorithm [`choose_forward_algorithm`] /
/// [`choose_backward_algorithm`] picked for a tracked workload, its
/// predicted and measured cycles, and the measured cycles of each forced
/// alternative (0 = that alternative cannot lower the workload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TunerMetric {
    /// Stable identifier, e.g. `tuner/fig8s2/24x24`.
    pub key: String,
    /// Label of the algorithm the tuner dispatched (`direct`, `im2col`,
    /// `fold`).
    pub chosen: String,
    /// The tuner's pre-run cycle prediction for the chosen algorithm.
    pub predicted_cycles: u64,
    /// Measured dual-pipe cycles of the tuned run.
    pub tuned_cycles: u64,
    /// Measured cycles of the forced direct-reduction run (0 when the
    /// direct lowering is infeasible for this workload).
    pub direct_cycles: u64,
    /// Measured cycles of the forced im2col run.
    pub im2col_cycles: u64,
}

/// Measure one forward tuner row and certify the prediction-honesty
/// contract in-run: on a tracked workload the tuner must not fall back,
/// its win must certify against every alternative's cycle floor
/// (`tuner_mispredicted == 0`), the tuned output must be bit-identical
/// to every forced algorithm's, and the tuned makespan must not exceed
/// any forced alternative's.
fn tuner_forward_row(
    key: String,
    eng: &PoolingEngine,
    input: &Nc1hwc0,
    (c1, h, w): (usize, usize, usize),
    params: PoolParams,
) -> TunerMetric {
    let prob = PoolProblem::new(1, c1, h, w, params).expect("tuner problem");
    let choice = choose_forward_algorithm(
        &prob,
        false,
        false,
        eng.chip.cores,
        &eng.schedule(),
        eng.chip.caps,
        None,
    );
    let winner = choice.winner().expect("tuner must rank a candidate");
    let (o_t, run) = eng
        .clone()
        .with_auto_tuning(true)
        .maxpool_forward(input, params, ForwardImpl::Standard)
        .expect("tuned forward");
    assert_eq!(
        run.total.tuner_fallbacks, 0,
        "{key}: tuner fell back on a tracked row"
    );
    assert_eq!(
        run.total.tuner_mispredicted, 0,
        "{key}: the tuner's win could not be certified on a tracked row"
    );
    let mut cycles = [0u64; 2];
    for (slot, impl_) in [ForwardImpl::Standard, ForwardImpl::Im2col]
        .into_iter()
        .enumerate()
    {
        if let Ok((o, r)) = eng.maxpool_forward(input, params, impl_) {
            assert_eq!(
                o_t.data(),
                o.data(),
                "{key}: tuned output diverged from forced {impl_:?}"
            );
            assert!(
                run.cycles <= r.cycles,
                "{key}: tuned run ({} cycles) lost to forced {impl_:?} ({} cycles)",
                run.cycles,
                r.cycles
            );
            cycles[slot] = r.cycles;
        }
    }
    TunerMetric {
        key,
        chosen: winner.label().to_string(),
        predicted_cycles: choice.predicted(winner).unwrap_or(0),
        tuned_cycles: run.cycles,
        direct_cycles: cycles[0],
        im2col_cycles: cycles[1],
    }
}

/// Measure one backward tuner row with the same in-run certification as
/// [`tuner_forward_row`]: `direct` is the scattered-vadd merge, `im2col`
/// the Col2Im merge.
fn tuner_backward_row(
    key: String,
    eng: &PoolingEngine,
    mask: &PatchTensor,
    grads: &Nc1hwc0,
    (c1, h, w): (usize, usize, usize),
    params: PoolParams,
) -> TunerMetric {
    let prob = PoolProblem::new(1, c1, h, w, params).expect("tuner problem");
    let choice = choose_backward_algorithm(
        &prob,
        true,
        eng.chip.cores,
        &eng.schedule(),
        eng.chip.caps,
        None,
    );
    let winner = choice.winner().expect("tuner must rank a candidate");
    let (dx_t, run) = eng
        .clone()
        .with_auto_tuning(true)
        .maxpool_backward(mask, grads, params, h, w, MergeImpl::VAdd)
        .expect("tuned backward");
    assert_eq!(
        run.total.tuner_fallbacks, 0,
        "{key}: tuner fell back on a tracked row"
    );
    assert_eq!(
        run.total.tuner_mispredicted, 0,
        "{key}: the tuner's win could not be certified on a tracked row"
    );
    let mut cycles = [0u64; 2];
    for (slot, merge) in [MergeImpl::VAdd, MergeImpl::Col2Im].into_iter().enumerate() {
        if let Ok((dx, r)) = eng.maxpool_backward(mask, grads, params, h, w, merge) {
            assert_eq!(
                dx_t.data(),
                dx.data(),
                "{key}: tuned gradient diverged from forced {merge:?}"
            );
            assert!(
                run.cycles <= r.cycles,
                "{key}: tuned run ({} cycles) lost to forced {merge:?} ({} cycles)",
                run.cycles,
                r.cycles
            );
            cycles[slot] = r.cycles;
        }
    }
    TunerMetric {
        key,
        chosen: winner.label().to_string(),
        predicted_cycles: choice.predicted(winner).unwrap_or(0),
        tuned_cycles: run.cycles,
        direct_cycles: cycles[0],
        im2col_cycles: cycles[1],
    }
}

/// Replay the tracked workloads through the auto-tuned engine and record
/// which algorithm it chose per row, with the prediction-honesty
/// contract asserted in-run ([`tuner_forward_row`]). Two choices are
/// pinned here because they *are* the paper's Fig. 8 crossover: stride
/// (1, 1) must auto-select the direct reduction and stride (2, 2) must
/// auto-select im2col. The backward tuner must route every Fig. 7 shape
/// through the Col2Im merge — the paper's Section V-B claim.
pub fn collect_tuner() -> Vec<TunerMetric> {
    let mut out = Vec::new();
    let eng = PoolingEngine::ascend910();
    for w in fig7_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let input = feature_map(1, w.c, w.h, w.w, 71);
        let dims = (input.c1, w.h, w.w);
        out.push(tuner_forward_row(
            format!("tuner/fig7a/{shape}"),
            &eng,
            &input,
            dims,
            w.params,
        ));

        let input = feature_map(1, w.c, w.h, w.w, 73);
        let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
        let (oh, ow) = w.out_dims();
        let grads = gradients(1, input.c1, oh, ow, 74);
        let m = tuner_backward_row(
            format!("tuner/fig7c/{shape}"),
            &eng,
            &mask,
            &grads,
            dims,
            w.params,
        );
        assert_eq!(
            m.chosen, "im2col",
            "{}: the backward tuner must route the paper shapes through Col2Im",
            m.key
        );
        out.push(m);
    }

    for stride in 1usize..=3 {
        let params = PoolParams::new((3, 3), (stride, stride));
        let eng1 = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
        let threshold = [ForwardImpl::Standard, ForwardImpl::Im2col]
            .iter()
            .map(|i| tiling_threshold(&params, *i, eng1.chip.caps))
            .min()
            .unwrap();
        for hw in [16usize, 24, 32] {
            if hw > threshold {
                continue;
            }
            let input = plane(1, hw, hw, 80 + hw as u32);
            let m = tuner_forward_row(
                format!("tuner/fig8s{stride}/{hw}x{hw}"),
                &eng1,
                &input,
                (1, hw, hw),
                params,
            );
            match stride {
                1 => assert_eq!(
                    m.chosen, "direct",
                    "{}: stride (1,1) must auto-select the direct reduction \
                     (the Fig. 8a crossover)",
                    m.key
                ),
                2 => assert_eq!(
                    m.chosen, "im2col",
                    "{}: stride (2,2) must auto-select im2col (the Fig. 8b \
                     crossover)",
                    m.key
                ),
                _ => {}
            }
            out.push(m);
        }
    }

    for w in table1_workloads()
        .into_iter()
        .filter(|w| !w.evaluated_in_fig7)
    {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let input = feature_map(1, w.c, w.h, w.w, 75);
        out.push(tuner_forward_row(
            format!("tuner/table1/{}-{}/{shape}", w.cnn, w.input_idx),
            &eng,
            &input,
            (input.c1, w.h, w.w),
            w.params,
        ));
    }
    out
}

fn metric(
    key: String,
    std: &ChipRun,
    acc: &ChipRun,
    std_db: &ChipRun,
    acc_db: &ChipRun,
    std_nr: &ChipRun,
    acc_nr: &ChipRun,
) -> Metric {
    let m = Metric {
        key,
        standard_cycles: std.cycles,
        accelerated_cycles: acc.cycles,
        standard_cycles_single: single_issue_cycles(std),
        accelerated_cycles_single: single_issue_cycles(acc),
        standard_cycles_db: std_db.cycles,
        accelerated_cycles_db: acc_db.cycles,
        ub_peak: std.peaks.of(BufferId::Ub).max(acc.peaks.of(BufferId::Ub)) as u64,
        l1_peak: std.peaks.of(BufferId::L1).max(acc.peaks.of(BufferId::L1)) as u64,
        ub_peak_db: std_db
            .peaks
            .of(BufferId::Ub)
            .max(acc_db.peaks.of(BufferId::Ub)) as u64,
        l1_peak_db: std_db
            .peaks
            .of(BufferId::L1)
            .max(acc_db.peaks.of(BufferId::L1)) as u64,
        standard_cycles_norename: std_nr.cycles,
        accelerated_cycles_norename: acc_nr.cycles,
    };
    // The ping-pong layout may double the band-cycled regions but never
    // more: the planner sizes bands so 2x the footprint fits.
    assert!(
        m.ub_peak_db <= 2 * m.ub_peak && m.l1_peak_db <= 2 * m.l1_peak.max(1),
        "{}: double-buffered peaks exceed the 2x band-footprint budget \
         (UB {} vs {}, L1 {} vs {})",
        m.key,
        m.ub_peak_db,
        m.ub_peak,
        m.l1_peak_db,
        m.l1_peak
    );
    // Renaming's makespan contract, enforced on every tracked row: the
    // cost-aware planner only schedules a versioned layout when its
    // overlap model says it wins, and scoreboard renaming on an
    // unchanged program can only relax waits — so the renamed makespan
    // never exceeds the no-rename control's.
    assert!(
        m.standard_cycles_db <= m.standard_cycles_norename
            && m.accelerated_cycles_db <= m.accelerated_cycles_norename,
        "{}: renaming may never cost dual-pipe cycles \
         (standard {} vs no-rename {}, accelerated {} vs no-rename {})",
        m.key,
        m.standard_cycles_db,
        m.standard_cycles_norename,
        m.accelerated_cycles_db,
        m.accelerated_cycles_norename
    );
    m
}

/// Replay every tracked workload and measure it.
///
/// Covers all Fig. 7 shapes (forward, forward+argmax, backward — the
/// three bold InceptionV3 rows of Table I on the 32-core chip), the
/// Fig. 8 stride study (strides 1–3 on one core at fixed sizes below the
/// tiling threshold), and the ten remaining Table I rows (forward only,
/// both implementations), so every published workload's cycle counts and
/// buffer ceilings are under regression tracking. Inputs reuse the
/// experiment seeds, so cycle counts match the corresponding
/// `experiments::*` tables exactly.
pub fn collect() -> Vec<Metric> {
    let mut out = Vec::new();
    // Headline columns run single-buffered (the PR 1-comparable
    // schedule); the `*_db` columns rerun the same workloads with
    // double-buffered row-band prefetch and must be bit-identical.
    let eng = PoolingEngine::ascend910().with_double_buffering(false);
    let eng_db = PoolingEngine::ascend910();
    // No-rename control: the same 32-core chip under
    // `CostModel::dual_pipe_no_rename()` with default scheduling — the
    // scoreboard never rotates slots and the planner (which derives its
    // rotation decision from the cost model) falls back to the
    // single/ping-pong band layouts, i.e. exactly the pre-renaming
    // schedule. The `*_norename` columns measure what renaming buys.
    let eng_nr = PoolingEngine::new(Chip::new(32, CostModel::dual_pipe_no_rename()));

    for w in fig7_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);

        // Fig. 7a — forward.
        let input = feature_map(1, w.c, w.h, w.w, 71);
        let (o_s, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("fig7a standard");
        let (o_a, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7a im2col");
        let (o_sd, std_db) = eng_db
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("fig7a standard db");
        let (o_ad, acc_db) = eng_db
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7a im2col db");
        let (o_sn, std_nr) = eng_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("fig7a standard no-rename");
        let (o_an, acc_nr) = eng_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7a im2col no-rename");
        assert_eq!(o_s.data(), o_a.data(), "fig7a implementations disagree");
        assert_eq!(o_s.data(), o_sd.data(), "fig7a db changed standard output");
        assert_eq!(o_a.data(), o_ad.data(), "fig7a db changed im2col output");
        assert_eq!(o_s.data(), o_sn.data(), "fig7a no-rename changed standard");
        assert_eq!(o_a.data(), o_an.data(), "fig7a no-rename changed im2col");
        out.push(metric(
            format!("fig7a/{shape}"),
            &std,
            &acc,
            &std_db,
            &acc_db,
            &std_nr,
            &acc_nr,
        ));

        // Fig. 7b — forward with the argmax mask.
        let input = feature_map(1, w.c, w.h, w.w, 72);
        let (o_s, m_s, std) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Standard)
            .expect("fig7b standard");
        let (o_a, m_a, acc) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7b im2col");
        let (o_sd, m_sd, std_db) = eng_db
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Standard)
            .expect("fig7b standard db");
        let (o_ad, m_ad, acc_db) = eng_db
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7b im2col db");
        let (o_sn, m_sn, std_nr) = eng_nr
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Standard)
            .expect("fig7b standard no-rename");
        let (o_an, m_an, acc_nr) = eng_nr
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7b im2col no-rename");
        assert_eq!(o_s.data(), o_a.data(), "fig7b implementations disagree");
        assert_eq!(m_s.data(), m_a.data(), "fig7b masks disagree");
        assert_eq!(
            (o_sn.data(), m_sn.data()),
            (o_s.data(), m_s.data()),
            "fig7b no-rename changed standard output"
        );
        assert_eq!(
            (o_an.data(), m_an.data()),
            (o_a.data(), m_a.data()),
            "fig7b no-rename changed im2col output"
        );
        assert_eq!(
            (o_sd.data(), m_sd.data()),
            (o_s.data(), m_s.data()),
            "fig7b db changed standard output"
        );
        assert_eq!(
            (o_ad.data(), m_ad.data()),
            (o_a.data(), m_a.data()),
            "fig7b db changed im2col output"
        );
        out.push(metric(
            format!("fig7b/{shape}"),
            &std,
            &acc,
            &std_db,
            &acc_db,
            &std_nr,
            &acc_nr,
        ));

        // Fig. 7c — backward.
        let input = feature_map(1, w.c, w.h, w.w, 73);
        let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
        let (oh, ow) = w.out_dims();
        let grads = gradients(1, input.c1, oh, ow, 74);
        let (dx_s, std) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("fig7c vadd");
        let (dx_a, acc) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("fig7c col2im");
        let (dx_sd, std_db) = eng_db
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("fig7c vadd db");
        let (dx_ad, acc_db) = eng_db
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("fig7c col2im db");
        let (dx_sn, std_nr) = eng_nr
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("fig7c vadd no-rename");
        let (dx_an, acc_nr) = eng_nr
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("fig7c col2im no-rename");
        assert_eq!(dx_s.data(), dx_a.data(), "fig7c merges disagree");
        assert_eq!(dx_s.data(), dx_sd.data(), "fig7c db changed vadd output");
        assert_eq!(dx_a.data(), dx_ad.data(), "fig7c db changed col2im output");
        assert_eq!(dx_s.data(), dx_sn.data(), "fig7c no-rename changed vadd");
        assert_eq!(dx_a.data(), dx_an.data(), "fig7c no-rename changed col2im");
        out.push(metric(
            format!("fig7c/{shape}"),
            &std,
            &acc,
            &std_db,
            &acc_db,
            &std_nr,
            &acc_nr,
        ));
    }

    // Batched N=4 Fig. 7 forward rows: the Mode-0 batch fold against the
    // per-plane schedule, on one AI core with the UB clamped to 64 KiB —
    // the capacity regime where lowering the batch through the SCU pays
    // off on all three shapes. The `standard` columns carry the
    // per-plane (batching-off) schedule, the `accelerated` columns the
    // batched fold; both run the im2col implementation, so the row
    // isolates exactly what the fold buys.
    let mut chip = Chip::new(1, CostModel::ascend910_like());
    chip.caps.ub = 64 * 1024;
    let mut chip_nr = Chip::new(1, CostModel::dual_pipe_no_rename());
    chip_nr.caps.ub = 64 * 1024;
    let bat = PoolingEngine::new(chip.clone()).with_double_buffering(false);
    let per = bat.clone().with_batching(false);
    let bat_db = PoolingEngine::new(chip);
    let per_db = bat_db.clone().with_batching(false);
    let bat_nr = PoolingEngine::new(chip_nr);
    let per_nr = bat_nr.clone().with_batching(false);
    for w in fig7_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let input = feature_map(4, w.c, w.h, w.w, 76);
        let (o_p, std) = per
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 per-plane");
        let (o_b, acc) = bat
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 batched");
        let (o_pd, std_db) = per_db
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 per-plane db");
        let (o_bd, acc_db) = bat_db
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 batched db");
        let (o_pn, std_nr) = per_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 per-plane no-rename");
        let (o_bn, acc_nr) = bat_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fig7n4 batched no-rename");
        assert_eq!(o_p.data(), o_b.data(), "fig7n4 fold changed the output");
        assert_eq!(o_p.data(), o_pd.data(), "fig7n4 db changed per-plane");
        assert_eq!(o_b.data(), o_bd.data(), "fig7n4 db changed batched");
        assert_eq!(
            o_p.data(),
            o_pn.data(),
            "fig7n4 no-rename changed per-plane"
        );
        assert_eq!(o_b.data(), o_bn.data(), "fig7n4 no-rename changed batched");
        // The fold's whole claim: strictly fewer Im2Col issues than N
        // per-plane passes, at no dual-pipe cycle cost. Cycles are held
        // on the double-buffered schedules (the engine default): those
        // give the fold its L1 band ping-pong, without which the single
        // L1 region serialises next-band staging against the current
        // band's Im2Cols and the single-program-per-c1 fold cannot hide
        // band boundaries the way 4-programs-per-c1 per-plane can.
        let (ib, ip) = (acc.total.issues_of("im2col"), std.total.issues_of("im2col"));
        assert!(
            ib < ip,
            "fig7n4/{shape}: batched fold must issue strictly fewer Im2Cols \
             ({ib} vs {ip} per-plane)"
        );
        assert!(
            acc_db.cycles <= std_db.cycles,
            "fig7n4/{shape}: batched fold may not cost dual-pipe cycles \
             ({} vs {})",
            acc_db.cycles,
            std_db.cycles
        );
        out.push(metric(
            format!("fig7n4/{shape}"),
            &std,
            &acc,
            &std_db,
            &acc_db,
            &std_nr,
            &acc_nr,
        ));
    }

    // Fig. 8 — the stride study, one AI core, K(3,3).
    for stride in 1usize..=3 {
        let params = PoolParams::new((3, 3), (stride, stride));
        let eng1 = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()))
            .with_double_buffering(false);
        let eng1_db = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
        let eng1_nr = PoolingEngine::new(Chip::new(1, CostModel::dual_pipe_no_rename()));
        let threshold = [ForwardImpl::Standard, ForwardImpl::Im2col]
            .iter()
            .map(|i| tiling_threshold(&params, *i, eng1.chip.caps))
            .min()
            .unwrap();
        for hw in [16usize, 24, 32] {
            if hw > threshold {
                continue;
            }
            let input = plane(1, hw, hw, 80 + hw as u32);
            let (o_s, std) = eng1
                .maxpool_forward(&input, params, ForwardImpl::Standard)
                .expect("fig8 standard");
            let (o_a, acc) = eng1
                .maxpool_forward(&input, params, ForwardImpl::Im2col)
                .expect("fig8 im2col");
            let (o_sd, std_db) = eng1_db
                .maxpool_forward(&input, params, ForwardImpl::Standard)
                .expect("fig8 standard db");
            let (o_ad, acc_db) = eng1_db
                .maxpool_forward(&input, params, ForwardImpl::Im2col)
                .expect("fig8 im2col db");
            let (o_sn, std_nr) = eng1_nr
                .maxpool_forward(&input, params, ForwardImpl::Standard)
                .expect("fig8 standard no-rename");
            let (o_an, acc_nr) = eng1_nr
                .maxpool_forward(&input, params, ForwardImpl::Im2col)
                .expect("fig8 im2col no-rename");
            assert_eq!(o_s.data(), o_a.data(), "fig8 implementations disagree");
            assert_eq!(o_s.data(), o_sd.data(), "fig8 db changed standard output");
            assert_eq!(o_a.data(), o_ad.data(), "fig8 db changed im2col output");
            assert_eq!(o_s.data(), o_sn.data(), "fig8 no-rename changed standard");
            assert_eq!(o_a.data(), o_an.data(), "fig8 no-rename changed im2col");
            out.push(metric(
                format!("fig8s{stride}/{hw}x{hw}"),
                &std,
                &acc,
                &std_db,
                &acc_db,
                &std_nr,
                &acc_nr,
            ));
        }
    }

    // The ten Table I rows Fig. 7 does not evaluate — forward pass only,
    // both implementations, so every published workload has its cycles
    // and buffer ceilings under regression tracking.
    for w in table1_workloads()
        .into_iter()
        .filter(|w| !w.evaluated_in_fig7)
    {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let input = feature_map(1, w.c, w.h, w.w, 75);
        let (o_s, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("table1 standard");
        let (o_a, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("table1 im2col");
        let (o_sd, std_db) = eng_db
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("table1 standard db");
        let (o_ad, acc_db) = eng_db
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("table1 im2col db");
        let (o_sn, std_nr) = eng_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("table1 standard no-rename");
        let (o_an, acc_nr) = eng_nr
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("table1 im2col no-rename");
        assert_eq!(o_s.data(), o_a.data(), "table1 implementations disagree");
        assert_eq!(o_s.data(), o_sd.data(), "table1 db changed standard output");
        assert_eq!(o_a.data(), o_ad.data(), "table1 db changed im2col output");
        assert_eq!(o_s.data(), o_sn.data(), "table1 no-rename changed standard");
        assert_eq!(o_a.data(), o_an.data(), "table1 no-rename changed im2col");
        out.push(metric(
            format!("table1/{}-{}/{shape}", w.cnn, w.input_idx),
            &std,
            &acc,
            &std_db,
            &acc_db,
            &std_nr,
            &acc_nr,
        ));
    }

    out
}

/// Render metrics as the `BENCH_pooling.json` document. When `baseline`
/// is given, each metric additionally carries its dual-pipe cycle ratio
/// vs the baseline (1.0 = unchanged, >1.0 = slower). The `scaling` and
/// `tuner` rows land in their own top-level sections — per-core-count
/// columns and per-workload chosen-algorithm columns respectively.
pub fn to_json(
    metrics: &[Metric],
    scaling: &[ScalingMetric],
    tuner: &[TunerMetric],
    baseline: Option<&[Metric]>,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"pooling\",\n");
    let _ = writeln!(out, "  \"tolerance\": {TOLERANCE},");
    let _ = writeln!(
        out,
        "  \"issue_models\": [\"dual_pipe\", \"single_issue\"],"
    );
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"standard_cycles\": {}, \"accelerated_cycles\": {}, \
             \"speedup\": {:.4}, \"standard_cycles_single\": {}, \
             \"accelerated_cycles_single\": {}, \"speedup_single\": {:.4}, \
             \"standard_cycles_db\": {}, \"accelerated_cycles_db\": {}, \
             \"speedup_db\": {:.4}, \"standard_cycles_norename\": {}, \
             \"accelerated_cycles_norename\": {}, \"rename_gain\": {:.4}, \
             \"ub_peak\": {}, \"l1_peak\": {}, \
             \"ub_peak_db\": {}, \"l1_peak_db\": {}",
            m.key,
            m.standard_cycles,
            m.accelerated_cycles,
            m.speedup(),
            m.standard_cycles_single,
            m.accelerated_cycles_single,
            m.speedup_single(),
            m.standard_cycles_db,
            m.accelerated_cycles_db,
            m.speedup_db(),
            m.standard_cycles_norename,
            m.accelerated_cycles_norename,
            m.rename_gain(),
            m.ub_peak,
            m.l1_peak,
            m.ub_peak_db,
            m.l1_peak_db
        );
        if let Some(base) = baseline {
            if let Some(b) = base.iter().find(|b| b.key == m.key) {
                let _ = write!(
                    out,
                    ", \"vs_baseline_standard\": {:.4}, \"vs_baseline_accelerated\": {:.4}",
                    m.standard_cycles as f64 / b.standard_cycles as f64,
                    m.accelerated_cycles as f64 / b.accelerated_cycles as f64
                );
            }
        }
        out.push_str(if i + 1 == metrics.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ],\n  \"scaling\": [\n");
    for (i, s) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"cores\": {}, \"cycles\": {}, \
             \"cycles_contended\": {}, \"contention_stalls\": {}, \
             \"contention_factor\": {:.4}}}",
            s.key,
            s.cores,
            s.cycles,
            s.cycles_contended,
            s.contention_stalls,
            s.contention_factor()
        );
        out.push_str(if i + 1 == scaling.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n  \"tuner\": [\n");
    for (i, t) in tuner.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"chosen\": \"{}\", \"predicted_cycles\": {}, \
             \"tuned_cycles\": {}, \"direct_cycles\": {}, \"im2col_cycles\": {}}}",
            t.key, t.chosen, t.predicted_cycles, t.tuned_cycles, t.direct_cycles, t.im2col_cycles
        );
        out.push_str(if i + 1 == tuner.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a `BENCH_pooling.json`-format document back into metrics.
pub fn parse_metrics(doc: &str) -> Result<Vec<Metric>, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let arr = v
        .get("metrics")
        .and_then(|m| m.as_arr())
        .ok_or("missing \"metrics\" array")?;
    let field = |m: &json::Value, name: &'static str| {
        m.get(name)
            .and_then(|c| c.as_u64())
            .ok_or(format!("metric missing \"{name}\""))
    };
    // Columns added after a baseline was committed parse as 0 so the
    // gate can regenerate across a schema change; `compare` treats a
    // zero baseline as "new ceiling", not a regression.
    let optional =
        |m: &json::Value, name: &'static str| m.get(name).and_then(|c| c.as_u64()).unwrap_or(0);
    arr.iter()
        .map(|m| {
            Ok(Metric {
                key: m
                    .get("key")
                    .and_then(|k| k.as_str())
                    .ok_or("metric missing \"key\"".to_string())?
                    .to_string(),
                standard_cycles: field(m, "standard_cycles")?,
                accelerated_cycles: field(m, "accelerated_cycles")?,
                standard_cycles_single: field(m, "standard_cycles_single")?,
                accelerated_cycles_single: field(m, "accelerated_cycles_single")?,
                standard_cycles_db: field(m, "standard_cycles_db")?,
                accelerated_cycles_db: field(m, "accelerated_cycles_db")?,
                ub_peak: field(m, "ub_peak")?,
                l1_peak: field(m, "l1_peak")?,
                ub_peak_db: field(m, "ub_peak_db")?,
                l1_peak_db: field(m, "l1_peak_db")?,
                standard_cycles_norename: optional(m, "standard_cycles_norename"),
                accelerated_cycles_norename: optional(m, "accelerated_cycles_norename"),
            })
        })
        .collect::<Result<Vec<_>, String>>()
}

/// Parse the `scaling` section of a `BENCH_pooling.json`-format
/// document. A baseline committed before the scaling gate existed has no
/// section and parses as the empty list — [`compare_scaling`] then
/// treats every current row as a new ceiling, mirroring how
/// [`parse_metrics`] handles columns added after a baseline was
/// committed.
pub fn parse_scaling(doc: &str) -> Result<Vec<ScalingMetric>, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let Some(arr) = v.get("scaling").and_then(|m| m.as_arr()) else {
        return Ok(Vec::new());
    };
    let field = |m: &json::Value, name: &'static str| {
        m.get(name)
            .and_then(|c| c.as_u64())
            .ok_or(format!("scaling row missing \"{name}\""))
    };
    arr.iter()
        .map(|m| {
            Ok(ScalingMetric {
                key: m
                    .get("key")
                    .and_then(|k| k.as_str())
                    .ok_or("scaling row missing \"key\"".to_string())?
                    .to_string(),
                cores: field(m, "cores")?,
                cycles: field(m, "cycles")?,
                cycles_contended: field(m, "cycles_contended")?,
                contention_stalls: field(m, "contention_stalls")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()
}

/// Compare current scaling rows against a baseline's. Flags a tracked
/// row that disappeared, or one whose cycles (either memory model) grew
/// by more than `tolerance`. New rows pass — they are fresh ceilings.
pub fn compare_scaling(
    current: &[ScalingMetric],
    baseline: &[ScalingMetric],
    tolerance: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            regressions.push(format!("{}: tracked scaling row disappeared", b.key));
            continue;
        };
        for (what, now, base) in [
            ("independent", c.cycles, b.cycles),
            ("contended", c.cycles_contended, b.cycles_contended),
        ] {
            let ratio = now as f64 / base.max(1) as f64;
            if base > 0 && ratio > 1.0 + tolerance {
                regressions.push(format!(
                    "{} ({what}): {now} vs baseline {base} ({:+.1}%)",
                    b.key,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }
    regressions
}

/// Parse the `tuner` section of a `BENCH_pooling.json`-format document.
/// A baseline committed before the auto-tuner existed has no section and
/// parses as the empty list — [`compare_tuner`] then treats every
/// current row as a new ceiling.
pub fn parse_tuner(doc: &str) -> Result<Vec<TunerMetric>, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let Some(arr) = v.get("tuner").and_then(|m| m.as_arr()) else {
        return Ok(Vec::new());
    };
    let field = |m: &json::Value, name: &'static str| {
        m.get(name)
            .and_then(|c| c.as_u64())
            .ok_or(format!("tuner row missing \"{name}\""))
    };
    let string = |m: &json::Value, name: &'static str| {
        m.get(name)
            .and_then(|c| c.as_str())
            .map(str::to_string)
            .ok_or(format!("tuner row missing \"{name}\""))
    };
    arr.iter()
        .map(|m| {
            Ok(TunerMetric {
                key: string(m, "key")?,
                chosen: string(m, "chosen")?,
                predicted_cycles: field(m, "predicted_cycles")?,
                tuned_cycles: field(m, "tuned_cycles")?,
                direct_cycles: field(m, "direct_cycles")?,
                im2col_cycles: field(m, "im2col_cycles")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()
}

/// Compare current tuner rows against a baseline's. Flags a tracked row
/// that disappeared, a chosen-algorithm flip (the simulator is
/// deterministic — a flip is a policy change that must be re-baselined
/// deliberately), or tuned cycles more than `tolerance` worse. New rows
/// pass — they are fresh ceilings.
pub fn compare_tuner(
    current: &[TunerMetric],
    baseline: &[TunerMetric],
    tolerance: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            regressions.push(format!("{}: tracked tuner row disappeared", b.key));
            continue;
        };
        if c.chosen != b.chosen {
            regressions.push(format!(
                "{}: chosen algorithm flipped ({} -> {})",
                b.key, b.chosen, c.chosen
            ));
        }
        let ratio = c.tuned_cycles as f64 / b.tuned_cycles.max(1) as f64;
        if b.tuned_cycles > 0 && ratio > 1.0 + tolerance {
            regressions.push(format!(
                "{} (tuned): {} vs baseline {} ({:+.1}%)",
                b.key,
                c.tuned_cycles,
                b.tuned_cycles,
                (ratio - 1.0) * 100.0
            ));
        }
    }
    regressions
}

/// Compare current metrics against a baseline. Returns the list of
/// regressions — a baseline metric that disappeared, or one whose cycle
/// count (either implementation, either issue model) or buffer peak grew
/// by more than `tolerance`. An empty list means the gate passes;
/// improvements and new metrics pass.
pub fn compare(current: &[Metric], baseline: &[Metric], tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            regressions.push(format!("{}: tracked metric disappeared", b.key));
            continue;
        };
        for (what, now, base) in [
            ("standard", c.standard_cycles, b.standard_cycles),
            ("accelerated", c.accelerated_cycles, b.accelerated_cycles),
            (
                "standard single-issue",
                c.standard_cycles_single,
                b.standard_cycles_single,
            ),
            (
                "accelerated single-issue",
                c.accelerated_cycles_single,
                b.accelerated_cycles_single,
            ),
            (
                "standard double-buffered",
                c.standard_cycles_db,
                b.standard_cycles_db,
            ),
            (
                "accelerated double-buffered",
                c.accelerated_cycles_db,
                b.accelerated_cycles_db,
            ),
            (
                "standard no-rename",
                c.standard_cycles_norename,
                b.standard_cycles_norename,
            ),
            (
                "accelerated no-rename",
                c.accelerated_cycles_norename,
                b.accelerated_cycles_norename,
            ),
            ("UB peak", c.ub_peak, b.ub_peak),
            ("L1 peak", c.l1_peak, b.l1_peak),
            ("UB peak double-buffered", c.ub_peak_db, b.ub_peak_db),
            ("L1 peak double-buffered", c.l1_peak_db, b.l1_peak_db),
        ] {
            // A metric absent from the baseline (0) that appears now is a
            // new ceiling, not a regression of an old one.
            let ratio = now as f64 / base.max(1) as f64;
            if base > 0 && ratio > 1.0 + tolerance {
                regressions.push(format!(
                    "{} ({what}): {now} vs baseline {base} ({:+.1}%)",
                    b.key,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }
    regressions
}

/// Run the full gate against [`COMMITTED_BASELINE`]: collect, compare,
/// and return the rendered `BENCH_pooling.json` contents on success or
/// the regression list on failure.
pub fn run() -> Result<String, Vec<String>> {
    let baseline = parse_metrics(COMMITTED_BASELINE)
        .map_err(|e| vec![format!("committed baseline unreadable: {e}")])?;
    let base_scaling = parse_scaling(COMMITTED_BASELINE)
        .map_err(|e| vec![format!("committed baseline scaling unreadable: {e}")])?;
    let base_tuner = parse_tuner(COMMITTED_BASELINE)
        .map_err(|e| vec![format!("committed baseline tuner unreadable: {e}")])?;
    let current = collect();
    let scaling = collect_scaling();
    let tuner = collect_tuner();
    let mut regressions = compare(&current, &baseline, TOLERANCE);
    regressions.extend(compare_scaling(&scaling, &base_scaling, TOLERANCE));
    regressions.extend(compare_tuner(&tuner, &base_tuner, TOLERANCE));
    if regressions.is_empty() {
        Ok(to_json(&current, &scaling, &tuner, Some(&baseline)))
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(key: &str, s: u64, a: u64) -> Metric {
        Metric {
            key: key.into(),
            standard_cycles: s,
            accelerated_cycles: a,
            standard_cycles_single: s + s / 2,
            accelerated_cycles_single: a + a / 2,
            standard_cycles_db: s.saturating_sub(s / 10),
            accelerated_cycles_db: a.saturating_sub(a / 10),
            ub_peak: 4096,
            l1_peak: 0,
            ub_peak_db: 8192,
            l1_peak_db: 0,
            standard_cycles_norename: s,
            accelerated_cycles_norename: a,
        }
    }

    fn sm(key: &str, cores: u64, cycles: u64) -> ScalingMetric {
        ScalingMetric {
            key: key.into(),
            cores,
            cycles,
            cycles_contended: cycles + cycles / 4,
            contention_stalls: cores * 10,
        }
    }

    fn tm(key: &str, chosen: &str, tuned: u64, direct: u64, im2col: u64) -> TunerMetric {
        TunerMetric {
            key: key.into(),
            chosen: chosen.into(),
            predicted_cycles: tuned + tuned / 10,
            tuned_cycles: tuned,
            direct_cycles: direct,
            im2col_cycles: im2col,
        }
    }

    #[test]
    fn json_round_trip() {
        let ms = vec![m("fig7a/1x1x16", 1000, 250), m("fig8s2/16x16", 77, 33)];
        let doc = to_json(&ms, &[], &[], None);
        assert_eq!(parse_metrics(&doc).unwrap(), ms);
        assert!(doc.contains("\"speedup_single\""));
        assert!(doc.contains("\"rename_gain\""));
        assert!(doc.contains("\"ub_peak\": 4096"));
        // A pre-renaming baseline (no norename columns) still parses —
        // the missing columns come back as 0 and compare() skips them.
        let legacy = doc
            .replace(", \"standard_cycles_norename\": 1000", "")
            .replace(", \"standard_cycles_norename\": 77", "")
            .replace(", \"accelerated_cycles_norename\": 250", "")
            .replace(", \"accelerated_cycles_norename\": 33", "");
        let parsed = parse_metrics(&legacy).unwrap();
        assert_eq!(parsed[0].standard_cycles_norename, 0);
        assert!(compare(&ms, &parsed, TOLERANCE).is_empty());
        // with-baseline rendering stays parseable
        let doc2 = to_json(&ms, &[], &[], Some(&ms));
        assert!(doc2.contains("\"vs_baseline_standard\": 1.0000"));
        assert_eq!(parse_metrics(&doc2).unwrap(), ms);
    }

    #[test]
    fn scaling_section_round_trips_and_tolerates_legacy_baselines() {
        let ms = vec![m("fig7a/1x1x16", 1000, 250)];
        let ss = vec![
            sm("scaling/1x1x16/c1", 1, 4000),
            sm("scaling/1x1x16/c8", 8, 600),
        ];
        let doc = to_json(&ms, &ss, &[], None);
        assert_eq!(parse_scaling(&doc).unwrap(), ss);
        assert_eq!(parse_metrics(&doc).unwrap(), ms);
        assert!(doc.contains("\"contention_factor\": 1.2500"));
        // A baseline committed before the scaling gate has no section:
        // it parses as empty and every current row is a new ceiling.
        let legacy = to_json(&ms, &[], &[], None);
        let base = parse_scaling(&legacy).unwrap();
        assert!(base.is_empty());
        assert!(compare_scaling(&ss, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn tuner_section_round_trips_and_tolerates_legacy_baselines() {
        let ms = vec![m("fig7a/1x1x16", 1000, 250)];
        let ts = vec![
            tm("tuner/fig8s1/16x16", "direct", 2201, 2201, 3452),
            tm("tuner/fig8s2/16x16", "im2col", 1505, 3233, 1505),
        ];
        let doc = to_json(&ms, &[], &ts, None);
        assert_eq!(parse_tuner(&doc).unwrap(), ts);
        assert_eq!(parse_metrics(&doc).unwrap(), ms);
        assert!(doc.contains("\"chosen\": \"direct\""));
        // A baseline committed before the tuner gate has no section: it
        // parses as empty and every current row is a new ceiling.
        let legacy = to_json(&ms, &[], &[], None);
        let base = parse_tuner(&legacy).unwrap();
        assert!(base.is_empty());
        assert!(compare_tuner(&ts, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn compare_tuner_flags_flips_and_regressions() {
        let base = vec![
            tm("tuner/a", "direct", 1000, 1000, 2000),
            tm("tuner/b", "im2col", 500, 900, 500),
        ];
        // within tolerance + improvement + new row → pass
        let ok = vec![
            tm("tuner/a", "direct", 1040, 1040, 2000),
            tm("tuner/b", "im2col", 450, 900, 450),
            tm("tuner/c", "fold", 5, 0, 9),
        ];
        assert!(compare_tuner(&ok, &base, TOLERANCE).is_empty());
        // a chosen-algorithm flip fails even when cycles improve
        let flipped = vec![
            tm("tuner/a", "im2col", 900, 1000, 900),
            tm("tuner/b", "im2col", 500, 900, 500),
        ];
        let regs = compare_tuner(&flipped, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("flipped (direct -> im2col)"));
        // a 6% tuned-cycle regression fails
        let slow = vec![
            tm("tuner/a", "direct", 1060, 1060, 2000),
            tm("tuner/b", "im2col", 500, 900, 500),
        ];
        assert_eq!(compare_tuner(&slow, &base, TOLERANCE).len(), 1);
        // disappeared row → fail
        let gone = vec![tm("tuner/a", "direct", 1000, 1000, 2000)];
        assert_eq!(compare_tuner(&gone, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn compare_scaling_flags_only_real_regressions() {
        let base = vec![sm("scaling/a/c1", 1, 1000), sm("scaling/a/c8", 8, 200)];
        // within tolerance + improvement + new row → pass
        let ok = vec![
            sm("scaling/a/c1", 1, 1040),
            sm("scaling/a/c8", 8, 180),
            sm("scaling/a/c32", 32, 90),
        ];
        assert!(compare_scaling(&ok, &base, TOLERANCE).is_empty());
        // 6% regression on the contended column only → fail
        let mut slow = vec![sm("scaling/a/c1", 1, 1000), sm("scaling/a/c8", 8, 200)];
        slow[1].cycles_contended = 265;
        let regs = compare_scaling(&slow, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("scaling/a/c8 (contended)"));
        // disappeared row → fail
        let gone = vec![sm("scaling/a/c1", 1, 1000)];
        assert_eq!(compare_scaling(&gone, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = vec![m("a", 1000, 100), m("b", 1000, 100)];
        // within tolerance + improvement + new metric → pass
        let ok = vec![m("a", 1040, 100), m("b", 900, 90), m("c", 5, 5)];
        assert!(compare(&ok, &base, TOLERANCE).is_empty());
        // 6% regression on the accelerated dual-pipe column only → fail
        let mut slow = vec![m("a", 1000, 106), m("b", 1000, 100)];
        slow[0].standard_cycles_single = 1500;
        slow[0].accelerated_cycles_single = 150;
        slow[0].accelerated_cycles_db = 90;
        slow[0].accelerated_cycles_norename = 100;
        let regs = compare(&slow, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("a (accelerated)"));
        // disappeared metric → fail
        let gone = vec![m("a", 1000, 100)];
        assert_eq!(compare(&gone, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn compare_flags_single_issue_and_peak_regressions() {
        let base = vec![m("a", 1000, 100)];
        // regression only in the single-issue column
        let mut single_slow = vec![m("a", 1000, 100)];
        single_slow[0].accelerated_cycles_single = 200;
        let regs = compare(&single_slow, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("accelerated single-issue"));
        // UB footprint grew 2x → fail even though cycles are unchanged
        let mut fat = vec![m("a", 1000, 100)];
        fat[0].ub_peak = 8192;
        let regs = compare(&fat, &base, TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("UB peak"));
        // L1 peak 0 in baseline: a new non-zero peak is not flagged
        // (nothing to regress against), growth from non-zero is.
        let mut l1 = vec![m("a", 1000, 100)];
        l1[0].l1_peak = 123;
        assert!(compare(&l1, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn committed_baseline_parses_and_covers_all_figures() {
        let base = parse_metrics(COMMITTED_BASELINE).expect("baseline must parse");
        for prefix in [
            "fig7a/", "fig7b/", "fig7c/", "fig7n4/", "fig8s1/", "fig8s2/", "fig8s3/", "table1/",
        ] {
            assert!(
                base.iter().any(|m| m.key.starts_with(prefix)),
                "baseline missing {prefix} metrics"
            );
        }
        // Every Table I row outside Fig. 7 is tracked (10 of 13).
        assert_eq!(
            base.iter().filter(|m| m.key.starts_with("table1/")).count(),
            10
        );
        for m in &base {
            assert!(m.ub_peak > 0, "{}: UB peak must be tracked", m.key);
            assert!(
                m.accelerated_cycles <= m.accelerated_cycles_single,
                "{}: dual-pipe cannot be slower than serial",
                m.key
            );
            // The renaming columns are tracked on every row, and the
            // committed numbers already honour the makespan contract.
            assert!(
                m.standard_cycles_norename > 0 && m.accelerated_cycles_norename > 0,
                "{}: no-rename control must be tracked",
                m.key
            );
            assert!(
                m.standard_cycles_db <= m.standard_cycles_norename
                    && m.accelerated_cycles_db <= m.accelerated_cycles_norename,
                "{}: committed baseline shows renaming costing cycles",
                m.key
            );
        }
        // The tentpole's measured flip: at least one tracked row where
        // the cost-aware planner turned a formerly hardcoded decline
        // into a strict renaming win.
        assert!(
            base.iter().any(|m| m.rename_gain() > 1.0),
            "baseline records no strict renaming win on any tracked row"
        );
        // The scaling section is committed: every Fig. 7 shape at every
        // swept core count, with the committed numbers already honouring
        // monotone speedup and contended >= independent.
        let scaling = parse_scaling(COMMITTED_BASELINE).expect("scaling parses");
        assert_eq!(
            scaling.len(),
            3 * SCALING_CORES.len(),
            "baseline must track every Fig. 7 shape at every swept core count"
        );
        for rows in scaling.chunks(SCALING_CORES.len()) {
            for pair in rows.windows(2) {
                assert!(
                    pair[1].cycles <= pair[0].cycles,
                    "{}: committed scaling curve is not monotone",
                    pair[1].key
                );
            }
            for s in rows {
                assert!(
                    s.cycles_contended >= s.cycles,
                    "{}: contention can only add cycles",
                    s.key
                );
            }
        }
        assert!(
            scaling
                .iter()
                .any(|s| s.cores == 32 && s.contention_stalls > 0),
            "the full chip must book contention stalls on some shape"
        );
        // The tuner section is committed: a chosen-algorithm column for
        // every tracked family, with the committed choices already
        // honouring the Fig. 8 crossover and the honesty contract
        // (tuned cycles never above a feasible alternative's).
        let tuner = parse_tuner(COMMITTED_BASELINE).expect("tuner section parses");
        for prefix in [
            "tuner/fig7a/",
            "tuner/fig7c/",
            "tuner/fig8s1/",
            "tuner/fig8s2/",
            "tuner/table1/",
        ] {
            assert!(
                tuner.iter().any(|t| t.key.starts_with(prefix)),
                "baseline missing {prefix} tuner rows"
            );
        }
        for t in &tuner {
            if t.key.starts_with("tuner/fig8s1/") {
                assert_eq!(t.chosen, "direct", "{}: committed crossover flipped", t.key);
            }
            if t.key.starts_with("tuner/fig8s2/") || t.key.starts_with("tuner/fig7c/") {
                assert_eq!(t.chosen, "im2col", "{}: committed crossover flipped", t.key);
            }
            for (what, alt) in [("direct", t.direct_cycles), ("im2col", t.im2col_cycles)] {
                assert!(
                    alt == 0 || t.tuned_cycles <= alt,
                    "{}: committed tuned cycles {} exceed the forced {} run's {}",
                    t.key,
                    t.tuned_cycles,
                    what,
                    alt
                );
            }
        }
    }
}
