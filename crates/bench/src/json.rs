//! A minimal JSON parser and value model.
//!
//! The perf-regression gate has to read its committed baseline, and the
//! test suite has to prove that exported Chrome traces are well-formed —
//! but the build environment is offline, so no serde. This is a small
//! recursive-descent parser over the full JSON grammar, good enough for
//! machine-generated documents (no lenient extensions, no comments).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved; duplicate keys keep the
    /// last occurrence.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // machine-generated documents; reject them
                            // rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported surrogate escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Value::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
