//! The host-throughput gate: host speed as a measured, regression-gated
//! contract.
//!
//! The cycle gate ([`crate::gate`]) protects the *simulated* numbers; at
//! production traffic the simulator's own wall-clock is the serving hot
//! path, so this module makes host speed a gated quantity too. Every
//! Table I workload's accelerated (Im2col) forward pass is replayed under
//! each execution [`Backend`] and timed with the vendored criterion
//! shim's warmup-then-median loop ([`criterion::time_median`]); the
//! measurements land in `BENCH_host.json` and are compared against the
//! committed baseline in `crates/bench/baselines/host.json`.
//!
//! Two contracts are enforced:
//!
//! * **Bit-identity, in-gate.** On every gated workload, [`collect_host`]
//!   asserts that all backends produce the same output bytes, the same
//!   [`HwCounters`], the same chip cycles, and the same scratchpad peaks
//!   as the `Scalar` reference — backends may only move host wall-clock.
//! * **Relative speed.** Wall times are machine-dependent, so the gate
//!   does not compare nanoseconds across machines: it gates the
//!   machine-portable *speedup ratios* (`scalar_ns / sliced_ns` per row)
//!   against the committed baseline with [`HOST_TOLERANCE`] slack, and
//!   [`collect_host`] asserts in-run that `Sliced` still clears the
//!   [`SLICED_FLOOR`] on at least one Table I workload — the hoisted
//!   bounds checks are the whole point of the seam, and losing them is a
//!   host-speed regression no matter what machine CI runs on. Absolute
//!   per-backend nanoseconds, host instructions/sec, and
//!   simulated-cycles-per-wall-second are recorded alongside for
//!   trending.
//!
//! Host timing is inherently noisy where cycle counts are deterministic:
//! [`run_host`] re-collects once before declaring a regression, and each
//! number is a median over [`HOST_SAMPLES`] samples after a warmup pass.
//! When the executor legitimately changes speed, regenerate with
//! `cargo run --release -p dv-bench --bin repro -- gate` and commit the
//! refreshed `host.json`.

use crate::inputs::feature_map;
use crate::json;
use dv_core::{table1_workloads, ForwardImpl, PoolingEngine};
use dv_sim::Backend;
use std::fmt::Write as _;
use std::time::Duration;

/// Relative speedup-ratio loss tolerated before the host gate fails
/// (15% — wall time needs more slack than the deterministic cycle
/// gate's 5%).
pub const HOST_TOLERANCE: f64 = 0.15;

/// Timed samples per (workload, backend) measurement; the reported
/// nanoseconds are the median after one warmup run.
pub const HOST_SAMPLES: usize = 5;

/// The in-run floor for the `Sliced` backend: at least one Table I
/// workload must run at or above this many times the `Scalar` host
/// instructions/sec.
pub const SLICED_FLOOR: f64 = 2.0;

/// The committed host baseline (regenerate via `repro -- gate` when the
/// executor legitimately changes speed).
pub const COMMITTED_HOST_BASELINE: &str = include_str!("../baselines/host.json");

/// One host-throughput row: a Table I workload's accelerated forward
/// pass timed under every backend, plus the deterministic denominators
/// (instruction issues and simulated cycles) that turn wall time into
/// throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct HostMetric {
    /// Stable identifier, e.g. `host/InceptionV3-1/147x147x64`.
    pub key: String,
    /// Simulated instruction issues of one run (backend-invariant).
    pub instructions: u64,
    /// Dual-pipe chip cycles of one run (backend-invariant).
    pub sim_cycles: u64,
    /// Median host wall time of one run under [`Backend::Scalar`].
    pub scalar_ns: u64,
    /// Median host wall time under [`Backend::Sliced`].
    pub sliced_ns: u64,
    /// Median host wall time under [`Backend::Threaded`].
    pub threaded_ns: u64,
}

impl HostMetric {
    /// Host speedup of the sliced executors over the scalar reference
    /// (the satellite bugfix's measured win).
    pub fn sliced_speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.sliced_ns.max(1) as f64
    }

    /// Host speedup of the threaded backend over the scalar reference.
    pub fn threaded_speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.threaded_ns.max(1) as f64
    }

    /// Host instructions per second under the given measured wall time.
    pub fn instr_per_sec(&self, ns: u64) -> f64 {
        self.instructions as f64 * 1e9 / ns.max(1) as f64
    }

    /// Simulated cycles retired per host wall-second under the given
    /// measured wall time — the serving-capacity number.
    pub fn sim_cycles_per_sec(&self, ns: u64) -> f64 {
        self.sim_cycles as f64 * 1e9 / ns.max(1) as f64
    }
}

/// Replay every Table I workload's Im2col forward under all three
/// backends, asserting bit-identity in-gate and timing each backend with
/// the criterion shim's warmup-then-median loop. Panics if `Sliced`
/// fails [`SLICED_FLOOR`] on every row.
pub fn collect_host() -> Vec<HostMetric> {
    let mut out = Vec::new();
    for w in table1_workloads() {
        let shape = format!("{}x{}x{}", w.h, w.w, w.c);
        let key = format!("host/{}-{}/{shape}", w.cnn, w.input_idx);
        let input = feature_map(1, w.c, w.h, w.w, 71);

        // Reference run plus the in-gate bit-identity contract: every
        // backend must reproduce the Scalar run's output bytes, counters,
        // cycles, and peaks exactly.
        let scalar_eng = PoolingEngine::ascend910().with_backend(Backend::Scalar);
        let (o_ref, run_ref) = scalar_eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("host gate scalar run");
        for backend in [Backend::Sliced, Backend::Threaded] {
            let eng = PoolingEngine::ascend910().with_backend(backend);
            let (o, run) = eng
                .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
                .expect("host gate backend run");
            assert_eq!(
                o.data(),
                o_ref.data(),
                "{key}: {backend} output diverged from Scalar"
            );
            assert_eq!(
                run.total, run_ref.total,
                "{key}: {backend} counters diverged from Scalar"
            );
            assert_eq!(
                run.cycles, run_ref.cycles,
                "{key}: {backend} cycles diverged from Scalar"
            );
            assert_eq!(
                run.peaks, run_ref.peaks,
                "{key}: {backend} peaks diverged from Scalar"
            );
        }

        let time_backend = |backend: Backend| -> u64 {
            let eng = PoolingEngine::ascend910().with_backend(backend);
            let d = criterion::time_median(HOST_SAMPLES, || {
                eng.maxpool_forward(&input, w.params, ForwardImpl::Im2col)
                    .expect("host gate timed run")
            });
            duration_ns(d)
        };

        out.push(HostMetric {
            key,
            instructions: run_ref.total.total_issues(),
            sim_cycles: run_ref.cycles,
            scalar_ns: time_backend(Backend::Scalar),
            sliced_ns: time_backend(Backend::Sliced),
            threaded_ns: time_backend(Backend::Threaded),
        });
    }
    let best = out
        .iter()
        .map(|m| m.sliced_speedup())
        .fold(0.0f64, f64::max);
    assert!(
        best >= SLICED_FLOOR,
        "host gate: Sliced must clear {SLICED_FLOOR}x Scalar host \
         instructions/sec on at least one Table I workload (best {best:.2}x)"
    );
    out
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
}

/// Render host metrics as the `BENCH_host.json` document.
pub fn to_host_json(metrics: &[HostMetric]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"host\",\n");
    let _ = writeln!(out, "  \"tolerance\": {HOST_TOLERANCE},");
    let _ = writeln!(out, "  \"samples\": {HOST_SAMPLES},");
    out.push_str("  \"host\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"instructions\": {}, \"sim_cycles\": {}, \
             \"scalar_ns\": {}, \"sliced_ns\": {}, \"threaded_ns\": {}, \
             \"sliced_speedup\": {:.4}, \"threaded_speedup\": {:.4}, \
             \"scalar_instr_per_sec\": {:.0}, \"sliced_instr_per_sec\": {:.0}, \
             \"sliced_sim_cycles_per_sec\": {:.0}}}",
            m.key,
            m.instructions,
            m.sim_cycles,
            m.scalar_ns,
            m.sliced_ns,
            m.threaded_ns,
            m.sliced_speedup(),
            m.threaded_speedup(),
            m.instr_per_sec(m.scalar_ns),
            m.instr_per_sec(m.sliced_ns),
            m.sim_cycles_per_sec(m.sliced_ns),
        );
        out.push_str(if i + 1 == metrics.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse the `host` section of a `BENCH_host.json`-format document. A
/// document without the section (e.g. a `BENCH_pooling.json` from before
/// the host gate existed) parses as the empty list — [`compare_host`]
/// then treats every current row as a fresh baseline, mirroring how
/// [`crate::gate::parse_scaling`] handles pre-scaling baselines.
pub fn parse_host(doc: &str) -> Result<Vec<HostMetric>, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let Some(arr) = v.get("host").and_then(|m| m.as_arr()) else {
        return Ok(Vec::new());
    };
    let field = |m: &json::Value, name: &'static str| {
        m.get(name)
            .and_then(|c| c.as_u64())
            .ok_or(format!("host row missing \"{name}\""))
    };
    arr.iter()
        .map(|m| {
            Ok(HostMetric {
                key: m
                    .get("key")
                    .and_then(|k| k.as_str())
                    .ok_or("host row missing \"key\"".to_string())?
                    .to_string(),
                instructions: field(m, "instructions")?,
                sim_cycles: field(m, "sim_cycles")?,
                scalar_ns: field(m, "scalar_ns")?,
                sliced_ns: field(m, "sliced_ns")?,
                threaded_ns: field(m, "threaded_ns")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()
}

/// Geometric mean of the per-row sliced speedups — the gate's headline
/// number. Individual rows jitter with host load; the geomean over all
/// Table I rows is stable, and any executor regression (the fast paths
/// are shared by every row) moves it.
pub fn geomean_sliced_speedup(metrics: &[HostMetric]) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = metrics.iter().map(|m| m.sliced_speedup().ln()).sum();
    (log_sum / metrics.len() as f64).exp()
}

/// Compare current host rows against a baseline's. Absolute nanoseconds
/// are machine-dependent and never compared; what is gated is the
/// machine-portable sliced speedup ratio:
///
/// * a tracked row that disappeared is a regression;
/// * the **geometric mean** speedup over all matched rows falling more
///   than `tolerance` below the baseline's is a regression — every row
///   exercises the same fast paths, so a real executor regression moves
///   the aggregate, while single-row timing jitter does not;
/// * any single row collapsing more than `2 * tolerance` is flagged
///   too — a belt-and-braces bound wide enough to ride out load spikes.
///
/// New rows pass — they are fresh baselines.
pub fn compare_host(
    current: &[HostMetric],
    baseline: &[HostMetric],
    tolerance: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    let mut matched_current = Vec::new();
    let mut matched_base = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            regressions.push(format!("{}: tracked host row disappeared", b.key));
            continue;
        };
        matched_current.push(c.clone());
        matched_base.push(b.clone());
        let (now, base) = (c.sliced_speedup(), b.sliced_speedup());
        if base > 0.0 && now < base * (1.0 - 2.0 * tolerance) {
            regressions.push(format!(
                "{} (sliced speedup): {now:.2}x vs baseline {base:.2}x ({:+.1}%)",
                b.key,
                (now / base - 1.0) * 100.0
            ));
        }
    }
    let (now, base) = (
        geomean_sliced_speedup(&matched_current),
        geomean_sliced_speedup(&matched_base),
    );
    if base > 0.0 && now < base * (1.0 - tolerance) {
        regressions.push(format!(
            "geomean sliced speedup: {now:.2}x vs baseline {base:.2}x ({:+.1}%)",
            (now / base - 1.0) * 100.0
        ));
    }
    regressions
}

/// Run the full host gate against [`COMMITTED_HOST_BASELINE`]: collect,
/// compare, and return the rendered `BENCH_host.json` contents on
/// success or the regression list on failure. Because wall time is
/// noisy, one losing collection is re-measured before a regression is
/// declared.
pub fn run_host() -> Result<String, Vec<String>> {
    let baseline = parse_host(COMMITTED_HOST_BASELINE)
        .map_err(|e| vec![format!("committed host baseline unreadable: {e}")])?;
    let mut current = collect_host();
    let mut regressions = compare_host(&current, &baseline, HOST_TOLERANCE);
    if !regressions.is_empty() {
        // Timing flake insurance: one full re-measurement before failing.
        current = collect_host();
        regressions = compare_host(&current, &baseline, HOST_TOLERANCE);
    }
    if regressions.is_empty() {
        Ok(to_host_json(&current))
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hm(key: &str, scalar_ns: u64, sliced_ns: u64) -> HostMetric {
        HostMetric {
            key: key.into(),
            instructions: 10_000,
            sim_cycles: 97_836,
            scalar_ns,
            sliced_ns,
            threaded_ns: sliced_ns / 2 + 1,
        }
    }

    #[test]
    fn host_json_round_trips() {
        let ms = vec![
            hm("host/InceptionV3-1/147x147x64", 4_000_000, 1_000_000),
            hm("host/VGG16-1/224x224x64", 9_000_000, 3_000_000),
        ];
        let doc = to_host_json(&ms);
        assert_eq!(parse_host(&doc).unwrap(), ms);
        assert!(doc.contains("\"sliced_speedup\": 4.0000"));
        assert!(doc.contains("\"scalar_instr_per_sec\""));
    }

    #[test]
    fn absent_host_section_parses_as_empty() {
        // A pooling-format document (or any JSON without a "host"
        // section) must parse cleanly as the empty list, and the
        // comparison must pass every current row as a fresh baseline.
        let legacy = "{\n  \"benchmark\": \"pooling\",\n  \"metrics\": []\n}\n";
        let base = parse_host(legacy).unwrap();
        assert!(base.is_empty());
        let ms = vec![hm("host/a", 100, 25)];
        assert!(compare_host(&ms, &base, HOST_TOLERANCE).is_empty());
    }

    #[test]
    fn compare_host_gates_speedup_ratio_not_nanoseconds() {
        let base = vec![hm("host/a", 4_000_000, 1_000_000)]; // 4.0x
                                                             // Twice as slow in absolute terms but the same ratio: a slower
                                                             // machine is not a regression.
        let slower_machine = vec![hm("host/a", 8_000_000, 2_000_000)];
        assert!(compare_host(&slower_machine, &base, HOST_TOLERANCE).is_empty());
        // Ratio within tolerance passes (3.6x vs 4.0x at 15%).
        let noisy = vec![hm("host/a", 3_600_000, 1_000_000)];
        assert!(compare_host(&noisy, &base, HOST_TOLERANCE).is_empty());
        // Ratio collapse fails both the per-row and geomean bounds —
        // e.g. the sliced fast path was reverted.
        let reverted = vec![hm("host/a", 4_000_000, 3_800_000)];
        let regs = compare_host(&reverted, &base, HOST_TOLERANCE);
        assert_eq!(regs.len(), 2);
        assert!(regs.iter().any(|r| r.contains("host/a (sliced speedup)")));
        assert!(regs.iter().any(|r| r.contains("geomean")));
        // Disappeared row fails.
        assert!(compare_host(&[], &base, HOST_TOLERANCE)
            .iter()
            .any(|r| r.contains("disappeared")));
    }

    #[test]
    fn compare_host_rides_out_single_row_jitter() {
        // Three tracked rows at 2.0x. One row loses 20% to a host load
        // spike while the others hold: inside the 2x-tolerance per-row
        // bound, and the geomean barely moves — the gate passes. The
        // deterministic cycle gate would flag this; the host gate must
        // not, or CI flakes.
        let base = vec![
            hm("host/a", 2_000_000, 1_000_000),
            hm("host/b", 2_000_000, 1_000_000),
            hm("host/c", 2_000_000, 1_000_000),
        ];
        let jitter = vec![
            hm("host/a", 2_000_000, 1_250_000), // 1.6x: -20%
            hm("host/b", 2_000_000, 1_000_000),
            hm("host/c", 2_000_000, 1_000_000),
        ];
        assert!(compare_host(&jitter, &base, HOST_TOLERANCE).is_empty());
        // But the same drop on every row is an executor regression and
        // must fail via the geomean bound.
        let real = vec![
            hm("host/a", 2_000_000, 1_250_000),
            hm("host/b", 2_000_000, 1_250_000),
            hm("host/c", 2_000_000, 1_250_000),
        ];
        let regs = compare_host(&real, &base, HOST_TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("geomean"));
    }

    #[test]
    fn committed_host_baseline_parses_and_clears_the_floor() {
        let base = parse_host(COMMITTED_HOST_BASELINE).expect("host baseline parses");
        assert_eq!(
            base.len(),
            table1_workloads().len(),
            "host baseline must track every Table I workload"
        );
        assert!(
            base.iter().any(|m| m.sliced_speedup() >= SLICED_FLOOR),
            "committed host baseline must record the Sliced floor win"
        );
        for m in &base {
            assert!(m.instructions > 0 && m.sim_cycles > 0, "{}", m.key);
        }
    }
}
