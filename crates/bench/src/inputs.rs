//! Deterministic workload generators.
//!
//! All tensors are seeded deterministically so reruns are reproducible
//! (the paper repeats each measurement ten times; the simulator is
//! deterministic, so cycle counts are exact and need no averaging —
//! see EXPERIMENTS.md).

use dv_fp16::F16;
use dv_tensor::{Nc1hwc0, Nchw};

/// A feature-map-like NC1HWC0 input with f16-exact values in [-16, 16).
pub fn feature_map(n: usize, c: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(1);
    Nchw::from_fn(n, c, h, w, |_, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        F16::from_f32(((state >> 16) % 128) as f32 * 0.25 - 16.0)
    })
    .to_nc1hwc0()
}

/// A fractal-layout tensor built directly at `(n, c1, h, w)` — used for
/// the Fig. 8 sweeps where N = C1 = 1.
pub fn plane(c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0x85EBCA6B).wrapping_add(3);
    Nc1hwc0::from_fn(1, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        F16::from_f32(((state >> 18) % 64) as f32 * 0.5 - 16.0)
    })
}

/// Integer-valued gradients (exact under any f16 summation order).
pub fn gradients(n: usize, c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0xC2B2AE35).wrapping_add(5);
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        F16::from_f32(((state >> 20) % 8) as f32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            feature_map(1, 32, 8, 8, 7).data(),
            feature_map(1, 32, 8, 8, 7).data()
        );
        assert_eq!(plane(1, 8, 8, 7).data(), plane(1, 8, 8, 7).data());
        assert_ne!(plane(1, 8, 8, 7).data(), plane(1, 8, 8, 8).data());
    }

    #[test]
    fn values_are_f16_exact() {
        for v in feature_map(1, 16, 4, 4, 1).data() {
            let f = v.to_f32();
            assert_eq!(F16::from_f32(f), *v);
            assert!((-16.0..16.0).contains(&f));
        }
    }
}
