#![deny(missing_docs)]
//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section VI) on the simulator.
//!
//! * `repro` binary — prints the paper-style rows and writes CSVs under
//!   `results/` (`cargo run --release -p dv-bench --bin repro -- all`).
//! * criterion benches — wall-time of the simulator itself on the same
//!   workloads (`cargo bench`).
//!
//! | experiment | paper | function |
//! |---|---|---|
//! | E1 | Fig. 7a MaxPool forward | [`experiments::fig7a`] |
//! | E2 | Fig. 7b forward + argmax | [`experiments::fig7b`] |
//! | E3 | Fig. 7c backward | [`experiments::fig7c`] |
//! | E4-6 | Fig. 8a/b/c stride study | [`experiments::fig8`] |
//! | E7 | Table I workloads | [`experiments::table1`] |
//! | E8 | cost-model ablation | [`experiments::ablate`] |
//! | E9 | AvgPool extension | [`experiments::avgpool`] |
//! | E10 | Cube-Unit convolution substrate | [`experiments::conv_substrate`] |

pub mod experiments;
pub mod gate;
pub mod host;
pub mod inputs;
pub mod json;
pub mod plot;
pub mod report;

pub use report::Table;
