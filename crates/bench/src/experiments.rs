//! The experiments of the paper's evaluation, regenerated.

use crate::inputs::{feature_map, gradients};
use crate::report::Table;
use dv_core::{
    fig7_workloads, table1_workloads, tiling_threshold, ForwardImpl, MergeImpl, PoolingEngine,
};
use dv_sim::{Chip, CostModel};
use dv_tensor::reference;
use dv_tensor::{Nchw, PoolParams};

/// The chip configuration of the paper's evaluation: "All the experiments
/// were run on an Ascend 910 chip, which contains 32 AI Cores." The
/// paper's kernels are single-buffered, so the reproduction tables pin
/// the reference schedule; the double-buffered prefetch schedule is
/// tracked separately by the perf gate's `*_db` columns.
fn chip32() -> PoolingEngine {
    PoolingEngine::ascend910().with_double_buffering(false)
}

/// The single-core chip of the stride study: "dimensions N and C1 are set
/// to 1 so that only one AI Core is utilized."
fn chip1(cost: CostModel) -> PoolingEngine {
    PoolingEngine::new(Chip::new(1, cost)).with_double_buffering(false)
}

fn speedup(base: u64, acc: u64) -> String {
    format!("{:.2}x", base as f64 / acc as f64)
}

/// Fig. 7a — MaxPool forward, standard vs Im2col, on the three bold
/// InceptionV3 configurations of Table I.
pub fn fig7a() -> Table {
    let eng = chip32();
    let mut t = Table::new(
        "Fig. 7a — MaxPool forward (cycles, 32 AI cores)",
        &["input (HWC)", "Maxpool", "Maxpool with Im2col", "speedup"],
    );
    for w in fig7_workloads() {
        let input = feature_map(1, w.c, w.h, w.w, 71);
        let (out_std, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (out_acc, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        assert_eq!(out_std.data(), out_acc.data(), "implementations disagree");
        t.push_row(vec![
            format!("{},{},{}", w.h, w.w, w.c),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// Fig. 7b — MaxPool forward *with the argmax mask*.
pub fn fig7b() -> Table {
    let eng = chip32();
    let mut t = Table::new(
        "Fig. 7b — MaxPool forward + argmax mask (cycles, 32 AI cores)",
        &["input (HWC)", "Maxpool", "Maxpool with Im2col", "speedup"],
    );
    for w in fig7_workloads() {
        let input = feature_map(1, w.c, w.h, w.w, 72);
        let (o_s, m_s, std) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (o_a, m_a, acc) = eng
            .maxpool_forward_with_argmax(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        assert_eq!(o_s.data(), o_a.data());
        assert_eq!(m_s.data(), m_a.data());
        t.push_row(vec![
            format!("{},{},{}", w.h, w.w, w.c),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// Fig. 7c — MaxPool backward, vadd merge vs Col2Im merge.
pub fn fig7c() -> Table {
    let eng = chip32();
    let mut t = Table::new(
        "Fig. 7c — MaxPool backward (cycles, 32 AI cores)",
        &["input (HWC)", "Maxpool backward", "with Col2im", "speedup"],
    );
    for w in fig7_workloads() {
        let input = feature_map(1, w.c, w.h, w.w, 73);
        let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
        let (oh, ow) = w.out_dims();
        let grads = gradients(1, input.c1, oh, ow, 74);
        let (dx_s, std) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("vadd merge");
        let (dx_a, acc) = eng
            .maxpool_backward(&mask, &grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("col2im merge");
        assert_eq!(dx_s.data(), dx_a.data(), "merges disagree");
        t.push_row(vec![
            format!("{},{},{}", w.h, w.w, w.c),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// Fig. 8 — the stride study. Kernel (3,3), N = C1 = 1, input height =
/// width swept in steps of two up to the tiling threshold, one AI core.
/// Stride (2,2) additionally shows the X-Y split (Fig. 8b).
pub fn fig8(stride: usize) -> Table {
    assert!((1..=3).contains(&stride), "paper sweeps strides 1..3");
    let params = PoolParams::new((3, 3), (stride, stride));
    let eng = chip1(CostModel::ascend910_like());
    let mut impls = vec![
        ForwardImpl::Standard,
        ForwardImpl::Im2col,
        ForwardImpl::Expansion,
    ];
    if stride == 2 {
        impls.push(ForwardImpl::XYSplit);
    }

    // "The x-axis goes up to the tiling threshold" — bounded by the
    // compared implementation with the largest UB footprint (the
    // expansion variant: raw input band + all column planes resident).
    let threshold = impls
        .iter()
        .map(|i| tiling_threshold(&params, *i, eng.chip.caps))
        .min()
        .unwrap();

    let mut columns: Vec<String> = vec!["H=W".to_string()];
    columns.extend(impls.iter().map(|i| i.label().to_string()));
    let mut t = Table {
        title: format!(
            "Fig. 8{} — MaxPool forward, stride ({stride},{stride}), K(3,3), 1 AI core (tiling threshold H=W={threshold})",
            (b'a' + (stride - 1) as u8) as char
        ),
        columns,
        rows: Vec::new(),
    };

    let mut hw = 8.max(stride + 3);
    if hw % 2 == 1 {
        hw += 1;
    }
    while hw <= threshold {
        let input = crate::inputs::plane(1, hw, hw, 80 + hw as u32);
        let mut row = vec![hw.to_string()];
        let mut first: Option<Vec<dv_fp16::F16>> = None;
        for impl_ in &impls {
            let (out, run) = eng
                .maxpool_forward(&input, params, *impl_)
                .expect("lowering");
            match &first {
                None => first = Some(out.data().to_vec()),
                Some(f) => assert_eq!(f.as_slice(), out.data(), "{impl_:?} disagrees"),
            }
            row.push(run.cycles.to_string());
        }
        t.push_row(row);
        hw += 2;
    }
    t
}

/// Table I — every MaxPool layer of the four CNNs, run through both
/// implementations (the paper prints only the shapes; we add measured
/// cycles so the table doubles as an end-to-end experiment).
pub fn table1() -> Table {
    let eng = chip32();
    let mut t = Table::new(
        "Table I — MaxPool input sizes in CNNs (+ measured cycles, 32 AI cores)",
        &[
            "CNN",
            "input",
            "shape (HWC)",
            "kernel",
            "stride",
            "Maxpool",
            "with Im2col",
            "speedup",
        ],
    );
    for w in table1_workloads() {
        let input = feature_map(1, w.c, w.h, w.w, 90 + w.input_idx as u32);
        let (o_s, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (o_a, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        assert_eq!(o_s.data(), o_a.data());
        t.push_row(vec![
            w.cnn.to_string(),
            w.input_idx.to_string(),
            format!("{},{},{}", w.h, w.w, w.c),
            format!("({},{})", w.params.kh, w.params.kw),
            format!("({},{})", w.params.sh, w.params.sw),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// E8 — cost-model ablation: which mechanism buys the speedup? Runs the
/// largest Fig. 7 configuration under variations of the cost model.
pub fn ablate() -> Table {
    let w = fig7_workloads()[0];
    let input = feature_map(1, w.c, w.h, w.w, 100);
    let variants: [(&str, CostModel); 3] = [
        ("ascend910-like", CostModel::ascend910_like()),
        ("zero issue overhead", CostModel::zero_issue_overhead()),
        (
            "slow SCU (2x fractal cost)",
            CostModel {
                im2col_per_fractal: 2 * CostModel::ascend910_like().im2col_per_fractal,
                col2im_per_fractal: 2 * CostModel::ascend910_like().col2im_per_fractal,
                ..CostModel::ascend910_like()
            },
        ),
    ];
    let mut t = Table::new(
        format!(
            "E8 — cost-model ablation on MaxPool forward {},{},{} (1 AI core)",
            w.h, w.w, w.c
        ),
        &["cost model", "Maxpool", "with Im2col", "speedup"],
    );
    for (name, cost) in variants {
        let eng = chip1(cost);
        let (_, std) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (_, acc) = eng
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        t.push_row(vec![
            name.to_string(),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// E9 — AvgPool forward/backward with the same four-way comparison
/// (Section V-C; the paper describes the implementations but plots only
/// MaxPool, so this is the reproduction's extension experiment).
pub fn avgpool() -> Table {
    let eng = chip32();
    let mut t = Table::new(
        "E9 — AvgPool on the Fig. 7 shapes (cycles, 32 AI cores)",
        &[
            "input (HWC)",
            "fwd standard",
            "fwd im2col",
            "fwd speedup",
            "bwd vadd",
            "bwd col2im",
            "bwd speedup",
        ],
    );
    for w in fig7_workloads() {
        let input = feature_map(1, w.c, w.h, w.w, 110);
        let (o_s, f_std) = eng
            .avgpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("fwd standard");
        let (o_a, f_acc) = eng
            .avgpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("fwd im2col");
        assert_eq!(o_s.data(), o_a.data());
        let (oh, ow) = w.out_dims();
        let grads = gradients(1, input.c1, oh, ow, 111);
        let (d_s, b_std) = eng
            .avgpool_backward(&grads, w.params, w.h, w.w, MergeImpl::VAdd)
            .expect("bwd vadd");
        let (d_a, b_acc) = eng
            .avgpool_backward(&grads, w.params, w.h, w.w, MergeImpl::Col2Im)
            .expect("bwd col2im");
        assert_eq!(d_s.data(), d_a.data());
        t.push_row(vec![
            format!("{},{},{}", w.h, w.w, w.c),
            f_std.cycles.to_string(),
            f_acc.cycles.to_string(),
            speedup(f_std.cycles, f_acc.cycles),
            b_std.cycles.to_string(),
            b_acc.cycles.to_string(),
            speedup(b_std.cycles, b_acc.cycles),
        ]);
    }
    t
}

/// E17 — tiling threshold vs Unified-Buffer capacity: "the x-axis goes
/// up to the tiling threshold, where this threshold is the maximum size
/// before tiling is required" (Section VI-B). The threshold is a pure
/// function of the UB capacity and the implementation's footprint; this
/// table makes that dependence explicit for the Fig. 8 geometry.
pub fn threshold() -> Table {
    use dv_sim::Capacities;
    let params = PoolParams::K3S2;
    let mut t = Table::new(
        "E17 — Fig. 8 tiling threshold (H=W) vs UB capacity, K(3,3) S(2,2)",
        &[
            "UB KiB",
            "Maxpool",
            "Maxpool with Im2col",
            "Maxpool with expansion",
            "X-Y split",
        ],
    );
    for kib in [32usize, 64, 128, 256, 512] {
        let caps = Capacities {
            ub: kib * 1024,
            ..Capacities::ASCEND910
        };
        let row: Vec<String> = [
            ForwardImpl::Standard,
            ForwardImpl::Im2col,
            ForwardImpl::Expansion,
            ForwardImpl::XYSplit,
        ]
        .iter()
        .map(|i| tiling_threshold(&params, *i, caps).to_string())
        .collect();
        let mut cells = vec![kib.to_string()];
        cells.extend(row);
        t.push_row(cells);
    }
    t
}

/// E16 — conv+avgpool fusion (the paper's Section VIII future work,
/// after Suita et al.): a stride-1 convolution followed by a P/P AvgPool
/// equals one strided convolution with a box-smeared kernel, keeping the
/// whole computation on the Cube Unit.
pub fn fusion() -> Table {
    use dv_fp16::F16;
    let mut t = Table::new(
        "E16 — conv+avgpool fusion on the Cube Unit (1 AI core)",
        &[
            "pipeline",
            "conv cycles",
            "pool cycles",
            "total",
            "vs unfused",
            "max ulp",
        ],
    );
    let (c, m, k, p) = (16usize, 16usize, 3usize, 2usize);
    let (ih, iw) = (30usize, 30usize);
    let weights = Nchw::from_fn(m, c, k, k, |mi, ci, h, w| {
        F16::from_f32(((mi * 5 + ci * 3 + h + w) % 9) as f32 * 0.0625 - 0.25)
    });
    let input = Nchw::from_fn(1, c, ih, iw, |_, ci, h, w| {
        F16::from_f32(((ci * 7 + h * 3 + w) % 13) as f32 * 0.25 - 1.5)
    });
    let conv_params = PoolParams::new((k, k), (1, 1));
    let pool_params = PoolParams::new((p, p), (p, p));

    // Unfused: conv on the Cube, then accelerated vector AvgPool.
    let (conv_out, conv_run) = dv_conv::run_conv2d(&input, &weights, &conv_params).unwrap();
    let eng = chip1(CostModel::ascend910_like());
    let (pool_out, pool_run) = eng
        .avgpool_forward(&conv_out.to_nc1hwc0(), pool_params, ForwardImpl::Im2col)
        .unwrap();
    let mut pool_out = pool_out;
    pool_out.orig_c = m;
    let unfused_total = conv_run.cycles + pool_run.cycles;
    t.push_row(vec![
        "conv + vector avgpool".into(),
        conv_run.cycles.to_string(),
        pool_run.cycles.to_string(),
        unfused_total.to_string(),
        "1.00x".into(),
        "-".into(),
    ]);

    // Fused: one strided Cube convolution with the smeared kernel.
    let (fused_w, fused_p) = dv_conv::fuse_conv_avgpool(&weights, &conv_params, p).unwrap();
    let (fused_out, fused_run) = dv_conv::run_conv2d(&input, &fused_w, &fused_p).unwrap();
    let unfused_nchw = pool_out.to_nchw();
    let max_ulp = fused_out
        .data()
        .iter()
        .zip(unfused_nchw.data())
        .map(|(a, b)| a.ulp_distance(*b))
        .max()
        .unwrap_or(0);
    assert!(max_ulp <= 4, "fused pipeline diverged ({max_ulp} ulp)");
    t.push_row(vec![
        "fused conv(+avgpool)".into(),
        fused_run.cycles.to_string(),
        "0".into(),
        fused_run.cycles.to_string(),
        speedup(unfused_total, fused_run.cycles),
        max_ulp.to_string(),
    ]);
    t
}

/// E15 — kernel-size ablation (extension): at stride (2,2), the im2col
/// duplication factor is `Kh*Kw/4`, growing quadratically with the
/// kernel — while the baseline's issue count grows as `Oh*Ow*Kh`. How do
/// the implementations trade off as the kernel grows?
pub fn kernels() -> Table {
    let mut t = Table::new(
        "E15 — kernel-size ablation, stride (2,2), 48x48, 1 AI core",
        &["kernel", "duplication", "Maxpool", "with Im2col", "speedup"],
    );
    let eng = chip1(CostModel::ascend910_like());
    for k in 2usize..=6 {
        let params = PoolParams::new((k, k), (2, 2));
        let input = crate::inputs::plane(1, 48, 48, 140 + k as u32);
        let (o_s, std) = eng
            .maxpool_forward(&input, params, ForwardImpl::Standard)
            .expect("standard");
        let (o_a, acc) = eng
            .maxpool_forward(&input, params, ForwardImpl::Im2col)
            .expect("im2col");
        assert_eq!(o_s.data(), o_a.data());
        let (dn, dd) = params.duplication_ratio();
        t.push_row(vec![
            format!("({k},{k})"),
            format!("{:.2}x", dn as f64 / dd as f64),
            std.cycles.to_string(),
            acc.cycles.to_string(),
            speedup(std.cycles, acc.cycles),
        ]);
    }
    t
}

/// E14 — per-unit cycle breakdown: where do the cycles go in each
/// implementation? Makes the paper's mechanism visible: the baseline
/// burns Vector-Unit cycles on issue overhead at 12.5% lane utilization;
/// the accelerated version shifts work to the SCU stream and saturates
/// the vector lanes.
pub fn breakdown() -> Table {
    use dv_core::MergeImpl as M;
    use dv_sim::Unit;
    let w = fig7_workloads()[1]; // 71x71x192
    let input = feature_map(1, w.c, w.h, w.w, 130);
    let eng = chip1(CostModel::ascend910_like());
    let mut t = Table::new(
        format!(
            "E14 — per-unit cycle breakdown, MaxPool {},{},{} (1 AI core)",
            w.h, w.w, w.c
        ),
        &[
            "kernel", "total", "Vector", "SCU", "MTE", "vec util", "issues",
        ],
    );
    let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
    let (oh, ow) = w.out_dims();
    let grads = gradients(1, input.c1, oh, ow, 131);

    let mut push = |name: &str, run: &dv_core::PoolRun| {
        t.push_row(vec![
            name.to_string(),
            run.total.cycles.to_string(),
            run.total.cycles_of(Unit::Vector).to_string(),
            run.total.cycles_of(Unit::Scu).to_string(),
            run.total.cycles_of(Unit::Mte).to_string(),
            format!("{:.1}%", run.total.vector_utilization() * 100.0),
            run.total.total_issues().to_string(),
        ]);
    };
    let (_, r) = eng
        .maxpool_forward(&input, w.params, ForwardImpl::Standard)
        .expect("fwd std");
    push("fwd standard", &r);
    let (_, r) = eng
        .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
        .expect("fwd im2col");
    push("fwd im2col", &r);
    let (_, r) = eng
        .maxpool_backward(&mask, &grads, w.params, w.h, w.w, M::VAdd)
        .expect("bwd vadd");
    push("bwd vadd merge", &r);
    let (_, r) = eng
        .maxpool_backward(&mask, &grads, w.params, w.h, w.w, M::Col2Im)
        .expect("bwd col2im");
    push("bwd col2im merge", &r);
    t
}

/// E11 — multi-core scaling: chip cycles vs core count on the largest
/// Fig. 7 shape for both forward implementations. The paper parallelises
/// "the outer loops … between the AI Cores available"; C1 = 4 bounds the
/// useful parallelism for this layer unless band splitting or the
/// cost-model-driven sharder widens the partition. The last two columns
/// run the sharded engine (the partition axis is chosen per workload)
/// under the independent memory model and under the shared-HBM
/// contention stage, whose booked stalls are reported in parentheses.
pub fn scaling() -> Table {
    use dv_sim::MemoryModel;
    let w = fig7_workloads()[0];
    let input = feature_map(1, w.c, w.h, w.w, 120);
    let mut t = Table::new(
        format!(
            "E11 — multi-core scaling on MaxPool forward {},{},{} (C1 = {})",
            w.h, w.w, w.c, input.c1
        ),
        &[
            "cores",
            "Maxpool (C1 only)",
            "Maxpool (+band split)",
            "Im2col (C1 only)",
            "Im2col (+band split)",
            "Im2col (sharded)",
            "Im2col (sharded, HBM)",
        ],
    );
    for cores in [1usize, 2, 4, 8, 16, 32] {
        let plane_only = PoolingEngine::new(Chip::new(cores, CostModel::ascend910_like()));
        let split = plane_only.clone().with_band_splitting(true);
        let sharded = plane_only.clone().with_sharding(true);
        let contended = PoolingEngine::new(
            Chip::new(cores, CostModel::ascend910_like()).with_memory(MemoryModel::ascend910_hbm()),
        )
        .with_sharding(true);
        let (out_a, std_p) = plane_only
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard");
        let (out_b, std_s) = split
            .maxpool_forward(&input, w.params, ForwardImpl::Standard)
            .expect("standard split");
        assert_eq!(
            out_a.data(),
            out_b.data(),
            "splitting must not change results"
        );
        let (out_c, acc_p) = plane_only
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col");
        let (_, acc_s) = split
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col split");
        let (out_d, acc_sh) = sharded
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col sharded");
        let (out_e, acc_ct) = contended
            .maxpool_forward(&input, w.params, ForwardImpl::Im2col)
            .expect("im2col contended");
        assert_eq!(
            out_c.data(),
            out_d.data(),
            "sharding must not change results"
        );
        assert_eq!(
            out_c.data(),
            out_e.data(),
            "contention must not change results"
        );
        t.push_row(vec![
            cores.to_string(),
            std_p.cycles.to_string(),
            std_s.cycles.to_string(),
            acc_p.cycles.to_string(),
            acc_s.cycles.to_string(),
            acc_sh.cycles.to_string(),
            format!(
                "{} (+{} stalls)",
                acc_ct.cycles, acc_ct.total.contention_stalls
            ),
        ]);
    }
    t
}

/// E12 — convolution backward-data: the Cube Unit computes
/// `dY x W^T` and **Col2Im merges** the column gradient — the
/// instruction's designed use (Section II-B), cross-validating the
/// pooling results.
pub fn dgrad() -> Table {
    use dv_fp16::F16;
    let mut t = Table::new(
        "E12 — convolution backward-data via Cube + Col2Im (1 AI core)",
        &["conv", "cycles", "col2im issues", "matches reference"],
    );
    let cases: [(&str, usize, usize, usize, usize, PoolParams); 3] = [
        (
            "16ch 12x12, 3x3 s1, 16 kernels",
            16,
            12,
            12,
            16,
            PoolParams::new((3, 3), (1, 1)),
        ),
        (
            "32ch 13x13, 3x3 s2, 16 kernels",
            32,
            13,
            13,
            16,
            PoolParams::new((3, 3), (2, 2)),
        ),
        (
            "16ch 10x10, 1x1 s1, 32 kernels",
            16,
            10,
            10,
            32,
            PoolParams::new((1, 1), (1, 1)),
        ),
    ];
    for (name, c, ih, iw, m, params) in cases {
        let (oh, ow) = params.out_dims(ih, iw).unwrap();
        let grads = Nchw::from_fn(1, m, oh, ow, |_, mi, h, ww| {
            F16::from_f32(((mi * 7 + h * 3 + ww) % 9) as f32 * 0.5 - 2.0)
        });
        let kernels = Nchw::from_fn(m, c, params.kh, params.kw, |mi, ci, h, ww| {
            F16::from_f32(((mi * 5 + ci * 3 + h + ww) % 7) as f32 * 0.25 - 0.75)
        });
        let want = reference::conv2d_backward_data(&grads, &kernels, &params, ih, iw).unwrap();
        let (got, run) =
            dv_conv::run_conv2d_backward_data(&grads, &kernels, &params, ih, iw).unwrap();
        let matches = got == want;
        t.push_row(vec![
            name.to_string(),
            run.cycles.to_string(),
            run.total.issues_of("col2im").to_string(),
            matches.to_string(),
        ]);
        assert!(matches, "dgrad diverged from the reference: {name}");
    }
    t
}

/// E13 — AvgPool mapped to convolution on the Cube Unit (the fusion
/// direction of Suita et al. the paper cites as future work): a diagonal
/// kernel of `1/(Kh*Kw)` turns AvgPool into matmul work. Compared against
/// the Vector-Unit AvgPool implementations. (Numerics differ in the last
/// ulp: the Cube accumulates in f32 and rounds once, while the vector
/// path sums in f16; the table reports the max ulp distance.)
pub fn cubeavg() -> Table {
    use dv_fp16::F16;
    let mut t = Table::new(
        "E13 — AvgPool as Cube-Unit convolution vs Vector-Unit AvgPool (1 AI core)",
        &[
            "input",
            "vector standard",
            "vector im2col",
            "cube conv",
            "max ulp vs reference",
        ],
    );
    let params = PoolParams::K3S2;
    for (c, hw) in [(16usize, 33usize), (32, 25)] {
        let input_nchw = Nchw::from_fn(1, c, hw, hw, |_, ci, h, w| {
            F16::from_f32(((ci * 3 + h * 5 + w) % 17) as f32 * 0.5 - 4.0)
        });
        let input = input_nchw.to_nc1hwc0();
        let eng = chip1(CostModel::ascend910_like());
        let (_, vstd) = eng
            .avgpool_forward(&input, params, ForwardImpl::Standard)
            .expect("vector standard");
        let (_, vim) = eng
            .avgpool_forward(&input, params, ForwardImpl::Im2col)
            .expect("vector im2col");
        // diagonal kernel: out channel c reads only in channel c
        let inv = F16::from_f32(1.0 / (params.kh * params.kw) as f32);
        let kernels = Nchw::from_fn(c, c, params.kh, params.kw, |m, ci, _, _| {
            if m == ci {
                inv
            } else {
                F16::ZERO
            }
        });
        let (conv_out, cube) =
            dv_conv::run_conv2d(&input_nchw, &kernels, &params).expect("cube avgpool");
        let reference_out = reference::avgpool_forward(&input, &params)
            .expect("reference")
            .to_nchw();
        let max_ulp = conv_out
            .data()
            .iter()
            .zip(reference_out.data())
            .map(|(a, b)| a.ulp_distance(*b))
            .max()
            .unwrap_or(0);
        assert!(max_ulp <= 1, "cube avgpool must agree to 1 ulp");
        t.push_row(vec![
            format!("{hw}x{hw}x{c}"),
            vstd.cycles.to_string(),
            vim.cycles.to_string(),
            cube.cycles.to_string(),
            max_ulp.to_string(),
        ]);
    }
    t
}

/// E10 — the convolution substrate: Im2Col + Cube Unit vs the direct
/// reference (bit-exact check + cycle counts).
pub fn conv_substrate() -> Table {
    use dv_fp16::F16;
    let mut t = Table::new(
        "E10 — convolution on the Cube Unit via Im2Col (1 AI core)",
        &[
            "conv",
            "cycles",
            "cube issues",
            "im2col issues",
            "matches reference",
        ],
    );
    let cases: [(&str, usize, usize, usize, usize, PoolParams); 3] = [
        (
            "16ch 24x24, 3x3 s1, 16 kernels",
            16,
            24,
            24,
            16,
            PoolParams::new((3, 3), (1, 1)),
        ),
        (
            "48ch 16x16, 3x3 s2, 32 kernels",
            48,
            16,
            16,
            32,
            PoolParams::new((3, 3), (2, 2)),
        ),
        (
            "32ch 20x20, 1x1 s1, 64 kernels",
            32,
            20,
            20,
            64,
            PoolParams::new((1, 1), (1, 1)),
        ),
    ];
    for (name, c, h, w, m, params) in cases {
        let input = Nchw::from_fn(1, c, h, w, |_, ci, hi, wi| {
            F16::from_f32((((ci + 3) * (hi + 7) * (wi + 1)) % 13) as f32 * 0.25 - 1.5)
        });
        let kernels = Nchw::from_fn(m, c, params.kh, params.kw, |mi, ci, hi, wi| {
            F16::from_f32((((mi + 1) * (ci + 5) * (hi + 2) * (wi + 3)) % 9) as f32 * 0.125 - 0.5)
        });
        let want = reference::conv2d_direct(&input, &kernels, &params).expect("reference");
        let (got, run) = dv_conv::run_conv2d(&input, &kernels, &params).expect("cube conv");
        let matches = got == want;
        t.push_row(vec![
            name.to_string(),
            run.cycles.to_string(),
            run.total.issues_of("cube_mmad").to_string(),
            run.total.issues_of("im2col").to_string(),
            matches.to_string(),
        ]);
        assert!(matches, "cube conv diverged from the reference: {name}");
    }
    t
}
