//! Criterion wall-time benches of the Fig. 8 stride study (one AI core,
//! all four implementations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv_bench::inputs::plane;
use dv_core::{ForwardImpl, PoolingEngine};
use dv_sim::{Chip, CostModel};
use dv_tensor::PoolParams;

fn bench_fig8(c: &mut Criterion) {
    let eng = PoolingEngine::new(Chip::new(1, CostModel::ascend910_like()));
    let hw = 40;
    let input = plane(1, hw, hw, 3);

    for stride in [1usize, 2, 3] {
        let params = PoolParams::new((3, 3), (stride, stride));
        let mut g = c.benchmark_group(format!("fig8_stride{stride}"));
        for impl_ in ForwardImpl::ALL {
            if stride != 2 && impl_ == ForwardImpl::XYSplit {
                continue; // the paper shows the X-Y split only at (2,2)
            }
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{impl_:?}")),
                &impl_,
                |b, impl_| {
                    b.iter(|| {
                        eng.maxpool_forward(&input, params, *impl_)
                            .expect("forward")
                            .1
                            .cycles
                    })
                },
            );
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
