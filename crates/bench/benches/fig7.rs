//! Criterion wall-time benches of the Fig. 7 workloads — how fast the
//! *simulator* executes each lowering (the simulated cycle counts
//! themselves come from `repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv_bench::inputs::{feature_map, gradients};
use dv_core::{fig7_workloads, ForwardImpl, MergeImpl, PoolingEngine};
use dv_tensor::reference;

fn bench_fig7(c: &mut Criterion) {
    let eng = PoolingEngine::ascend910();
    // The smallest Fig. 7 configuration keeps bench time reasonable; the
    // repro binary covers all three.
    let w = fig7_workloads()[2]; // 35x35x288
    let input = feature_map(1, w.c, w.h, w.w, 1);

    let mut g = c.benchmark_group("fig7a_forward");
    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{impl_:?}")),
            &impl_,
            |b, impl_| {
                b.iter(|| {
                    eng.maxpool_forward(&input, w.params, *impl_)
                        .expect("forward")
                        .1
                        .cycles
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig7b_forward_argmax");
    for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{impl_:?}")),
            &impl_,
            |b, impl_| {
                b.iter(|| {
                    eng.maxpool_forward_with_argmax(&input, w.params, *impl_)
                        .expect("forward+argmax")
                        .2
                        .cycles
                })
            },
        );
    }
    g.finish();

    let mask = reference::maxpool_argmax_mask(&input, &w.params).expect("mask");
    let (oh, ow) = w.out_dims();
    let grads = gradients(1, input.c1, oh, ow, 2);
    let mut g = c.benchmark_group("fig7c_backward");
    for merge in [MergeImpl::VAdd, MergeImpl::Col2Im] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{merge:?}")),
            &merge,
            |b, merge| {
                b.iter(|| {
                    eng.maxpool_backward(&mask, &grads, w.params, w.h, w.w, *merge)
                        .expect("backward")
                        .1
                        .cycles
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
