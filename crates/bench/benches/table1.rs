//! Criterion wall-time benches over the Table I CNN workloads (one
//! representative layer per network to bound bench time; `repro --
//! table1` measures all thirteen).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv_bench::inputs::feature_map;
use dv_core::{table1_workloads, ForwardImpl, PoolingEngine};

fn bench_table1(c: &mut Criterion) {
    let eng = PoolingEngine::ascend910();
    let picks = ["InceptionV3", "Xception", "Resnet50", "VGG16"];
    let mut g = c.benchmark_group("table1");
    for cnn in picks {
        // the last (smallest) listed layer of each network
        let w = table1_workloads()
            .into_iter()
            .rfind(|w| w.cnn == cnn)
            .expect("workload");
        let input = feature_map(1, w.c, w.h, w.w, 4);
        for impl_ in [ForwardImpl::Standard, ForwardImpl::Im2col] {
            g.bench_with_input(
                BenchmarkId::new(cnn, format!("{impl_:?}")),
                &impl_,
                |b, impl_| {
                    b.iter(|| {
                        eng.maxpool_forward(&input, w.params, *impl_)
                            .expect("forward")
                            .1
                            .cycles
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
