//! Microbenches of the substrates: the f16 soft-float, the reference
//! im2col/col2im transforms, a raw simulated Im2Col/Col2Im instruction,
//! and the Cube-Unit convolution.

use criterion::{criterion_group, criterion_main, Criterion};
use dv_fp16::F16;
use dv_sim::{AiCore, CostModel};
use dv_tensor::{im2col_fractal, reference, Nchw, PoolParams};

fn bench_fp16(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32).sin() * 100.0).collect();
    c.bench_function("fp16/convert_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc = acc.wrapping_add(F16::from_f32(x).to_bits() as u32);
            }
            acc
        })
    });
    let hs: Vec<F16> = xs.iter().map(|&x| F16::from_f32(x)).collect();
    c.bench_function("fp16/max_reduce_4096", |b| {
        b.iter(|| hs.iter().fold(F16::NEG_INFINITY, |a, &x| a.max(x)))
    });
}

fn bench_reference_transforms(c: &mut Criterion) {
    let params = PoolParams::K3S2;
    let input = Nchw::from_fn(1, 16, 64, 64, |_, ci, h, w| {
        F16::from_f32(((ci + h * 3 + w * 7) % 29) as f32)
    })
    .to_nc1hwc0();
    c.bench_function("reference/im2col_64x64", |b| {
        b.iter(|| im2col_fractal(&input, &params).unwrap().len())
    });
    let patches = im2col_fractal(&input, &params).unwrap();
    c.bench_function("reference/col2im_64x64", |b| {
        b.iter(|| {
            dv_tensor::col2im_fractal(&patches, &params, 64, 64)
                .unwrap()
                .len()
        })
    });
    c.bench_function("reference/maxpool_64x64", |b| {
        b.iter(|| reference::maxpool_forward(&input, &params).unwrap().len())
    });
}

fn bench_simulated_instructions(c: &mut Criterion) {
    use dv_isa::{Addr, Im2Col, Im2ColGeometry, Instr, Program, RepeatMode};
    let params = PoolParams::K3S2;
    let geom = Im2ColGeometry::new(34, 34, 1, params).unwrap();
    let bf = geom.fractals_per_plane().min(255);
    let mut program = Program::new();
    program
        .push(Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (1, 1),
            c1: 0,
            repeat: bf as u16,
            mode: RepeatMode::Mode1,
        }))
        .unwrap();
    c.bench_function("sim/im2col_instruction_34x34", |b| {
        b.iter_batched(
            || AiCore::new(CostModel::ascend910_like(), 0),
            |mut core| {
                core.run(&program).unwrap();
                core.counters().cycles
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_conv(c: &mut Criterion) {
    let params = PoolParams::new((3, 3), (1, 1));
    let input = Nchw::from_fn(1, 16, 16, 16, |_, ci, h, w| {
        F16::from_f32(((ci + h + w) % 7) as f32 * 0.5)
    });
    let kernels = Nchw::from_fn(16, 16, 3, 3, |m, ci, h, w| {
        F16::from_f32(((m + ci + h + w) % 5) as f32 * 0.25)
    });
    c.bench_function("conv/cube_16ch_16x16", |b| {
        b.iter(|| {
            dv_conv::run_conv2d(&input, &kernels, &params)
                .unwrap()
                .1
                .cycles
        })
    });
    c.bench_function("conv/reference_16ch_16x16", |b| {
        b.iter(|| {
            reference::conv2d_direct(&input, &kernels, &params)
                .unwrap()
                .len()
        })
    });
}

fn bench_nn_model(c: &mut Criterion) {
    use dv_core::{ForwardImpl, PoolingEngine};
    use dv_nn::{Layer, Sequential};
    let conv_w = Nchw::from_fn(16, 16, 3, 3, |m, ci, h, w| {
        F16::from_f32(((m + ci + h + w) % 5) as f32 * 0.125 - 0.25)
    });
    let input = Nchw::from_fn(1, 16, 24, 24, |_, ci, h, w| {
        F16::from_f32(((ci * 3 + h + w) % 9) as f32 * 0.5 - 2.0)
    });
    let mut g = c.benchmark_group("nn_model");
    for (name, impl_) in [
        ("standard", ForwardImpl::Standard),
        ("im2col", ForwardImpl::Im2col),
    ] {
        let model = Sequential::new(PoolingEngine::ascend910())
            .layer(Layer::conv2d(conv_w.clone(), (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::maxpool2d(PoolParams::K3S2, impl_))
            .layer(Layer::GlobalAvgPool);
        g.bench_function(name, |b| {
            b.iter(|| model.forward(&input).unwrap().1.total_cycles())
        });
    }
    g.finish();
}

fn bench_program_encoding(c: &mut Criterion) {
    use dv_core::maxpool::{build_forward, Reduction};
    use dv_core::{ForwardImpl, PoolProblem};
    use dv_sim::Capacities;
    let prob = PoolProblem::new(1, 1, 64, 64, PoolParams::K3S2).unwrap();
    let programs = build_forward(
        &prob,
        ForwardImpl::Im2col,
        Reduction::Max,
        0,
        prob.in_bytes(),
        Capacities::ASCEND910,
    )
    .unwrap();
    let program = &programs[0];
    let bytes = program.to_bytes();
    c.bench_function("isa/encode_im2col_program", |b| {
        b.iter(|| program.to_bytes().len())
    });
    c.bench_function("isa/decode_im2col_program", |b| {
        b.iter(|| dv_isa::Program::from_bytes(&bytes).unwrap().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fp16, bench_reference_transforms, bench_simulated_instructions, bench_conv,
              bench_nn_model, bench_program_encoding
}
criterion_main!(benches);
