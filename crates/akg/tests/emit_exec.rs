//! Execute AKG-emitted instruction sequences on the simulator and check
//! them against plain scalar loops — the contract between the lowering
//! helpers and the machine.

use dv_akg::{elementwise, fill_region, strided_accumulate, zero_region};
use dv_fp16::F16;
use dv_isa::{Addr, BufferId, Mask, Program, VectorOp};
use dv_sim::{AiCore, CostModel};
use proptest::prelude::*;

fn run(program: &Program, preload: &[(usize, Vec<F16>)]) -> AiCore {
    let mut core = AiCore::new(CostModel::ascend910_like(), 0);
    for (off, data) in preload {
        core.buffers_mut()
            .load_f16_slice(BufferId::Ub, *off, data)
            .unwrap();
    }
    core.run(program).unwrap();
    core
}

fn vals(len: usize, seed: u64) -> Vec<F16> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
            F16::from_f32(((s >> 35) % 31) as f32 - 15.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `elementwise` over any region length equals the scalar loop — tail
    /// masking, repeat chunking and all.
    #[test]
    fn elementwise_equals_scalar_loop(elems in 1usize..=2000, seed in any::<u64>()) {
        let a = vals(elems, seed);
        let b = vals(elems, seed ^ 0x5555);
        let mut p = Program::new();
        elementwise(&mut p, VectorOp::Add, Addr::ub(0), Addr::ub(16384), Addr::ub(32768), elems)
            .unwrap();
        let core = run(&p, &[(16384, a.clone()), (32768, b.clone())]);
        let out = core.buffers().read_f16_slice(BufferId::Ub, 0, elems).unwrap();
        for i in 0..elems {
            prop_assert_eq!(out[i], a[i] + b[i], "element {}", i);
        }
    }

    /// `elementwise` never writes past the region end.
    #[test]
    fn elementwise_respects_region_end(elems in 1usize..=300, seed in any::<u64>()) {
        let a = vals(elems + 64, seed);
        let sentinel = F16::from_f32(-123.0);
        let mut p = Program::new();
        elementwise(&mut p, VectorOp::Copy, Addr::ub(0), Addr::ub(16384), Addr::ub(16384), elems)
            .unwrap();
        let mut core = AiCore::new(CostModel::ascend910_like(), 0);
        core.buffers_mut().load_f16_slice(BufferId::Ub, 16384, &a).unwrap();
        core.buffers_mut()
            .load_f16_slice(BufferId::Ub, 0, &vec![sentinel; elems + 64])
            .unwrap();
        core.run(&p).unwrap();
        let out = core.buffers().read_f16_slice(BufferId::Ub, 0, elems + 64).unwrap();
        for i in 0..elems {
            prop_assert_eq!(out[i], a[i]);
        }
        for (i, v) in out.iter().enumerate().skip(elems) {
            prop_assert_eq!(*v, sentinel, "wrote past end at {}", i);
        }
    }

    /// `fill_region`/`zero_region` set exactly the requested elements.
    #[test]
    fn fill_sets_exact_region(elems in 1usize..=600, c in -7i32..=7) {
        let v = F16::from_f32(c as f32);
        let mut p = Program::new();
        fill_region(&mut p, Addr::ub(64), v, elems).unwrap();
        let core = run(&p, &[]);
        let out = core.buffers().read_f16_slice(BufferId::Ub, 0, elems + 96).unwrap();
        // bytes before the region untouched (zero-initialised buffers)
        for item in out.iter().take(32) {
            prop_assert_eq!(*item, F16::ZERO);
        }
        for i in 0..elems {
            prop_assert_eq!(out[32 + i], v);
        }
        for i in elems..elems + 64 {
            prop_assert_eq!(out[32 + i], F16::ZERO, "past region at {}", i);
        }
    }

    /// `strided_accumulate` computes the same reduction as a scalar loop
    /// over the strided source.
    #[test]
    fn strided_accumulate_equals_scalar(repeat in 1u16..=9, stride_c0 in 1usize..=4,
                                        seed in any::<u64>()) {
        let stride = stride_c0 * 32;
        let src_len = 16 * (1 + (repeat as usize - 1) * stride_c0);
        let src = vals(src_len, seed);
        let init = vals(16, seed ^ 0x9999);
        let mut p = Program::new();
        strided_accumulate(&mut p, VectorOp::Max, Addr::ub(0), Addr::ub(8192),
                           Mask::C0_ONLY, repeat, stride).unwrap();
        let core = run(&p, &[(0, init.clone()), (8192, src.clone())]);
        let out = core.buffers().read_f16_slice(BufferId::Ub, 0, 16).unwrap();
        for lane in 0..16 {
            let mut acc = init[lane];
            for r in 0..repeat as usize {
                acc = acc.max(src[r * stride_c0 * 16 + lane]);
            }
            prop_assert_eq!(out[lane], acc, "lane {}", lane);
        }
    }
}

#[test]
fn zero_region_zeroes() {
    let mut p = Program::new();
    fill_region(&mut p, Addr::ub(0), F16::from_f32(5.0), 200).unwrap();
    zero_region(&mut p, Addr::ub(0), 100).unwrap();
    let core = run(&p, &[]);
    let out = core.buffers().read_f16_slice(BufferId::Ub, 0, 200).unwrap();
    for (i, v) in out.iter().enumerate() {
        let want = if i < 100 { 0.0 } else { 5.0 };
        assert_eq!(v.to_f32(), want, "element {i}");
    }
}
