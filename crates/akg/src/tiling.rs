//! Row-band tiling against scratchpad capacities.
//!
//! "Using TVM's schedule, this computation is divided in the C1 dimension
//! so that a tile of size (Ih, Iw, C0) is computed at a time … unless
//! further tiling is needed" (paper, Section V-A). Further tiling, when a
//! plane exceeds the Unified Buffer, happens over output rows here. The
//! *tiling threshold* — "the maximum size before tiling is required" —
//! bounds the x-axis of Fig. 8.

use core::fmt;
use dv_tensor::PoolParams;

/// Tiling failure: even a single output row exceeds the capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TilingError {
    /// Footprint in bytes of the smallest possible band.
    pub min_footprint: usize,
    /// The capacity it must fit into.
    pub capacity: usize,
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot tile: one output row needs {} bytes but capacity is {}",
            self.min_footprint, self.capacity
        )
    }
}

impl std::error::Error for TilingError {}

/// One band of output rows and the input rows it consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Band {
    /// First output row (inclusive).
    pub oh0: usize,
    /// Last output row (exclusive).
    pub oh1: usize,
    /// First input row the band reads.
    pub ih0: usize,
    /// Number of input rows the band reads.
    pub ih_len: usize,
}

impl Band {
    /// Output rows in the band.
    pub fn oh_len(&self) -> usize {
        self.oh1 - self.oh0
    }
}

/// Input rows consumed by `boh` output rows: `(boh - 1) * Sh + Kh`.
pub fn band_input_rows(params: &PoolParams, boh: usize) -> usize {
    (boh - 1) * params.sh + params.kh
}

/// Largest band height (in output rows) whose footprint fits `capacity`.
/// `footprint(boh)` must be monotonically non-decreasing. Returns an error
/// if even one row does not fit.
pub fn max_row_band(
    oh: usize,
    capacity: usize,
    footprint: impl Fn(usize) -> usize,
) -> Result<usize, TilingError> {
    if footprint(1) > capacity {
        return Err(TilingError {
            min_footprint: footprint(1),
            capacity,
        });
    }
    // Binary search the largest feasible band.
    let (mut lo, mut hi) = (1usize, oh);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if footprint(mid) <= capacity {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(lo)
}

/// Split `oh` output rows into bands of at most `boh` rows, computing each
/// band's input-row window for the given pooling geometry. Vertical
/// padding is only supported when no splitting happens (one band);
/// multi-band lowering with `Pt`/`Pb` padding would need per-band
/// geometries and is rejected by the kernel builders upstream.
pub fn row_bands(params: &PoolParams, oh: usize, boh: usize) -> Vec<Band> {
    assert!(boh >= 1);
    let mut bands = Vec::with_capacity(oh.div_ceil(boh));
    let mut oh0 = 0;
    while oh0 < oh {
        let oh1 = (oh0 + boh).min(oh);
        let ih0 = oh0 * params.sh;
        let ih_len = band_input_rows(params, oh1 - oh0);
        bands.push(Band {
            oh0,
            oh1,
            ih0,
            ih_len,
        });
        oh0 = oh1;
    }
    bands
}

/// The largest square input extent `H = W` for which `footprint(hw)` fits
/// `capacity` — the Fig. 8 "tiling threshold". `footprint` must be
/// monotone in `hw`. Probes up to `max_hw`.
pub fn tiling_threshold(
    capacity: usize,
    max_hw: usize,
    footprint: impl Fn(usize) -> usize,
) -> usize {
    let (mut lo, mut hi) = (0usize, max_hw);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if footprint(mid) <= capacity {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    const K3S2: PoolParams = PoolParams::K3S2;

    #[test]
    fn band_input_rows_formula() {
        assert_eq!(band_input_rows(&K3S2, 1), 3);
        assert_eq!(band_input_rows(&K3S2, 2), 5);
        assert_eq!(band_input_rows(&K3S2, 10), 21);
        let s1 = PoolParams::new((3, 3), (1, 1));
        assert_eq!(band_input_rows(&s1, 5), 7);
    }

    #[test]
    fn max_row_band_monotone_search() {
        // footprint = 100 bytes per output row
        let b = max_row_band(50, 1000, |boh| boh * 100).unwrap();
        assert_eq!(b, 10);
        // plenty of capacity: whole extent
        let b = max_row_band(50, 1_000_000, |boh| boh * 100).unwrap();
        assert_eq!(b, 50);
    }

    #[test]
    fn max_row_band_single_row_too_big() {
        let err = max_row_band(50, 10, |boh| boh * 100).unwrap_err();
        assert_eq!(err.min_footprint, 100);
        assert_eq!(err.capacity, 10);
    }

    #[test]
    fn row_bands_cover_exactly() {
        let bands = row_bands(&K3S2, 73, 10);
        assert_eq!(bands.len(), 8);
        assert_eq!(
            bands[0],
            Band {
                oh0: 0,
                oh1: 10,
                ih0: 0,
                ih_len: 21
            }
        );
        assert_eq!(bands[7].oh0, 70);
        assert_eq!(bands[7].oh1, 73);
        assert_eq!(bands[7].ih0, 140);
        assert_eq!(bands[7].ih_len, 7); // 2*2 + 3
                                        // coverage: no gaps, no overlaps in output rows
        for w in bands.windows(2) {
            assert_eq!(w[0].oh1, w[1].oh0);
        }
        // last band's input rows end exactly at the input extent
        assert_eq!(bands[7].ih0 + bands[7].ih_len, 147);
    }

    #[test]
    fn row_bands_single_band() {
        let bands = row_bands(&K3S2, 17, 17);
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].ih_len, 35);
    }

    #[test]
    fn bands_overlap_in_input_when_stride_lt_kernel() {
        let bands = row_bands(&K3S2, 4, 2);
        // band 0 reads rows [0, 5), band 1 reads [4, 9): one-row halo
        assert_eq!(bands[0].ih0 + bands[0].ih_len, 5);
        assert_eq!(bands[1].ih0, 4);
    }

    #[test]
    fn threshold_binary_search() {
        // footprint = hw^2 bytes, capacity 10_000 -> threshold 100
        assert_eq!(tiling_threshold(10_000, 1024, |hw| hw * hw), 100);
        assert_eq!(tiling_threshold(9_999, 1024, |hw| hw * hw), 99);
        // capacity smaller than any size -> 0
        assert_eq!(tiling_threshold(0, 1024, |hw| hw * hw + 1), 0);
    }
}
