//! Row-band tiling against scratchpad capacities.
//!
//! "Using TVM's schedule, this computation is divided in the C1 dimension
//! so that a tile of size (Ih, Iw, C0) is computed at a time … unless
//! further tiling is needed" (paper, Section V-A). Further tiling, when a
//! plane exceeds the Unified Buffer, happens over output rows here. The
//! *tiling threshold* — "the maximum size before tiling is required" —
//! bounds the x-axis of Fig. 8.

use core::fmt;
use dv_tensor::PoolParams;

/// Band tiling failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TilingError {
    /// Even a single output row exceeds the capacity.
    Capacity {
        /// Footprint in bytes of the smallest possible band.
        min_footprint: usize,
        /// The capacity it must fit into.
        capacity: usize,
    },
    /// Degenerate request: zero output rows, a zero band height, or a
    /// band taller than the output extent.
    Degenerate {
        /// Output rows of the plane being tiled.
        oh: usize,
        /// Requested band height (0 when no band was derived yet).
        boh: usize,
    },
    /// Vertical (`Pt`/`Pb`) padding combined with more than one band:
    /// the per-band geometry would need padding rows synthesised in the
    /// middle of the plane, which no lowering here supports.
    PaddedMultiBand {
        /// Output rows of the plane being tiled.
        oh: usize,
        /// Requested band height.
        boh: usize,
    },
    /// A batch-folded (N-plane Mode0 repeat-chain) plan failed. The cause
    /// tells the engine whether to fall back to the per-plane schedule
    /// (`Capacity`: N planes simply do not fit one band) or to reject the
    /// request outright (`PaddedMultiBand`: padded geometry cannot be
    /// banded at all, batched or not).
    Batched {
        /// The batch size the fold attempted to cover.
        n: usize,
        /// The underlying single-plan failure.
        cause: Box<TilingError>,
    },
}

impl TilingError {
    /// Wrap this error as the cause of a failed batch-folded plan over
    /// `n` planes. Already-batched errors are returned unchanged so
    /// nested planning layers never double-wrap.
    pub fn batched(self, n: usize) -> TilingError {
        match self {
            TilingError::Batched { .. } => self,
            cause => TilingError::Batched {
                n,
                cause: Box::new(cause),
            },
        }
    }

    /// The root cause of a (possibly batched) tiling failure.
    pub fn root_cause(&self) -> &TilingError {
        match self {
            TilingError::Batched { cause, .. } => cause.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::Capacity {
                min_footprint,
                capacity,
            } => write!(
                f,
                "cannot tile: one output row needs {min_footprint} bytes but capacity is {capacity}"
            ),
            TilingError::Degenerate { oh, boh } => write!(
                f,
                "degenerate band tiling: {boh}-row bands over {oh} output rows"
            ),
            TilingError::PaddedMultiBand { oh, boh } => write!(
                f,
                "vertical padding requires a single band, but {boh}-row bands \
                 split {oh} output rows"
            ),
            TilingError::Batched { n, cause } => {
                write!(f, "batch-folded plan over N={n} planes failed: {cause}")
            }
        }
    }
}

impl std::error::Error for TilingError {}

/// One band of output rows and the input rows it consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Band {
    /// First output row (inclusive).
    pub oh0: usize,
    /// Last output row (exclusive).
    pub oh1: usize,
    /// First input row the band reads.
    pub ih0: usize,
    /// Number of input rows the band reads.
    pub ih_len: usize,
}

impl Band {
    /// Output rows in the band.
    pub fn oh_len(&self) -> usize {
        self.oh1 - self.oh0
    }
}

/// Input rows consumed by `boh` output rows: `(boh - 1) * Sh + EffKh`,
/// where `EffKh = (Kh - 1) * Dh + 1` is the dilated kernel's span.
pub fn band_input_rows(params: &PoolParams, boh: usize) -> usize {
    (boh - 1) * params.sh + params.eff_kh()
}

/// Largest band height (in output rows) whose footprint fits `capacity`.
/// `footprint(boh)` must be monotonically non-decreasing. Errors if even
/// one row does not fit, or if `oh == 0` (there is no band to size —
/// previously this silently returned a band taller than the plane).
pub fn max_row_band(
    oh: usize,
    capacity: usize,
    footprint: impl Fn(usize) -> usize,
) -> Result<usize, TilingError> {
    if oh == 0 {
        return Err(TilingError::Degenerate { oh, boh: 0 });
    }
    if footprint(1) > capacity {
        return Err(TilingError::Capacity {
            min_footprint: footprint(1),
            capacity,
        });
    }
    // Binary search the largest feasible band.
    let (mut lo, mut hi) = (1usize, oh);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if footprint(mid) <= capacity {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(lo)
}

/// Split `oh` output rows into bands of at most `boh` rows, computing each
/// band's input-row window for the given pooling geometry over an input
/// of `ih` rows.
///
/// The input windows are normalised against the real extent so every
/// caller sees the same geometry the DMA layer must honour:
///
/// * a **single band** covers the whole input: its `ih_len` is widened to
///   `ih`, which both absorbs vertical padding (where the formula window
///   exceeds the plane) and picks up trailing rows no output row reads
///   (where the stride leaves a remainder) — previously every caller
///   re-implemented this clamp by hand;
/// * **multiple bands** are clamped so `ih0 + ih_len <= ih` (defensive:
///   exact for every unpadded geometry, but a guarantee the emitters may
///   rely on when sizing DMAs).
///
/// Degenerate requests (`oh == 0`, `boh == 0`, `boh > oh`) and vertical
/// (`Pt`/`Pb`) padding that would split into more than one band return
/// typed errors instead of producing out-of-range windows.
pub fn row_bands(
    params: &PoolParams,
    oh: usize,
    boh: usize,
    ih: usize,
) -> Result<Vec<Band>, TilingError> {
    if oh == 0 || boh == 0 || boh > oh {
        return Err(TilingError::Degenerate { oh, boh });
    }
    // Ceil-mode is rejected alongside vertical padding: the rounded-up
    // last band overhangs the plane, so only a single full-plane band
    // (whose geometry carries the rounding) can be lowered.
    if oh.div_ceil(boh) > 1
        && (params.padding.top > 0 || params.padding.bottom > 0 || params.ceil_mode)
    {
        return Err(TilingError::PaddedMultiBand { oh, boh });
    }
    let mut bands = Vec::with_capacity(oh.div_ceil(boh));
    let mut oh0 = 0;
    while oh0 < oh {
        let oh1 = (oh0 + boh).min(oh);
        let ih0 = oh0 * params.sh;
        let ih_len = band_input_rows(params, oh1 - oh0);
        bands.push(Band {
            oh0,
            oh1,
            ih0,
            ih_len,
        });
        oh0 = oh1;
    }
    if bands.len() == 1 {
        bands[0].ih_len = ih;
    } else {
        for b in &mut bands {
            b.ih_len = b.ih_len.min(ih - b.ih0);
        }
    }
    Ok(bands)
}

/// Batch-aware variant of [`max_row_band`]: sizes one band that must hold
/// `n` folded planes at once. `footprint(boh)` receives the band height
/// and must already account for the N-plane residency (the caller knows
/// its own layout); this wrapper only types the failure as
/// [`TilingError::Batched`] so the engine can distinguish "N planes blew
/// the budget — fall back to per-plane" from a geometry that could never
/// be tiled.
pub fn max_row_band_batched(
    n: usize,
    oh: usize,
    capacity: usize,
    footprint: impl Fn(usize) -> usize,
) -> Result<usize, TilingError> {
    max_row_band(oh, capacity, footprint).map_err(|e| e.batched(n))
}

/// Batch-aware variant of [`row_bands`]: the band schedule a fold over
/// `n` planes shares (every plane of the batch walks identical bands, so
/// the geometry is the single-plane one). Failures are wrapped as
/// [`TilingError::Batched`].
pub fn row_bands_batched(
    n: usize,
    params: &PoolParams,
    oh: usize,
    boh: usize,
    ih: usize,
) -> Result<Vec<Band>, TilingError> {
    row_bands(params, oh, boh, ih).map_err(|e| e.batched(n))
}

/// Split `items` into at most `groups` contiguous chunks whose lengths
/// differ by at most one — the shard split a multi-core chip wants.
///
/// `slice.chunks(len.div_ceil(groups))` rounds the chunk size up and so
/// can *under-produce* groups: 5 bands into 4 groups gives chunks of 2 →
/// (2, 2, 1), three shards for four cores, and the chip makespan is the
/// 2-band shard anyway. The balanced split gives (2, 1, 1, 1): the same
/// makespan floor with every core drawing work. When there are fewer
/// items than groups each item gets its own chunk; empty chunks are
/// never produced.
pub fn balanced_chunks<T>(items: &[T], groups: usize) -> Vec<&[T]> {
    let g = groups.clamp(1, items.len().max(1));
    if items.is_empty() {
        return Vec::new();
    }
    let base = items.len() / g;
    let rem = items.len() % g;
    let mut out = Vec::with_capacity(g);
    let mut at = 0;
    for i in 0..g {
        let take = base + usize::from(i < rem);
        out.push(&items[at..at + take]);
        at += take;
    }
    out
}

/// The largest square input extent `H = W` for which `footprint(hw)` fits
/// `capacity` — the Fig. 8 "tiling threshold". `footprint` must be
/// monotone in `hw`. Probes up to `max_hw`.
pub fn tiling_threshold(
    capacity: usize,
    max_hw: usize,
    footprint: impl Fn(usize) -> usize,
) -> usize {
    let (mut lo, mut hi) = (0usize, max_hw);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if footprint(mid) <= capacity {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    const K3S2: PoolParams = PoolParams::K3S2;

    #[test]
    fn band_input_rows_formula() {
        assert_eq!(band_input_rows(&K3S2, 1), 3);
        assert_eq!(band_input_rows(&K3S2, 2), 5);
        assert_eq!(band_input_rows(&K3S2, 10), 21);
        let s1 = PoolParams::new((3, 3), (1, 1));
        assert_eq!(band_input_rows(&s1, 5), 7);
        // Dilation widens the window: eff Kh = (3-1)*2 + 1 = 5.
        let dilated = PoolParams::new((3, 3), (2, 2)).with_dilation((2, 2));
        assert_eq!(band_input_rows(&dilated, 1), 5);
        assert_eq!(band_input_rows(&dilated, 4), 11);
    }

    #[test]
    fn row_bands_reject_ceil_mode_multi_band() {
        let ceil = PoolParams::new((3, 3), (2, 2)).with_ceil_mode(true);
        // 8x8 input -> 4 ceil-rounded output rows; splitting them must be
        // refused because the last band overhangs the plane.
        let err = row_bands(&ceil, 4, 2, 8).unwrap_err();
        assert_eq!(err, TilingError::PaddedMultiBand { oh: 4, boh: 2 });
        // One full-plane band is fine and covers the whole input.
        let bands = row_bands(&ceil, 4, 4, 8).unwrap();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].ih_len, 8);
    }

    #[test]
    fn dilated_bands_cover_the_dilated_window() {
        let dilated = PoolParams::new((3, 3), (2, 2)).with_dilation((2, 2));
        // 13 input rows -> (13-5)/2+1 = 5 output rows; bands of 2.
        let bands = row_bands(&dilated, 5, 2, 13).unwrap();
        assert_eq!(bands.len(), 3);
        // Each 2-row band reads (2-1)*2 + 5 = 7 rows; the last single-row
        // band reads 5 rows ending exactly at the plane.
        assert_eq!(bands[0].ih_len, 7);
        assert_eq!(bands[2].ih0, 8);
        assert_eq!(bands[2].ih_len, 5);
        assert_eq!(bands[2].ih0 + bands[2].ih_len, 13);
    }

    #[test]
    fn max_row_band_monotone_search() {
        // footprint = 100 bytes per output row
        let b = max_row_band(50, 1000, |boh| boh * 100).unwrap();
        assert_eq!(b, 10);
        // plenty of capacity: whole extent
        let b = max_row_band(50, 1_000_000, |boh| boh * 100).unwrap();
        assert_eq!(b, 50);
    }

    #[test]
    fn max_row_band_single_row_too_big() {
        let err = max_row_band(50, 10, |boh| boh * 100).unwrap_err();
        assert_eq!(
            err,
            TilingError::Capacity {
                min_footprint: 100,
                capacity: 10
            }
        );
    }

    #[test]
    fn max_row_band_rejects_empty_extent() {
        // Previously oh = 0 skipped the search and returned Ok(1): a band
        // taller than the plane it is supposed to tile.
        let err = max_row_band(0, 1000, |boh| boh * 100).unwrap_err();
        assert_eq!(err, TilingError::Degenerate { oh: 0, boh: 0 });
    }

    #[test]
    fn row_bands_reject_degenerate_requests() {
        for (oh, boh) in [(0, 1), (5, 0), (5, 6)] {
            let err = row_bands(&K3S2, oh, boh, 147).unwrap_err();
            assert_eq!(err, TilingError::Degenerate { oh, boh });
        }
    }

    #[test]
    fn row_bands_reject_padded_multi_band() {
        let padded = PoolParams::with_padding((3, 3), (2, 2), dv_tensor::Padding::uniform(1));
        let err = row_bands(&padded, 8, 4, 15).unwrap_err();
        assert_eq!(err, TilingError::PaddedMultiBand { oh: 8, boh: 4 });
        // A single padded band is fine and covers the whole input.
        let bands = row_bands(&padded, 8, 8, 15).unwrap();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].ih_len, 15);
    }

    #[test]
    fn row_bands_cover_exactly() {
        let bands = row_bands(&K3S2, 73, 10, 147).unwrap();
        assert_eq!(bands.len(), 8);
        assert_eq!(
            bands[0],
            Band {
                oh0: 0,
                oh1: 10,
                ih0: 0,
                ih_len: 21
            }
        );
        assert_eq!(bands[7].oh0, 70);
        assert_eq!(bands[7].oh1, 73);
        assert_eq!(bands[7].ih0, 140);
        assert_eq!(bands[7].ih_len, 7); // 2*2 + 3
                                        // coverage: no gaps, no overlaps in output rows
        for w in bands.windows(2) {
            assert_eq!(w[0].oh1, w[1].oh0);
        }
        // last band's input rows end exactly at the input extent
        assert_eq!(bands[7].ih0 + bands[7].ih_len, 147);
    }

    #[test]
    fn row_bands_single_band_widens_to_input_extent() {
        // Formula window is 35 rows; the plane has 36 (one trailing row
        // no output reads). A single band must cover all of it.
        let bands = row_bands(&K3S2, 17, 17, 36).unwrap();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].ih_len, 36);
        // Exact geometry: window == extent.
        let bands = row_bands(&K3S2, 17, 17, 35).unwrap();
        assert_eq!(bands[0].ih_len, 35);
    }

    #[test]
    fn row_bands_clamp_to_input_extent() {
        // K3S3 over 16 input rows: oh = 5, formula window of the last
        // band would end at 15 — already inside the plane — but a
        // too-small `ih` must clamp every band.
        let k3s3 = PoolParams::new((3, 3), (3, 3));
        let bands = row_bands(&k3s3, 5, 2, 16).unwrap();
        assert_eq!(bands.len(), 3);
        for b in &bands {
            assert!(b.ih0 + b.ih_len <= 16, "band {b:?} overruns the input");
        }
        // Last band: output rows [4, 5), input rows [12, 15).
        assert_eq!(bands[2].ih0, 12);
        assert_eq!(bands[2].ih_len, 3);
    }

    #[test]
    fn bands_overlap_in_input_when_stride_lt_kernel() {
        let bands = row_bands(&K3S2, 4, 2, 9).unwrap();
        // band 0 reads rows [0, 5), band 1 reads [4, 9): one-row halo
        assert_eq!(bands[0].ih0 + bands[0].ih_len, 5);
        assert_eq!(bands[1].ih0, 4);
    }

    #[test]
    fn batched_wrappers_type_failures() {
        // Capacity failure: 4 planes of 100 bytes/row against 150 bytes.
        let err = max_row_band_batched(4, 50, 150, |boh| 4 * boh * 100).unwrap_err();
        assert_eq!(
            err,
            TilingError::Batched {
                n: 4,
                cause: Box::new(TilingError::Capacity {
                    min_footprint: 400,
                    capacity: 150
                })
            }
        );
        assert_eq!(
            err.root_cause(),
            &TilingError::Capacity {
                min_footprint: 400,
                capacity: 150
            }
        );
        // Padded multi-band failure keeps its typed cause.
        let padded = PoolParams::with_padding((3, 3), (2, 2), dv_tensor::Padding::uniform(1));
        let err = row_bands_batched(4, &padded, 8, 4, 15).unwrap_err();
        assert_eq!(
            err.root_cause(),
            &TilingError::PaddedMultiBand { oh: 8, boh: 4 }
        );
        // Success passes through untouched.
        let bands = row_bands_batched(4, &K3S2, 73, 10, 147).unwrap();
        assert_eq!(bands, row_bands(&K3S2, 73, 10, 147).unwrap());
        assert_eq!(
            max_row_band_batched(4, 50, 4000, |boh| 4 * boh * 100).unwrap(),
            10
        );
    }

    #[test]
    fn batched_wrapping_is_idempotent() {
        let inner = TilingError::Degenerate { oh: 0, boh: 0 };
        let once = inner.clone().batched(4);
        let twice = once.clone().batched(8);
        assert_eq!(once, twice, "already-batched errors must not re-wrap");
        assert_eq!(once.root_cause(), &inner);
        // Display mentions both the batch and the cause.
        let msg = once.to_string();
        assert!(msg.contains("N=4"), "{msg}");
        assert!(msg.contains("degenerate"), "{msg}");
    }

    #[test]
    fn balanced_chunks_even_out_the_remainder() {
        let items = [0, 1, 2, 3, 4];
        let chunks = balanced_chunks(&items, 4);
        assert_eq!(chunks.len(), 4, "all four groups draw work");
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1, 1]);
        // The naive div_ceil split under-produces groups on the same
        // input: chunks of 2 over 5 items is only three groups.
        assert_eq!(items.chunks(items.len().div_ceil(4)).count(), 3);
        // Order and coverage are preserved.
        let flat: Vec<i32> = chunks.concat();
        assert_eq!(flat, items);
    }

    #[test]
    fn balanced_chunks_edge_cases() {
        let items = [1, 2, 3];
        // More groups than items: one item per chunk, never empty chunks.
        assert_eq!(balanced_chunks(&items, 7).len(), 3);
        // One group: everything together.
        assert_eq!(balanced_chunks(&items, 1), vec![&items[..]]);
        // Zero groups is clamped to one rather than panicking.
        assert_eq!(balanced_chunks(&items, 0), vec![&items[..]]);
        // Empty input: no chunks.
        assert!(balanced_chunks::<i32>(&[], 4).is_empty());
        // Exact division: equal sizes.
        let eight = [0u8; 8];
        assert!(balanced_chunks(&eight, 4).iter().all(|c| c.len() == 2));
        // Sizes always differ by at most one.
        for n in 1..40 {
            let v: Vec<usize> = (0..n).collect();
            for g in 1..10 {
                let sizes: Vec<usize> = balanced_chunks(&v, g).iter().map(|c| c.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "n={n} g={g} sizes={sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn threshold_binary_search() {
        // footprint = hw^2 bytes, capacity 10_000 -> threshold 100
        assert_eq!(tiling_threshold(10_000, 1024, |hw| hw * hw), 100);
        assert_eq!(tiling_threshold(9_999, 1024, |hw| hw * hw), 99);
        // capacity smaller than any size -> 0
        assert_eq!(tiling_threshold(0, 1024, |hw| hw * hw + 1), 0);
    }
}
