//! Bump allocators for memory planning.
//!
//! Scratch-pad memories force the program to manage placement explicitly
//! (paper, Section III-A). Kernel builders plan their buffer layouts with
//! these arenas; exceeding a capacity is a lowering-time error, mirroring
//! how AKG rejects schedules whose tiles do not fit.

use core::fmt;

/// Alignment for all allocations: one fractal row (32 bytes) keeps every
/// region aligned for f16, f32 and fractal accesses.
pub const ALLOC_ALIGN: usize = 32;

/// Error: a Unified-Buffer plan exceeded capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UbOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already allocated.
    pub used: usize,
    /// The buffer capacity.
    pub capacity: usize,
}

impl fmt::Display for UbOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UB plan overflow: requested {} with {} of {} bytes used",
            self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for UbOverflow {}

/// Bump allocator over a fixed-capacity scratchpad (UB, L1, ...).
#[derive(Clone, Debug)]
pub struct UbArena {
    next: usize,
    capacity: usize,
}

impl UbArena {
    /// An arena over `capacity` bytes.
    pub fn new(capacity: usize) -> UbArena {
        UbArena { next: 0, capacity }
    }

    /// Allocate `bytes` bytes, aligned to [`ALLOC_ALIGN`]. Returns the
    /// byte offset.
    pub fn alloc(&mut self, bytes: usize) -> Result<usize, UbOverflow> {
        let start = self.next.next_multiple_of(ALLOC_ALIGN);
        let end = start.checked_add(bytes).ok_or(UbOverflow {
            requested: bytes,
            used: self.next,
            capacity: self.capacity,
        })?;
        if end > self.capacity {
            return Err(UbOverflow {
                requested: bytes,
                used: self.next,
                capacity: self.capacity,
            });
        }
        self.next = end;
        Ok(start)
    }

    /// Bytes allocated so far (including alignment gaps).
    pub fn used(&self) -> usize {
        self.next
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.next
    }
}

/// Bump allocator over global memory — unbounded, used to lay out the
/// tensors of a workload before building its programs.
#[derive(Clone, Debug, Default)]
pub struct GmArena {
    next: usize,
}

impl GmArena {
    /// A fresh, empty arena.
    pub fn new() -> GmArena {
        GmArena::default()
    }

    /// Allocate `bytes` bytes, aligned; returns the byte offset.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        let start = self.next.next_multiple_of(ALLOC_ALIGN);
        self.next = start + bytes;
        start
    }

    /// Total bytes the global-memory image needs.
    pub fn size(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ub_arena_allocates_aligned() {
        let mut a = UbArena::new(1024);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 32, "second allocation aligned past the first");
        assert_eq!(a.used(), 42);
    }

    #[test]
    fn ub_arena_overflow_detected() {
        let mut a = UbArena::new(64);
        assert!(a.alloc(64).is_ok());
        let err = a.alloc(1).unwrap_err();
        assert_eq!(err.capacity, 64);
        assert_eq!(err.requested, 1);
    }

    #[test]
    fn ub_arena_exact_fit() {
        let mut a = UbArena::new(64);
        assert_eq!(a.alloc(32).unwrap(), 0);
        assert_eq!(a.alloc(32).unwrap(), 32);
        assert_eq!(a.remaining(), 0);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn gm_arena_grows() {
        let mut g = GmArena::new();
        let a = g.alloc(100);
        let b = g.alloc(100);
        assert_eq!(a, 0);
        assert_eq!(b, 128);
        assert_eq!(g.size(), 228);
    }
}
