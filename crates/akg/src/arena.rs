//! Bump allocators for memory planning.
//!
//! Scratch-pad memories force the program to manage placement explicitly
//! (paper, Section III-A). Kernel builders plan their buffer layouts with
//! these arenas; exceeding a capacity is a lowering-time error, mirroring
//! how AKG rejects schedules whose tiles do not fit.

use core::fmt;

/// Alignment for all allocations: one fractal row (32 bytes) keeps every
/// region aligned for f16, f32 and fractal accesses.
pub const ALLOC_ALIGN: usize = 32;

/// Error: a Unified-Buffer plan exceeded capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UbOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already allocated.
    pub used: usize,
    /// The buffer capacity.
    pub capacity: usize,
}

impl fmt::Display for UbOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UB plan overflow: requested {} with {} of {} bytes used",
            self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for UbOverflow {}

/// Bump allocator over a fixed-capacity scratchpad (UB, L1, ...).
#[derive(Clone, Debug)]
pub struct UbArena {
    next: usize,
    capacity: usize,
}

impl UbArena {
    /// An arena over `capacity` bytes.
    pub fn new(capacity: usize) -> UbArena {
        UbArena { next: 0, capacity }
    }

    /// Allocate `bytes` bytes, aligned to [`ALLOC_ALIGN`]. Returns the
    /// byte offset.
    pub fn alloc(&mut self, bytes: usize) -> Result<usize, UbOverflow> {
        let start = self.next.next_multiple_of(ALLOC_ALIGN);
        let end = start.checked_add(bytes).ok_or(UbOverflow {
            requested: bytes,
            used: self.next,
            capacity: self.capacity,
        })?;
        if end > self.capacity {
            return Err(UbOverflow {
                requested: bytes,
                used: self.next,
                capacity: self.capacity,
            });
        }
        self.next = end;
        Ok(start)
    }

    /// Bytes allocated so far (including alignment gaps).
    pub fn used(&self) -> usize {
        self.next
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.next
    }

    /// Allocate a band-cycled region: one slot when `double` is false, a
    /// ping-pong (A/B) pair when it is true. Double-buffering lets the
    /// MTE load of band `i + 1` target the slot the Vector pipe is *not*
    /// reading, so the dual-pipe scoreboard sees no WAR hazard between
    /// consecutive bands.
    pub fn alloc_band(&mut self, bytes: usize, double: bool) -> Result<BandSlots, UbOverflow> {
        let a = self.alloc(bytes)?;
        let b = if double {
            Some(self.alloc(bytes)?)
        } else {
            None
        };
        Ok(BandSlots { a, b })
    }

    /// Allocate a band-cycled region under a [`BandMode`]:
    /// [`BandMode::PingPong`] gets the A/B pair, everything else one
    /// slot. [`BandMode::Versioned`] deliberately stays single-slotted —
    /// the extra version lives in headroom the *renamer* rotates into at
    /// issue time (see [`UbArena::reserve_headroom`]), not in a second
    /// software-addressed slot.
    pub fn alloc_band_mode(
        &mut self,
        bytes: usize,
        mode: BandMode,
    ) -> Result<BandSlots, UbOverflow> {
        self.alloc_band(bytes, mode == BandMode::PingPong)
    }

    /// Reserve `bytes` of physical headroom for the dual-pipe renamer's
    /// rotated slot versions and return its offset. The reservation must
    /// be the plan's **final** allocation: the scoreboard's capacity
    /// check measures a buffer's high-water mark of *written* bytes, so
    /// headroom interleaved below still-to-be-written regions would be
    /// counted as used and every rotation would be refused. Nothing is
    /// ever emitted against the returned offset — a granted rotation is
    /// a scheduling fiction (functional writes stay in the base slot in
    /// program order) — but reserving it keeps the plan honest: a kernel
    /// that banks on renaming proves at lowering time that two versions
    /// of every band-cycled region physically fit, and overflow is a
    /// typed [`UbOverflow`] instead of a silent scheduling no-op.
    pub fn reserve_headroom(&mut self, bytes: usize) -> Result<usize, UbOverflow> {
        self.alloc(bytes)
    }
}

/// How a band-cycled region is provisioned for cross-band overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandMode {
    /// One slot; consecutive bands serialise on WAR/WAW slot reuse.
    Single,
    /// Two software-addressed slots (A/B) cycled by band parity; the
    /// instruction stream itself alternates addresses.
    PingPong,
    /// One software-addressed slot plus reserved headroom: every band
    /// uses the same addresses and the dual-pipe renamer rotates the
    /// next band's writes past the previous band's in-flight reads.
    Versioned,
}

impl BandMode {
    /// Whether this mode overlaps band `i + 1`'s loads with band `i`'s
    /// compute (by either mechanism).
    pub fn overlaps(self) -> bool {
        self != BandMode::Single
    }
}

/// The slot offsets of a band-cycled region (see [`UbArena::alloc_band`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandSlots {
    /// Offset of slot A (bands 0, 2, 4, … — and every band when single).
    pub a: usize,
    /// Offset of slot B (bands 1, 3, 5, …), present when double-buffered.
    pub b: Option<usize>,
}

impl BandSlots {
    /// The slot offset serving band `band`: parity picks A or B; a
    /// single-buffered region always answers A.
    pub fn of(&self, band: usize) -> usize {
        match self.b {
            Some(b) if band % 2 == 1 => b,
            _ => self.a,
        }
    }

    /// Whether the region really has two slots.
    pub fn is_double(&self) -> bool {
        self.b.is_some()
    }
}

/// Bump allocator over global memory — unbounded, used to lay out the
/// tensors of a workload before building its programs.
#[derive(Clone, Debug, Default)]
pub struct GmArena {
    next: usize,
}

impl GmArena {
    /// A fresh, empty arena.
    pub fn new() -> GmArena {
        GmArena::default()
    }

    /// Allocate `bytes` bytes, aligned; returns the byte offset.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        let start = self.next.next_multiple_of(ALLOC_ALIGN);
        self.next = start + bytes;
        start
    }

    /// Total bytes the global-memory image needs.
    pub fn size(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ub_arena_allocates_aligned() {
        let mut a = UbArena::new(1024);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 32, "second allocation aligned past the first");
        assert_eq!(a.used(), 42);
    }

    #[test]
    fn ub_arena_overflow_detected() {
        let mut a = UbArena::new(64);
        assert!(a.alloc(64).is_ok());
        let err = a.alloc(1).unwrap_err();
        assert_eq!(err.capacity, 64);
        assert_eq!(err.requested, 1);
    }

    #[test]
    fn ub_arena_exact_fit() {
        let mut a = UbArena::new(64);
        assert_eq!(a.alloc(32).unwrap(), 0);
        assert_eq!(a.alloc(32).unwrap(), 32);
        assert_eq!(a.remaining(), 0);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn band_slots_alternate_by_parity() {
        let mut a = UbArena::new(1024);
        let single = a.alloc_band(100, false).unwrap();
        assert!(!single.is_double());
        assert_eq!(single.of(0), single.of(1));
        let double = a.alloc_band(100, true).unwrap();
        assert!(double.is_double());
        assert_eq!(double.of(0), double.of(2));
        assert_eq!(double.of(1), double.of(3));
        assert_ne!(double.of(0), double.of(1));
        // Pair costs two aligned slots: A at 128, B at 256, 100 bytes each.
        assert_eq!(double.a, 128);
        assert_eq!(double.b, Some(256));
        assert_eq!(a.used(), 356);
    }

    #[test]
    fn band_slots_overflow_detected() {
        let mut a = UbArena::new(150);
        assert!(a.alloc_band(100, false).is_ok());
        let mut a = UbArena::new(150);
        assert!(a.alloc_band(100, true).is_err());
    }

    #[test]
    fn band_mode_maps_to_slots() {
        let mut a = UbArena::new(1024);
        assert!(!a
            .alloc_band_mode(100, BandMode::Single)
            .unwrap()
            .is_double());
        assert!(a
            .alloc_band_mode(100, BandMode::PingPong)
            .unwrap()
            .is_double());
        let v = a.alloc_band_mode(100, BandMode::Versioned).unwrap();
        assert!(
            !v.is_double(),
            "versioned regions are single-slotted; the renamer provides the second version"
        );
        assert_eq!(v.of(0), v.of(1));
        assert!(!BandMode::Single.overlaps());
        assert!(BandMode::PingPong.overlaps());
        assert!(BandMode::Versioned.overlaps());
    }

    #[test]
    fn reserve_headroom_is_a_real_allocation() {
        let mut a = UbArena::new(256);
        let base = a.alloc_band_mode(96, BandMode::Versioned).unwrap();
        assert_eq!(base.a, 0);
        let top = a.reserve_headroom(a.used()).unwrap();
        assert_eq!(top, 96, "headroom sits above every base slot");
        assert_eq!(a.used(), 192);
        // Insufficient capacity is a typed overflow, not a silent shrink.
        let err = a.reserve_headroom(128).unwrap_err();
        assert_eq!(err.capacity, 256);
        assert_eq!(err.requested, 128);
    }

    #[test]
    fn gm_arena_grows() {
        let mut g = GmArena::new();
        let a = g.alloc(100);
        let b = g.alloc(100);
        assert_eq!(a, 0);
        assert_eq!(b, 128);
        assert_eq!(g.size(), 228);
    }
}
