#![deny(missing_docs)]
//! AKG/TVM-like lowering layer (paper, Section IV).
//!
//! The paper's pooling operators are written in TVM's DSL and lowered by
//! AKG to CCE C. This crate is the equivalent layer for the simulator: it
//! provides the machinery kernel builders (in `dv-core`) use to turn an
//! operator description into per-core [`dv_isa::Program`]s:
//!
//! * [`arena`] — bump allocators for global memory and the Unified
//!   Buffer, so lowering detects capacity violations before execution;
//! * [`emit`] — vectorisation helpers that realise AKG's automatic
//!   behaviours: saturate the 128-lane mask, use the hardware repeat
//!   parameter (chunked at the 255 limit), and mask partial tails;
//! * [`tiling`] — row-band tiling against the UB/L1 capacities, including
//!   the *tiling threshold* that bounds Fig. 8's x-axis.

pub mod arena;
pub mod emit;
pub mod tiling;

pub use arena::{BandMode, BandSlots, GmArena, UbArena, UbOverflow};
pub use emit::{
    dma, elementwise, expect_vector, fill_region, strided_accumulate, zero_region, EmitError,
};
pub use tiling::{
    balanced_chunks, band_input_rows, max_row_band, max_row_band_batched, row_bands,
    row_bands_batched, tiling_threshold, Band, TilingError,
};
