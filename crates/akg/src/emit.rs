//! Vectorisation helpers — AKG's automatic behaviours, reproduced.
//!
//! "Two \[primitives\] are handled automatically by AKG: vectorization and
//! parallelization. First, the inner loops of computations are vectorized
//! (minimally on the C0 dimension) … When possible, the vector
//! instructions are also issued with repeat factors." (paper, Section
//! IV-A). [`elementwise`] is that codegen rule for dense regions: full
//! 128-lane mask, hardware repeat chunked at the 255 limit, and a
//! mask-limited tail instruction for the remainder.

use core::fmt;
use dv_fp16::F16;
use dv_isa::{
    Addr, DataMove, Instr, IsaError, Mask, Program, VectorInstr, VectorOp, MAX_REPEAT,
    VECTOR_BYTES, VECTOR_LANES,
};

/// Errors from inspecting the shape of an emitted program.
///
/// The emit helpers make structural promises ("this lowers to one
/// full-mask vector instruction with repeat 10") that tests and debug
/// tooling check by looking instructions up by position. Those lookups
/// fail with this typed error instead of a bare panic, so a failure names
/// the position and what was found there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmitError {
    /// The program is shorter than the requested instruction index.
    OutOfRange {
        /// Requested instruction index.
        pc: usize,
        /// Actual program length.
        len: usize,
    },
    /// The instruction at `pc` is not of the expected class.
    WrongClass {
        /// Inspected instruction index.
        pc: usize,
        /// The class the caller expected.
        expected: &'static str,
        /// Mnemonic of the instruction actually found.
        found: &'static str,
    },
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::OutOfRange { pc, len } => {
                write!(f, "no instruction at pc {pc}: program has {len}")
            }
            EmitError::WrongClass {
                pc,
                expected,
                found,
            } => write!(f, "instruction at pc {pc} is {found}, expected {expected}"),
        }
    }
}

impl std::error::Error for EmitError {}

/// Fetch the vector instruction at position `pc` of a program, with a
/// typed error when the program is shorter or holds another instruction
/// class there.
pub fn expect_vector(p: &Program, pc: usize) -> Result<&VectorInstr, EmitError> {
    match p.instrs().get(pc) {
        None => Err(EmitError::OutOfRange { pc, len: p.len() }),
        Some(Instr::Vector(v)) => Ok(v),
        Some(other) => Err(EmitError::WrongClass {
            pc,
            expected: "vector",
            found: other.mnemonic(),
        }),
    }
}

/// Emit a dense elementwise operation over `elems` consecutive f16
/// elements: `dst[i] = op(src0[i], src1[i])`. All three regions advance
/// together. Saturates the mask and uses repeats; the non-multiple-of-128
/// tail gets its own mask-limited instruction.
pub fn elementwise(
    p: &mut Program,
    op: VectorOp,
    dst: Addr,
    src0: Addr,
    src1: Addr,
    elems: usize,
) -> Result<(), IsaError> {
    let full_blocks = elems / VECTOR_LANES;
    let tail = elems % VECTOR_LANES;
    let mut done = 0usize;
    while done < full_blocks {
        let rep = (full_blocks - done).min(MAX_REPEAT as usize);
        let off = done * VECTOR_BYTES;
        p.push(Instr::Vector(VectorInstr::unit_stride(
            op,
            dst.add(off),
            src0.add(off),
            src1.add(off),
            Mask::FULL,
            rep as u16,
        )))?;
        done += rep;
    }
    if tail > 0 {
        let off = full_blocks * VECTOR_BYTES;
        p.push(Instr::Vector(VectorInstr::unit_stride(
            op,
            dst.add(off),
            src0.add(off),
            src1.add(off),
            Mask::first_n(tail),
            1,
        )))?;
    }
    Ok(())
}

/// Fill `elems` consecutive f16 elements with `value` (`vector_dup`) —
/// output-tile initialisation ("the output tile is initialized with the
/// minimum value of the data type", Section V-A) and zeroing Col2Im
/// targets (Section III-D).
pub fn fill_region(p: &mut Program, dst: Addr, value: F16, elems: usize) -> Result<(), IsaError> {
    elementwise(p, VectorOp::Dup(value), dst, dst, dst, elems)
}

/// Zero `elems` consecutive f16 elements.
pub fn zero_region(p: &mut Program, dst: Addr, elems: usize) -> Result<(), IsaError> {
    fill_region(p, dst, F16::ZERO, elems)
}

/// Emit an MTE move of `bytes` bytes.
pub fn dma(p: &mut Program, src: Addr, dst: Addr, bytes: usize) -> Result<(), IsaError> {
    p.push(Instr::Move(DataMove::new(src, dst, bytes)))
}

/// Emit a strided accumulation family: one instruction per outer index,
/// each accumulating `repeat` strided source blocks into a fixed
/// destination — the baseline pooling pattern ("each vmax uses repetition
/// to obtain the maximum value across the width of a patch Kw"). The
/// destination does not advance across repeats (stride 0); the source
/// advances by `src1_stride` bytes.
#[allow(clippy::too_many_arguments)]
pub fn strided_accumulate(
    p: &mut Program,
    op: VectorOp,
    dst: Addr,
    src1: Addr,
    mask: Mask,
    repeat: u16,
    src1_stride: usize,
) -> Result<(), IsaError> {
    p.push(Instr::Vector(VectorInstr {
        op,
        dst,
        src0: dst,
        src1,
        mask,
        repeat,
        dst_stride: 0,
        src0_stride: 0,
        src1_stride,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_isa::{BufferId, Instr};

    fn count_vec(p: &Program) -> usize {
        p.instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Vector(_)))
            .count()
    }

    #[test]
    fn elementwise_exact_multiple_single_instr() -> Result<(), EmitError> {
        let mut p = Program::new();
        elementwise(
            &mut p,
            VectorOp::Add,
            Addr::ub(0),
            Addr::ub(1024),
            Addr::ub(2048),
            128 * 10,
        )
        .unwrap();
        assert_eq!(count_vec(&p), 1);
        let v = expect_vector(&p, 0)?;
        assert_eq!(v.repeat, 10);
        assert!(v.mask.is_full());
        Ok(())
    }

    #[test]
    fn elementwise_chunks_at_255_repeats() {
        let mut p = Program::new();
        elementwise(
            &mut p,
            VectorOp::Max,
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            128 * 600,
        )
        .unwrap();
        // 600 blocks -> 255 + 255 + 90
        assert_eq!(count_vec(&p), 3);
        let reps: Vec<u16> = p
            .instrs()
            .iter()
            .map(|i| match i {
                Instr::Vector(v) => v.repeat,
                _ => 0,
            })
            .collect();
        assert_eq!(reps, vec![255, 255, 90]);
    }

    #[test]
    fn elementwise_tail_is_masked() -> Result<(), EmitError> {
        let mut p = Program::new();
        elementwise(
            &mut p,
            VectorOp::Mul,
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            128 + 40,
        )
        .unwrap();
        assert_eq!(count_vec(&p), 2);
        let v = expect_vector(&p, 1)?;
        assert_eq!(v.mask.count(), 40);
        assert_eq!(v.repeat, 1);
        // tail starts after the full block
        assert_eq!(v.dst.offset, 256);
        Ok(())
    }

    #[test]
    fn elementwise_small_region_only_tail() -> Result<(), EmitError> {
        let mut p = Program::new();
        elementwise(
            &mut p,
            VectorOp::Add,
            Addr::ub(0),
            Addr::ub(256),
            Addr::ub(512),
            16,
        )
        .unwrap();
        assert_eq!(count_vec(&p), 1);
        assert_eq!(expect_vector(&p, 0)?.mask.count(), 16);
        Ok(())
    }

    #[test]
    fn elementwise_zero_elems_is_noop() {
        let mut p = Program::new();
        elementwise(
            &mut p,
            VectorOp::Add,
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            0,
        )
        .unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn fill_and_zero_emit_dup() {
        let mut p = Program::new();
        fill_region(&mut p, Addr::ub(0), F16::NEG_INFINITY, 128).unwrap();
        zero_region(&mut p, Addr::ub(256), 128).unwrap();
        assert_eq!(p.issue_count("vector_dup"), 2);
    }

    #[test]
    fn dma_validates_path() {
        let mut p = Program::new();
        assert!(dma(&mut p, Addr::gm(0), Addr::l1(0), 64).is_ok());
        assert!(dma(&mut p, Addr::gm(0), Addr::new(BufferId::L0A, 0), 64).is_err());
    }

    #[test]
    fn strided_accumulate_shape() -> Result<(), EmitError> {
        let mut p = Program::new();
        strided_accumulate(
            &mut p,
            VectorOp::Max,
            Addr::ub(0),
            Addr::ub(1024),
            Mask::C0_ONLY,
            3,
            32,
        )
        .unwrap();
        let v = expect_vector(&p, 0)?;
        assert_eq!(v.dst_stride, 0);
        assert_eq!(v.src0_stride, 0);
        assert_eq!(v.src1_stride, 32);
        assert_eq!(v.src0, v.dst, "accumulates in place");
        assert_eq!(v.repeat, 3);
        Ok(())
    }

    #[test]
    fn expect_vector_reports_typed_errors() {
        let mut p = Program::new();
        dma(&mut p, Addr::gm(0), Addr::l1(0), 64).unwrap();
        assert_eq!(
            expect_vector(&p, 0),
            Err(EmitError::WrongClass {
                pc: 0,
                expected: "vector",
                found: "mte_move",
            })
        );
        assert_eq!(
            expect_vector(&p, 5),
            Err(EmitError::OutOfRange { pc: 5, len: 1 })
        );
        assert!(expect_vector(&p, 0)
            .unwrap_err()
            .to_string()
            .contains("mte_move"));
    }
}
