//! The fractal weight layout ("FracZ").
//!
//! The right operand of the Cube Unit is the `OutKer` matrix of Fig. 1:
//! rows enumerate the reduction dimension `K = C1 * Kh * Kw * C0` (in
//! that order, matching the mode-0 `Im2Col` load of the left operand) and
//! columns enumerate the output feature maps `M` (zero-padded to a
//! multiple of 16). The matrix is stored as a row-major grid of 16 x 16
//! fractals — the layout AI frameworks precompute for DaVinci weights.

use dv_fp16::F16;
use dv_tensor::{Nchw, PoolParams, C0};

/// Fractal edge (16).
const E: usize = 16;

/// Transform kernels `(M, C, Kh, Kw)` into the FracZ fractal grid for the
/// given convolution geometry, returning `(data, k_fractals, n_fractals)`.
///
/// `k_fractals = C1 * Kh * Kw` (each fractal covers one `(c1, kh, kw)`
/// combination's 16 `c0` rows); `n_fractals = ceil(M / 16)`.
pub fn kernels_to_fracz(kernels: &Nchw, params: &PoolParams) -> (Vec<F16>, usize, usize) {
    assert_eq!(kernels.h, params.kh, "kernel tensor height");
    assert_eq!(kernels.w, params.kw, "kernel tensor width");
    let m = kernels.n;
    let c = kernels.c;
    let c1 = c.div_ceil(C0);
    let k_fr = c1 * params.kh * params.kw;
    let n_fr = m.div_ceil(E);
    let mut data = vec![F16::ZERO; k_fr * n_fr * E * E];
    for kf in 0..k_fr {
        let c1_i = kf / (params.kh * params.kw);
        let rem = kf % (params.kh * params.kw);
        let (kh, kw) = (rem / params.kw, rem % params.kw);
        for nf in 0..n_fr {
            for row in 0..E {
                let ch = c1_i * C0 + row;
                for col in 0..E {
                    let mi = nf * E + col;
                    let v = if ch < c && mi < m {
                        kernels.get(mi, ch, kh, kw)
                    } else {
                        F16::ZERO
                    };
                    data[(kf * n_fr + nf) * E * E + row * E + col] = v;
                }
            }
        }
    }
    (data, k_fr, n_fr)
}

/// Transform kernels `(M, C, Kh, Kw)` into the **transposed** fractal
/// grid `W^T` — rows enumerate the output feature maps `M`, columns the
/// reduction dimension `K = C1 * Kh * Kw * C0` — the right operand of the
/// backward-data matmul `dX_cols = dY x W^T`. Returns
/// `(data, m_fractals, k_fractals)`.
pub fn kernels_to_fracz_t(kernels: &Nchw, params: &PoolParams) -> (Vec<F16>, usize, usize) {
    assert_eq!(kernels.h, params.kh, "kernel tensor height");
    assert_eq!(kernels.w, params.kw, "kernel tensor width");
    let m = kernels.n;
    let c = kernels.c;
    let c1 = c.div_ceil(C0);
    let k_fr = c1 * params.kh * params.kw;
    let m_fr = m.div_ceil(E);
    let mut data = vec![F16::ZERO; m_fr * k_fr * E * E];
    for mf in 0..m_fr {
        for kf in 0..k_fr {
            let c1_i = kf / (params.kh * params.kw);
            let rem = kf % (params.kh * params.kw);
            let (kh, kw) = (rem / params.kw, rem % params.kw);
            for row in 0..E {
                let mi = mf * E + row;
                for col in 0..E {
                    let ch = c1_i * C0 + col;
                    let v = if ch < c && mi < m {
                        kernels.get(mi, ch, kh, kw)
                    } else {
                        F16::ZERO
                    };
                    data[(mf * k_fr + kf) * E * E + row * E + col] = v;
                }
            }
        }
    }
    (data, m_fr, k_fr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fracz_shape_and_padding() {
        // 3 kernels of 5 channels, 2x2 -> C1 = 1, k_fr = 4, n_fr = 1.
        let kernels = Nchw::from_fn(3, 5, 2, 2, |m, c, h, w| {
            F16::from_f32((m * 1000 + c * 100 + h * 10 + w) as f32)
        });
        let params = PoolParams::new((2, 2), (1, 1));
        let (data, k_fr, n_fr) = kernels_to_fracz(&kernels, &params);
        assert_eq!((k_fr, n_fr), (4, 1));
        assert_eq!(data.len(), 4 * 256);
        // fractal 0 = (c1=0, kh=0, kw=0): row = channel, col = kernel
        assert_eq!(data[0].to_f32(), 0.0); // m=0, c=0, (0,0)
        assert_eq!(data[1].to_f32(), 1000.0); // m=1
        assert_eq!(data[16].to_f32(), 100.0); // c=1, m=0
                                              // channel padding rows are zero
        assert_eq!(data[5 * 16], F16::ZERO);
        // kernel padding columns are zero
        assert_eq!(data[3], F16::ZERO);
        // fractal ordering: fractal 1 = (kh=0, kw=1)
        assert_eq!(data[256].to_f32(), 1.0); // m=0, c=0, (0,1)
    }

    #[test]
    fn fracz_t_is_elementwise_transpose_of_fracz() {
        let kernels = Nchw::from_fn(20, 18, 2, 2, |m, c, h, w| {
            F16::from_f32((m * 1000 + c * 10 + h * 5 + w) as f32)
        });
        let params = PoolParams::new((2, 2), (1, 1));
        let (fz, k_fr, n_fr) = kernels_to_fracz(&kernels, &params);
        let (fzt, m_fr, k_fr_t) = kernels_to_fracz_t(&kernels, &params);
        assert_eq!(k_fr, k_fr_t);
        assert_eq!(n_fr, m_fr); // M = 20 -> 2 fractals either way
                                // element (k, m) of W equals element (m, k) of W^T
        for kf in 0..k_fr {
            for nf in 0..n_fr {
                for r in 0..16 {
                    for c in 0..16 {
                        let w_km = fz[(kf * n_fr + nf) * 256 + r * 16 + c];
                        let wt_mk = fzt[(nf * k_fr + kf) * 256 + c * 16 + r];
                        assert_eq!(w_km, wt_mk, "kf={kf} nf={nf} r={r} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn fracz_multi_c1() {
        // 20 channels -> C1 = 2; fractal (c1=1, kh=0, kw=0) is index
        // kh*kw (= 1*1) ... for a 1x1 kernel: k_fr = 2.
        let kernels = Nchw::from_fn(1, 20, 1, 1, |_, c, _, _| F16::from_f32(c as f32));
        let params = PoolParams::new((1, 1), (1, 1));
        let (data, k_fr, n_fr) = kernels_to_fracz(&kernels, &params);
        assert_eq!((k_fr, n_fr), (2, 1));
        assert_eq!(data[16].to_f32(), 1.0); // c=1
        assert_eq!(data[256].to_f32(), 16.0); // c1=1, row 0 -> c=16
        assert_eq!(data[256 + 4 * 16].to_f32(), 0.0); // c=20 padded
    }
}
