//! Convolution + AvgPool fusion (the paper's future work, Section VIII).
//!
//! "Further work could … consider the fusion techniques described by
//! Suita et al. to execute Avgpool together with convolution as matrix
//! multiplication in the Cube Unit." The identity: a stride-1 convolution
//! followed by AvgPool with kernel `(P, P)` and stride `(P, P)` equals a
//! **single** convolution with stride `P` and a box-smeared kernel
//!
//! ```text
//! W'[m, c, u, v] = 1/P^2 * sum over (i, j) with u-P < i <= u, i <= u,
//!                  0 <= u-i < P (same for v) of W[m, c, i, j]
//! ```
//!
//! of extent `(Kh + P - 1, Kw + P - 1)`. The fused kernel runs entirely
//! on the Cube Unit — one matmul instead of a matmul plus a Vector-Unit
//! pooling pass. (MaxPool "cannot be fused in the same way" — max does
//! not distribute over the multiply-accumulate — which is exactly the
//! paper's point for accelerating it with Im2Col instead.)

use crate::lower::ConvError;
use dv_fp16::F16;
use dv_tensor::{Nchw, PoolParams};

/// Compose stride-1 convolution weights with a following `(P, P)`/`(P, P)`
/// AvgPool into the equivalent fused convolution `(weights', params')`.
///
/// The smearing sums are computed in f32 and rounded once to f16 —
/// matching the Cube Unit's accumulate-then-round numerics.
pub fn fuse_conv_avgpool(
    weights: &Nchw,
    conv_params: &PoolParams,
    pool: usize,
) -> Result<(Nchw, PoolParams), ConvError> {
    if (conv_params.sh, conv_params.sw) != (1, 1) {
        return Err(ConvError::Unsupported(
            "fusion requires a stride-1 convolution".into(),
        ));
    }
    if !conv_params.padding.is_none() {
        return Err(ConvError::Unsupported(
            "fusion with padding is not implemented".into(),
        ));
    }
    if pool == 0 {
        return Err(ConvError::Unsupported("pool extent must be nonzero".into()));
    }
    let (kh, kw) = (weights.h, weights.w);
    let (fkh, fkw) = (kh + pool - 1, kw + pool - 1);
    let inv = 1.0f32 / (pool * pool) as f32;
    let fused = Nchw::from_fn(weights.n, weights.c, fkh, fkw, |m, c, u, v| {
        let mut acc = 0.0f32;
        // positions (i, j) of the original kernel that land on (u, v)
        // for some pool offset (p, q) with p = u - i in [0, P).
        for i in u.saturating_sub(pool - 1)..=u.min(kh - 1) {
            for j in v.saturating_sub(pool - 1)..=v.min(kw - 1) {
                acc += weights.get(m, c, i, j).to_f32();
            }
        }
        F16::from_f32(acc * inv)
    });
    let fused_params = PoolParams::new((fkh, fkw), (pool, pool));
    Ok((fused, fused_params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_tensor::reference;

    fn det(seed: usize, i: usize) -> F16 {
        F16::from_f32(((seed * 13 + i * 7) % 9) as f32 * 0.125 - 0.5)
    }

    /// The fused convolution equals conv -> avgpool computed in full f32
    /// (sum reassociation means f16 intermediate rounding differs, so the
    /// comparison is against the f32 composition with an ulp bound).
    #[test]
    fn fused_equals_composition() {
        let (c, m, k, p) = (5, 3, 3, 2);
        let (ih, iw) = (11, 13);
        let weights = Nchw::from_fn(m, c, k, k, |mi, ci, h, w| {
            det(1, mi * 100 + ci * 10 + h * 3 + w)
        });
        let input = Nchw::from_fn(1, c, ih, iw, |_, ci, h, w| det(2, ci * 200 + h * 15 + w));
        let conv_params = PoolParams::new((k, k), (1, 1));

        let (fused_w, fused_p) = fuse_conv_avgpool(&weights, &conv_params, p).unwrap();
        assert_eq!((fused_w.h, fused_w.w), (k + p - 1, k + p - 1));
        let fused_out = reference::conv2d_direct(&input, &fused_w, &fused_p).unwrap();

        // composition: conv (f32 acc, f16 rounded) then avgpool
        let conv_out = reference::conv2d_direct(&input, &weights, &conv_params).unwrap();
        let pool_params = PoolParams::new((p, p), (p, p));
        let pooled = reference::avgpool_forward(&conv_out.to_nc1hwc0(), &pool_params).unwrap();
        let mut pooled = pooled;
        pooled.orig_c = m;
        let pooled = pooled.to_nchw();

        assert_eq!(
            (fused_out.c, fused_out.h, fused_out.w),
            (pooled.c, pooled.h, pooled.w)
        );
        let max_ulp = fused_out
            .data()
            .iter()
            .zip(pooled.data())
            .map(|(a, b)| a.ulp_distance(*b))
            .max()
            .unwrap();
        assert!(max_ulp <= 4, "fused vs composed differ by {max_ulp} ulp");
    }

    #[test]
    fn fused_kernel_weights_are_box_sums() {
        // 1x1 conv kernel of weight 1, pool 2: fused kernel is 2x2 of 1/4.
        let weights = Nchw::from_fn(1, 1, 1, 1, |_, _, _, _| F16::ONE);
        let (fused, params) =
            fuse_conv_avgpool(&weights, &PoolParams::new((1, 1), (1, 1)), 2).unwrap();
        assert_eq!((fused.h, fused.w), (2, 2));
        assert_eq!((params.sh, params.sw), (2, 2));
        for h in 0..2 {
            for w in 0..2 {
                assert_eq!(fused.get(0, 0, h, w).to_f32(), 0.25);
            }
        }
    }

    #[test]
    fn fusion_rejects_strided_conv_and_padding() {
        let weights = Nchw::zeros(1, 1, 3, 3);
        assert!(fuse_conv_avgpool(&weights, &PoolParams::new((3, 3), (2, 2)), 2).is_err());
        let padded = PoolParams::with_padding((3, 3), (1, 1), dv_tensor::Padding::uniform(1));
        assert!(fuse_conv_avgpool(&weights, &padded, 2).is_err());
        assert!(fuse_conv_avgpool(&weights, &PoolParams::new((3, 3), (1, 1)), 0).is_err());
    }
}
