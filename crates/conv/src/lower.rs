//! Lowering of 2-D convolution onto the simulated Cube Unit.

use core::fmt;
use dv_akg::{dma, GmArena};
use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, CubeMatmul, Im2Col, Im2ColGeometry, Instr, Program, RepeatMode, MAX_REPEAT,
};
use dv_sim::{Chip, ChipRun, CostModel, SimError};
use dv_tensor::{Nc1hwc0, Nchw, PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};

use crate::fracz::kernels_to_fracz;

/// Fractal edge (16 rows/columns).
const E: usize = FRACTAL_ROWS;
/// Bytes of one f32 fractal in L0C.
const L0C_FRACTAL_BYTES: usize = E * E * 4;

/// Errors from the convolution lowering/run.
#[derive(Debug)]
pub enum ConvError {
    /// The problem exceeds what this lowering tiles (see message).
    Unsupported(String),
    /// Instruction emission failed.
    Isa(dv_isa::IsaError),
    /// Simulation failed.
    Sim(SimError),
    /// Bad shapes.
    Shape(dv_tensor::ShapeError),
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ConvError::Isa(e) => write!(f, "isa: {e}"),
            ConvError::Sim(e) => write!(f, "sim: {e}"),
            ConvError::Shape(e) => write!(f, "shape: {e}"),
        }
    }
}

impl std::error::Error for ConvError {}

impl From<dv_isa::IsaError> for ConvError {
    fn from(e: dv_isa::IsaError) -> Self {
        ConvError::Isa(e)
    }
}
impl From<SimError> for ConvError {
    fn from(e: SimError) -> Self {
        ConvError::Sim(e)
    }
}
impl From<dv_tensor::ShapeError> for ConvError {
    fn from(e: dv_tensor::ShapeError) -> Self {
        ConvError::Shape(e)
    }
}

/// The planned dimensions of a convolution run.
struct Plan {
    c1: usize,
    oh: usize,
    ow: usize,
    m_fr: usize,
    k_fr: usize,
    n_fr: usize,
    mt: usize,  // patch-block fractals per Cube tile
    kt: usize,  // reduction fractals per K chunk
    boh: usize, // output rows per L1 band
    weight_bytes: usize,
}

fn plan(
    input_c: usize,
    ih: usize,
    iw: usize,
    m: usize,
    params: &PoolParams,
    chip: &Chip,
) -> Result<Plan, ConvError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    let c1 = input_c.div_ceil(C0);
    let patches = oh * ow;
    let m_fr = patches.div_ceil(E);
    let k_fr = c1 * params.kh * params.kw;
    let n_fr = m.div_ceil(E);
    let weight_bytes = k_fr * n_fr * FRACTAL_BYTES;
    // Weights stay resident in L1; the input streams through the rest in
    // row bands (like the pooling kernels).
    let band_budget = chip.caps.l1.saturating_sub(weight_bytes);
    let boh = dv_akg::max_row_band(oh, band_budget, |b| {
        c1 * dv_akg::band_input_rows(params, b) * iw * C0 * 2
    })
    .map_err(|e| {
        ConvError::Unsupported(format!(
            "weights ({weight_bytes} B) leave no room in L1 for one input band: {e}"
        ))
    })?;
    if boh < oh && (params.padding.top > 0 || params.padding.bottom > 0) {
        return Err(ConvError::Unsupported(
            "vertical padding requires the image to fit one L1 band".into(),
        ));
    }
    // K is chunked: each chunk's weight slice must fit L0B, its A slice
    // must leave room for at least one patch row in L0A, and one mode-0
    // repeat chain must cover it. Accumulation over chunks happens in
    // L0C (`accumulate = true`).
    let kt = k_fr
        .min(MAX_REPEAT as usize)
        .min(chip.caps.l0b / (n_fr * FRACTAL_BYTES))
        .min(chip.caps.l0a / FRACTAL_BYTES);
    if kt == 0 {
        return Err(ConvError::Unsupported(
            "one reduction fractal does not fit the Cube buffers".into(),
        ));
    }
    // Tile patch blocks so the A tile fits L0A and the C tile fits L0C.
    let mt_a = chip.caps.l0a / (kt * FRACTAL_BYTES);
    let mt_c = chip.caps.l0c / (n_fr * L0C_FRACTAL_BYTES);
    let mt_ub = chip.caps.ub / (n_fr * FRACTAL_BYTES);
    let mt = m_fr.min(mt_a).min(mt_c).min(mt_ub);
    if mt == 0 {
        return Err(ConvError::Unsupported(
            "a single patch-block row does not fit the Cube buffers".into(),
        ));
    }
    Ok(Plan {
        c1,
        oh,
        ow,
        m_fr,
        k_fr,
        n_fr,
        mt,
        kt,
        boh,
        weight_bytes,
    })
}

/// Build the convolution program (single core; convolution here is a
/// substrate demonstration, not a parallel-scaling study).
///
/// GM layout: the NC1HWC0 input at `gm_in`, the FracZ weights at
/// `gm_weights`, and the output written as `n_fr` fractal-padded planes
/// of `m_fr * 512` bytes each at `gm_out`.
#[allow(clippy::too_many_arguments)]
pub fn build_conv2d(
    input_c: usize,
    ih: usize,
    iw: usize,
    m: usize,
    params: &PoolParams,
    gm_in: usize,
    gm_weights: usize,
    gm_out: usize,
    chip: &Chip,
) -> Result<Program, ConvError> {
    let pl = plan(input_c, ih, iw, m, params, chip)?;
    let mut p = Program::new();
    let kk = params.kh * params.kw;

    // Weights stay resident at the bottom of L1; input bands stream in
    // above them.
    dma(&mut p, Addr::gm(gm_weights), Addr::l1(0), pl.weight_bytes)?;
    let l1_in = pl.weight_bytes.next_multiple_of(32);

    // `row_bands` widens a single band to the full input extent (covers
    // vertical padding — the plan enforces single-band for it — and
    // trailing rows) and clamps multi-band extents.
    let bands = dv_akg::row_bands(params, pl.oh, pl.boh, ih)
        .map_err(|e| ConvError::Unsupported(format!("band tiling failed: {e}")))?;
    let full_plane_bytes = ih * iw * C0 * 2;

    for band in &bands {
        let boh = band.oh1 - band.oh0;
        let band_patches = boh * pl.ow;
        let band_m_fr = band_patches.div_ceil(E);
        let band_plane_bytes = band.ih_len * iw * C0 * 2;
        // Stage this band's rows of every c1 plane.
        for c1i in 0..pl.c1 {
            dma(
                &mut p,
                Addr::gm(gm_in + c1i * full_plane_bytes + band.ih0 * iw * C0 * 2),
                Addr::l1(l1_in + c1i * band_plane_bytes),
                band_plane_bytes,
            )?;
        }
        // Band geometry: vertical padding only exists in the single-band
        // case (enforced by `plan`), so stripping it for inner bands is
        // exact.
        let band_params = if band.oh0 == 0 && band.oh1 == pl.oh {
            *params
        } else {
            PoolParams::with_padding(
                (params.kh, params.kw),
                (params.sh, params.sw),
                dv_tensor::Padding {
                    top: 0,
                    bottom: 0,
                    left: params.padding.left,
                    right: params.padding.right,
                },
            )
        };
        let geom = Im2ColGeometry::new(band.ih_len, iw, pl.c1, band_params)?;
        debug_assert_eq!(geom.out_dims(), (boh, pl.ow));

        let mut t = 0usize;
        while t < band_m_fr {
            let mt = pl.mt.min(band_m_fr - t);
            // Reduce over K in chunks, accumulating in L0C's f32 fractals.
            let mut k0 = 0usize;
            while k0 < pl.k_fr {
                let kt = pl.kt.min(pl.k_fr - k0);
                // The weight slice for rows [k0, k0+kt) is contiguous in
                // the FracZ layout; load2d it into L0B.
                p.push(Instr::Move(dv_isa::DataMove::new(
                    Addr::l1(k0 * pl.n_fr * FRACTAL_BYTES),
                    Addr::new(BufferId::L0B, 0),
                    kt * pl.n_fr * FRACTAL_BYTES,
                )))?;
                // One mode-0 Im2Col per patch-block row: its repeats sweep
                // the flat (c1, xk, yk) range [k0, k0+kt), materialising
                // one fractal row of the OutIn chunk in L0A.
                for i in 0..mt {
                    let first_patch = (t + i) * E;
                    debug_assert!(first_patch < band_patches);
                    p.push(Instr::Im2Col(Im2Col {
                        geom,
                        src: Addr::l1(l1_in),
                        dst: Addr::new(BufferId::L0A, i * kt * FRACTAL_BYTES),
                        first_patch,
                        k_off: ((k0 % kk) / params.kw, k0 % params.kw),
                        c1: k0 / kk,
                        repeat: kt as u16,
                        mode: RepeatMode::Mode0,
                    }))?;
                }
                p.push(Instr::Cube(CubeMatmul {
                    a: Addr::new(BufferId::L0A, 0),
                    b: Addr::new(BufferId::L0B, 0),
                    c: Addr::new(BufferId::L0C, 0),
                    m_fractals: mt,
                    k_fractals: kt,
                    n_fractals: pl.n_fr,
                    accumulate: k0 > 0,
                }))?;
                k0 += kt;
            }
            // Drain L0C to the UB (f32 -> f16), regrouping fractals by
            // output channel plane, then flush the valid slice of each
            // plane to GM (the band's last fractal may be partial).
            let valid_bytes = (band_patches.min((t + mt) * E) - t * E) * C0 * 2;
            for j in 0..pl.n_fr {
                for i in 0..mt {
                    p.push(Instr::Move(dv_isa::DataMove::new(
                        Addr::new(BufferId::L0C, (i * pl.n_fr + j) * L0C_FRACTAL_BYTES),
                        Addr::ub(j * pl.mt * FRACTAL_BYTES + i * FRACTAL_BYTES),
                        L0C_FRACTAL_BYTES,
                    )))?;
                }
                dma(
                    &mut p,
                    Addr::ub(j * pl.mt * FRACTAL_BYTES),
                    Addr::gm(
                        gm_out + j * pl.m_fr * FRACTAL_BYTES + (band.oh0 * pl.ow + t * E) * C0 * 2,
                    ),
                    valid_bytes,
                )?;
            }
            t += mt;
        }
    }
    Ok(p)
}

/// Build the backward-data ("dgrad") program: `dX = col2im(dY x W^T)` —
/// the Cube Unit computes the column-space gradient, the drain converts
/// it to f16 in the UB, and **`Col2Im` instructions perform the merge**,
/// the exact use the instruction was designed for (Section II-B).
///
/// GM layout: `gm_dy` holds dY as `m_up_fr` fractal-padded planes of
/// `patch_fr * 512` bytes (patch-major per output channel group);
/// `gm_wt` holds the transposed FracZ weights; `gm_dx` receives the
/// NC1HWC0 input gradient (`c1` planes of `ih * iw * C0` f16).
#[allow(clippy::too_many_arguments)]
pub fn build_conv2d_backward_data(
    input_c: usize,
    ih: usize,
    iw: usize,
    m: usize,
    params: &PoolParams,
    gm_dy: usize,
    gm_wt: usize,
    gm_dx: usize,
    chip: &Chip,
) -> Result<Program, ConvError> {
    let (oh, ow) = params.out_dims(ih, iw)?;
    let c1 = input_c.div_ceil(C0);
    let patches = oh * ow;
    let patch_fr = patches.div_ceil(E);
    let k_fr = c1 * params.kh * params.kw;
    let m_up_fr = m.div_ceil(E);

    // Single-tile lowering: everything must be resident at once.
    let a_fr = patch_fr * m_up_fr;
    let b_fr = m_up_fr * k_fr;
    let c_fr = patch_fr * k_fr;
    let dy_bytes = m_up_fr * patch_fr * FRACTAL_BYTES;
    let wt_bytes = b_fr * FRACTAL_BYTES;
    let mg_bytes = k_fr * patch_fr * FRACTAL_BYTES;
    let dx_bytes = c1 * ih * iw * C0 * 2;
    if a_fr * FRACTAL_BYTES > chip.caps.l0a
        || wt_bytes > chip.caps.l0b
        || c_fr * L0C_FRACTAL_BYTES > chip.caps.l0c
        || dy_bytes + wt_bytes > chip.caps.l1
        || mg_bytes + dx_bytes > chip.caps.ub
    {
        return Err(ConvError::Unsupported(
            "backward-data problem exceeds the single-tile lowering".into(),
        ));
    }

    let mut p = Program::new();
    // Stage dY and W^T in L1.
    dma(&mut p, Addr::gm(gm_dy), Addr::l1(0), dy_bytes)?;
    dma(&mut p, Addr::gm(gm_wt), Addr::l1(dy_bytes), wt_bytes)?;
    // A = dY as (patch_fr x m_up_fr) fractals: fractal (i, j) is bytes
    // [i*512, i*512+512) of dY plane j.
    for i in 0..patch_fr {
        for j in 0..m_up_fr {
            p.push(Instr::Move(dv_isa::DataMove::new(
                Addr::l1(j * patch_fr * FRACTAL_BYTES + i * FRACTAL_BYTES),
                Addr::new(BufferId::L0A, (i * m_up_fr + j) * FRACTAL_BYTES),
                FRACTAL_BYTES,
            )))?;
        }
    }
    // B = W^T, already fractal-ordered.
    p.push(Instr::Move(dv_isa::DataMove::new(
        Addr::l1(dy_bytes),
        Addr::new(BufferId::L0B, 0),
        wt_bytes,
    )))?;
    p.push(Instr::Cube(CubeMatmul {
        a: Addr::new(BufferId::L0A, 0),
        b: Addr::new(BufferId::L0B, 0),
        c: Addr::new(BufferId::L0C, 0),
        m_fractals: patch_fr,
        k_fractals: m_up_fr,
        n_fractals: k_fr,
        accumulate: false,
    }))?;
    // Drain the column-space gradient to the UB, regrouped into
    // (c1, kh, kw) planes of patch-major fractals.
    let ub_mg = Addr::ub(0);
    let ub_dx = Addr::ub(mg_bytes);
    for kk in 0..k_fr {
        for i in 0..patch_fr {
            p.push(Instr::Move(dv_isa::DataMove::new(
                Addr::new(BufferId::L0C, (i * k_fr + kk) * L0C_FRACTAL_BYTES),
                ub_mg.add(kk * patch_fr * FRACTAL_BYTES + i * FRACTAL_BYTES),
                L0C_FRACTAL_BYTES,
            )))?;
        }
    }
    // Col2Im requires a zero-initialised output (Section III-D).
    dv_akg::zero_region(&mut p, ub_dx, c1 * ih * iw * C0)?;
    let geom = Im2ColGeometry::new(ih, iw, c1, *params)?;
    for kk in 0..k_fr {
        let c1_i = kk / (params.kh * params.kw);
        let rem = kk % (params.kh * params.kw);
        let k_off = (rem / params.kw, rem % params.kw);
        let mplane = ub_mg.add(kk * patch_fr * FRACTAL_BYTES);
        let mut f0 = 0usize;
        while f0 < patch_fr {
            let rep = (patch_fr - f0).min(MAX_REPEAT as usize);
            p.push(Instr::Col2Im(dv_isa::Col2Im {
                geom,
                src: mplane.add(f0 * FRACTAL_BYTES),
                dst: ub_dx,
                first_patch: f0 * E,
                k_off,
                c1: c1_i,
                repeat: rep as u16,
            }))?;
            f0 += rep;
        }
    }
    dma(&mut p, ub_dx, Addr::gm(gm_dx), dx_bytes)?;
    Ok(p)
}

/// Host-level convenience: run backward-data on a fresh single-core chip
/// and return the NCHW input gradient plus the chip counters.
pub fn run_conv2d_backward_data(
    gradients: &Nchw,
    kernels: &Nchw,
    params: &PoolParams,
    ih: usize,
    iw: usize,
) -> Result<(Nchw, ChipRun), ConvError> {
    if gradients.n != 1 {
        return Err(ConvError::Unsupported("batch size must be 1".into()));
    }
    if gradients.c != kernels.n {
        return Err(ConvError::Shape(dv_tensor::ShapeError::Mismatch(format!(
            "gradient channels {} != kernel count {}",
            gradients.c, kernels.n
        ))));
    }
    let (oh, ow) = params.out_dims(ih, iw)?;
    if (gradients.h, gradients.w) != (oh, ow) {
        return Err(ConvError::Shape(dv_tensor::ShapeError::Mismatch(format!(
            "gradient plane {:?} != derived {:?}",
            (gradients.h, gradients.w),
            (oh, ow)
        ))));
    }
    let chip = Chip::new(1, CostModel::ascend910_like());
    let c1 = kernels.c.div_ceil(C0);
    let patch_fr = (oh * ow).div_ceil(E);
    let (wt, m_up_fr, _k_fr) = crate::fracz::kernels_to_fracz_t(kernels, params);

    let mut gm = GmArena::new();
    let gm_dy = gm.alloc(m_up_fr * patch_fr * FRACTAL_BYTES);
    let gm_wt = gm.alloc(wt.len() * 2);
    let gm_dx = gm.alloc(c1 * ih * iw * C0 * 2);

    let program = build_conv2d_backward_data(
        kernels.c, ih, iw, kernels.n, params, gm_dy, gm_wt, gm_dx, &chip,
    )?;

    let mut image = vec![0u8; gm.size()];
    // dY planes: channel group j, patch-major, fractal-padded.
    let dy_fractal = gradients.to_nc1hwc0();
    for j in 0..m_up_fr {
        let plane = dy_fractal.slice_plane(0, j);
        let base = gm_dy + j * patch_fr * FRACTAL_BYTES;
        image[base..base + plane.len() * 2].copy_from_slice(dv_fp16::as_bytes(&plane));
    }
    image[gm_wt..gm_wt + wt.len() * 2].copy_from_slice(dv_fp16::as_bytes(&wt));
    let run = chip.run(&mut image, &[program])?;

    let mut dx = Nc1hwc0::zeros(1, c1, ih, iw);
    dx.orig_c = kernels.c;
    let n = c1 * ih * iw * C0;
    let vals: Vec<F16> = (0..n)
        .map(|i| {
            let o = gm_dx + i * 2;
            F16::from_bits(u16::from_le_bytes([image[o], image[o + 1]]))
        })
        .collect();
    dx.data_mut().copy_from_slice(&vals);
    Ok((dx.to_nchw(), run))
}

/// Host-level convenience: run a full convolution on a fresh single-core
/// chip image and return the NCHW result plus the chip counters.
pub fn run_conv2d(
    input: &Nchw,
    kernels: &Nchw,
    params: &PoolParams,
) -> Result<(Nchw, ChipRun), ConvError> {
    if input.n != 1 {
        return Err(ConvError::Unsupported("batch size must be 1".into()));
    }
    if kernels.c != input.c {
        return Err(ConvError::Shape(dv_tensor::ShapeError::Mismatch(format!(
            "kernel channels {} != input channels {}",
            kernels.c, input.c
        ))));
    }
    let chip = Chip::new(1, CostModel::ascend910_like());
    let fractal_in = input.to_nc1hwc0();
    let (weights, k_fr, n_fr) = kernels_to_fracz(kernels, params);
    let (oh, ow) = params.out_dims(input.h, input.w)?;
    let m_fr = (oh * ow).div_ceil(E);

    let mut gm = GmArena::new();
    let gm_in = gm.alloc(fractal_in.byte_len());
    let gm_weights = gm.alloc(weights.len() * 2);
    let gm_out = gm.alloc(n_fr * m_fr * FRACTAL_BYTES);

    let program = build_conv2d(
        input.c, input.h, input.w, kernels.n, params, gm_in, gm_weights, gm_out, &chip,
    )?;
    let _ = k_fr;

    let mut image = vec![0u8; gm.size()];
    image[gm_in..gm_in + fractal_in.byte_len()]
        .copy_from_slice(dv_fp16::as_bytes(fractal_in.data()));
    image[gm_weights..gm_weights + weights.len() * 2].copy_from_slice(dv_fp16::as_bytes(&weights));
    let run = chip.run(&mut image, &[program])?;

    // Deserialize: plane j holds patches-major (oh, ow) x 16 output
    // channels.
    let mut out = Nc1hwc0::zeros(1, n_fr, oh, ow);
    out.orig_c = kernels.n;
    for j in 0..n_fr {
        for patch in 0..oh * ow {
            for c0 in 0..C0 {
                let off = gm_out + j * m_fr * FRACTAL_BYTES + (patch * C0 + c0) * 2;
                let v = F16::from_bits(u16::from_le_bytes([image[off], image[off + 1]]));
                out.set(0, j, patch / ow, patch % ow, c0, v);
            }
        }
    }
    Ok((out.to_nchw(), run))
}
