#![deny(missing_docs)]
//! Convolution on the DaVinci Cube Unit via `Im2Col` loads — the workload
//! the Im2Col/Col2Im instructions were *designed* for (paper, Sections
//! II-A and III). Built as the substrate sanity-check for the
//! reproduction: if the simulated SCU + Cube pipeline computes real
//! convolutions correctly, the pooling results on the same instructions
//! stand on solid ground.
//!
//! # Pipeline (Fig. 1 on the simulated datapaths of Fig. 4)
//!
//! 1. the NC1HWC0 input tile moves GM -> L1 (path 1->2);
//! 2. `Im2Col` in repeat **mode 0** loads it into L0A (path 2->4): one
//!    issue per 16-patch block, its repeats sweeping `(c1, xk, yk)` so
//!    the fractal row of the `OutIn` matrix materialises in exactly the
//!    `(C1, Kh, Kw, C0)` reduction order;
//! 3. the weights — pre-laid out in the fractal "FracZ" format by
//!    [`kernels_to_fracz`], as AI frameworks do offline — move GM -> L1
//!    -> L0B (paths 1->2, 2->5);
//! 4. the Cube Unit multiplies fractal pairs into f32 accumulators in
//!    L0C;
//! 5. L0C drains to the UB (converting to f16) and the result tiles move
//!    back to GM in NC1HWC0 with `M` output channels.

pub mod fracz;
pub mod fuse;
pub mod lower;

pub use fracz::{kernels_to_fracz, kernels_to_fracz_t};
pub use fuse::fuse_conv_avgpool;
pub use lower::{
    build_conv2d, build_conv2d_backward_data, run_conv2d, run_conv2d_backward_data, ConvError,
};
