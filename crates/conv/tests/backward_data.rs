//! The simulated backward-data pipeline (Cube matmul + **Col2Im merge**)
//! must match the reference `col2im(dY x W^T)` bit-exactly.

use dv_conv::run_conv2d_backward_data;
use dv_fp16::F16;
use dv_tensor::reference::conv2d_backward_data;
use dv_tensor::{Nchw, PoolParams};

fn det_grads(m: usize, oh: usize, ow: usize, seed: usize) -> Nchw {
    Nchw::from_fn(1, m, oh, ow, |_, mi, h, w| {
        F16::from_f32(((seed * 17 + mi * 13 + h * 7 + w * 3) % 11) as f32 * 0.5 - 2.5)
    })
}

fn det_kernels(m: usize, c: usize, kh: usize, kw: usize, seed: usize) -> Nchw {
    Nchw::from_fn(m, c, kh, kw, |mi, ci, hi, wi| {
        F16::from_f32(((seed * 29 + mi * 19 + ci * 11 + hi * 5 + wi) % 7) as f32 * 0.25 - 0.75)
    })
}

fn check(
    m: usize,
    c: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    ih: usize,
    iw: usize,
    what: &str,
) {
    let params = PoolParams::new(kernel, stride);
    let (oh, ow) = params.out_dims(ih, iw).unwrap();
    let grads = det_grads(m, oh, ow, 1);
    let kernels = det_kernels(m, c, kernel.0, kernel.1, 2);
    let want = conv2d_backward_data(&grads, &kernels, &params, ih, iw).unwrap();
    let (got, run) = run_conv2d_backward_data(&grads, &kernels, &params, ih, iw).unwrap();
    assert_eq!(
        (got.c, got.h, got.w),
        (want.c, want.h, want.w),
        "{what}: shape"
    );
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}");
    }
    assert!(run.total.issues_of("col2im") > 0, "{what}: used Col2Im");
    assert!(
        run.total.issues_of("cube_mmad") > 0,
        "{what}: used the Cube"
    );
}

#[test]
fn dgrad_3x3_stride1_overlapping() {
    check(16, 16, (3, 3), (1, 1), 10, 10, "3x3 s1");
}

#[test]
fn dgrad_3x3_stride2() {
    check(8, 32, (3, 3), (2, 2), 11, 11, "3x3 s2");
}

#[test]
fn dgrad_1x1_pointwise() {
    check(24, 16, (1, 1), (1, 1), 8, 8, "1x1");
}

#[test]
fn dgrad_2x2_nonoverlapping_leaves_gaps_zero() {
    let params = PoolParams::new((2, 2), (3, 3));
    let (ih, iw) = (8, 8);
    let (oh, ow) = params.out_dims(ih, iw).unwrap();
    let grads = det_grads(16, oh, ow, 3);
    let kernels = det_kernels(16, 16, 2, 2, 4);
    let (got, _) = run_conv2d_backward_data(&grads, &kernels, &params, ih, iw).unwrap();
    let mult = dv_tensor::coverage_multiplicity(&params, ih, iw);
    for h in 0..ih {
        for w in 0..iw {
            if mult[h * iw + w] == 0 {
                for c in 0..16 {
                    assert_eq!(
                        got.get(0, c, h, w),
                        F16::ZERO,
                        "uncovered pixel ({h},{w}) channel {c}"
                    );
                }
            }
        }
    }
}

#[test]
fn dgrad_rejects_bad_shapes() {
    let params = PoolParams::new((3, 3), (1, 1));
    let kernels = det_kernels(8, 16, 3, 3, 5);
    // wrong gradient channels
    let bad = det_grads(4, 8, 8, 6);
    assert!(run_conv2d_backward_data(&bad, &kernels, &params, 10, 10).is_err());
    // wrong gradient plane
    let bad = det_grads(8, 5, 5, 7);
    assert!(run_conv2d_backward_data(&bad, &kernels, &params, 10, 10).is_err());
}
