//! The simulated Im2Col + Cube-Unit convolution pipeline must match the
//! direct (nested-loop) reference convolution bit-exactly — both
//! accumulate f16 products in f32 and round once.

use dv_conv::run_conv2d;
use dv_fp16::F16;
use dv_tensor::reference::conv2d_direct;
use dv_tensor::{Nchw, Padding, PoolParams};

fn det_input(c: usize, h: usize, w: usize, seed: usize) -> Nchw {
    Nchw::from_fn(1, c, h, w, |_, ci, hi, wi| {
        let v = ((seed * 31 + ci * 17 + hi * 13 + wi * 7) % 15) as f32 - 7.0;
        F16::from_f32(v * 0.5)
    })
}

fn det_kernels(m: usize, c: usize, kh: usize, kw: usize, seed: usize) -> Nchw {
    Nchw::from_fn(m, c, kh, kw, |mi, ci, hi, wi| {
        let v = ((seed * 23 + mi * 19 + ci * 11 + hi * 5 + wi * 3) % 9) as f32 - 4.0;
        F16::from_f32(v * 0.25)
    })
}

fn check(input: &Nchw, kernels: &Nchw, params: &PoolParams, what: &str) {
    let want = conv2d_direct(input, kernels, params).unwrap();
    let (got, run) = run_conv2d(input, kernels, params).unwrap();
    assert_eq!(
        (got.n, got.c, got.h, got.w),
        (want.n, want.c, want.h, want.w),
        "{what}: shape"
    );
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}");
    }
    assert!(
        run.total.issues_of("cube_mmad") > 0,
        "{what}: used the Cube"
    );
    assert!(run.total.issues_of("im2col") > 0, "{what}: used Im2Col");
}

#[test]
fn conv_3x3_stride1_single_channel_group() {
    let input = det_input(16, 10, 10, 1);
    let kernels = det_kernels(16, 16, 3, 3, 2);
    check(&input, &kernels, &PoolParams::new((3, 3), (1, 1)), "3x3 s1");
}

#[test]
fn conv_3x3_stride2_multi_c1() {
    let input = det_input(40, 12, 12, 3);
    let kernels = det_kernels(8, 40, 3, 3, 4);
    check(
        &input,
        &kernels,
        &PoolParams::new((3, 3), (2, 2)),
        "3x3 s2 c40",
    );
}

#[test]
fn conv_1x1_pointwise() {
    let input = det_input(32, 9, 9, 5);
    let kernels = det_kernels(24, 32, 1, 1, 6);
    check(&input, &kernels, &PoolParams::new((1, 1), (1, 1)), "1x1");
}

#[test]
fn conv_with_padding() {
    let input = det_input(16, 8, 8, 7);
    let kernels = det_kernels(16, 16, 3, 3, 8);
    let params = PoolParams::with_padding((3, 3), (1, 1), Padding::uniform(1));
    check(&input, &kernels, &params, "3x3 same-pad");
}

#[test]
fn conv_asymmetric_kernel() {
    let input = det_input(16, 9, 11, 9);
    let kernels = det_kernels(4, 16, 2, 3, 10);
    check(
        &input,
        &kernels,
        &PoolParams::new((2, 3), (2, 1)),
        "2x3 kernel",
    );
}

#[test]
fn conv_many_output_channels_tile_n() {
    // 40 output channels -> 3 N-fractals; patches force multiple M tiles
    // through small L0A... at default capacities one tile suffices, so
    // this exercises the n_fr > 1 drain path.
    let input = det_input(16, 14, 14, 11);
    let kernels = det_kernels(40, 16, 3, 3, 12);
    check(&input, &kernels, &PoolParams::new((3, 3), (2, 2)), "m=40");
}

#[test]
fn conv_large_reduction_k_tiling() {
    // 128 input channels, 3x3 kernel, 32 output kernels: K = 72 fractals
    // with n_fr = 2 exceeds the 64-fractal L0B chunk bound, forcing the
    // accumulate-over-K-chunks path.
    let input = det_input(128, 10, 10, 21);
    let kernels = det_kernels(32, 128, 3, 3, 22);
    check(
        &input,
        &kernels,
        &PoolParams::new((3, 3), (1, 1)),
        "k-tiled",
    );
}

#[test]
fn conv_large_image_l1_banding() {
    // 64 channels at 76x76: the input alone is 64*76*76*2 = 739 KB of
    // NC1HWC0 data — more than fits alongside the weights in the 1 MiB
    // L1... with c1 = 4 planes it is 4*76*76*32 B = 739 KB; adding the
    // weights still fits, so push to 112x112 (2.4 MB > L1) to force the
    // band path.
    let input = det_input(64, 112, 112, 31);
    let kernels = det_kernels(8, 64, 3, 3, 32);
    check(
        &input,
        &kernels,
        &PoolParams::new((3, 3), (2, 2)),
        "112x112 banded",
    );
}

#[test]
fn conv_large_image_stride1_banded() {
    // stride 1 bands overlap by Kh - 1 input rows
    let input = det_input(32, 96, 40, 33);
    let kernels = det_kernels(16, 32, 3, 3, 34);
    check(
        &input,
        &kernels,
        &PoolParams::new((3, 3), (1, 1)),
        "96x40 banded s1",
    );
}

#[test]
fn conv_very_deep_channels() {
    // 288 channels (InceptionV3's third pooling depth): K = 162 fractals.
    let input = det_input(288, 8, 8, 23);
    let kernels = det_kernels(16, 288, 3, 3, 24);
    check(&input, &kernels, &PoolParams::new((3, 3), (2, 2)), "288ch");
}

#[test]
fn conv_rejects_channel_mismatch() {
    let input = det_input(16, 8, 8, 13);
    let kernels = det_kernels(4, 32, 3, 3, 14);
    assert!(run_conv2d(&input, &kernels, &PoolParams::new((3, 3), (1, 1))).is_err());
}

#[test]
fn conv_rejects_batch() {
    let input = Nchw::zeros(2, 16, 8, 8);
    let kernels = det_kernels(4, 16, 3, 3, 15);
    assert!(run_conv2d(&input, &kernels, &PoolParams::new((3, 3), (1, 1))).is_err());
}
