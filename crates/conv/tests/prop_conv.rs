//! Property tests: the Cube-Unit convolution pipeline vs the direct
//! reference over random geometries, and fusion-law checks.

use dv_conv::{fuse_conv_avgpool, run_conv2d, run_conv2d_backward_data};
use dv_fp16::F16;
use dv_tensor::{reference, Nchw, PoolParams};
use proptest::prelude::*;

fn tensor(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Nchw {
    let mut s = seed | 1;
    Nchw::from_fn(n, c, h, w, |_, _, _, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
        F16::from_f32(((s >> 38) % 17) as f32 * 0.25 - 2.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward convolution matches the direct reference bit-exactly for
    /// random channel counts, kernels and strides.
    #[test]
    fn conv_forward_matches_reference(
        c_groups in 1usize..=3, m in 1usize..=24,
        k in 1usize..=3, stride in 1usize..=2,
        hw in 6usize..=14, seed in any::<u64>(),
    ) {
        let c = c_groups * 16;
        let params = PoolParams::new((k, k), (stride, stride));
        prop_assume!(params.out_dims(hw, hw).is_ok());
        let input = tensor(1, c, hw, hw, seed);
        let kernels = tensor(m, c, k, k, seed ^ 0xAAAA);
        let want = reference::conv2d_direct(&input, &kernels, &params).unwrap();
        let (got, run) = run_conv2d(&input, &kernels, &params).unwrap();
        prop_assert_eq!(got.data(), want.data());
        prop_assert!(run.total.issues_of("cube_mmad") > 0);
    }

    /// Backward-data matches the composition reference bit-exactly.
    #[test]
    fn conv_dgrad_matches_reference(
        c_groups in 1usize..=2, m in 1usize..=20,
        k in 1usize..=3, stride in 1usize..=2,
        hw in 6usize..=12, seed in any::<u64>(),
    ) {
        let c = c_groups * 16;
        let params = PoolParams::new((k, k), (stride, stride));
        prop_assume!(params.out_dims(hw, hw).is_ok());
        let (oh, ow) = params.out_dims(hw, hw).unwrap();
        let grads = tensor(1, m, oh, ow, seed);
        let kernels = tensor(m, c, k, k, seed ^ 0xBBBB);
        let want = reference::conv2d_backward_data(&grads, &kernels, &params, hw, hw).unwrap();
        let (got, run) = run_conv2d_backward_data(&grads, &kernels, &params, hw, hw).unwrap();
        prop_assert_eq!(got.data(), want.data());
        prop_assert!(run.total.issues_of("col2im") > 0);
    }

    /// The fusion law holds within a small ulp bound for random weights
    /// and inputs: conv(s=1) then AvgPool(P/P) == fused conv(s=P).
    #[test]
    fn fusion_law(k in 1usize..=3, p in 1usize..=3, hw in 8usize..=14, seed in any::<u64>()) {
        let (c, m) = (16usize, 8usize);
        let conv_params = PoolParams::new((k, k), (1, 1));
        let input = tensor(1, c, hw, hw, seed);
        let weights = tensor(m, c, k, k, seed ^ 0xCCCC);
        let (oh, ow) = conv_params.out_dims(hw, hw).unwrap();
        prop_assume!(oh >= p && ow >= p);

        let (fused_w, fused_p) = fuse_conv_avgpool(&weights, &conv_params, p).unwrap();
        prop_assume!(fused_p.out_dims(hw, hw).is_ok());
        let fused = reference::conv2d_direct(&input, &fused_w, &fused_p).unwrap();

        let conv_out = reference::conv2d_direct(&input, &weights, &conv_params).unwrap();
        let pool_params = PoolParams::new((p, p), (p, p));
        let mut pooled =
            reference::avgpool_forward(&conv_out.to_nc1hwc0(), &pool_params).unwrap();
        pooled.orig_c = m;
        let pooled = pooled.to_nchw();

        prop_assert_eq!((fused.h, fused.w), (pooled.h, pooled.w));
        // The composed path rounds each conv output to f16 and sums p*p of
        // them sequentially in f16; the fused path accumulates everything
        // in f32 and rounds once. Near-zero sums therefore differ by up
        // to the f16 rounding of the *summands*, not of the result — an
        // absolute tolerance scaled by the summand magnitude.
        let max_summand = conv_out
            .data()
            .iter()
            .map(|v| v.to_f32().abs())
            .fold(0.0f32, f32::max);
        let eps = (p * p + 2) as f32 * max_summand * 2.0f32.powi(-10) / (p * p) as f32
            + 1e-4;
        for (a, b) in fused.data().iter().zip(pooled.data()) {
            let (x, y) = (a.to_f32(), b.to_f32());
            prop_assert!((x - y).abs() <= eps + 0.01 * y.abs(),
                "fused {a:?} vs composed {b:?} (eps {eps})");
        }
    }
}
