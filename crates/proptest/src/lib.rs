//! Vendored offline subset of the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the property-testing API its test suites use is reimplemented here:
//! deterministic pseudo-random generation (seeded from the test name, so
//! failures reproduce run-to-run), the [`Strategy`] combinators the tests
//! call (`prop_map`, `prop_filter`, `prop_flat_map`, tuples, ranges,
//! [`Just`], `prop_oneof!`, `collection::vec`), and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. There is **no shrinking**: a
//! failing case reports its values (via the assertion message) and the
//! case index.

// The shim mirrors the upstream crate's API surface; keep signatures as
// the real crate spells them rather than contorting them for lints.
#![allow(clippy::type_complexity)]

use std::cell::RefCell;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::rc::Rc;

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (the test's name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng(h.finish() | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive). `lo <= hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform value in `[lo, hi]` for signed bounds.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % (span.wrapping_add(1)).max(1)) as i64)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
    /// Upper bound on total draws before giving up on `prop_assume!` /
    /// `prop_filter` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// A generator of test values. Unlike upstream proptest there is no value
/// tree and no shrinking: `generate` draws a concrete value directly, or
/// `None` when a `prop_filter` (or empty size range) rejects the draw.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value. `None` means "rejected, draw again".
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Reject values failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: impl AsRef<str>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Transform values, rejecting those mapped to `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: impl AsRef<str>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Chain a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// A type-erased, reference-counted strategy (the `prop_oneof!` element
/// type).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> Option<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        (self.0)(rng)
    }
}

/// Strategy producing exactly one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice between boxed alternatives — built by `prop_oneof!`.
pub struct OneOf<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    /// Build from weighted alternatives. Panics if empty.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        OneOf {
            options,
            total_weight,
        }
    }

    /// Build from equally likely alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        OneOf::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let mut pick = rng.range_u64(0, self.total_weight - 1);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// `any::<T>()` — the canonical whole-domain strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty => $draw:ident),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(rng.$draw(self.start as _, (self.end - 1) as _) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start() <= self.end(), "empty range strategy");
                Some(rng.$draw(*self.start() as _, *self.end() as _) as $t)
            }
        }
    )*};
}
range_strategy!(u8 => range_u64, u16 => range_u64, u32 => range_u64,
                u64 => range_u64, usize => range_u64,
                i8 => range_i64, i16 => range_i64, i32 => range_i64,
                i64 => range_i64, isize => range_i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + rng.unit_f64() as $t * (self.end - self.start))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.start() + rng.unit_f64() as $t * (self.end() - self.start()))
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive element-count range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Value-selection strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list of values — built by
    /// [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `select(values)`: draw one of the given values uniformly. Panics
    /// on an empty list, mirroring upstream.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(
            !options.is_empty(),
            "sample::select needs at least one value"
        );
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.range_u64(0, self.options.len() as u64 - 1) as usize;
            Some(self.options[i].clone())
        }
    }
}

thread_local! {
    /// Values drawn for the case currently executing, rendered with
    /// `Debug` by the harness so failures are diagnosable without
    /// shrinking.
    static CURRENT_CASE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Harness plumbing used by the `proptest!` macro — not public API.
pub mod harness {
    use super::*;

    /// Record the `Debug` rendering of the current case's inputs.
    pub fn set_current_case(desc: String) {
        CURRENT_CASE.with(|c| *c.borrow_mut() = desc);
    }

    /// Run `cases` accepted cases of `body` over `strategy`.
    pub fn run<S: Strategy>(
        name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let mut rng = TestRng::from_name(name);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            let Some(value) = strategy.generate(&mut rng) else {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "proptest '{name}': too many prop_filter rejections \
                     ({rejected}) before reaching {} cases",
                    config.cases
                );
                continue;
            };
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected < config.max_global_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}): {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    let inputs = CURRENT_CASE.with(|c| c.borrow().clone());
                    panic!(
                        "proptest '{name}' failed at case {accepted}\n\
                         inputs: {inputs}\n{msg}"
                    );
                }
            }
        }
    }
}

/// The property-test entry macro: generates one `#[test]` fn per body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )* ) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::harness::run(stringify!($name), &config, &strategy, |values| {
                $crate::harness::set_current_case(format!("{values:?}"));
                let ($($pat,)+) = values;
                $body
                Ok(())
            });
        }
    )* };
}

/// Weighted/uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Discard the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn select_draws_only_listed_values() {
        let mut rng = crate::TestRng::from_name("select");
        let s = crate::sample::select(vec![2usize, 3, 5]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng).unwrap();
            let i = [2, 3, 5].iter().position(|&x| x == v).expect("listed");
            seen[i] = true;
        }
        assert_eq!(seen, [true; 3], "all options eventually drawn");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng).unwrap();
            assert!((3..10).contains(&v));
            let w = (5i64..=5).generate(&mut rng).unwrap();
            assert_eq!(w, 5);
            let f = (-2.0f32..2.0).generate(&mut rng).unwrap();
            assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_round_trip((a, b) in (0u32..100, 0u32..100), flip in any::<bool>()) {
            prop_assume!(a != 99);
            let sum = a + b;
            prop_assert!(sum >= a, "sum {} under a {}", sum, a);
            prop_assert_eq!(sum - b, a);
            if flip {
                prop_assert_ne!(sum + 1, a + b);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
