//! The job front-end is a *transport*, not a semantic layer: every
//! result it hands back must be bit-identical to calling the engine
//! directly with the same spec, regardless of which worker, in which
//! order, under which backend the job ran.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine};
use dv_fp16::F16;
use dv_serve::{run_job, JobOp, JobSpec, ServeError, Server};
use dv_sim::{Backend, Chip, CostModel};
use dv_tensor::{Nc1hwc0, PoolParams};

fn input(n: usize, c1: usize, h: usize, w: usize, seed: u32) -> Nc1hwc0 {
    let mut state = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
    Nc1hwc0::from_fn(n, c1, h, w, |_, _, _, _, _| {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        F16::from_f32(((state >> 16) % 128) as f32 * 0.25 - 16.0)
    })
}

fn engine(cores: usize, backend: Backend) -> PoolingEngine {
    PoolingEngine::new(Chip::new(cores, CostModel::ascend910_like()).with_backend(backend))
}

#[test]
fn queued_jobs_match_direct_engine_runs_on_every_backend() {
    let server = Server::new(3);
    let x = input(1, 2, 14, 14, 11);
    let handles: Vec<_> = Backend::ALL
        .iter()
        .map(|&b| {
            let spec = JobSpec::new(
                x.clone(),
                PoolParams::K3S2,
                JobOp::MaxForward(ForwardImpl::Im2col),
            )
            .with_backend(b)
            .with_cores(2);
            (b, server.submit(spec))
        })
        .collect();
    let (reference, ref_run) = engine(2, Backend::Scalar)
        .maxpool_forward(&x, PoolParams::K3S2, ForwardImpl::Im2col)
        .unwrap();
    for (b, h) in handles {
        let r = h.wait().unwrap_or_else(|e| panic!("{b} job failed: {e}"));
        assert_eq!(r.output.data(), reference.data(), "{b}: output diverged");
        assert_eq!(r.per_core, ref_run.per_core, "{b}: counters diverged");
        assert_eq!(r.total, ref_run.total, "{b}: totals diverged");
        assert_eq!(r.cycles, ref_run.cycles, "{b}: cycles diverged");
        assert!(r.traces.is_empty(), "{b}: untraced job returned traces");
        assert!(r.mask.is_none());
    }
}

#[test]
fn forward_argmax_then_backward_round_trips_through_the_queue() {
    let server = Server::new(2);
    let x = input(1, 1, 12, 12, 23);
    let fwd = server
        .submit(
            JobSpec::new(
                x.clone(),
                PoolParams::K3S2,
                JobOp::MaxForwardArgmax(ForwardImpl::Im2col),
            )
            .with_trace(true),
        )
        .wait()
        .expect("forward job");
    assert!(!fwd.traces.is_empty(), "traced job returned no traces");
    let mask = fwd.mask.expect("argmax job returns the mask");
    let gradients = input(1, 1, fwd.output.h, fwd.output.w, 31);

    let bwd = server
        .submit(JobSpec::new(
            x.clone(),
            PoolParams::K3S2,
            JobOp::MaxBackward {
                merge: MergeImpl::Col2Im,
                mask: mask.clone(),
                gradients: gradients.clone(),
            },
        ))
        .wait()
        .expect("backward job");

    let (dx, run) = engine(2, Backend::default())
        .maxpool_backward(
            &mask,
            &gradients,
            PoolParams::K3S2,
            x.h,
            x.w,
            MergeImpl::Col2Im,
        )
        .unwrap();
    assert_eq!(bwd.output.data(), dx.data());
    assert_eq!(bwd.total, run.total);
    assert_eq!(bwd.cycles, run.cycles);
}

#[test]
fn many_jobs_complete_out_of_order_with_correct_ids() {
    let server = Server::new(4);
    // Mixed sizes so completion order scrambles relative to submit order.
    let specs: Vec<JobSpec> = (0..8)
        .map(|i| {
            let h = 6 + 4 * (i % 3);
            JobSpec::new(
                input(1, 1, h, h, 41 + i as u32),
                PoolParams::K2S2,
                JobOp::AvgForward(ForwardImpl::Im2col),
            )
            .with_cores(1 + i % 2)
        })
        .collect();
    let handles: Vec<_> = specs.iter().map(|s| server.submit(s.clone())).collect();
    let ids: Vec<u64> = handles.iter().map(|h| h.id()).collect();
    assert_eq!(ids.len(), 8);
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "ids must be unique and ordered"
    );
    for (handle, spec) in handles.into_iter().zip(&specs) {
        let expected_id = handle.id();
        let r = handle.wait().expect("job");
        assert_eq!(r.job_id, expected_id);
        let direct = run_job(expected_id, spec).expect("direct run");
        assert_eq!(r.output.data(), direct.output.data());
        assert_eq!(r.total, direct.total);
        assert_eq!(r.cycles, direct.cycles);
    }
}

#[test]
fn engine_errors_travel_back_through_the_handle() {
    let server = Server::new(1);
    // Kernel larger than the input: lowering must reject it, and the
    // rejection must surface through the handle rather than killing the
    // worker.
    let bad = JobSpec::new(
        input(1, 1, 2, 2, 7),
        PoolParams::K3S2,
        JobOp::MaxForward(ForwardImpl::Im2col),
    );
    match server.submit(bad).wait() {
        Err(ServeError::Run(_)) => {}
        other => panic!("expected a run error, got {other:?}"),
    }
    // The worker survived the failed job and still serves new ones.
    let ok = JobSpec::new(
        input(1, 1, 8, 8, 7),
        PoolParams::K3S2,
        JobOp::MaxForward(ForwardImpl::Standard),
    );
    assert!(server.submit(ok).wait().is_ok());
}

#[test]
fn shutdown_drains_queued_jobs() {
    let server = Server::new(1);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            server.submit(JobSpec::new(
                input(1, 1, 10, 10, 50 + i),
                PoolParams::K3S2,
                JobOp::MaxForward(ForwardImpl::Im2col),
            ))
        })
        .collect();
    server.shutdown();
    for h in handles {
        assert!(h.wait().is_ok(), "queued job dropped during shutdown");
    }
}

#[test]
fn poll_is_nonblocking_and_resolves_once() {
    let server = Server::new(1);
    let h = server.submit(JobSpec::new(
        input(1, 1, 20, 20, 61),
        PoolParams::K3S2,
        JobOp::MaxForward(ForwardImpl::Im2col),
    ));
    // Spin until the result lands; each poll returns immediately.
    let result = loop {
        if let Some(r) = h.poll() {
            break r;
        }
        std::thread::yield_now();
    };
    assert!(result.is_ok());
}
