#![deny(missing_docs)]
//! A thin asynchronous job front-end over [`dv_core::PoolingEngine`].
//!
//! The simulator itself is a synchronous library: build an engine, call
//! `maxpool_forward`, get a tensor and counters back. This crate wraps
//! that in a std-only worker pool so a host process can *queue* pooling
//! jobs — each with its own shape, algorithm, core count, and execution
//! [`Backend`] — and collect results as they complete:
//!
//! ```
//! use dv_serve::{JobOp, JobSpec, Server};
//! use dv_core::ForwardImpl;
//! use dv_tensor::{Nc1hwc0, PoolParams};
//! use dv_fp16::F16;
//!
//! let input = Nc1hwc0::from_fn(1, 1, 8, 8, |_, _, h, w, c0| {
//!     F16::from_f32((h * 8 + w + c0) as f32)
//! });
//! let server = Server::new(2);
//! let handle = server.submit(JobSpec::new(
//!     input,
//!     PoolParams::K3S2,
//!     JobOp::MaxForward(ForwardImpl::Im2col),
//! ));
//! let result = handle.wait().unwrap();
//! assert_eq!(result.output.h, 3);
//! assert!(result.total.total_issues() > 0);
//! ```
//!
//! Two layers of parallelism compose here: the pool runs *queued jobs*
//! concurrently on separate worker threads, and each job's chip runs its
//! *cores* in parallel whenever the job selects [`Backend::Threaded`]
//! (the default). Because every backend is bit-identical, a job's
//! results do not depend on which backend or how many workers ran it —
//! only the wall-clock time does.
//!
//! The pool is deliberately plain `std`: a [`Mutex`]-guarded
//! [`VecDeque`] fed through a [`Condvar`], with one [`mpsc`] channel per
//! job carrying the result back to its [`JobHandle`]. No executor, no
//! futures — `wait` blocks, `poll` doesn't.

use dv_core::{ForwardImpl, MergeImpl, PoolingEngine, RunError};
use dv_sim::{Backend, Chip, HwCounters, Trace, TraceConfig};
use dv_tensor::{Nc1hwc0, PatchTensor, PoolParams};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Which pooling operator a job runs.
#[derive(Clone, Debug)]
pub enum JobOp {
    /// MaxPool forward with the given lowering.
    MaxForward(ForwardImpl),
    /// MaxPool forward that also returns the argmax mask (the input a
    /// later [`JobOp::MaxBackward`] needs).
    MaxForwardArgmax(ForwardImpl),
    /// AvgPool forward with the given lowering.
    AvgForward(ForwardImpl),
    /// MaxPool backward: scatter `gradients` through `mask` back to the
    /// input shape (the job's `input` supplies that shape; its values
    /// are not read).
    MaxBackward {
        /// Merge lowering (scattered `vadd` vs `Col2Im`).
        merge: MergeImpl,
        /// Argmax mask from the matching forward pass.
        mask: PatchTensor,
        /// Upstream gradients, one per pooled output element.
        gradients: Nc1hwc0,
    },
    /// AvgPool backward: spread `gradients` uniformly over each window.
    AvgBackward {
        /// Merge lowering (scattered `vadd` vs `Col2Im`).
        merge: MergeImpl,
        /// Upstream gradients, one per pooled output element.
        gradients: Nc1hwc0,
    },
}

/// A complete description of one queued job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Input tensor (for backward ops only its shape is used).
    pub input: Nc1hwc0,
    /// Pooling window geometry.
    pub params: PoolParams,
    /// Operator and lowering.
    pub op: JobOp,
    /// Simulated cores on the job's chip.
    pub cores: usize,
    /// Host execution backend for the job's chip.
    pub backend: Backend,
    /// Record per-instruction traces (costs host time and memory).
    pub trace: bool,
}

impl JobSpec {
    /// A job with the default chip shape: 2 cores, the default
    /// (threaded) backend, no tracing.
    pub fn new(input: Nc1hwc0, params: PoolParams, op: JobOp) -> JobSpec {
        JobSpec {
            input,
            params,
            op,
            cores: 2,
            backend: Backend::default(),
            trace: false,
        }
    }

    /// Builder: set the simulated core count.
    pub fn with_cores(mut self, cores: usize) -> JobSpec {
        self.cores = cores;
        self
    }

    /// Builder: set the host execution backend.
    pub fn with_backend(mut self, backend: Backend) -> JobSpec {
        self.backend = backend;
        self
    }

    /// Builder: enable per-instruction tracing.
    pub fn with_trace(mut self, trace: bool) -> JobSpec {
        self.trace = trace;
        self
    }
}

/// What a finished job hands back.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The server-assigned job id (matches [`JobHandle::id`]).
    pub job_id: u64,
    /// The operator's output tensor (pooled map, or the scattered
    /// gradient for backward ops).
    pub output: Nc1hwc0,
    /// The argmax mask ([`JobOp::MaxForwardArgmax`] only).
    pub mask: Option<PatchTensor>,
    /// Hardware counters per simulated core.
    pub per_core: Vec<HwCounters>,
    /// Summed counters across cores.
    pub total: HwCounters,
    /// Chip-level simulated cycles (max over cores).
    pub cycles: u64,
    /// Per-core instruction traces (empty unless the spec set `trace`).
    pub traces: Vec<Trace>,
}

/// Why a job produced no result.
#[derive(Debug)]
pub enum ServeError {
    /// The engine rejected or failed the job.
    Run(RunError),
    /// The server shut down (or its worker died) before the job ran.
    Cancelled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "job failed: {e}"),
            ServeError::Cancelled => write!(f, "job cancelled before completion"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A claim on one submitted job's eventual result.
pub struct JobHandle {
    id: u64,
    rx: mpsc::Receiver<Result<JobResult, RunError>>,
}

impl JobHandle {
    /// The server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job completes.
    pub fn wait(self) -> Result<JobResult, ServeError> {
        match self.rx.recv() {
            Ok(r) => r.map_err(ServeError::Run),
            Err(_) => Err(ServeError::Cancelled),
        }
    }

    /// Non-blocking check: `None` while the job is still queued or
    /// running, `Some` exactly once when it finishes.
    pub fn poll(&self) -> Option<Result<JobResult, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r.map_err(ServeError::Run)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Cancelled)),
        }
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    tx: mpsc::Sender<Result<JobResult, RunError>>,
}

struct State {
    queue: VecDeque<Job>,
    open: bool,
    next_id: u64,
}

struct Inner {
    state: Mutex<State>,
    cond: Condvar,
}

/// A fixed pool of worker threads draining a shared job queue.
///
/// Dropping the server closes the queue and joins the workers; jobs
/// already queued are still drained first (graceful shutdown), so every
/// issued [`JobHandle`] resolves — with a result or with
/// [`ServeError::Cancelled`] only if a worker panicked.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Server {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                next_id: 0,
            }),
            cond: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server {
            inner,
            workers: handles,
        }
    }

    /// Queue a job; returns immediately with a handle to its result.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let (tx, rx) = mpsc::channel();
        let mut state = self.inner.state.lock().expect("serve queue poisoned");
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back(Job { id, spec, tx });
        drop(state);
        self.inner.cond.notify_one();
        JobHandle { id, rx }
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("serve queue poisoned")
            .queue
            .len()
    }

    /// Close the queue and join the workers after they drain it.
    /// Equivalent to dropping the server, but explicit at call sites.
    pub fn shutdown(self) {}
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("serve queue poisoned");
            state.open = false;
        }
        self.inner.cond.notify_all();
        for h in self.workers.drain(..) {
            // A worker that panicked already dropped its job senders;
            // the matching handles resolve to Cancelled.
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.open {
                    return;
                }
                state = inner.cond.wait(state).expect("serve queue poisoned");
            }
        };
        // Send failures mean the handle was dropped — the job's result
        // is unwanted, not an error.
        let _ = job.tx.send(run_job(job.id, &job.spec));
    }
}

/// Run one job synchronously on a fresh engine. Exposed so callers can
/// bypass the queue (and so tests can diff queued results against
/// direct ones).
pub fn run_job(job_id: u64, spec: &JobSpec) -> Result<JobResult, RunError> {
    let chip = Chip::new(spec.cores.max(1), dv_sim::CostModel::ascend910_like())
        .with_backend(spec.backend);
    let mut engine = PoolingEngine::new(chip);
    if spec.trace {
        engine = engine.with_trace(TraceConfig::ON);
    }
    let (output, mask, run) = match &spec.op {
        JobOp::MaxForward(impl_) => {
            let (out, run) = engine.maxpool_forward(&spec.input, spec.params, *impl_)?;
            (out, None, run)
        }
        JobOp::MaxForwardArgmax(impl_) => {
            let (out, mask, run) =
                engine.maxpool_forward_with_argmax(&spec.input, spec.params, *impl_)?;
            (out, Some(mask), run)
        }
        JobOp::AvgForward(impl_) => {
            let (out, run) = engine.avgpool_forward(&spec.input, spec.params, *impl_)?;
            (out, None, run)
        }
        JobOp::MaxBackward {
            merge,
            mask,
            gradients,
        } => {
            let (dx, run) = engine.maxpool_backward(
                mask,
                gradients,
                spec.params,
                spec.input.h,
                spec.input.w,
                *merge,
            )?;
            (dx, None, run)
        }
        JobOp::AvgBackward { merge, gradients } => {
            let (dx, run) = engine.avgpool_backward(
                gradients,
                spec.params,
                spec.input.h,
                spec.input.w,
                *merge,
            )?;
            (dx, None, run)
        }
    };
    Ok(JobResult {
        job_id,
        output,
        mask,
        per_core: run.per_core,
        total: run.total,
        cycles: run.cycles,
        traces: run.traces,
    })
}
