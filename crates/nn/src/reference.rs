//! A scalar reference forward pass for whole models — the oracle the
//! simulated [`Sequential`](crate::Sequential) is tested against.

use crate::model::{Layer, NnError, Sequential};
use dv_fp16::F16;
use dv_tensor::reference as golden;
use dv_tensor::{Nchw, PoolParams};

/// Run the model's layers through the golden reference operators (no
/// simulation). Bit-exact against [`Sequential::forward`] by
/// construction of the simulated kernels.
pub fn reference_forward(model: &Sequential, input: &Nchw) -> Result<Nchw, NnError> {
    let mut x = input.clone();
    for (i, layer) in model.layers().iter().enumerate() {
        let shape_err = |source| NnError::Shape { layer: i, source };
        x = match layer {
            Layer::Conv2d { weights, params } => {
                golden::conv2d_direct(&x, weights, params).map_err(shape_err)?
            }
            Layer::Relu => {
                let mut y = x.clone();
                for v in y.data_mut() {
                    *v = v.max(F16::ZERO);
                }
                y
            }
            Layer::MaxPool2d { params, .. } => {
                let mut out =
                    golden::maxpool_forward(&x.to_nc1hwc0(), params).map_err(shape_err)?;
                out.orig_c = x.c;
                out.to_nchw()
            }
            Layer::AvgPool2d { params, .. } => {
                let mut out =
                    golden::avgpool_forward(&x.to_nc1hwc0(), params).map_err(shape_err)?;
                out.orig_c = x.c;
                out.to_nchw()
            }
            Layer::GlobalAvgPool => {
                let params = PoolParams::new((x.h, x.w), (1, 1));
                let mut out =
                    golden::avgpool_forward(&x.to_nc1hwc0(), &params).map_err(shape_err)?;
                out.orig_c = x.c;
                out.to_nchw()
            }
        };
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_core::{ForwardImpl, PoolingEngine};

    #[test]
    fn simulated_model_matches_reference_model() {
        let conv1 = Nchw::from_fn(16, 16, 3, 3, |m, c, h, w| {
            F16::from_f32(((m * 3 + c + h * 2 + w) % 7) as f32 * 0.25 - 0.75)
        });
        let conv2 = Nchw::from_fn(32, 16, 3, 3, |m, c, h, w| {
            F16::from_f32(((m + c * 2 + h + w * 3) % 5) as f32 * 0.125 - 0.25)
        });
        let model = Sequential::new(PoolingEngine::ascend910())
            .layer(Layer::conv2d(conv1, (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::maxpool2d(PoolParams::K3S2, ForwardImpl::Im2col))
            .layer(Layer::conv2d(conv2, (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::avgpool2d(PoolParams::K2S2, ForwardImpl::Im2col))
            .layer(Layer::GlobalAvgPool);
        let input = Nchw::from_fn(1, 16, 22, 22, |_, c, h, w| {
            F16::from_f32(((c * 7 + h * 5 + w * 3) % 13) as f32 * 0.25 - 1.5)
        });
        let (sim_out, run) = model.forward(&input).unwrap();
        let ref_out = reference_forward(&model, &input).unwrap();
        assert_eq!(sim_out, ref_out, "7-layer network must match bit-exactly");
        assert_eq!(run.layers.len(), 7);
        assert!(run.total_cycles() > 0);
    }
}
