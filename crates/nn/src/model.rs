//! The layer types and the sequential model runner.

use core::fmt;
use dv_core::{ForwardImpl, PoolingEngine, RunError};
use dv_tensor::{Nchw, PoolParams, ShapeError};

/// Errors from building or running a model.
#[derive(Debug)]
pub enum NnError {
    /// A layer's geometry does not accept its input shape.
    Shape {
        /// index of the failing layer
        layer: usize,
        /// underlying geometry error
        source: ShapeError,
    },
    /// Channel mismatch between a convolution's weights and its input.
    ChannelMismatch {
        /// index of the failing layer
        layer: usize,
        /// channels the layer expected
        expected: usize,
        /// channels it received
        got: usize,
    },
    /// A layer failed to lower or simulate.
    Run {
        /// index of the failing layer
        layer: usize,
        /// underlying engine error
        source: Box<dyn std::error::Error + Send + Sync>,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape { layer, source } => write!(f, "layer {layer}: {source}"),
            NnError::ChannelMismatch {
                layer,
                expected,
                got,
            } => write!(f, "layer {layer}: expected {expected} channels, got {got}"),
            NnError::Run { layer, source } => write!(f, "layer {layer}: {source}"),
        }
    }
}

impl std::error::Error for NnError {}

/// One layer of a [`Sequential`] model.
#[derive(Clone, Debug)]
pub enum Layer {
    /// 2-D convolution on the Cube Unit (weights `(M, C, Kh, Kw)`).
    Conv2d {
        /// filter weights
        weights: Nchw,
        /// stride/padding geometry (kernel extents must match `weights`)
        params: PoolParams,
    },
    /// Rectified linear activation on the Vector Unit.
    Relu,
    /// MaxPool with a selectable lowering (the paper's subject).
    MaxPool2d {
        /// kernel/stride/padding
        params: PoolParams,
        /// which lowering (baseline vs accelerated)
        impl_: ForwardImpl,
    },
    /// AvgPool with a selectable lowering.
    AvgPool2d {
        /// kernel/stride/padding
        params: PoolParams,
        /// which lowering
        impl_: ForwardImpl,
    },
    /// Global average pooling: kernel = the whole spatial extent.
    GlobalAvgPool,
}

impl Layer {
    /// Convolution layer; kernel extents are taken from the weight
    /// tensor.
    pub fn conv2d(weights: Nchw, stride: (usize, usize)) -> Layer {
        let params = PoolParams::new((weights.h, weights.w), stride);
        Layer::Conv2d { weights, params }
    }

    /// MaxPool layer.
    pub fn maxpool2d(params: PoolParams, impl_: ForwardImpl) -> Layer {
        Layer::MaxPool2d { params, impl_ }
    }

    /// AvgPool layer.
    pub fn avgpool2d(params: PoolParams, impl_: ForwardImpl) -> Layer {
        Layer::AvgPool2d { params, impl_ }
    }

    /// Display name for reports.
    pub fn name(&self) -> String {
        match self {
            Layer::Conv2d { weights, params } => format!(
                "conv2d {}x{}/{} ({} kernels)",
                params.kh, params.kw, params.sh, weights.n
            ),
            Layer::Relu => "relu".into(),
            Layer::MaxPool2d { params, impl_ } => format!(
                "maxpool {}x{}/{} ({impl_:?})",
                params.kh, params.kw, params.sh
            ),
            Layer::AvgPool2d { params, impl_ } => format!(
                "avgpool {}x{}/{} ({impl_:?})",
                params.kh, params.kw, params.sh
            ),
            Layer::GlobalAvgPool => "global avgpool".into(),
        }
    }

    /// Infer the output `(C, H, W)` for an input `(C, H, W)`.
    pub fn out_shape(
        &self,
        (c, h, w): (usize, usize, usize),
    ) -> Result<(usize, usize, usize), ShapeError> {
        match self {
            Layer::Conv2d { weights, params } => {
                if weights.c != c {
                    return Err(ShapeError::Mismatch(format!(
                        "conv weights expect {} channels, input has {c}",
                        weights.c
                    )));
                }
                let (oh, ow) = params.out_dims(h, w)?;
                Ok((weights.n, oh, ow))
            }
            Layer::Relu => Ok((c, h, w)),
            Layer::MaxPool2d { params, .. } | Layer::AvgPool2d { params, .. } => {
                let (oh, ow) = params.out_dims(h, w)?;
                Ok((c, oh, ow))
            }
            Layer::GlobalAvgPool => {
                PoolParams::new((h, w), (1, 1)).out_dims(h, w)?;
                Ok((c, 1, 1))
            }
        }
    }
}

/// Per-layer outcome of a forward pass.
#[derive(Clone, Debug)]
pub struct LayerRun {
    /// The layer's display name.
    pub name: String,
    /// Output `(C, H, W)`.
    pub out_shape: (usize, usize, usize),
    /// Simulated chip cycles the layer consumed.
    pub cycles: u64,
}

/// The outcome of a whole forward pass.
#[derive(Clone, Debug, Default)]
pub struct NetRun {
    /// Per-layer reports, in execution order.
    pub layers: Vec<LayerRun>,
}

impl NetRun {
    /// Total simulated cycles over all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Render an aligned per-layer report.
    pub fn report(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{:<36} {:>14} {:>12}", "layer", "output", "cycles");
        for l in &self.layers {
            let _ = writeln!(
                out,
                "{:<36} {:>14} {:>12}",
                l.name,
                format!("{}x{}x{}", l.out_shape.1, l.out_shape.2, l.out_shape.0),
                l.cycles
            );
        }
        let _ = writeln!(
            out,
            "{:<36} {:>14} {:>12}",
            "total",
            "",
            self.total_cycles()
        );
        out
    }
}

/// A feed-forward stack of layers executed on one [`PoolingEngine`].
///
/// Inference-only: the simulated substrate covers every forward operator
/// (and pooling/conv backward-data exist crate-side), but weight
/// gradients would need the SCU's transposing loads, which the paper —
/// and therefore this reproduction — leaves out of scope.
#[derive(Clone, Debug)]
pub struct Sequential {
    layers: Vec<Layer>,
    engine: PoolingEngine,
}

impl Sequential {
    /// An empty model over an engine.
    pub fn new(engine: PoolingEngine) -> Sequential {
        Sequential {
            layers: Vec::new(),
            engine,
        }
    }

    /// Append a layer (builder style).
    pub fn layer(mut self, layer: Layer) -> Sequential {
        self.layers.push(layer);
        self
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Shape-check the model against an input `(C, H, W)`, returning
    /// every intermediate shape (including the input at index 0).
    pub fn shapes(
        &self,
        input: (usize, usize, usize),
    ) -> Result<Vec<(usize, usize, usize)>, NnError> {
        let mut shapes = vec![input];
        let mut cur = input;
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer
                .out_shape(cur)
                .map_err(|source| NnError::Shape { layer: i, source })?;
            shapes.push(cur);
        }
        Ok(shapes)
    }

    /// Run the model on an NCHW input (batch 1), returning the output and
    /// the per-layer cycle report.
    pub fn forward(&self, input: &Nchw) -> Result<(Nchw, NetRun), NnError> {
        self.shapes((input.c, input.h, input.w))?;
        let mut x = input.clone();
        let mut run = NetRun::default();
        for (i, layer) in self.layers.iter().enumerate() {
            let boxed = |e: RunError| NnError::Run {
                layer: i,
                source: Box::new(e),
            };
            let cycles;
            match layer {
                Layer::Conv2d { weights, params } => {
                    if weights.c != x.c {
                        return Err(NnError::ChannelMismatch {
                            layer: i,
                            expected: weights.c,
                            got: x.c,
                        });
                    }
                    let (out, r) =
                        dv_conv::run_conv2d(&x, weights, params).map_err(|e| NnError::Run {
                            layer: i,
                            source: Box::new(e),
                        })?;
                    cycles = r.cycles;
                    x = out;
                }
                Layer::Relu => {
                    let (out, r) = self.engine.relu(&x.to_nc1hwc0()).map_err(boxed)?;
                    cycles = r.cycles;
                    x = out.to_nchw();
                }
                Layer::MaxPool2d { params, impl_ } => {
                    let (out, r) = self
                        .engine
                        .maxpool_forward(&x.to_nc1hwc0(), *params, *impl_)
                        .map_err(boxed)?;
                    cycles = r.cycles;
                    let mut out = out;
                    out.orig_c = x.c;
                    x = out.to_nchw();
                }
                Layer::AvgPool2d { params, impl_ } => {
                    let (out, r) = self
                        .engine
                        .avgpool_forward(&x.to_nc1hwc0(), *params, *impl_)
                        .map_err(boxed)?;
                    cycles = r.cycles;
                    let mut out = out;
                    out.orig_c = x.c;
                    x = out.to_nchw();
                }
                Layer::GlobalAvgPool => {
                    let params = PoolParams::new((x.h, x.w), (1, 1));
                    let (out, r) = self
                        .engine
                        .avgpool_forward(&x.to_nc1hwc0(), params, ForwardImpl::Im2col)
                        .map_err(boxed)?;
                    cycles = r.cycles;
                    let mut out = out;
                    out.orig_c = x.c;
                    x = out.to_nchw();
                }
            }
            run.layers.push(LayerRun {
                name: layer.name(),
                out_shape: (x.c, x.h, x.w),
                cycles,
            });
        }
        Ok((x, run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_fp16::F16;

    fn weights(m: usize, c: usize, k: usize, seed: usize) -> Nchw {
        Nchw::from_fn(m, c, k, k, |mi, ci, h, w| {
            F16::from_f32(((seed + mi * 7 + ci * 3 + h + w) % 9) as f32 * 0.125 - 0.5)
        })
    }

    fn image(c: usize, hw: usize, seed: usize) -> Nchw {
        Nchw::from_fn(1, c, hw, hw, |_, ci, h, w| {
            F16::from_f32(((seed + ci * 5 + h * 3 + w) % 11) as f32 * 0.25 - 1.25)
        })
    }

    fn engine() -> PoolingEngine {
        PoolingEngine::new(dv_sim::Chip::new(2, dv_sim::CostModel::ascend910_like()))
    }

    #[test]
    fn shape_inference_matches_execution() {
        let model = Sequential::new(engine())
            .layer(Layer::conv2d(weights(16, 16, 3, 1), (1, 1)))
            .layer(Layer::Relu)
            .layer(Layer::maxpool2d(PoolParams::K3S2, ForwardImpl::Im2col))
            .layer(Layer::GlobalAvgPool);
        let shapes = model.shapes((16, 14, 14)).unwrap();
        assert_eq!(
            shapes,
            vec![
                (16, 14, 14),
                (16, 12, 12),
                (16, 12, 12),
                (16, 5, 5),
                (16, 1, 1)
            ]
        );
        let (out, run) = model.forward(&image(16, 14, 2)).unwrap();
        assert_eq!((out.c, out.h, out.w), *shapes.last().unwrap());
        assert_eq!(run.layers.len(), 4);
        let report = run.report();
        assert!(report.contains("maxpool 3x3/2"));
        assert!(report.contains("total"));
    }

    #[test]
    fn bad_geometry_is_caught_before_running() {
        let model = Sequential::new(engine()).layer(Layer::maxpool2d(
            PoolParams::new((9, 9), (1, 1)),
            ForwardImpl::Standard,
        ));
        assert!(matches!(
            model.shapes((16, 4, 4)),
            Err(NnError::Shape { layer: 0, .. })
        ));
        assert!(model.forward(&image(16, 4, 3)).is_err());
    }

    #[test]
    fn channel_mismatch_is_caught() {
        let model = Sequential::new(engine()).layer(Layer::conv2d(weights(8, 32, 3, 4), (1, 1)));
        assert!(matches!(
            model.shapes((16, 10, 10)),
            Err(NnError::Shape { layer: 0, .. })
        ));
    }

    #[test]
    fn accelerated_model_is_faster_and_equal() {
        let conv_w = weights(16, 16, 3, 5);
        let build = |impl_| {
            Sequential::new(engine())
                .layer(Layer::conv2d(conv_w.clone(), (1, 1)))
                .layer(Layer::Relu)
                .layer(Layer::maxpool2d(PoolParams::K3S2, impl_))
        };
        let base = build(ForwardImpl::Standard);
        let fast = build(ForwardImpl::Im2col);
        let img = image(16, 20, 6);
        let (out_b, run_b) = base.forward(&img).unwrap();
        let (out_f, run_f) = fast.forward(&img).unwrap();
        assert_eq!(out_b, out_f, "lowerings must agree");
        // only the pooling layer differs
        assert_eq!(run_b.layers[0].cycles, run_f.layers[0].cycles);
        assert!(run_f.layers[2].cycles < run_b.layers[2].cycles);
    }

    #[test]
    fn empty_model_is_identity() {
        let model = Sequential::new(engine());
        let img = image(16, 8, 7);
        let (out, run) = model.forward(&img).unwrap();
        assert_eq!(out, img);
        assert_eq!(run.total_cycles(), 0);
    }
}
