#![deny(missing_docs)]
//! A small CNN inference stack on the simulated DaVinci chip.
//!
//! The paper's motivation is that pooling layers sit *between*
//! convolutions in real CNNs ("a naive implementation can hinder the
//! overall performance of a CNN"). This crate provides the composition: a
//! [`Sequential`] model whose convolutions run on the Cube Unit (via
//! `Im2Col` loads), and whose pooling/activation layers run on the Vector
//! Unit — with either the baseline or the accelerated (im2col/col2im)
//! pooling lowerings — reporting per-layer simulated cycles.
//!
//! ```
//! use dv_nn::{Layer, Sequential};
//! use dv_core::{ForwardImpl, PoolingEngine};
//! use dv_fp16::F16;
//! use dv_tensor::{Nchw, PoolParams};
//!
//! let conv_w = Nchw::from_fn(16, 16, 3, 3, |m, c, h, w| {
//!     F16::from_f32(((m + c + h + w) % 5) as f32 * 0.125 - 0.25)
//! });
//! let model = Sequential::new(PoolingEngine::ascend910())
//!     .layer(Layer::conv2d(conv_w, (1, 1)))
//!     .layer(Layer::Relu)
//!     .layer(Layer::maxpool2d(PoolParams::K3S2, ForwardImpl::Im2col))
//!     .layer(Layer::GlobalAvgPool);
//!
//! let input = Nchw::from_fn(1, 16, 16, 16, |_, c, h, w| {
//!     F16::from_f32(((c * h + w) % 7) as f32 - 3.0)
//! });
//! let (out, run) = model.forward(&input).unwrap();
//! assert_eq!((out.c, out.h, out.w), (16, 1, 1));
//! assert_eq!(run.layers.len(), 4);
//! assert!(run.total_cycles() > 0);
//! ```

mod model;
mod reference;

pub use model::{Layer, LayerRun, NetRun, NnError, Sequential};
pub use reference::reference_forward;
