//! Cost-model regression tests: pin the exact cycle formula of each
//! instruction class so experiment results cannot drift silently when
//! the simulator changes. (If a deliberate recalibration changes these,
//! update EXPERIMENTS.md's calibration record alongside.)

use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, Col2Im, CubeMatmul, DataMove, Im2Col, Im2ColGeometry, Instr, Mask, Program,
    RepeatMode, VectorInstr, VectorOp,
};
use dv_sim::{AiCore, CostModel};
use dv_tensor::PoolParams;

fn run_one(instr: Instr) -> u64 {
    let mut core = AiCore::new(CostModel::ascend910_like(), 1 << 16);
    let mut p = Program::new();
    p.push(instr).unwrap();
    core.run(&p).unwrap();
    core.counters().cycles
}

#[test]
fn vector_cycles_are_issue_plus_repeats() {
    let c = CostModel::ascend910_like();
    for repeat in [1u16, 3, 255] {
        let cycles = run_one(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(0),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            repeat,
        )));
        assert_eq!(
            cycles,
            c.issue_overhead + repeat as u64 * c.vector_per_repeat
        );
    }
}

#[test]
fn vector_cycles_independent_of_mask_width() {
    // The crux of the paper: a 16-lane instruction costs the same as a
    // 128-lane one — partial masks waste throughput, they don't save
    // time.
    let narrow = run_one(Instr::Vector(VectorInstr::unit_stride(
        VectorOp::Max,
        Addr::ub(0),
        Addr::ub(0),
        Addr::ub(0),
        Mask::C0_ONLY,
        5,
    )));
    let wide = run_one(Instr::Vector(VectorInstr::unit_stride(
        VectorOp::Max,
        Addr::ub(0),
        Addr::ub(0),
        Addr::ub(0),
        Mask::FULL,
        5,
    )));
    assert_eq!(narrow, wide);
}

#[test]
fn im2col_cycles_scale_with_fractals() {
    let c = CostModel::ascend910_like();
    let geom = Im2ColGeometry::new(34, 34, 1, PoolParams::K3S2).unwrap();
    for repeat in [1u16, 4, 16] {
        let cycles = run_one(Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat,
            mode: RepeatMode::Mode1,
        }));
        assert_eq!(
            cycles,
            c.issue_overhead + repeat as u64 * c.im2col_per_fractal
        );
    }
}

#[test]
fn col2im_cycles_scale_with_fractals() {
    let c = CostModel::ascend910_like();
    let geom = Im2ColGeometry::new(34, 34, 1, PoolParams::K3S2).unwrap();
    for repeat in [1u16, 8] {
        let cycles = run_one(Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(32768),
            first_patch: 0,
            k_off: (0, 0),
            c1: 0,
            repeat,
        }));
        assert_eq!(
            cycles,
            c.issue_overhead + repeat as u64 * c.col2im_per_fractal
        );
    }
}

#[test]
fn move_cycles_are_bandwidth_bound() {
    let c = CostModel::ascend910_like();
    for bytes in [32usize, 33, 1024, 4096] {
        let cycles = run_one(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), bytes)));
        assert_eq!(cycles, c.issue_overhead + c.move_cycles(bytes));
    }
}

#[test]
fn cube_cycles_scale_with_fractal_ops() {
    let c = CostModel::ascend910_like();
    let cycles = run_one(Instr::Cube(CubeMatmul {
        a: Addr::new(BufferId::L0A, 0),
        b: Addr::new(BufferId::L0B, 0),
        c: Addr::new(BufferId::L0C, 0),
        m_fractals: 2,
        k_fractals: 3,
        n_fractals: 4,
        accumulate: false,
    }));
    assert_eq!(cycles, c.issue_overhead + 24 * c.cube_per_fractal_pair);
}

#[test]
fn calibrated_constants_are_pinned() {
    // The calibration EXPERIMENTS.md documents — changing these changes
    // every reproduced figure.
    let c = CostModel::ascend910_like();
    assert_eq!(c.issue_overhead, 16);
    assert_eq!(c.vector_per_repeat, 1);
    assert_eq!(c.im2col_per_fractal, 20);
    assert_eq!(c.col2im_per_fractal, 20);
    assert_eq!(c.move_bytes_per_cycle, 32);
    assert_eq!(c.cube_per_fractal_pair, 1);
    assert_eq!(c.core_dispatch, 64);
}

#[test]
fn scu_is_slower_per_byte_than_mte() {
    // The physical constraint the second calibration pass fixed: the
    // SCU's strided gather cannot beat the MTE's sequential stream.
    let c = CostModel::ascend910_like();
    let scu_bytes_per_cycle = 512.0 / c.im2col_per_fractal as f64;
    assert!(scu_bytes_per_cycle <= c.move_bytes_per_cycle as f64);
}

#[test]
fn dup_requires_no_source_reads() {
    // vector_dup on a region whose "sources" would be out of bounds must
    // still work (it reads nothing).
    let mut core = AiCore::new(CostModel::ascend910_like(), 0);
    let cap = core.buffers().capacity(BufferId::Ub);
    let mut p = Program::new();
    p.push(Instr::Vector(VectorInstr::unit_stride(
        VectorOp::Dup(F16::ONE),
        Addr::ub(0),
        Addr::ub(cap), // would be OOB if read
        Addr::ub(cap),
        Mask::FULL,
        1,
    )))
    .unwrap();
    core.run(&p).unwrap();
    assert_eq!(core.buffers().read_f16(BufferId::Ub, 0).unwrap(), F16::ONE);
}
