//! Property-based tests: every simulated instruction against a scalar
//! model of its semantics, over randomized operands, masks, repeats and
//! strides.

use dv_fp16::F16;
use dv_isa::{
    Addr, BufferId, Col2Im, CubeMatmul, DataMove, Im2Col, Im2ColGeometry, Instr, Mask, RepeatMode,
    VectorInstr, VectorOp, VECTOR_LANES,
};
use dv_sim::{AiCore, CostModel};
use dv_tensor::{im2col_fractal, Nc1hwc0, PoolParams, C0, FRACTAL_BYTES, FRACTAL_ROWS};
use proptest::prelude::*;

fn core() -> AiCore {
    AiCore::new(CostModel::ascend910_like(), 1 << 16)
}

fn f16s(len: usize, seed: u64) -> Vec<F16> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            F16::from_f32(((s >> 34) % 65) as f32 * 0.5 - 16.0)
        })
        .collect()
}

fn vec_op() -> impl Strategy<Value = VectorOp> {
    prop_oneof![
        Just(VectorOp::Max),
        Just(VectorOp::Min),
        Just(VectorOp::Add),
        Just(VectorOp::Sub),
        Just(VectorOp::Mul),
        Just(VectorOp::CmpEq),
        Just(VectorOp::Copy),
        Just(VectorOp::Relu),
        (-8i32..=8).prop_map(|s| VectorOp::MulScalar(F16::from_f32(s as f32 * 0.5))),
        (-8i32..=8).prop_map(|s| VectorOp::Dup(F16::from_f32(s as f32 * 0.5))),
    ]
}

fn scalar_semantics(op: VectorOp, a: F16, b: F16) -> F16 {
    match op {
        VectorOp::Max => a.max(b),
        VectorOp::Min => a.min(b),
        VectorOp::Add => a + b,
        VectorOp::Sub => a - b,
        VectorOp::Mul => a * b,
        VectorOp::MulScalar(s) => a * s,
        VectorOp::Dup(s) => s,
        VectorOp::CmpEq => {
            if a == b {
                F16::ONE
            } else {
                F16::ZERO
            }
        }
        VectorOp::Copy => a,
        VectorOp::Relu => a.max(F16::ZERO),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vector instructions with disjoint operands match the scalar model
    /// lane by lane; masked-off lanes never write.
    #[test]
    fn vector_instr_matches_scalar_model(
        op in vec_op(),
        mask_lanes in 0usize..=VECTOR_LANES,
        repeat in 1u16..=4,
        seed in any::<u64>(),
    ) {
        let mut core = core();
        let total = VECTOR_LANES * repeat as usize;
        let src0v = f16s(total, seed);
        let src1v = f16s(total, seed ^ 0x1111);
        let sentinel = F16::from_f32(-999.0);
        core.buffers_mut().load_f16_slice(BufferId::Ub, 0, &src0v).unwrap();
        core.buffers_mut().load_f16_slice(BufferId::Ub, 8192, &src1v).unwrap();
        core.buffers_mut()
            .load_f16_slice(BufferId::Ub, 16384, &vec![sentinel; total])
            .unwrap();
        let mask = Mask::first_n(mask_lanes);
        let instr = Instr::Vector(VectorInstr::unit_stride(
            op,
            Addr::ub(16384),
            Addr::ub(0),
            Addr::ub(8192),
            mask,
            repeat,
        ));
        if mask_lanes == 0 {
            // empty mask is legal and writes nothing
        }
        let mut p = dv_isa::Program::new();
        p.push(instr).unwrap();
        core.run(&p).unwrap();
        let out = core.buffers().read_f16_slice(BufferId::Ub, 16384, total).unwrap();
        for r in 0..repeat as usize {
            for lane in 0..VECTOR_LANES {
                let i = r * VECTOR_LANES + lane;
                if lane < mask_lanes {
                    let want = scalar_semantics(op, src0v[i], src1v[i]);
                    prop_assert_eq!(out[i], want, "repeat {} lane {}", r, lane);
                } else {
                    prop_assert_eq!(out[i], sentinel, "masked lane {} wrote", lane);
                }
            }
        }
    }

    /// In-place accumulation with dst == src0, stride 0, and a strided
    /// src1 reduces sequentially — the baseline pooling pattern.
    #[test]
    fn strided_accumulation_is_sequential(repeat in 1u16..=5, seed in any::<u64>()) {
        let mut core = core();
        let init = f16s(16, seed ^ 0xAA);
        let src = f16s(16 * repeat as usize, seed);
        core.buffers_mut().load_f16_slice(BufferId::Ub, 0, &init).unwrap();
        core.buffers_mut().load_f16_slice(BufferId::Ub, 4096, &src).unwrap();
        let instr = Instr::Vector(VectorInstr {
            op: VectorOp::Add,
            dst: Addr::ub(0),
            src0: Addr::ub(0),
            src1: Addr::ub(4096),
            mask: Mask::C0_ONLY,
            repeat,
            dst_stride: 0,
            src0_stride: 0,
            src1_stride: 32,
        });
        let mut p = dv_isa::Program::new();
        p.push(instr).unwrap();
        core.run(&p).unwrap();
        let out = core.buffers().read_f16_slice(BufferId::Ub, 0, 16).unwrap();
        for lane in 0..16 {
            let mut acc = init[lane];
            for r in 0..repeat as usize {
                acc += src[r * 16 + lane];
            }
            prop_assert_eq!(out[lane], acc, "lane {}", lane);
        }
    }

    /// A full mode-1 Im2Col plane load equals the corresponding slice of
    /// the golden im2col transform, for random geometries.
    #[test]
    fn im2col_instruction_matches_reference(
        kh in 1usize..=3, kw in 1usize..=3,
        sh in 1usize..=3, sw in 1usize..=3,
        ih in 6usize..=14, iw in 6usize..=14,
        xk_sel in 0usize..9, yk_sel in 0usize..9,
        seed in any::<u64>(),
    ) {
        let params = PoolParams::new((kh, kw), (sh, sw));
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let geom = Im2ColGeometry::new(ih, iw, 1, params).unwrap();
        let (xk, yk) = (xk_sel % kh, yk_sel % kw);
        let input = Nc1hwc0::from_fn(1, 1, ih, iw, |_, _, h, w, c0| {
            F16::from_f32(((seed as usize + h * 131 + w * 17 + c0) % 251) as f32 - 125.0)
        });
        let mut core = core();
        core.buffers_mut()
            .load_f16_slice(BufferId::L1, 0, input.data())
            .unwrap();
        let bf = geom.fractals_per_plane();
        let mut p = dv_isa::Program::new();
        p.push(Instr::Im2Col(Im2Col {
            geom,
            src: Addr::l1(0),
            dst: Addr::ub(0),
            first_patch: 0,
            k_off: (xk, yk),
            c1: 0,
            repeat: bf as u16,
            mode: RepeatMode::Mode1,
        })).unwrap();
        core.run(&p).unwrap();

        let golden = im2col_fractal(&input, &params).unwrap();
        let (oh, ow) = geom.out_dims();
        for patch in 0..oh * ow {
            for c0 in 0..C0 {
                let got = core
                    .buffers()
                    .read_f16(BufferId::Ub, (patch * C0 + c0) * 2)
                    .unwrap();
                let want = golden.get(0, 0, xk, yk, patch / ow, patch % ow, c0);
                prop_assert_eq!(got, want, "patch {} c0 {}", patch, c0);
            }
        }
        // zero-fill of the padded tail slots
        for patch in oh * ow..bf * FRACTAL_ROWS {
            let got = core
                .buffers()
                .read_f16(BufferId::Ub, (patch * C0) * 2)
                .unwrap();
            prop_assert_eq!(got, F16::ZERO, "tail patch {}", patch);
        }
    }

    /// Col2Im of one plane equals the golden col2im restricted to that
    /// kernel offset (scatter into a zeroed target).
    #[test]
    fn col2im_instruction_matches_reference(
        kh in 1usize..=3, kw in 1usize..=3,
        sh in 1usize..=2, sw in 1usize..=2,
        ih in 6usize..=12, iw in 6usize..=12,
        xk_sel in 0usize..9, yk_sel in 0usize..9,
        seed in any::<u64>(),
    ) {
        let params = PoolParams::new((kh, kw), (sh, sw));
        prop_assume!(params.out_dims(ih, iw).is_ok());
        let geom = Im2ColGeometry::new(ih, iw, 1, params).unwrap();
        let (xk, yk) = (xk_sel % kh, yk_sel % kw);
        let (oh, ow) = geom.out_dims();
        let bf = geom.fractals_per_plane();
        // a full patch tensor that is zero everywhere except our plane
        let mut patches = dv_tensor::PatchTensor::zeros(1, 1, kh, kw, oh, ow);
        let vals = f16s(bf * FRACTAL_ROWS * C0, seed);
        let mut plane = vec![F16::ZERO; bf * FRACTAL_ROWS * C0];
        for patch in 0..oh * ow {
            for c0 in 0..C0 {
                let v = vals[patch * C0 + c0];
                plane[patch * C0 + c0] = v;
                patches.set(0, 0, xk, yk, patch / ow, patch % ow, c0, v);
            }
        }
        let golden = dv_tensor::col2im_fractal(&patches, &params, ih, iw).unwrap();

        let mut core = core();
        core.buffers_mut().load_f16_slice(BufferId::Ub, 0, &plane).unwrap();
        // output region at 16384, already zero
        let mut p = dv_isa::Program::new();
        p.push(Instr::Col2Im(Col2Im {
            geom,
            src: Addr::ub(0),
            dst: Addr::ub(16384),
            first_patch: 0,
            k_off: (xk, yk),
            c1: 0,
            repeat: bf as u16,
        })).unwrap();
        core.run(&p).unwrap();
        for h in 0..ih {
            for w in 0..iw {
                for c0 in 0..C0 {
                    let got = core.buffers()
                        .read_f16(BufferId::Ub, 16384 + ((h * iw + w) * C0 + c0) * 2)
                        .unwrap();
                    prop_assert_eq!(got, golden.get(0, 0, h, w, c0),
                        "({}, {}, {})", h, w, c0);
                }
            }
        }
    }

    /// Cube matmul over random fractal tiles equals the f32-accumulating
    /// reference matmul.
    #[test]
    fn cube_matches_reference_matmul(
        mf in 1usize..=2, kf in 1usize..=2, nf in 1usize..=2,
        seed in any::<u64>(),
    ) {
        const E: usize = 16;
        let a = f16s(mf * kf * E * E, seed);
        let b = f16s(kf * nf * E * E, seed ^ 0x77);
        let mut core = core();
        core.buffers_mut().load_f16_slice(BufferId::L0A, 0, &a).unwrap();
        core.buffers_mut().load_f16_slice(BufferId::L0B, 0, &b).unwrap();
        let mut p = dv_isa::Program::new();
        p.push(Instr::Cube(CubeMatmul {
            a: Addr::new(BufferId::L0A, 0),
            b: Addr::new(BufferId::L0B, 0),
            c: Addr::new(BufferId::L0C, 0),
            m_fractals: mf,
            k_fractals: kf,
            n_fractals: nf,
            accumulate: false,
        })).unwrap();
        core.run(&p).unwrap();

        // flatten the fractal grids into row-major matrices
        let (m, k, n) = (mf * E, kf * E, nf * E);
        let flat = |grid: &[F16], _rows: usize, col_fr: usize, r: usize, c: usize| {
            grid[((r / E) * col_fr + c / E) * E * E + (r % E) * E + (c % E)]
        };
        let mut am = vec![F16::ZERO; m * k];
        for r in 0..m { for c in 0..k { am[r * k + c] = flat(&a, m, kf, r, c); } }
        let mut bm = vec![F16::ZERO; k * n];
        for r in 0..k { for c in 0..n { bm[r * n + c] = flat(&b, k, nf, r, c); } }
        let want = dv_tensor::reference::matmul_f32acc(&am, &bm, m, k, n);

        for r in 0..m {
            for c in 0..n {
                let off = (((r / E) * nf + c / E) * E * E + (r % E) * E + (c % E)) * 4;
                let got = core.buffers().read_f32_l0c(off).unwrap();
                prop_assert_eq!(F16::from_f32(got), want[r * n + c], "({}, {})", r, c);
            }
        }
    }

    /// Data moves preserve bytes exactly along every legal path that can
    /// carry f16 data.
    #[test]
    fn moves_preserve_data(len_words in 1usize..=512, seed in any::<u64>()) {
        let vals = f16s(len_words, seed);
        let mut core = core();
        core.load_gm(0, &vals).unwrap();
        let bytes = len_words * 2;
        let mut p = dv_isa::Program::new();
        p.push(Instr::Move(DataMove::new(Addr::gm(0), Addr::l1(0), bytes))).unwrap();
        p.push(Instr::Move(DataMove::new(Addr::l1(0), Addr::ub(0), bytes))).unwrap();
        p.push(Instr::Move(DataMove::new(Addr::ub(0), Addr::gm(8192), bytes))).unwrap();
        core.run(&p).unwrap();
        prop_assert_eq!(core.read_gm(8192, len_words).unwrap(), vals);
    }

    /// Cycle accounting is deterministic and additive: running the same
    /// program twice exactly doubles every counter.
    #[test]
    fn counters_are_deterministic_and_additive(repeat in 1u16..=8, seed in any::<u64>()) {
        let vals = f16s(VECTOR_LANES * repeat as usize, seed);
        let mut p = dv_isa::Program::new();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add, Addr::ub(0), Addr::ub(8192), Addr::ub(16384),
            Mask::FULL, repeat,
        ))).unwrap();
        let mut core1 = core();
        core1.buffers_mut().load_f16_slice(BufferId::Ub, 8192, &vals).unwrap();
        core1.run(&p).unwrap();
        let once = core1.counters().clone();
        core1.run(&p).unwrap();
        let twice = core1.counters().clone();
        prop_assert_eq!(twice.cycles, 2 * once.cycles);
        prop_assert_eq!(twice.vector_total_lanes, 2 * once.vector_total_lanes);
        prop_assert_eq!(twice.issues_of("vadd"), 2 * once.issues_of("vadd"));
    }
}

/// Fractal-size constants that the instruction encodings rely on.
#[test]
fn fractal_constants_hold() {
    assert_eq!(FRACTAL_BYTES, 512);
    assert_eq!(FRACTAL_ROWS * C0 * 2, FRACTAL_BYTES);
}

/// One Mode-0 chain at repeat = 252 (just under the 255 limit) walking 28
/// source planes — the instruction shape the batched N>1 fold emits, with
/// the batch staged as consecutive `c1` planes. Every produced fractal
/// must equal the golden im2col of the plane the odometer says it came
/// from.
#[test]
fn long_mode0_chain_over_many_planes_matches_reference() {
    let params = PoolParams::K3S2;
    let (ih, iw, planes) = (10usize, 10, 28);
    let geom = Im2ColGeometry::new(ih, iw, planes, params).unwrap();
    let (oh, ow) = geom.out_dims();
    assert_eq!(oh * ow, FRACTAL_ROWS, "one fractal per (c1, xk, yk)");
    let kk = params.kh * params.kw;
    let repeat = planes * kk;
    assert_eq!(repeat, 252);

    // N=28 planes contiguous in L1 at src_plane_bytes stride — exactly
    // how the batched lowering stages a batch.
    let input = Nc1hwc0::from_fn(planes, 1, ih, iw, |n, _, h, w, c0| {
        F16::from_f32(((n * 41 + h * 13 + w * 5 + c0) % 127) as f32 - 63.0)
    });
    let mut core = core();
    core.buffers_mut()
        .load_f16_slice(BufferId::L1, 0, input.data())
        .unwrap();

    let mut p = dv_isa::Program::new();
    p.push(Instr::Im2Col(Im2Col {
        geom,
        src: Addr::l1(0),
        dst: Addr::ub(0),
        first_patch: 0,
        k_off: (0, 0),
        c1: 0,
        repeat: repeat as u16,
        mode: RepeatMode::Mode0,
    }))
    .unwrap();
    core.run(&p).unwrap();

    let golden = im2col_fractal(&input, &params).unwrap();
    for frac in 0..repeat {
        let (c1, rem) = (frac / kk, frac % kk);
        let (xk, yk) = (rem / params.kw, rem % params.kw);
        for patch in 0..oh * ow {
            for c0 in 0..C0 {
                let got = core
                    .buffers()
                    .read_f16(BufferId::Ub, frac * FRACTAL_BYTES + (patch * C0 + c0) * 2)
                    .unwrap();
                let want = golden.get(c1, 0, xk, yk, patch / ow, patch % ow, c0);
                assert_eq!(
                    got, want,
                    "fractal {frac} (c1={c1} k=({xk},{yk})) patch {patch}"
                );
            }
        }
    }
    // One issue, charged per produced fractal — the instruction-count win
    // the fold banks on.
    let ctr = core.counters();
    assert_eq!(ctr.issues_of("im2col"), 1);
    assert_eq!(
        ctr.cycles,
        CostModel::ascend910_like().issue_overhead
            + repeat as u64 * CostModel::ascend910_like().im2col_per_fractal
    );
}

/// A Mode-0 chain resumed mid-walk (nonzero `c1` and kernel offset, a
/// tail fractal past the patch grid): the split-at-255 continuation case.
/// Real patch rows must match the golden im2col; rows past the grid must
/// be zero-filled.
#[test]
fn mode0_chain_resumed_mid_walk_with_tail_fractal() {
    let params = PoolParams::K3S2;
    let (ih, iw, planes) = (11usize, 11, 4);
    let geom = Im2ColGeometry::new(ih, iw, planes, params).unwrap();
    let (oh, ow) = geom.out_dims();
    assert_eq!(oh * ow, 25, "25 patches: second fractal has a 9-row tail");
    let kk = params.kh * params.kw;

    let input = Nc1hwc0::from_fn(planes, 1, ih, iw, |n, _, h, w, c0| {
        F16::from_f32(((n * 17 + h * 7 + w * 3 + c0) % 97) as f32 * 0.25)
    });
    let mut core = core();
    core.buffers_mut()
        .load_f16_slice(BufferId::L1, 0, input.data())
        .unwrap();

    // Resume exactly where a 255-capped chunk would have stopped: flat
    // position 14 = (c1=1, xk=1, yk=2), second fractal (first_patch=16).
    let (start_c1, start_k) = (1usize, (1usize, 2));
    let start_flat = start_c1 * kk + start_k.0 * params.kw + start_k.1;
    let repeat = planes * kk - start_flat;
    let mut p = dv_isa::Program::new();
    p.push(Instr::Im2Col(Im2Col {
        geom,
        src: Addr::l1(0),
        dst: Addr::ub(0),
        first_patch: 16,
        k_off: start_k,
        c1: start_c1,
        repeat: repeat as u16,
        mode: RepeatMode::Mode0,
    }))
    .unwrap();
    core.run(&p).unwrap();

    let golden = im2col_fractal(&input, &params).unwrap();
    for frac in 0..repeat {
        let flat = start_flat + frac;
        let (c1, rem) = (flat / kk, flat % kk);
        let (xk, yk) = (rem / params.kw, rem % params.kw);
        for row in 0..FRACTAL_ROWS {
            let patch = 16 + row;
            for c0 in 0..C0 {
                let got = core
                    .buffers()
                    .read_f16(BufferId::Ub, frac * FRACTAL_BYTES + (row * C0 + c0) * 2)
                    .unwrap();
                let want = if patch < oh * ow {
                    golden.get(c1, 0, xk, yk, patch / ow, patch % ow, c0)
                } else {
                    F16::ZERO // past-the-grid slots zero-fill
                };
                assert_eq!(got, want, "fractal {frac} row {row} c0 {c0}");
            }
        }
    }
}
