//! Chip-level behaviours: error propagation out of worker threads, GM
//! write-range merging, and scheduling invariants.

use dv_fp16::F16;
use dv_isa::{Addr, DataMove, Instr, Mask, Program, VectorInstr, VectorOp};
use dv_sim::{Chip, CostModel};

fn doubler(in_off: usize, out_off: usize) -> Program {
    let mut p = Program::new();
    p.push(Instr::Move(DataMove::new(
        Addr::gm(in_off),
        Addr::ub(0),
        256,
    )))
    .unwrap();
    p.push(Instr::Vector(VectorInstr::unit_stride(
        VectorOp::Add,
        Addr::ub(256),
        Addr::ub(0),
        Addr::ub(0),
        Mask::FULL,
        1,
    )))
    .unwrap();
    p.push(Instr::Move(DataMove::new(
        Addr::ub(256),
        Addr::gm(out_off),
        256,
    )))
    .unwrap();
    p
}

/// A program whose execution (not validation) fails: it reads past the
/// end of global memory.
fn oob_program(gm_bytes: usize) -> Program {
    let mut p = Program::new();
    p.push(Instr::Move(DataMove::new(
        Addr::gm(gm_bytes - 64),
        Addr::ub(0),
        256,
    )))
    .unwrap();
    p
}

#[test]
fn worker_thread_errors_propagate() {
    let mut gm = vec![0u8; 4096];
    let chip = Chip::new(4, CostModel::ascend910_like());
    let programs = vec![doubler(0, 2048), oob_program(4096), doubler(256, 2560)];
    let err = chip.run(&mut gm, &programs);
    assert!(err.is_err(), "mid-run failure must surface as Err");
}

#[test]
fn failed_run_does_not_corrupt_untouched_gm() {
    let vals: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32)).collect();
    let mut gm = vec![0u8; 4096];
    gm[..256].copy_from_slice(dv_fp16::as_bytes(&vals));
    let snapshot = gm.clone();
    let chip = Chip::new(1, CostModel::ascend910_like());
    let _ = chip.run(&mut gm, &[oob_program(4096)]);
    assert_eq!(gm, snapshot, "failed run must not write back");
}

#[test]
fn multiple_jobs_per_core_all_write_back() {
    // 6 jobs on 2 cores: each core runs 3 sequentially; every output
    // range must still land in GM.
    let vals: Vec<F16> = (0..768).map(|i| F16::from_f32((i % 50) as f32)).collect();
    let mut gm = vec![0u8; 8192];
    gm[..1536].copy_from_slice(dv_fp16::as_bytes(&vals));
    let programs: Vec<Program> = (0..6).map(|t| doubler(t * 256, 4096 + t * 256)).collect();
    let chip = Chip::new(2, CostModel::ascend910_like());
    let run = chip.run(&mut gm, &programs).unwrap();
    assert_eq!(run.per_core.len(), 2);
    let out = dv_fp16::from_bytes(&gm[4096..4096 + 1536]);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(v.to_f32(), 2.0 * ((i % 50) as f32), "element {i}");
    }
}

#[test]
fn adjacent_but_disjoint_writes_allowed() {
    let mut gm = vec![0u8; 4096];
    let programs = vec![doubler(0, 2048), doubler(256, 2304)]; // touching ranges
    let chip = Chip::new(2, CostModel::ascend910_like());
    assert!(chip.run(&mut gm, &programs).is_ok());
}

#[test]
fn same_program_may_write_overlapping_ranges() {
    // One program rewriting its own output region (e.g. banded halo
    // flushes) is legal; only cross-program overlap is a bug.
    let mut p = doubler(0, 2048);
    p.push(Instr::Move(DataMove::new(
        Addr::ub(256),
        Addr::gm(2048),
        256,
    )))
    .unwrap();
    let mut gm = vec![0u8; 4096];
    let chip = Chip::new(1, CostModel::ascend910_like());
    assert!(chip.run(&mut gm, &[p]).is_ok());
}

#[test]
fn core_cycles_reported_per_core() {
    let vals: Vec<F16> = (0..512).map(|_| F16::ONE).collect();
    let mut gm = vec![0u8; 8192];
    gm[..1024].copy_from_slice(dv_fp16::as_bytes(&vals));
    // 3 jobs on 2 cores: core 0 gets 2 jobs, core 1 gets 1.
    let programs: Vec<Program> = (0..3).map(|t| doubler(t * 256, 4096 + t * 256)).collect();
    let chip = Chip::new(2, CostModel::ascend910_like());
    let run = chip.run(&mut gm, &programs).unwrap();
    assert_eq!(run.core_cycles.len(), 2);
    let (a, b) = (run.core_cycles[0], run.core_cycles[1]);
    assert!(a != b, "unbalanced load must show unequal core cycles");
    assert_eq!(run.cycles, a.max(b), "chip cycles = max over cores");
}

#[test]
fn dispatch_overhead_charged_per_job() {
    let vals: Vec<F16> = (0..256).map(|_| F16::ONE).collect();
    let cost = CostModel::ascend910_like();
    let mk_gm = |n: usize| {
        let mut gm = vec![0u8; 8192];
        gm[..n * 256].copy_from_slice(dv_fp16::as_bytes(&vals[..n * 128]));
        gm
    };
    let chip = Chip::new(1, cost);
    let mut gm1 = mk_gm(1);
    let one = chip.run(&mut gm1, &[doubler(0, 4096)]).unwrap();
    let mut gm2 = mk_gm(2);
    let two = chip
        .run(&mut gm2, &[doubler(0, 4096), doubler(256, 4352)])
        .unwrap();
    assert_eq!(
        two.cycles,
        2 * one.cycles,
        "two identical jobs on one core = exactly double (incl. dispatch)"
    );
    assert!(one.cycles > cost.core_dispatch);
}
