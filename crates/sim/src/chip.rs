//! Multi-core execution: an Ascend-910-like chip with up to 32 AI Cores.
//!
//! "If multiple AI Cores are available, multiple tiles can be processed in
//! parallel" (paper, Section V-A) — the lowering layer partitions work
//! (typically over `C1`) into one program per tile and the chip executes
//! them round-robin over its cores, each core running its share
//! sequentially. The reported cycle count is the maximum over cores, plus
//! a per-tile dispatch charge.
//!
//! Concurrency model: each core gets a private copy of the global-memory
//! image (real cores share GM, but our kernels never communicate through
//! GM mid-run); after all cores join, the byte ranges each program wrote
//! to GM — recovered from its `Move`-to-GM instructions — are merged back.
//! Overlapping writes from different cores are a lowering bug and are
//! detected.

use crate::buffers::{BufferPeaks, SimError};
use crate::core::AiCore;
use crate::cost::{Capacities, CostModel};
use crate::counters::HwCounters;
use crate::lifetimes::BufferLifetimes;
use crate::trace::{Trace, TraceConfig};
use dv_isa::{BufferId, Instr, Program};

/// A simulated multi-core chip.
#[derive(Clone, Debug)]
pub struct Chip {
    /// Number of AI Cores (Ascend 910: 32).
    pub cores: usize,
    /// Cost model shared by all cores.
    pub cost: CostModel,
    /// Scratchpad capacities per core.
    pub caps: Capacities,
    /// Per-instruction trace recording (off by default).
    pub trace: TraceConfig,
}

/// The result of a chip run.
#[derive(Clone, Debug)]
pub struct ChipRun {
    /// Counters per physical core (index parallel to `core_cycles` and
    /// `traces`), dispatch included.
    pub per_core: Vec<HwCounters>,
    /// Cycles per core including dispatch overhead.
    pub core_cycles: Vec<u64>,
    /// The chip-level cycle count: max over cores (cores run in
    /// parallel).
    pub cycles: u64,
    /// Sum of all counters — total work, for utilization statistics.
    pub total: HwCounters,
    /// Per-core instruction traces (empty unless the chip's
    /// [`TraceConfig`] enables tracing). `Trace::core` holds the physical
    /// core id.
    pub traces: Vec<Trace>,
    /// Scratchpad occupancy high-water marks, max over all cores.
    pub peaks: BufferPeaks,
    /// Per-core buffer live ranges (empty unless tracing was enabled —
    /// lifetime recording is gated with the trace). Index parallel to
    /// `traces`; `BufferLifetimes::core` holds the physical core id.
    pub lifetimes: Vec<BufferLifetimes>,
}

impl ChipRun {
    /// Export this run's traces as Chrome trace-event JSON (empty trace
    /// list when tracing was off — the JSON is still valid). Buffer live
    /// ranges are included as async "live-range" slices per scratchpad
    /// row.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json_with_lifetimes(&self.traces, &self.lifetimes)
    }

    /// Per-(unit, mnemonic) cycle breakdown aggregated over all cores.
    pub fn breakdown(&self) -> crate::trace::Breakdown {
        crate::trace::Breakdown::from_traces(&self.traces)
    }
}

impl Chip {
    /// An Ascend-910-like chip: 32 cores, default cost model.
    pub fn ascend910() -> Chip {
        Chip {
            cores: 32,
            cost: CostModel::ascend910_like(),
            caps: Capacities::ASCEND910,
            trace: TraceConfig::OFF,
        }
    }

    /// A chip with a custom core count and cost model.
    pub fn new(cores: usize, cost: CostModel) -> Chip {
        assert!(cores > 0, "a chip needs at least one core");
        Chip {
            cores,
            cost,
            caps: Capacities::ASCEND910,
            trace: TraceConfig::OFF,
        }
    }

    /// The same chip with a different trace configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Chip {
        self.trace = trace;
        self
    }

    /// Execute `programs` (one per tile) over the cores, reading and
    /// updating the global-memory image `gm` in place.
    pub fn run(&self, gm: &mut [u8], programs: &[Program]) -> Result<ChipRun, SimError> {
        // Recover each program's GM output ranges up front, and check
        // cross-program disjointness (a lowering invariant).
        let out_ranges: Vec<Vec<(usize, usize)>> = programs.iter().map(gm_write_ranges).collect();
        check_disjoint(&out_ranges)?;

        // Round-robin programs onto cores.
        let groups: Vec<Vec<usize>> = (0..self.cores)
            .map(|c| (c..programs.len()).step_by(self.cores).collect::<Vec<_>>())
            .collect();

        struct CoreResult {
            counters: HwCounters,
            cycles: u64,
            writes: Vec<(usize, Vec<u8>)>,
            trace: Trace,
            lifetimes: BufferLifetimes,
            peaks: BufferPeaks,
        }

        let gm_ref: &[u8] = gm;
        let results: Vec<Option<CoreResult>> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .iter()
                .enumerate()
                .map(|(core_id, jobs)| {
                    let out_ranges = &out_ranges;
                    s.spawn(move || -> Result<Option<CoreResult>, SimError> {
                        if jobs.is_empty() {
                            return Ok(None);
                        }
                        let mut core = AiCore::with_capacities(self.cost, self.caps, gm_ref.len());
                        core.set_trace(self.trace);
                        core.buffers_mut().gm_bytes_mut().copy_from_slice(gm_ref);
                        let mut dispatch = 0u64;
                        for &j in jobs {
                            core.run(&programs[j])?;
                            dispatch += self.cost.core_dispatch;
                        }
                        let mut writes = Vec::new();
                        for &j in jobs {
                            for &(off, len) in &out_ranges[j] {
                                writes.push((
                                    off,
                                    core.buffers().gm_bytes()[off..off + len].to_vec(),
                                ));
                            }
                        }
                        let counters = core.counters().clone();
                        let cycles = counters.cycles + dispatch;
                        let peaks = *core.buffers().peaks();
                        let mut trace = core.take_trace();
                        trace.core = core_id;
                        let mut lifetimes = core.take_lifetimes();
                        lifetimes.core = core_id;
                        Ok(Some(CoreResult {
                            counters,
                            cycles,
                            writes,
                            trace,
                            lifetimes,
                            peaks,
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("core thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?;

        let mut per_core = Vec::new();
        let mut core_cycles = Vec::new();
        let mut traces = Vec::new();
        let mut lifetimes = Vec::new();
        let mut total = HwCounters::default();
        let mut peaks = BufferPeaks::default();
        let mut max_cycles = 0u64;
        for r in results.into_iter().flatten() {
            for (off, bytes) in &r.writes {
                gm[*off..*off + bytes.len()].copy_from_slice(bytes);
            }
            max_cycles = max_cycles.max(r.cycles);
            total.merge(&r.counters);
            peaks.merge_max(&r.peaks);
            core_cycles.push(r.cycles);
            per_core.push(r.counters);
            if self.trace.enabled {
                traces.push(r.trace);
                lifetimes.push(r.lifetimes);
            }
        }
        Ok(ChipRun {
            per_core,
            core_cycles,
            cycles: max_cycles,
            total,
            traces,
            peaks,
            lifetimes,
        })
    }
}

/// The byte ranges a program writes to global memory (its `Move`
/// instructions with a GM destination).
fn gm_write_ranges(p: &Program) -> Vec<(usize, usize)> {
    p.instrs()
        .iter()
        .filter_map(|i| match i {
            Instr::Move(m) if m.dst.buffer == BufferId::Gm => Some((m.dst.offset, m.bytes)),
            _ => None,
        })
        .collect()
}

/// Check that no two *programs* write overlapping GM ranges.
fn check_disjoint(ranges: &[Vec<(usize, usize)>]) -> Result<(), SimError> {
    let mut flat: Vec<(usize, usize, usize)> = Vec::new(); // (start, end, program)
    for (pi, rs) in ranges.iter().enumerate() {
        for &(off, len) in rs {
            flat.push((off, off + len, pi));
        }
    }
    flat.sort_unstable();
    for w in flat.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b.0 < a.1 && a.2 != b.2 {
            return Err(SimError::Isa(dv_isa::IsaError::BadPosition(format!(
                "programs {} and {} write overlapping GM ranges [{:#x},{:#x}) and [{:#x},{:#x})",
                a.2, b.2, a.0, a.1, b.0, b.1
            ))));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_fp16::F16;
    use dv_isa::{Addr, DataMove, Mask, VectorInstr, VectorOp};

    /// A program that doubles 128 f16 values: GM[in] -> UB, vadd, UB ->
    /// GM[out].
    fn doubler(in_off: usize, out_off: usize) -> Program {
        let mut p = Program::new();
        p.push(Instr::Move(DataMove::new(
            Addr::gm(in_off),
            Addr::ub(0),
            256,
        )))
        .unwrap();
        p.push(Instr::Vector(VectorInstr::unit_stride(
            VectorOp::Add,
            Addr::ub(256),
            Addr::ub(0),
            Addr::ub(0),
            Mask::FULL,
            1,
        )))
        .unwrap();
        p.push(Instr::Move(DataMove::new(
            Addr::ub(256),
            Addr::gm(out_off),
            256,
        )))
        .unwrap();
        p
    }

    fn gm_with(vals: &[F16], bytes: usize) -> Vec<u8> {
        let mut gm = vec![0u8; bytes];
        gm[..vals.len() * 2].copy_from_slice(dv_fp16::as_bytes(vals));
        gm
    }

    #[test]
    fn parallel_tiles_produce_correct_gm() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 100) as f32)).collect();
        let mut gm = gm_with(&vals, 4096);
        // four tiles of 128 elements, outputs at byte 2048 onward
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();
        let chip = Chip::new(4, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &programs).unwrap();
        let out = dv_fp16::from_bytes(&gm[2048..2048 + 1024]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f32(), 2.0 * ((i % 100) as f32), "element {i}");
        }
        assert_eq!(run.per_core.len(), 4);
        assert!(run.cycles > 0);
    }

    #[test]
    fn chip_cycles_is_max_not_sum() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32(i as f32 % 7.0)).collect();
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();

        let mut gm1 = gm_with(&vals, 4096);
        let chip1 = Chip::new(1, CostModel::ascend910_like());
        let seq = chip1.run(&mut gm1, &programs).unwrap();

        let mut gm4 = gm_with(&vals, 4096);
        let chip4 = Chip::new(4, CostModel::ascend910_like());
        let par = chip4.run(&mut gm4, &programs).unwrap();

        assert_eq!(gm1, gm4, "results identical regardless of core count");
        // 4 equal tiles: 4 cores should be ~4x faster.
        assert_eq!(seq.cycles, 4 * par.cycles);
        // total work identical
        assert_eq!(seq.total.cycles, par.total.cycles);
    }

    #[test]
    fn more_cores_than_tiles_is_fine() {
        let vals: Vec<F16> = (0..128).map(|_| F16::ONE).collect();
        let mut gm = gm_with(&vals, 2048);
        let chip = Chip::new(32, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &[doubler(0, 1024)]).unwrap();
        assert_eq!(run.per_core.len(), 1, "idle cores report nothing");
        let out = dv_fp16::from_bytes(&gm[1024..1280]);
        assert!(out.iter().all(|v| v.to_f32() == 2.0));
    }

    #[test]
    fn overlapping_gm_writes_detected() {
        let mut gm = vec![0u8; 4096];
        // both tiles write to byte 2048
        let programs = vec![doubler(0, 2048), doubler(256, 2048)];
        let chip = Chip::new(2, CostModel::ascend910_like());
        assert!(chip.run(&mut gm, &programs).is_err());
    }

    #[test]
    fn traced_run_matches_counters_and_tracks_peaks() {
        let vals: Vec<F16> = (0..512).map(|i| F16::from_f32((i % 50) as f32)).collect();
        let mut gm = gm_with(&vals, 4096);
        let programs: Vec<Program> = (0..4).map(|t| doubler(t * 256, 2048 + t * 256)).collect();
        let chip =
            Chip::new(2, CostModel::ascend910_like()).with_trace(crate::trace::TraceConfig::ON);
        let run = chip.run(&mut gm, &programs).unwrap();

        // One trace per active core, each consistent with that core's
        // counters, and the aggregate consistent with the totals.
        assert_eq!(run.traces.len(), run.per_core.len());
        for (t, c) in run.traces.iter().zip(&run.per_core) {
            assert_eq!(t.total_cycles(), c.cycles);
            assert_eq!(t.events.len(), c.total_issues() as usize);
        }
        run.breakdown().verify_against(&run.total).unwrap();

        // The doubler stages 512 bytes in UB per tile.
        assert_eq!(run.peaks.of(BufferId::Ub), 512);
        assert_eq!(run.peaks.of(BufferId::L1), 0);

        let json = run.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"vadd\""));

        // Live ranges ride along with the trace: each core saw its UB
        // staging region live, and the export carries async slices.
        assert_eq!(run.lifetimes.len(), run.traces.len());
        for lt in &run.lifetimes {
            assert!(lt.of(BufferId::Ub).count() > 0);
        }
        assert!(json.contains("\"cat\":\"live-range\""));

        // Untraced runs record nothing but count identically.
        let mut gm2 = gm_with(&vals, 4096);
        let untraced = Chip::new(2, CostModel::ascend910_like())
            .run(&mut gm2, &programs)
            .unwrap();
        assert!(untraced.traces.is_empty());
        assert!(untraced.lifetimes.is_empty());
        assert_eq!(untraced.total, run.total);
    }

    #[test]
    fn empty_program_list() {
        let mut gm = vec![0u8; 64];
        let chip = Chip::new(2, CostModel::ascend910_like());
        let run = chip.run(&mut gm, &[]).unwrap();
        assert_eq!(run.cycles, 0);
        assert!(run.per_core.is_empty());
    }
}
